"""Quickstart: embed a service overlay forest on a small cloud network.

Builds the paper's Fig. 2-style scenario -- two video sources, two
subscriber sites, a two-function service chain (transcoder, watermarker)
-- runs SOFDA and the exact IP, and prints both forests.

Run with:  python examples/quickstart.py
"""

from repro import Graph, ServiceChain, SOFInstance, check_forest, sofda
from repro.ilp import solve_sof_ilp


def build_instance() -> SOFInstance:
    """The Fig. 2(a)-style network: 2 sources, 6 VMs, 2 destinations."""
    graph = Graph.from_edges([
        # backbone ring
        (1, 2, 1.0), (2, 4, 1.0), (4, 10, 1.0), (10, 6, 1.0), (6, 8, 1.0),
        (0, 3, 1.0), (3, 11, 1.0), (11, 5, 1.0), (5, 7, 1.0), (7, 9, 1.0),
        # cross links
        (2, 3, 1.0), (4, 5, 8.0), (6, 7, 2.0), (1, 4, 11.0),
        (4, 9, 20.0), (3, 4, 10.0),
    ])
    return SOFInstance(
        graph=graph,
        vms={2, 3, 4, 5, 6, 7},
        sources={0, 1},
        destinations={8, 9},
        chain=ServiceChain(["transcoder", "watermarker"]),
        node_costs={2: 10.0, 3: 10.0, 4: 10.0, 5: 20.0, 6: 20.0, 7: 10.0},
    )


def main() -> None:
    instance = build_instance()
    print(f"Instance: {instance}\n")

    result = sofda(instance)
    check_forest(instance, result.forest)
    print("SOFDA forest:")
    print(result.forest.describe())
    print(f"conflict stats: {result.stats.as_dict()}\n")

    solution = solve_sof_ilp(instance)
    print(f"Exact IP optimum: {solution.objective:.2f}")
    print(f"SOFDA/OPT ratio : {result.cost / solution.objective:.3f}")
    print("(the paper's Theorem 3 guarantees at most 3*rho_ST ~= 6 with the "
          "KMB Steiner solver; empirically SOFDA is near-optimal)")


if __name__ == "__main__":
    main()
