"""Tenant churn: diurnal arrivals, holding-time departures, trace replay.

The paper's online scenario (Section VIII-A) only models request
arrivals -- once embedded, a forest holds its bandwidth and VM slots
forever.  This example runs the full tenant lifecycle on a
SoftLayer-like backbone: requests arrive on a day/night (diurnal) rate
curve, hold their resources for an exponential holding time, and depart,
releasing their lease so the freed links re-price downward (the oracle's
decrease-patch path).  The same recorded schedule is replayed through
SOFDA and the eST baseline, and the acceptance-rate / cost race is
printed per day quarter.

Run with:  python examples/tenant_churn.py

Pass ``--trace-out churn.jsonl`` to run the same workload with the
observability layer on: a span trace (Chrome trace-event JSONL) is
written for ``repro obs convert`` / chrome://tracing, and the per-phase
time breakdown is printed.  Results are bit-identical either way -- the
recorder only observes.
"""

import argparse

from repro import sofda
from repro.baselines import est_baseline
from repro.experiments import run_churn_comparison
from repro.online import RequestGenerator
from repro.topology import softlayer_network
from repro.workload import (
    DiurnalArrivals,
    ExponentialHolding,
    build_schedule,
    dump_trace,
    load_trace,
)

HORIZON = 48.0   # two "days"
BASE_RATE = 0.6  # arrivals per hour at the diurnal midline
HOLD_MEAN = 7.0  # mean tenant lifetime in hours


def main(trace_out: str = None) -> None:
    factory = lambda: softlayer_network(seed=3)  # noqa: E731
    network = factory()
    generator = RequestGenerator(network, seed=11,
                                 destinations_range=(4, 6),
                                 sources_range=(2, 3))
    process = DiurnalArrivals(generator, base_rate=BASE_RATE, amplitude=0.8,
                              period=24.0, seed=1)
    holding = ExponentialHolding(mean=HOLD_MEAN, seed=2)
    schedule = build_schedule(process, horizon=HORIZON, holding=holding)

    # Round-trip the schedule through its JSONL trace form -- replaying
    # the recorded trace drives the exact same event sequence.
    schedule = load_trace(dump_trace(schedule))
    arrivals = [e for e in schedule if e.kind == "arrive"]
    print(f"Diurnal trace on {network}: {len(arrivals)} arrivals over "
          f"{HORIZON:.0f} h (mean hold {HOLD_MEAN:.0f} h)\n")

    recorder = None
    simulator_kwargs = {}
    if trace_out is not None:
        from repro.obs import MetricsRegistry, Recorder, SpanTracer

        recorder = Recorder(registry=MetricsRegistry(), tracer=SpanTracer())
        simulator_kwargs["metrics"] = recorder

    results = run_churn_comparison(
        factory,
        {"SOFDA": lambda inst: sofda(inst).forest, "eST": est_baseline},
        schedule,
        **simulator_kwargs,
    )

    print(f"{'algo':6s} {'accept':>6s} {'reject':>6s} {'rate':>7s} "
          f"{'depart':>6s} {'peak':>5s} {'total cost':>11s}")
    for name, result in results.items():
        print(f"{name:6s} {result.accepted:6d} {result.rejected:6d} "
              f"{result.acceptance_rate:7.1%} {result.departures:6d} "
              f"{result.peak_active:5d} {result.total_cost:11.1f}")

    # The diurnal shape: arrivals per quarter-day, peak in the first
    # quarter (sin peaks at t = period/4).
    print("\narrivals per 6 h bucket (diurnal shape):")
    buckets = [0] * int(HORIZON / 6)
    for event in arrivals:
        buckets[min(int(event.time / 6), len(buckets) - 1)] += 1
    for i, count in enumerate(buckets):
        print(f"  {6 * i:2.0f}-{6 * (i + 1):2.0f} h  {'#' * count} {count}")

    best = min(results, key=lambda n: results[n].total_cost)
    print(f"\nLowest total cost at equal acceptance: {best} "
          f"({results[best].total_cost:.1f})")

    if recorder is not None:
        from repro.obs import phase_breakdown, write_trace_events

        write_trace_events(recorder.tracer.events, trace_out)
        print(f"\nwrote {len(recorder.tracer.events)} spans to {trace_out}")
        print("convert for chrome://tracing with: "
              f"python -m repro obs convert {trace_out} -o trace.json")
        print("per-phase time:")
        for phase, seconds in phase_breakdown(recorder.snapshot()).items():
            print(f"  {phase:8s} {seconds:10.4f}s")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="write a span trace (Chrome trace-event "
                             "JSONL) to PATH")
    main(trace_out=parser.parse_args().trace_out)
