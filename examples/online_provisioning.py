"""Online service provisioning (the paper's Fig. 12 scenario).

Multicast service requests arrive one at a time on a SoftLayer-like
backbone.  Each embedded forest consumes link bandwidth and VM slots;
the convex Fortz--Thorup costs grow with load, steering later embeddings
away from hot spots.  The example replays the same request sequence
through SOFDA and the three baselines and prints the accumulative-cost
race.

Run with:  python examples/online_provisioning.py
"""

from repro import sofda
from repro.baselines import enemp_baseline, est_baseline, st_baseline
from repro.online import RequestGenerator, run_online_comparison
from repro.topology import softlayer_network

NUM_REQUESTS = 12


def main() -> None:
    factory = lambda: softlayer_network(seed=3)  # noqa: E731
    network = factory()
    generator = RequestGenerator(network, seed=11)
    requests = generator.take(NUM_REQUESTS)
    print(f"Replaying {NUM_REQUESTS} requests on {network} "
          f"(5 VMs per data center)\n")

    results = run_online_comparison(
        factory,
        {
            "SOFDA": lambda inst: sofda(inst).forest,
            "eNEMP": enemp_baseline,
            "eST": est_baseline,
            "ST": st_baseline,
        },
        requests,
    )

    print(f"{'#':>3s}  " + "  ".join(f"{name:>10s}" for name in results))
    for i in range(NUM_REQUESTS):
        row = "  ".join(
            f"{results[name].accumulative_cost[i]:10.1f}" for name in results
        )
        print(f"{i + 1:>3d}  {row}")
    best = min(results, key=lambda n: results[n].total_cost)
    print(f"\nLowest accumulative cost: {best} "
          f"({results[best].total_cost:.1f})")
    for name, result in results.items():
        if name != best:
            extra = 100 * (result.total_cost / results[best].total_cost - 1)
            print(f"  {name} pays +{extra:.1f}%")


if __name__ == "__main__":
    main()
