"""Multi-controller SDN embedding (the paper's Section VI).

A Cogent-scale backbone is split into four controller domains.  The
distributed protocol exchanges border-router distance matrices, builds
candidate service chains as virtual links, spans the destinations, and
eliminates VNF conflicts across domains -- reaching exactly the
centralized SOFDA forest while every inter-controller message is
accounted.

Run with:  python examples/distributed_controllers.py
"""

from repro import ServiceChain, sofda
from repro.distributed import DistributedSOFDA
from repro.topology import cogent_network

NUM_DOMAINS = 4


def main() -> None:
    network = cogent_network(seed=1)
    instance = network.make_instance(
        num_sources=6, num_destinations=8, num_vms=15,
        chain=ServiceChain.of_length(3), seed=13,
    )
    print(f"Backbone: {network}, split into {NUM_DOMAINS} controller domains\n")

    distributed = DistributedSOFDA(instance, num_domains=NUM_DOMAINS, seed=2)
    for controller in distributed.controllers:
        print(f"  controller {controller.controller_id}: "
              f"{len(controller.domain)} nodes, "
              f"{len(controller.border_routers)} border routers")

    result = distributed.run()
    central = sofda(instance)
    print(f"\nforest cost: distributed={result.cost:.2f} "
          f"centralized={central.cost:.2f} "
          f"(identical: {abs(result.cost - central.cost) < 1e-9})")
    print(f"leader: controller {result.leader}")
    print(f"abstraction lossless on sampled pairs: "
          f"{distributed.verify_abstraction(samples=30)}")

    print(f"\neast-west traffic: {result.bus.num_messages} messages, "
          f"{result.bus.total_size} payload entries")
    for kind, (count, size) in sorted(result.bus.by_kind().items()):
        print(f"  {kind:18s} {count:4d} msgs {size:6d} entries")


if __name__ == "__main__":
    main()
