"""Live-streaming CDN scenario (the paper's motivating application).

A next-generation video platform distributes a live channel from several
origin servers to edge sites across an inter-data-center backbone
(SoftLayer-like).  Every viewer's stream must pass an ad-inserter, a
transcoder and a watermarker in order.  The example compares SOFDA with
the eNEMP / eST / ST baselines and the exact optimum, then shows how the
forest adapts when an edge site joins mid-session (Section VII-C).

Run with:  python examples/live_streaming_cdn.py
"""

from repro import ServiceChain, check_forest, sofda
from repro.baselines import enemp_baseline, est_baseline, st_baseline
from repro.core.dynamic import destination_join
from repro.ilp import solve_sof_ilp
from repro.topology import softlayer_network


def main() -> None:
    network = softlayer_network(seed=7)
    chain = ServiceChain(["ad-inserter", "transcoder", "watermarker"])
    instance = network.make_instance(
        num_sources=4,          # origin servers holding the live feed
        num_destinations=5,     # edge sites serving viewers
        num_vms=12,             # VMs available across the data centers
        chain=chain,
        seed=21,
    )
    print(f"Backbone: {network}")
    print(f"Chain   : {' -> '.join(chain)}\n")

    print(f"{'algorithm':10s} {'cost':>10s} {'trees':>6s} {'VMs':>4s}")
    results = {}
    for name, embed in [
        ("SOFDA", lambda i: sofda(i).forest),
        ("eNEMP", enemp_baseline),
        ("eST", est_baseline),
        ("ST", st_baseline),
    ]:
        forest = embed(instance)
        check_forest(instance, forest)
        results[name] = forest
        print(f"{name:10s} {forest.total_cost():10.2f} "
              f"{forest.num_trees():6d} {len(forest.used_vms()):4d}")

    optimum = solve_sof_ilp(instance, time_limit=60)
    print(f"{'optimum':10s} {optimum.objective:10.2f}")
    print(f"\nSOFDA is within "
          f"{100 * (results['SOFDA'].total_cost() / optimum.objective - 1):.1f}% "
          f"of the optimum.\n")

    # A new edge site comes online mid-broadcast: join without re-embedding.
    forest = results["SOFDA"]
    current = set(instance.destinations)
    candidates = [
        n for n in network.access_nodes()
        if n not in current and n not in instance.sources
    ]
    newcomer = candidates[0]
    before = forest.total_cost()
    new_instance, new_forest = destination_join(forest, newcomer)
    check_forest(new_instance, new_forest)
    print(f"Edge site {newcomer!r} joined: cost {before:.2f} -> "
          f"{new_forest.total_cost():.2f} "
          f"(+{new_forest.total_cost() - before:.2f}, no re-embedding)")


if __name__ == "__main__":
    main()
