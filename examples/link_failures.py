"""Link failures: seeded MTBF/MTTR outages, mass rerouting, availability.

The paper's Section VII dynamic adjustments assume the network changes
under the embedder; this example injects actual link failures into a
tenant-churn workload on a SoftLayer-like backbone.  A seeded
MTBF/MTTR renewal process (:class:`~repro.workload.LinkFailureProcess`)
emits fail/recover events interleaved with Poisson arrivals and
holding-time departures.  When a link dies, the simulator reroutes every
active tenant crossing it onto surviving paths (releasing the ones that
cannot be saved), and the oracle absorbs the topology change as an
incremental ``patch_topology`` repair instead of a full rebuild.

The same trace replays through ``topology_patch=True`` (incremental
tombstone repair) and the invalidate-and-rebuild reference; both must
agree on every acceptance, reroute, and disruption decision.

Run with:  python examples/link_failures.py
"""

import random

from repro import sofda
from repro.experiments import run_churn_comparison
from repro.online import RequestGenerator
from repro.topology import softlayer_network
from repro.workload import (
    ExponentialHolding,
    LinkFailureProcess,
    PoissonArrivals,
    build_schedule,
    dump_trace,
    load_trace,
)

HORIZON = 36.0    # hours of trace time
RATE = 1.0        # arrivals per hour
HOLD_MEAN = 6.0   # mean tenant lifetime in hours
FAIL_LINKS = 12   # failure-prone subset of the physical links
MTBF = 30.0       # mean hours between failures, per link
MTTR = 1.5        # mean hours to repair


def main() -> None:
    factory = lambda: softlayer_network(seed=3)  # noqa: E731
    network = factory()
    generator = RequestGenerator(network, seed=11,
                                 destinations_range=(4, 6),
                                 sources_range=(2, 3))
    process = PoissonArrivals(generator, rate=RATE, seed=1)
    holding = ExponentialHolding(mean=HOLD_MEAN, seed=2)

    links = sorted(((u, v) for u, v, _ in network.graph.edges()), key=repr)
    prone = random.Random(7).sample(links, FAIL_LINKS)
    failures = LinkFailureProcess(prone, mtbf=MTBF, mttr=MTTR, seed=7)

    schedule = build_schedule(process, horizon=HORIZON, holding=holding,
                              failures=failures)
    # Round-trip through the (version-2) JSONL trace form.
    schedule = load_trace(dump_trace(schedule))
    fails = sum(1 for e in schedule if e.kind == "fail")
    print(f"Failure trace on {network}: "
          f"{sum(1 for e in schedule if e.kind == 'arrive')} arrivals, "
          f"{fails} link failures over {HORIZON:.0f} h "
          f"(MTBF {MTBF:.0f} h, MTTR {MTTR:.1f} h)\n")

    embedder = {"SOFDA": lambda inst: sofda(inst).forest}
    patched = run_churn_comparison(factory, embedder, schedule,
                                   topology_patch=True)["SOFDA"]
    rebuilt = run_churn_comparison(factory, embedder, schedule,
                                   incremental=False)["SOFDA"]

    print(f"{'mode':12s} {'accept':>6s} {'reject':>6s} {'reroute':>7s} "
          f"{'disrupt':>7s} {'d-rate':>7s} {'mttr(h)':>8s} "
          f"{'total cost':>11s}")
    for mode, result in (("patched", patched), ("rebuilt", rebuilt)):
        print(f"{mode:12s} {result.accepted:6d} {result.rejected:6d} "
              f"{result.rerouted:7d} {result.disrupted:7d} "
              f"{result.disruption_rate:6.1%} "
              f"{result.mean_recovery_latency:8.2f} "
              f"{result.total_cost:11.2f}")

    agree = (
        patched.per_request_cost == rebuilt.per_request_cost
        and patched.rerouted == rebuilt.rerouted
        and patched.disrupted == rebuilt.disrupted
    )
    print(f"\nincremental topology patches match the rebuild reference: "
          f"{'yes' if agree else 'NO'}")


if __name__ == "__main__":
    main()
