"""Tests for Procedures 1-2: k-stroll instance construction and chain walks."""

import itertools
import random

import pytest

from helpers import random_instance
from repro import Graph, ServiceChain, SOFInstance
from repro.core.transform import build_kstroll_instance, chain_walk


@pytest.fixture
def diamond_instance():
    # 0 -- 1 -- 3,  0 -- 2 -- 3, VMs 1 and 2, plus a far VM 4.
    graph = Graph.from_edges([
        (0, 1, 1.0), (1, 3, 1.0), (0, 2, 2.0), (2, 3, 2.0), (3, 4, 5.0),
    ])
    return SOFInstance(
        graph=graph, vms={1, 2, 4}, sources={0}, destinations={3},
        chain=ServiceChain.of_length(2),
        node_costs={1: 10.0, 2: 6.0, 4: 2.0},
    )


def test_procedure1_cost_identity(diamond_instance):
    """A k-node path in the instance costs (shortest paths) + (VM setups).

    This is the defining property of Procedure 1's cost sharing: for the
    path s, m1, ..., mk = u, the instance cost equals the sum of the
    underlying shortest-path connection costs plus the setup costs of
    m1..mk (Section IV).
    """
    instance = diamond_instance
    kinst = build_kstroll_instance(instance, 0, 4)
    oracle = instance.oracle
    for order in itertools.permutations([1, 2]):
        path = [0] + list(order) + [4]
        expected = sum(
            oracle.distance(a, b) for a, b in zip(path, path[1:])
        ) + sum(instance.setup_cost(m) for m in path[1:])
        assert kinst.path_cost(path) == pytest.approx(expected)


def test_procedure1_direct_edge_shares_last_vm_setup(diamond_instance):
    kinst = build_kstroll_instance(diamond_instance, 0, 4)
    # Edge (s, u): path cost + (c(u) + c(u))/2 = path + c(u).
    expected = diamond_instance.oracle.distance(0, 4) + 2.0
    assert kinst.edge(0, 4) == pytest.approx(expected)


@pytest.mark.parametrize("seed", range(6))
def test_lemma1_triangle_inequality(seed):
    """Lemma 1: the Procedure-1 instance satisfies the triangle inequality."""
    instance = random_instance(seed, n=16, num_vms=6, chain_len=2)
    source = sorted(instance.sources, key=repr)[0]
    last = sorted(instance.vms, key=repr)[0]
    if last == source:
        last = sorted(instance.vms, key=repr)[1]
    kinst = build_kstroll_instance(instance, source, last)
    nodes = kinst.nodes
    for a, b, c in itertools.permutations(nodes, 3):
        assert kinst.edge(a, c) <= kinst.edge(a, b) + kinst.edge(b, c) + 1e-9


def test_appendix_d_source_cost(diamond_instance):
    instance = diamond_instance
    kinst = build_kstroll_instance(instance, 0, 4, source_cost=7.0)
    # Direct (s, u): path + c(s) + c(u).
    expected = instance.oracle.distance(0, 4) + 7.0 + 2.0
    assert kinst.edge(0, 4) == pytest.approx(expected)
    # Path s -> m -> u still totals path costs + c(s) + setups.
    path = [0, 1, 4]
    expected = (
        instance.oracle.distance(0, 1) + instance.oracle.distance(1, 4)
        + 7.0 + 10.0 + 2.0
    )
    assert kinst.path_cost(path) == pytest.approx(expected)


def test_chain_walk_structure(diamond_instance):
    cw = chain_walk(diamond_instance, 0, 4)
    assert cw is not None
    assert cw.source == 0
    assert cw.last_vm == 4
    assert cw.stroll[0] == 0
    assert len(cw.stroll) == 3  # source + |C| VMs
    # Positions index the walk correctly.
    for node, pos in zip(cw.stroll, cw.positions):
        assert cw.walk[pos] == node
    # Walk edges exist in G.
    for a, b in zip(cw.walk, cw.walk[1:]):
        assert diamond_instance.graph.has_edge(a, b)
    # Costs are consistent.
    edge_cost = sum(
        diamond_instance.graph.cost(a, b)
        for a, b in zip(cw.walk, cw.walk[1:])
    )
    assert cw.connection_cost == pytest.approx(edge_cost)
    assert cw.setup_cost == pytest.approx(
        sum(diamond_instance.setup_cost(m) for m in cw.stroll[1:])
    )


def test_chain_walk_picks_cheap_vm(diamond_instance):
    # VM 2 (setup 6) beats VM 1 (setup 10) net of the pricier path.
    cw = chain_walk(diamond_instance, 0, 4)
    assert cw.total_cost <= 1 + 1 + 5 + 10 + 2 + 1e-9


def test_chain_walk_to_deployed_chain(diamond_instance):
    cw = chain_walk(diamond_instance, 0, 4)
    chain = cw.to_deployed_chain()
    placed = chain.vnf_positions()
    assert [vnf for _, vnf in placed] == [0, 1]
    assert chain.last_vm == 4


def test_chain_walk_same_endpoints_returns_none(diamond_instance):
    assert chain_walk(diamond_instance, 4, 4) is None


def test_chain_walk_pool_too_small_returns_none(diamond_instance):
    assert chain_walk(diamond_instance, 0, 4, candidate_vms={4}) is None


def test_chain_walk_pool_cap_still_valid():
    instance = random_instance(3, n=40, num_vms=30, chain_len=3)
    source = sorted(instance.sources, key=repr)[0]
    last = sorted(instance.vms, key=repr)[0]
    capped = chain_walk(instance, source, last, pool_cap=5)
    uncapped = chain_walk(instance, source, last, pool_cap=0)
    assert capped is not None and uncapped is not None
    assert len(capped.stroll) == len(instance.chain) + 1
    # Capping can only lose quality, never validity.
    assert capped.total_cost >= uncapped.total_cost - 1e-9


def test_chain_walk_setup_cost_override(diamond_instance):
    # Pre-enabled VM 1 made free: the walk should now prefer it.
    cw = chain_walk(diamond_instance, 0, 4, setup_costs={1: 0.0})
    assert 1 in cw.stroll
    assert cw.setup_cost == pytest.approx(2.0)  # only VM 4 pays
