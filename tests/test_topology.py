"""Tests for topology generators and instance sampling."""

import math
import random

import pytest

from repro import ServiceChain
from repro.topology import (
    cogent_network,
    erdos_renyi_network,
    fabric_network,
    geographic_network,
    inet_network,
    softlayer_network,
    waxman_network,
)
from repro.topology.generators import (
    _GRID_MST_THRESHOLD,
    _dist,
    _euclidean_mst_edges,
    _euclidean_mst_edges_grid,
)


def test_softlayer_counts():
    net = softlayer_network(seed=0)
    assert net.num_nodes == 27
    assert net.num_links == 49
    assert len(net.datacenters) == 17
    assert net.graph.is_connected()


def test_cogent_counts():
    net = cogent_network(seed=0)
    assert net.num_nodes == 190
    assert net.num_links == 260
    assert len(net.datacenters) == 40
    assert net.graph.is_connected()


def test_inet_counts_and_connectivity():
    net = inet_network(num_nodes=300, num_links=600, num_datacenters=100, seed=1)
    assert net.num_nodes == 300
    assert net.num_links == 600
    assert len(net.datacenters) == 100
    assert net.graph.is_connected()


def test_inet_heavy_tail():
    net = inet_network(num_nodes=400, num_links=800, num_datacenters=50, seed=2)
    degrees = sorted((net.graph.degree(n) for n in net.graph.nodes()), reverse=True)
    # Preferential attachment: the hubs dominate -- the max degree is far
    # above the mean (4).
    assert degrees[0] > 4 * (2 * 800 / 400)


def test_geographic_rejects_too_few_links():
    with pytest.raises(ValueError):
        geographic_network("bad", 10, 5, 2)


def test_waxman_connected():
    net = waxman_network(50, seed=3)
    assert net.graph.is_connected()


def test_erdos_renyi_connected():
    net = erdos_renyi_network(40, 0.05, seed=4)
    assert net.graph.is_connected()


def test_generators_deterministic():
    a = softlayer_network(seed=9)
    b = softlayer_network(seed=9)
    assert sorted(a.graph.edges()) == sorted(b.graph.edges())
    assert a.datacenters == b.datacenters
    c = softlayer_network(seed=10)
    assert sorted(a.graph.edges()) != sorted(c.graph.edges())


def test_make_instance_structure():
    net = softlayer_network(seed=1)
    inst = net.make_instance(
        num_sources=3, num_destinations=4, num_vms=10,
        chain=ServiceChain.of_length(3), seed=5,
    )
    assert len(inst.sources) == 3
    assert len(inst.destinations) == 4
    assert len(inst.vms) == 10
    assert inst.sources.isdisjoint(inst.destinations)
    # VMs attach to data centers and carry costs.
    for vm in inst.vms:
        assert vm in inst.node_costs
        neighbors = list(inst.graph.neighbors(vm))
        assert len(neighbors) == 1
        assert neighbors[0] in net.datacenters


def test_make_instance_deterministic():
    net = softlayer_network(seed=1)
    kwargs = dict(num_sources=3, num_destinations=4, num_vms=8,
                  chain=ServiceChain.of_length(2), seed=5)
    a = net.make_instance(**kwargs)
    b = net.make_instance(**kwargs)
    assert a.sources == b.sources
    assert a.destinations == b.destinations
    assert a.node_costs == b.node_costs


def test_make_instance_sweep_stability():
    """Sweeping the VM count must not perturb S/D or link costs."""
    net = softlayer_network(seed=1)
    base = dict(num_sources=3, num_destinations=4,
                chain=ServiceChain.of_length(2), seed=5)
    a = net.make_instance(num_vms=5, **base)
    b = net.make_instance(num_vms=25, **base)
    assert a.sources == b.sources
    assert a.destinations == b.destinations
    edge = next(iter(net.graph.edges()))[:2]
    assert a.graph.cost(*edge) == b.graph.cost(*edge)


def test_make_instance_setup_multiplier():
    net = softlayer_network(seed=1)
    base = dict(num_sources=2, num_destinations=3, num_vms=6,
                chain=ServiceChain.of_length(2), seed=7)
    x1 = net.make_instance(setup_cost_multiplier=1.0, **base)
    x3 = net.make_instance(setup_cost_multiplier=3.0, **base)
    for vm in x1.vms:
        assert x3.node_costs[vm] == pytest.approx(3 * x1.node_costs[vm])


def test_make_instance_validates_sizes():
    net = softlayer_network(seed=1)
    with pytest.raises(ValueError):
        net.make_instance(num_sources=100, num_destinations=4, num_vms=6,
                          chain=ServiceChain.of_length(2), seed=0)
    with pytest.raises(ValueError):
        net.make_instance(num_sources=2, num_destinations=2, num_vms=1,
                          chain=ServiceChain.of_length(2), seed=0)


def test_overlapping_sets_when_topology_small():
    net = softlayer_network(seed=1)
    inst = net.make_instance(
        num_sources=26, num_destinations=6, num_vms=6,
        chain=ServiceChain.of_length(2), seed=3,
    )
    assert len(inst.sources) == 26
    assert len(inst.destinations) == 6


# ----------------------------------------------------------------------
# large-n spatial-grid path (>= _GRID_MST_THRESHOLD nodes)
# ----------------------------------------------------------------------
def _mst_weight(points, edges):
    return sum(_dist(points[i], points[j]) for i, j in edges)


@pytest.mark.parametrize("n,seed", [(50, 0), (200, 1), (700, 2)])
def test_grid_mst_matches_exact_mst_weight(n, seed):
    rng = random.Random(seed)
    points = [(rng.random(), rng.random()) for _ in range(n)]
    exact = _mst_weight(points, _euclidean_mst_edges(points))
    grid, _ = _euclidean_mst_edges_grid(points)
    assert len(grid) == n - 1
    assert _mst_weight(points, grid) == pytest.approx(exact, rel=1e-12)


def test_grid_mst_stitches_clustered_points():
    # Two far-apart dense clusters: the k-NN graph alone leaves them
    # disconnected, forcing the deterministic stitching loop.
    rng = random.Random(7)
    points = [(rng.random(), rng.random()) for _ in range(60)]
    points += [(100.0 + rng.random(), 100.0 + rng.random()) for _ in range(60)]
    exact = _mst_weight(points, _euclidean_mst_edges(points))
    grid, _ = _euclidean_mst_edges_grid(points)
    assert len(grid) == len(points) - 1
    assert _mst_weight(points, grid) == pytest.approx(exact, rel=1e-12)


def test_geographic_grid_path_counts_and_connectivity():
    n = _GRID_MST_THRESHOLD + 176  # comfortably on the grid path
    net = geographic_network("big", n, 2 * n, 100, seed=5)
    assert net.num_nodes == n
    assert net.num_links == 2 * n
    assert len(net.datacenters) == 100
    assert net.graph.is_connected()


def test_geographic_grid_path_deterministic():
    n = _GRID_MST_THRESHOLD
    a = geographic_network("big", n, n + 500, 50, seed=6)
    b = geographic_network("big", n, n + 500, 50, seed=6)
    assert sorted(a.graph.edges()) == sorted(b.graph.edges())
    assert a.datacenters == b.datacenters
    c = geographic_network("big", n, n + 500, 50, seed=7)
    assert sorted(a.graph.edges()) != sorted(c.graph.edges())


def test_geographic_grid_path_adaptive_k():
    # Demanding ~6 links per node exhausts the k=8 candidate pool (half
    # the k-NN pairs are MST edges), forcing at least one k-doubling.
    n = _GRID_MST_THRESHOLD
    net = geographic_network("dense", n, 6 * n, 10, seed=8)
    assert net.num_links == 6 * n
    assert net.graph.is_connected()


# ----------------------------------------------------------------------
# fabric (leaf--spine) generator
# ----------------------------------------------------------------------
def test_fabric_structure_and_determinism():
    net = fabric_network(num_nodes=5000, seed=3)
    assert net.num_nodes == 5000
    assert net.graph.is_connected()
    num_spines = max(2, round(5000 ** (1.0 / 3.0)))
    num_leaves = max(2, round(math.sqrt(5000)))
    first_host = num_spines + num_leaves
    # Data centers sit on hosts only, never on switches.
    assert all(dc >= first_host for dc in net.datacenters)
    again = fabric_network(num_nodes=5000, seed=3)
    assert sorted(net.graph.edges()) == sorted(again.graph.edges())
    assert net.datacenters == again.datacenters
    other = fabric_network(num_nodes=5000, seed=4)
    assert net.datacenters != other.datacenters


def test_fabric_hosts_within_four_hops():
    net = fabric_network(num_nodes=300, num_datacenters=5, seed=0)
    graph = net.graph
    start = net.datacenters[0]
    hops = {start: 0}
    frontier = [start]
    while frontier:
        nxt = []
        for u in frontier:
            for v, _ in graph.neighbor_items(u):
                if v not in hops:
                    hops[v] = hops[u] + 1
                    nxt.append(v)
        frontier = nxt
    assert len(hops) == 300
    assert max(hops.values()) <= 4


def test_fabric_validates_arguments():
    with pytest.raises(ValueError):
        fabric_network(num_nodes=7)
    with pytest.raises(ValueError):
        fabric_network(num_nodes=300, num_datacenters=10_000)
