"""Tests for topology generators and instance sampling."""

import pytest

from repro import ServiceChain
from repro.topology import (
    cogent_network,
    erdos_renyi_network,
    geographic_network,
    inet_network,
    softlayer_network,
    waxman_network,
)


def test_softlayer_counts():
    net = softlayer_network(seed=0)
    assert net.num_nodes == 27
    assert net.num_links == 49
    assert len(net.datacenters) == 17
    assert net.graph.is_connected()


def test_cogent_counts():
    net = cogent_network(seed=0)
    assert net.num_nodes == 190
    assert net.num_links == 260
    assert len(net.datacenters) == 40
    assert net.graph.is_connected()


def test_inet_counts_and_connectivity():
    net = inet_network(num_nodes=300, num_links=600, num_datacenters=100, seed=1)
    assert net.num_nodes == 300
    assert net.num_links == 600
    assert len(net.datacenters) == 100
    assert net.graph.is_connected()


def test_inet_heavy_tail():
    net = inet_network(num_nodes=400, num_links=800, num_datacenters=50, seed=2)
    degrees = sorted((net.graph.degree(n) for n in net.graph.nodes()), reverse=True)
    # Preferential attachment: the hubs dominate -- the max degree is far
    # above the mean (4).
    assert degrees[0] > 4 * (2 * 800 / 400)


def test_geographic_rejects_too_few_links():
    with pytest.raises(ValueError):
        geographic_network("bad", 10, 5, 2)


def test_waxman_connected():
    net = waxman_network(50, seed=3)
    assert net.graph.is_connected()


def test_erdos_renyi_connected():
    net = erdos_renyi_network(40, 0.05, seed=4)
    assert net.graph.is_connected()


def test_generators_deterministic():
    a = softlayer_network(seed=9)
    b = softlayer_network(seed=9)
    assert sorted(a.graph.edges()) == sorted(b.graph.edges())
    assert a.datacenters == b.datacenters
    c = softlayer_network(seed=10)
    assert sorted(a.graph.edges()) != sorted(c.graph.edges())


def test_make_instance_structure():
    net = softlayer_network(seed=1)
    inst = net.make_instance(
        num_sources=3, num_destinations=4, num_vms=10,
        chain=ServiceChain.of_length(3), seed=5,
    )
    assert len(inst.sources) == 3
    assert len(inst.destinations) == 4
    assert len(inst.vms) == 10
    assert inst.sources.isdisjoint(inst.destinations)
    # VMs attach to data centers and carry costs.
    for vm in inst.vms:
        assert vm in inst.node_costs
        neighbors = list(inst.graph.neighbors(vm))
        assert len(neighbors) == 1
        assert neighbors[0] in net.datacenters


def test_make_instance_deterministic():
    net = softlayer_network(seed=1)
    kwargs = dict(num_sources=3, num_destinations=4, num_vms=8,
                  chain=ServiceChain.of_length(2), seed=5)
    a = net.make_instance(**kwargs)
    b = net.make_instance(**kwargs)
    assert a.sources == b.sources
    assert a.destinations == b.destinations
    assert a.node_costs == b.node_costs


def test_make_instance_sweep_stability():
    """Sweeping the VM count must not perturb S/D or link costs."""
    net = softlayer_network(seed=1)
    base = dict(num_sources=3, num_destinations=4,
                chain=ServiceChain.of_length(2), seed=5)
    a = net.make_instance(num_vms=5, **base)
    b = net.make_instance(num_vms=25, **base)
    assert a.sources == b.sources
    assert a.destinations == b.destinations
    edge = next(iter(net.graph.edges()))[:2]
    assert a.graph.cost(*edge) == b.graph.cost(*edge)


def test_make_instance_setup_multiplier():
    net = softlayer_network(seed=1)
    base = dict(num_sources=2, num_destinations=3, num_vms=6,
                chain=ServiceChain.of_length(2), seed=7)
    x1 = net.make_instance(setup_cost_multiplier=1.0, **base)
    x3 = net.make_instance(setup_cost_multiplier=3.0, **base)
    for vm in x1.vms:
        assert x3.node_costs[vm] == pytest.approx(3 * x1.node_costs[vm])


def test_make_instance_validates_sizes():
    net = softlayer_network(seed=1)
    with pytest.raises(ValueError):
        net.make_instance(num_sources=100, num_destinations=4, num_vms=6,
                          chain=ServiceChain.of_length(2), seed=0)
    with pytest.raises(ValueError):
        net.make_instance(num_sources=2, num_destinations=2, num_vms=1,
                          chain=ServiceChain.of_length(2), seed=0)


def test_overlapping_sets_when_topology_small():
    net = softlayer_network(seed=1)
    inst = net.make_instance(
        num_sources=26, num_destinations=6, num_vms=6,
        chain=ServiceChain.of_length(2), seed=3,
    )
    assert len(inst.sources) == 26
    assert len(inst.destinations) == 6
