"""Tests for the forest representation and its stage-keyed cost accounting."""

import pytest

from repro import DeployedChain, Graph, ServiceChain, ServiceOverlayForest, SOFInstance


@pytest.fixture
def line_instance():
    graph = Graph.from_edges([
        (0, 1, 1.0), (1, 2, 2.0), (2, 3, 4.0), (3, 4, 8.0),
    ])
    return SOFInstance(
        graph=graph, vms={1, 2, 3}, sources={0}, destinations={4},
        chain=ServiceChain.of_length(2), node_costs={1: 10.0, 2: 20.0, 3: 30.0},
    )


def test_chain_accessors(line_instance):
    chain = DeployedChain(walk=[0, 1, 2], placements={1: 0, 2: 1})
    assert chain.source == 0
    assert chain.last_vm == 2
    assert chain.vm_of_vnf(0) == 1
    assert chain.vnf_positions() == [(1, 0), (2, 1)]
    with pytest.raises(KeyError):
        chain.vm_of_vnf(5)


def test_basic_cost(line_instance):
    forest = ServiceOverlayForest(instance=line_instance)
    forest.add_chain(DeployedChain(walk=[0, 1, 2], placements={1: 0, 2: 1}))
    forest.add_tree_edge(2, 3)
    forest.add_tree_edge(3, 4)
    assert forest.setup_cost() == 30.0        # VMs 1 and 2
    assert forest.connection_cost() == pytest.approx(1 + 2 + 4 + 8)
    assert forest.total_cost() == pytest.approx(45.0)


def test_clone_pass_pays_twice(line_instance):
    # Walk 0-1-2-1 re-crosses edge (1,2) at a later stage: both pays.
    forest = ServiceOverlayForest(instance=line_instance)
    forest.add_chain(DeployedChain(walk=[0, 1, 2, 1], placements={1: 0, 2: 1}))
    assert forest.connection_cost() == pytest.approx(1 + 2 + 2)


def test_same_stage_shared_edge_paid_once(line_instance):
    # Two chains with identical placements share stage content: the common
    # stage-0 edge is paid once (the IP's tau accounting).
    forest = ServiceOverlayForest(instance=line_instance)
    forest.add_chain(DeployedChain(walk=[0, 1, 2], placements={1: 0, 2: 1}))
    forest.add_chain(DeployedChain(walk=[0, 1, 2], placements={1: 0, 2: 1}))
    assert forest.connection_cost() == pytest.approx(1 + 2)
    assert forest.setup_cost() == 30.0  # enabled once


def test_tree_edge_dedups_against_final_stage_walk(line_instance):
    forest = ServiceOverlayForest(instance=line_instance)
    forest.add_chain(
        DeployedChain(walk=[0, 1, 2, 3], placements={1: 0, 2: 1})
    )
    # Walk edge (2,3) carries final-stage content; adding the same tree
    # edge must not double-charge.
    before = forest.connection_cost()
    forest.add_tree_edge(2, 3)
    assert forest.connection_cost() == pytest.approx(before)


def test_vnf_conflict_rejected_on_add(line_instance):
    forest = ServiceOverlayForest(instance=line_instance)
    forest.add_chain(DeployedChain(walk=[0, 1, 2], placements={1: 0, 2: 1}))
    with pytest.raises(ValueError):
        forest.add_chain(DeployedChain(walk=[0, 1, 2], placements={1: 1, 2: 0}))


def test_used_sources_and_trees(line_instance):
    forest = ServiceOverlayForest(instance=line_instance)
    forest.add_chain(DeployedChain(walk=[0, 1, 2], placements={1: 0, 2: 1}))
    assert forest.used_sources() == {0}
    assert forest.num_trees() == 1
    assert forest.used_vms() == {1, 2}


def test_copy_is_independent(line_instance):
    forest = ServiceOverlayForest(instance=line_instance)
    forest.add_chain(DeployedChain(walk=[0, 1, 2], placements={1: 0, 2: 1}))
    clone = forest.copy()
    clone.add_tree_edge(2, 3)
    assert not forest.tree_edges
    assert clone.instance is forest.instance


def test_prune_tree_edges_drops_useless(line_instance):
    forest = ServiceOverlayForest(instance=line_instance)
    forest.add_chain(DeployedChain(walk=[0, 1, 2], placements={1: 0, 2: 1}))
    forest.add_tree_edge(2, 3)
    forest.add_tree_edge(3, 4)
    forest.add_tree_edge(0, 1)  # useless: serves no destination
    forest.prune_tree_edges()
    assert (0, 1) not in forest.tree_edges
    assert len(forest.tree_edges) == 2


def test_prune_keeps_destination_on_walk_tail(line_instance):
    # Destination 4 lies directly on the chain's pass-through tail.
    forest = ServiceOverlayForest(instance=line_instance)
    forest.add_chain(
        DeployedChain(walk=[0, 1, 2, 3, 4], placements={1: 0, 2: 1})
    )
    forest.add_tree_edge(0, 1)
    forest.prune_tree_edges()
    assert forest.tree_edges == set()


def test_describe_mentions_cost(line_instance):
    forest = ServiceOverlayForest(instance=line_instance)
    forest.add_chain(DeployedChain(walk=[0, 1, 2], placements={1: 0, 2: 1}))
    text = forest.describe()
    assert "cost=" in text and "chain 0" in text


def test_paid_edges_respects_paid_from(line_instance):
    chain = DeployedChain(
        walk=[0, 1, 2, 3], placements={1: 0, 2: 1}, paid_from_edge=2
    )
    assert list(chain.paid_edges()) == [(2, 3)]
    assert len(list(chain.all_edges())) == 3
