"""Tests for Procedure-4 VNF conflict resolution with hand-built scenarios.

The fixture network is a path of VMs so walks can be crafted precisely:

    s1 - m1 - m2 - m3 - m4 - s2     (all VMs, two sources at the ends)

with extra switches hanging off for destinations.
"""

import pytest

from repro import DeployedChain, Graph, ServiceChain, ServiceOverlayForest, SOFInstance
from repro.core.conflict import ResolutionStats, resolve_and_add_chain
from repro.core.transform import ChainWalk
from repro.core.validation import check_forest


@pytest.fixture
def path_instance():
    g = Graph.from_edges([
        ("s1", "m1", 1.0), ("m1", "m2", 1.0), ("m2", "m3", 1.0),
        ("m3", "m4", 1.0), ("m4", "s2", 1.0),
        ("m2", "d1", 1.0), ("m3", "d2", 1.0),
    ])
    return SOFInstance(
        graph=g, vms={"m1", "m2", "m3", "m4"}, sources={"s1", "s2"},
        destinations={"d1", "d2"}, chain=ServiceChain.of_length(2),
        node_costs={"m1": 1.0, "m2": 1.0, "m3": 1.0, "m4": 1.0},
    )


def _walk(instance, nodes, stroll) -> ChainWalk:
    positions = [nodes.index(s) for s in stroll]
    connection = sum(
        instance.graph.cost(a, b) for a, b in zip(nodes, nodes[1:])
    )
    setup = sum(instance.setup_cost(m) for m in stroll[1:])
    return ChainWalk(
        walk=list(nodes), stroll=list(stroll), positions=positions,
        connection_cost=connection, setup_cost=setup,
    )


def test_clean_deployment(path_instance):
    forest = ServiceOverlayForest(instance=path_instance)
    stats = ResolutionStats()
    cw = _walk(path_instance, ["s1", "m1", "m2"], ["s1", "m1", "m2"])
    resolve_and_add_chain(forest, cw, stats)
    assert stats.clean == 1
    assert forest.enabled == {"m1": 0, "m2": 1}


def test_matching_functions_share_vms(path_instance):
    """Same VNF on the same VM is reuse, not a conflict."""
    forest = ServiceOverlayForest(instance=path_instance)
    stats = ResolutionStats()
    resolve_and_add_chain(
        forest, _walk(path_instance, ["s1", "m1", "m2"], ["s1", "m1", "m2"]), stats
    )
    resolve_and_add_chain(
        forest, _walk(path_instance, ["s2", "m4", "m3", "m2"],
                      ["s2", "m3", "m2"]), stats
    )
    # m2 runs f2 for both chains -- wait: second stroll is s2, m3(f1), m2(f2).
    assert forest.enabled["m2"] == 1
    assert stats.total_conflicted() == 0
    assert forest.setup_cost() == pytest.approx(3.0)  # m1, m2, m3 once each


def test_case1_attach_new_walk_to_resident(path_instance):
    """Case 1: the new walk wants an *earlier* function at the conflict VM.

    Resident: s1 -> m1 (f1) -> m2 (f2).
    Incoming: s2 -> m2 (f1!) -> m3 (f2): conflict at m2 with j=0 <= i=1.
    The incoming walk is re-rooted onto the resident chain through m2 and
    keeps its own suffix placements (none beyond f2 at m3... f2 is kept).
    """
    forest = ServiceOverlayForest(instance=path_instance)
    stats = ResolutionStats()
    resolve_and_add_chain(
        forest, _walk(path_instance, ["s1", "m1", "m2"], ["s1", "m1", "m2"]), stats
    )
    resolve_and_add_chain(
        forest,
        _walk(path_instance, ["s2", "m4", "m3", "m2", "m3"], ["s2", "m2", "m3"]),
        stats,
    )
    assert stats.case1 == 1
    check = dict(forest.enabled)
    assert check["m1"] == 0 and check["m2"] == 1
    # No VM runs two functions; the merged chain is complete.
    merged = forest.chains[1]
    assert [v for _, v in merged.vnf_positions()] == [0, 1]
    assert merged.source == "s1"  # re-rooted onto the resident chain


def test_case3_rewires_resident_onto_new_walk(path_instance):
    """Case 3: the new walk wants a *later* function at the conflict VM and
    shares no other conflict VM -- the resident is re-rooted instead.

    Resident: s2 -> m4 -> m3 (f1) -> back to m4 (f2).
    Incoming: s1 -> m1 (f1) -> m2 -> m3 (f2!): conflict at m3 (wants f2,
    has f1), no case-2 VM, so the resident re-roots onto the incoming
    prefix.
    """
    forest = ServiceOverlayForest(instance=path_instance)
    stats = ResolutionStats()
    resolve_and_add_chain(
        forest,
        _walk(path_instance, ["s2", "m4", "m3", "m4"], ["s2", "m3", "m4"]),
        stats,
    )
    resolve_and_add_chain(
        forest, _walk(path_instance, ["s1", "m1", "m2", "m3"], ["s1", "m1", "m3"]),
        stats,
    )
    assert stats.case3 >= 1
    assert forest.enabled["m3"] == 1  # now runs f2 (the incoming walk's wish)
    for chain in forest.chains:
        assert [v for _, v in chain.vnf_positions()] == [0, 1]
    # No new VM was enabled beyond the union of both walks' plans.
    assert set(forest.enabled) <= {"m1", "m2", "m3", "m4"}


def test_fully_opposed_walks_still_resolve():
    """Only two VMs, enabled in the opposite order by the resident chain.

    The incoming chain conflicts at *both* VMs; Procedure 4 resolves it
    (case 2 applies: the earlier conflict VM m2 runs f2 on the resident,
    whose index is >= the incoming walk's wanted f2 at m1), re-rooting the
    incoming chain onto the resident without enabling anything new."""
    g = Graph.from_edges([
        ("s1", "m1", 1.0), ("m1", "m2", 1.0), ("m2", "s2", 1.0),
        ("m1", "d1", 1.0), ("m2", "d2", 1.0),
    ])
    instance = SOFInstance(
        graph=g, vms={"m1", "m2"}, sources={"s1", "s2"},
        destinations={"d1", "d2"}, chain=ServiceChain.of_length(2),
        node_costs={"m1": 1.0, "m2": 1.0},
    )
    forest = ServiceOverlayForest(instance=instance)
    stats = ResolutionStats()
    resolve_and_add_chain(
        forest,
        ChainWalk(walk=["s1", "m1", "m2"], stroll=["s1", "m1", "m2"],
                  positions=[0, 1, 2], connection_cost=2.0, setup_cost=2.0),
        stats,
    )
    # Incoming from s2 wants f1@m2, f2@m1 -- wholly conflicting.
    resolve_and_add_chain(
        forest,
        ChainWalk(walk=["s2", "m2", "m1"], stroll=["s2", "m2", "m1"],
                  positions=[0, 1, 2], connection_cost=2.0, setup_cost=2.0),
        stats,
    )
    assert stats.total_conflicted() >= 1
    # Forest stays consistent: no VM re-enabled, both chains complete.
    assert forest.enabled == {"m1": 0, "m2": 1}
    for chain in forest.chains:
        assert [v for _, v in chain.vnf_positions()] == [0, 1]


def test_repair_uses_free_vms(path_instance):
    """With free VMs available, the repair path builds a fresh chain."""
    forest = ServiceOverlayForest(instance=path_instance)
    stats = ResolutionStats()
    resolve_and_add_chain(
        forest, _walk(path_instance, ["s1", "m1", "m2"], ["s1", "m1", "m2"]),
        stats,
    )
    from repro.core.conflict import _repair_chain

    candidate = _walk(
        path_instance, ["s2", "m4", "m3", "m2"], ["s2", "m4", "m2"]
    )
    _repair_chain(forest, candidate, stats)
    assert stats.repairs == 1
    # The repaired chain used only previously-unenabled VMs.
    for chain in forest.chains[1:]:
        for pos, vnf in chain.placements.items():
            assert chain.walk[pos] in {"m3", "m4"} or forest.enabled[
                chain.walk[pos]
            ] == vnf


def test_stats_accounting(path_instance):
    stats = ResolutionStats(clean=2, case1=1, repairs=1)
    assert stats.total_conflicted() == 2
    assert stats.as_dict()["clean"] == 2
