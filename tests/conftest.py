"""Shared fixtures: the paper's worked examples as concrete instances."""

from __future__ import annotations

import random

import pytest

from repro import Graph, ServiceChain, SOFInstance


@pytest.fixture
def fig2_instance() -> SOFInstance:
    """A Fig. 2(a)-style network (reconstruction; exact figure costs are
    not recoverable from the paper text).

    Nodes 0 and 1 are sources; 2-7 are VMs (setup cost 10 or 20); 8 and 9
    are destinations; 10 and 11 are switches.  The IP optimum on this
    reconstruction is 28.0 (verified by HiGHS), which tests rely on.
    """
    graph = Graph.from_edges([
        (1, 2, 1.0),
        (2, 4, 1.0),
        (4, 10, 1.0),
        (10, 6, 1.0),
        (6, 8, 1.0),
        (0, 3, 1.0),
        (3, 11, 1.0),
        (11, 5, 1.0),
        (5, 7, 1.0),
        (7, 9, 1.0),
        (2, 3, 1.0),
        (4, 5, 8.0),
        (6, 7, 2.0),
        (1, 4, 11.0),
        (4, 9, 20.0),
        (3, 4, 10.0),
    ])
    node_costs = {2: 10.0, 3: 10.0, 4: 10.0, 5: 20.0, 6: 20.0, 7: 10.0}
    return SOFInstance(
        graph=graph,
        vms={2, 3, 4, 5, 6, 7},
        sources={0, 1},
        destinations={8, 9},
        chain=ServiceChain(["f1", "f2"]),
        node_costs=node_costs,
    )


@pytest.fixture
def fig3_instance() -> SOFInstance:
    """The network of Fig. 3(a): one source, chain of five VNFs.

    Source 1; VMs 2-7 with setup costs; destinations 8 and 9.  SOFDA-SS
    should find a forest comparable to the paper's cost-45 example.
    """
    graph = Graph.from_edges([
        (1, 2, 1.0),
        (2, 4, 1.0),
        (2, 3, 1.0),
        (3, 5, 1.0),
        (5, 7, 1.0),
        (4, 6, 1.0),
        (6, 8, 1.0),
        (7, 9, 1.0),
        (4, 5, 11.0),
        (6, 7, 11.0),
        (1, 3, 11.0),
        (4, 7, 1.0),
    ])
    node_costs = {2: 1.0, 3: 2.0, 4: 2.0, 5: 4.0, 6: 23.0, 7: 31.0}
    return SOFInstance(
        graph=graph,
        vms={2, 3, 4, 5, 6, 7},
        sources={1},
        destinations={8, 9},
        chain=ServiceChain.of_length(5),
        node_costs=node_costs,
    )
