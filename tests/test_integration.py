"""End-to-end integration tests across packages.

These exercise the whole pipeline the way the benchmarks do -- topology ->
instance -> every algorithm -> validation -> cost comparison -- plus the
cross-package flows (dynamic ops on topology-sampled embeddings, online
loops, distributed equivalence) on small configurations.
"""

import pytest

from repro import ServiceChain, check_forest, sofda, sofda_ss
from repro.baselines import enemp_baseline, est_baseline, st_baseline
from repro.core.dynamic import destination_join, destination_leave, vnf_insertion
from repro.distributed import DistributedSOFDA
from repro.ilp import solve_sof_ilp
from repro.online import RequestGenerator, run_online_comparison
from repro.topology import cogent_network, softlayer_network


@pytest.fixture(scope="module")
def softlayer_instance():
    return softlayer_network(seed=1).make_instance(
        num_sources=6, num_destinations=4, num_vms=12,
        chain=ServiceChain.of_length(3), seed=11,
    )


def test_all_algorithms_feasible_and_ordered(softlayer_instance):
    instance = softlayer_instance
    results = {
        "SOFDA": sofda(instance).forest,
        "SOFDA-SS": sofda_ss(instance),
        "eNEMP": enemp_baseline(instance),
        "eST": est_baseline(instance),
        "ST": st_baseline(instance),
    }
    for forest in results.values():
        check_forest(instance, forest)
    opt = solve_sof_ilp(instance, time_limit=120).objective
    for name, forest in results.items():
        assert forest.total_cost() >= opt - 1e-6, name
    # SOFDA within its proven bound (3 * rho = 6 with KMB).
    assert results["SOFDA"].total_cost() <= 6 * opt + 1e-6
    # The multi-source algorithm never loses to its single-source variant.
    assert results["SOFDA"].total_cost() <= results["SOFDA-SS"].total_cost() + 1e-9


def test_cogent_pipeline_smoke():
    instance = cogent_network(seed=1).make_instance(
        num_sources=8, num_destinations=6, num_vms=15,
        chain=ServiceChain.of_length(3), seed=3,
    )
    result = sofda(instance)
    check_forest(instance, result.forest)
    st = st_baseline(instance)
    assert result.cost <= st.total_cost() + 1e-9


def test_dynamic_sequence_on_embedded_forest(softlayer_instance):
    instance = softlayer_instance
    forest = sofda(instance).forest
    # join -> insert VNF -> leave, validating at every step.
    outsider = next(
        n for n in sorted(instance.graph.nodes(), key=repr)
        if n not in instance.destinations and n not in instance.sources
        and n not in instance.vms
    )
    instance2, forest2 = destination_join(forest, outsider)
    instance3, forest3 = vnf_insertion(forest2, 1, "cache")
    instance4, forest4 = destination_leave(forest3, outsider)
    check_forest(instance4, forest4)
    assert len(instance4.chain) == 4
    assert outsider not in instance4.destinations


def test_online_sofda_wins(tmp_path):
    factory = lambda: softlayer_network(seed=3)  # noqa: E731
    requests = RequestGenerator(
        factory(), seed=11, destinations_range=(4, 6), sources_range=(2, 3)
    ).take(6)
    results = run_online_comparison(
        factory,
        {
            "SOFDA": lambda inst: sofda(inst).forest,
            "ST": st_baseline,
        },
        requests,
    )
    assert results["SOFDA"].total_cost <= results["ST"].total_cost + 1e-6


def test_distributed_equals_centralized_on_topology(softlayer_instance):
    distributed = DistributedSOFDA(softlayer_instance, num_domains=3, seed=2)
    result = distributed.run()
    central = sofda(softlayer_instance)
    assert result.cost == pytest.approx(central.cost)
    assert distributed.verify_abstraction(samples=25)


def test_setup_cost_multiplier_reduces_vm_usage():
    """Fig. 11(b)'s mechanism: pricier VMs -> SOFDA uses fewer of them."""
    network = softlayer_network(seed=1)
    base = dict(num_sources=8, num_destinations=6, num_vms=20,
                chain=ServiceChain.of_length(3))
    used_cheap, used_dear = [], []
    for seed in range(4):
        cheap = network.make_instance(
            seed=seed, setup_cost_multiplier=1.0, **base
        )
        dear = network.make_instance(
            seed=seed, setup_cost_multiplier=9.0, **base
        )
        used_cheap.append(len(sofda(cheap).forest.used_vms()))
        used_dear.append(len(sofda(dear).forest.used_vms()))
    assert sum(used_dear) <= sum(used_cheap)


def test_replicated_vms_allow_long_chains():
    """The paper's multi-VNF-per-host trick: replicate the VM node."""
    network = softlayer_network(seed=1)
    instance = network.make_instance(
        num_sources=3, num_destinations=3, num_vms=4,
        chain=ServiceChain.of_length(3), seed=2,
    )
    replicated = instance.replicate_vms(copies=2)
    long_chain = ServiceChain.of_length(6)
    from repro import SOFInstance

    big = SOFInstance(
        graph=replicated.graph, vms=replicated.vms,
        sources=replicated.sources, destinations=replicated.destinations,
        chain=long_chain, node_costs=replicated.node_costs,
    )
    result = sofda(big)
    check_forest(big, result.forest)
