"""Tests for the online congestion-rerouting wrapper (Section VII-B)."""

import pytest

from repro import check_forest, sofda
from repro.costmodel import LoadTracker
from repro.graph.graph import canonical_edge, edge_sort_key
from repro.online import (
    OnlineSimulator,
    RequestGenerator,
    congested_forest_links,
    reroute_forest_around_congestion,
)
from repro.topology import softlayer_network


@pytest.fixture
def embedded_with_tracker():
    network = softlayer_network(seed=3)
    simulator = OnlineSimulator(network)
    generator = RequestGenerator(
        network, seed=8, destinations_range=(4, 4), sources_range=(3, 3)
    )
    request = generator.next_request()
    instance = simulator.current_instance(request)
    forest = sofda(instance).forest
    simulator.commit(forest, request)
    return forest, simulator.tracker


def test_no_congestion_no_links(embedded_with_tracker):
    forest, tracker = embedded_with_tracker
    # One 5 Mbps request on 100 Mbps links congests nothing.
    assert congested_forest_links(forest, tracker) == []


def test_congested_links_detected(embedded_with_tracker):
    forest, tracker = embedded_with_tracker
    # Manually congest one used chain edge.
    edge = canonical_edge(*next(iter(forest.chains[0].all_edges())))
    tracker.add_link_load(*edge, 95.0)
    hot = congested_forest_links(forest, tracker)
    assert edge in hot


def test_reroute_produces_feasible_forest(embedded_with_tracker):
    forest, tracker = embedded_with_tracker
    edge = canonical_edge(*next(iter(forest.chains[0].all_edges())))
    tracker.add_link_load(*edge, 95.0)
    instance, rerouted, count = reroute_forest_around_congestion(
        forest, tracker
    )
    assert count == 1
    check_forest(instance, rerouted)
    # The congested link's updated cost is reflected in the new instance.
    assert instance.graph.cost(*edge) == pytest.approx(tracker.link_cost(*edge))


class _StubForest:
    """Just enough forest surface for ``congested_forest_links``."""

    def __init__(self, tree_edges):
        self.tree_edges = set(tree_edges)
        self.chains = []


def test_congested_links_sorted_by_canonical_key_mixed_types():
    """Regression: the result order must survive mixed node types.

    Sorting on ``repr`` ordered integer link ``(2, 10)`` before ``(2, 9)``
    (string order) and shuffled tuple-named VM links among plain ids; the
    canonical edge key keeps numeric order and never compares across
    types natively.
    """
    edges = [
        canonical_edge(2, 9),
        canonical_edge(2, 10),
        canonical_edge("dc", ("vm", 0, 1)),
        canonical_edge("dc", ("vm", 0, 0)),
    ]
    forest = _StubForest(edges)
    tracker = LoadTracker(link_capacity=100.0)
    for edge in edges:
        tracker.add_link_load(*edge, 95.0)
    hot = congested_forest_links(forest, tracker)
    assert set(hot) == set(edges)
    assert hot == sorted(edges, key=edge_sort_key)
    assert hot.index(canonical_edge(2, 9)) < hot.index(canonical_edge(2, 10))


def test_congested_links_threshold_boundary_matches_tracker():
    """A link at exactly 0.9 utilisation is congested in neither layer."""
    edge = canonical_edge("a", "b")
    forest = _StubForest([edge])
    tracker = LoadTracker(link_capacity=100.0)
    tracker.add_link_load(*edge, 90.0)  # exactly the default threshold
    assert list(tracker.congested_links()) == []
    assert congested_forest_links(forest, tracker) == []
    tracker.add_link_load(*edge, 1e-9)
    assert list(tracker.congested_links()) == [edge]
    assert congested_forest_links(forest, tracker) == [edge]


def test_reroute_respects_max_links(embedded_with_tracker):
    forest, tracker = embedded_with_tracker
    edges = list(forest.chains[0].all_edges())[:3]
    for a, b in edges:
        tracker.add_link_load(a, b, 96.0)
    _, _, count = reroute_forest_around_congestion(
        forest, tracker, max_links=1
    )
    assert count <= 1
