"""Tests for the online congestion-rerouting wrapper (Section VII-B)."""

import pytest

from repro import check_forest, sofda
from repro.costmodel import LoadTracker
from repro.graph.graph import canonical_edge
from repro.online import (
    OnlineSimulator,
    RequestGenerator,
    congested_forest_links,
    reroute_forest_around_congestion,
)
from repro.topology import softlayer_network


@pytest.fixture
def embedded_with_tracker():
    network = softlayer_network(seed=3)
    simulator = OnlineSimulator(network)
    generator = RequestGenerator(
        network, seed=8, destinations_range=(4, 4), sources_range=(3, 3)
    )
    request = generator.next_request()
    instance = simulator.current_instance(request)
    forest = sofda(instance).forest
    simulator.commit(forest, request)
    return forest, simulator.tracker


def test_no_congestion_no_links(embedded_with_tracker):
    forest, tracker = embedded_with_tracker
    # One 5 Mbps request on 100 Mbps links congests nothing.
    assert congested_forest_links(forest, tracker) == []


def test_congested_links_detected(embedded_with_tracker):
    forest, tracker = embedded_with_tracker
    # Manually congest one used chain edge.
    edge = canonical_edge(*next(iter(forest.chains[0].all_edges())))
    tracker.add_link_load(*edge, 95.0)
    hot = congested_forest_links(forest, tracker)
    assert edge in hot


def test_reroute_produces_feasible_forest(embedded_with_tracker):
    forest, tracker = embedded_with_tracker
    edge = canonical_edge(*next(iter(forest.chains[0].all_edges())))
    tracker.add_link_load(*edge, 95.0)
    instance, rerouted, count = reroute_forest_around_congestion(
        forest, tracker
    )
    assert count == 1
    check_forest(instance, rerouted)
    # The congested link's updated cost is reflected in the new instance.
    assert instance.graph.cost(*edge) == pytest.approx(tracker.link_cost(*edge))


def test_reroute_respects_max_links(embedded_with_tracker):
    forest, tracker = embedded_with_tracker
    edges = list(forest.chains[0].all_edges())[:3]
    for a, b in edges:
        tracker.add_link_load(a, b, 96.0)
    _, _, count = reroute_forest_around_congestion(
        forest, tracker, max_links=1
    )
    assert count <= 1
