"""Tests for the IP formulation and the HiGHS solver bridge."""

import itertools

import pytest

from helpers import random_instance
from repro import Graph, ServiceChain, SOFInstance, check_forest
from repro.ilp import build_model, sof_lp_bound, solve_sof_ilp


@pytest.fixture
def tiny():
    # 0 (source) - 1 (vm) - 2 (vm) - 3 (dest), one extra expensive bypass.
    graph = Graph.from_edges([
        (0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 50.0),
    ])
    return SOFInstance(
        graph=graph, vms={1, 2}, sources={0}, destinations={3},
        chain=ServiceChain.of_length(2), node_costs={1: 2.0, 2: 3.0},
    )


def test_model_dimensions(tiny):
    model = build_model(tiny)
    L = 2
    arcs = 2 * tiny.graph.num_edges()
    assert len(model.sigma_index) == L * len(tiny.vms)
    assert len(model.tau_index) == (L + 1) * arcs  # stages f_S, f1, f2
    assert len(model.pi_index) == len(tiny.destinations) * (L + 1) * arcs
    assert model.num_variables == model.objective.shape[0]
    assert model.matrix.shape == (model.num_constraints, model.num_variables)


def test_tiny_optimum_known(tiny):
    # Unique sensible embedding: 0 -> 1 (f1) -> 2 (f2) -> 3.
    solution = solve_sof_ilp(tiny)
    assert solution.optimal
    assert solution.objective == pytest.approx(1 + 1 + 1 + 2 + 3)
    check_forest(tiny, solution.forest)
    assert solution.forest.total_cost() == pytest.approx(solution.objective)


def test_function_order_is_enforced():
    # VM costs force f1 on the *far* VM if order were free; the IP must
    # respect the chain order instead.
    graph = Graph.from_edges([
        (0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0),
    ])
    instance = SOFInstance(
        graph=graph, vms={1, 2}, sources={0}, destinations={3},
        chain=ServiceChain.of_length(2), node_costs={1: 0.0, 2: 0.0},
    )
    solution = solve_sof_ilp(instance)
    chain = solution.forest.chains[0]
    assert chain.vm_of_vnf(0) == 1
    assert chain.vm_of_vnf(1) == 2


def test_one_vnf_per_vm():
    # A single chain of length 2 but only two VMs: both must be used.
    graph = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
    instance = SOFInstance(
        graph=graph, vms={1, 2}, sources={0}, destinations={3},
        chain=ServiceChain.of_length(2),
    )
    solution = solve_sof_ilp(instance)
    vms = {solution.forest.chains[0].vm_of_vnf(i) for i in range(2)}
    assert vms == {1, 2}


def test_multicast_sharing_cheaper_than_two_unicasts():
    # Two destinations behind a long shared trunk: the IP pays the trunk
    # once (tau), confirming the multicast accounting.
    graph = Graph.from_edges([
        (0, 1, 1.0), (1, 2, 1.0), (2, 3, 10.0), (3, 4, 1.0), (3, 5, 1.0),
    ])
    instance = SOFInstance(
        graph=graph, vms={1, 2}, sources={0}, destinations={4, 5},
        chain=ServiceChain.of_length(2),
    )
    solution = solve_sof_ilp(instance)
    # Trunk (2,3) costs 10 and appears once.
    assert solution.objective == pytest.approx(1 + 1 + 10 + 1 + 1)


def test_decoded_forest_cost_matches_objective():
    for seed in range(6):
        instance = random_instance(seed + 7, n=12, num_vms=4,
                                   num_sources=2, num_dests=2, chain_len=2)
        solution = solve_sof_ilp(instance)
        check_forest(instance, solution.forest)
        assert solution.forest.total_cost() == pytest.approx(
            solution.objective, rel=1e-6
        )


def test_lp_bound_below_ip():
    for seed in range(4):
        instance = random_instance(seed + 30, n=12, num_vms=4,
                                   num_sources=2, num_dests=3, chain_len=2)
        lp = sof_lp_bound(instance)
        ip = solve_sof_ilp(instance, decode=False).objective
        assert lp <= ip + 1e-6


def test_brute_force_cross_check():
    """Exhaustively enumerate single-destination embeddings on a tiny graph
    and confirm the IP matches the cheapest."""
    graph = Graph.from_edges([
        (0, 1, 2.0), (0, 2, 3.0), (1, 2, 1.0), (1, 3, 4.0), (2, 3, 2.0),
    ])
    instance = SOFInstance(
        graph=graph, vms={1, 2}, sources={0}, destinations={3},
        chain=ServiceChain.of_length(1), node_costs={1: 5.0, 2: 0.5},
    )
    from repro.graph import DistanceOracle

    oracle = DistanceOracle(graph)
    best = min(
        oracle.distance(0, vm) + instance.setup_cost(vm) + oracle.distance(vm, 3)
        for vm in instance.vms
    )
    solution = solve_sof_ilp(instance)
    assert solution.objective == pytest.approx(best)


def test_time_limit_accepted(tiny):
    solution = solve_sof_ilp(tiny, time_limit=30.0)
    assert solution.objective == pytest.approx(8.0)
