"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_solve_small(capsys):
    assert main([
        "solve", "--topology", "softlayer", "--sources", "3",
        "--destinations", "3", "--vms", "8", "--chain", "2", "--seed", "4",
    ]) == 0
    out = capsys.readouterr().out
    for name in ("SOFDA", "eNEMP", "eST", "ST"):
        assert name in out
    assert "cost=" in out


def test_solve_with_ilp_and_verbose(capsys):
    assert main([
        "solve", "--sources", "2", "--destinations", "2", "--vms", "6",
        "--chain", "2", "--ilp", "--verbose",
    ]) == 0
    out = capsys.readouterr().out
    assert "CPLEX" in out
    assert "chain 0" in out


def test_fig7(capsys):
    assert main(["fig7", "--samples", "7"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 7
    assert lines[0].split()[0] == "0.0000"


def test_fig12(capsys):
    assert main(["fig12", "--requests", "2"]) == 0
    out = capsys.readouterr().out
    assert "SOFDA" in out and "ST" in out


def test_table2(capsys):
    assert main(["table2", "--trials", "2"]) == 0
    out = capsys.readouterr().out
    assert "startup(s)" in out and "SOFDA" in out


def test_table1_tiny(capsys):
    assert main(["table1", "--nodes", "200", "--sources", "2"]) == 0
    out = capsys.readouterr().out
    assert "|S|=  2" in out
