"""Kernel-tier equivalence: parallel rows and vectorized label arrays.

The raw-speed kernel tier (``FrozenOracle(parallel_rows=N)`` /
``FrozenOracle(vectorized=True)``) must be *bit-identical* to the serial
list-backed reference under every workload the oracle supports: cold row
builds, cost patches (planned, shared-region and per-row), topology
patches, prefetch batches and the batched query entry points.  These
tests replay identical randomized streams into kernel-tier and reference
oracles over copies of the same graph and compare full row state after
every patch -- the same contract (and the same idiom) as
``test_patch_planner.py``, with row labels normalised across the
``array``-vs-``list`` storage difference.

The single-boundary offset solve (summation-stable shared regions) and
the no-fork serial fallback are audited explicitly.
"""

import multiprocessing
import random
import warnings
from array import array

import pytest

from repro.graph import FrozenOracle, Graph
from repro.graph import indexed, kernel

INF = float("inf")


def random_graph(rng, num_nodes=36, edge_probability=0.15):
    graph = Graph()
    for i in range(num_nodes):
        graph.add_node(i)
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            if rng.random() < edge_probability:
                graph.add_edge(i, j, rng.uniform(0.1, 5.0))
    return graph


def _patch_stream(rng, graph, rounds, direction, working=5, queries=10):
    """One randomized op stream (built once, replayed into both oracles)."""
    nodes = list(graph.nodes())
    cost_now = {(u, v): cost for u, v, cost in graph.edges()}
    edges = list(cost_now)
    hot_rows = rng.sample(nodes, working)
    ops = []
    for _ in range(rounds):
        for _ in range(queries):
            ops.append(("distance", rng.choice(nodes), rng.choice(nodes)))
        for node in hot_rows:
            ops.append(("distance", node, rng.choice(nodes)))
        if rng.random() < 0.3:
            ops.append(("full", rng.choice(nodes)))
        if rng.random() < 0.5:
            ops.append(("prefetch", rng.sample(nodes, rng.randint(2, 8))))
        changed = {}
        for key in rng.sample(edges, rng.randint(1, 6)):
            if direction == "up":
                factor = rng.uniform(1.05, 2.5)
            else:
                factor = rng.uniform(0.3, 2.5)
            cost_now[key] = cost_now[key] * factor
            changed[key] = cost_now[key]
        ops.append(("patch", changed))
    return ops


def _topology_stream(rng, graph, rounds):
    """Cost patches interleaved with link failures and recoveries."""
    nodes = list(graph.nodes())
    cost_now = {(u, v): cost for u, v, cost in graph.edges()}
    failed = []
    ops = []
    for _ in range(rounds):
        for _ in range(8):
            ops.append(("distance", rng.choice(nodes), rng.choice(nodes)))
        live = [e for e in cost_now if e not in failed]
        if failed and rng.random() < 0.5:
            edge = failed.pop(rng.randrange(len(failed)))
            ops.append(("insert", edge, cost_now[edge]))
        elif len(live) > 4:
            edge = live[rng.randrange(len(live))]
            failed.append(edge)
            ops.append(("remove", edge))
        changed = {}
        for key in rng.sample(live, min(3, len(live))):
            if key in failed:
                continue
            cost_now[key] = cost_now[key] * rng.uniform(1.05, 2.0)
            changed[key] = cost_now[key]
        if changed:
            ops.append(("patch", changed))
    return ops


def _row_states(oracle):
    """Full observable repair state, normalised across buffer storage."""
    return {
        sid: (
            list(row.dist),
            list(row.parent),
            None if row.settled is None else bytes(row.settled),
            row.full,
            row.stale,
            row.cutoff,
        )
        for sid, row in oracle._rows.items()
    }


def _replay(oracle, ops):
    """Apply one op stream; returns the row-state snapshot per patch."""
    snapshots = []
    for op in ops:
        if op[0] == "distance":
            oracle.distance(op[1], op[2])
        elif op[0] == "full":
            oracle.distances_from(op[1])
        elif op[0] == "prefetch":
            oracle.prefetch_rows(op[1])
        elif op[0] == "remove":
            oracle.patch_topology(removed=[op[1]])
            snapshots.append(_row_states(oracle))
        elif op[0] == "insert":
            oracle.patch_topology(inserted={op[1]: op[2]})
            snapshots.append(_row_states(oracle))
        else:
            oracle.patch_edge_costs(op[1])
            snapshots.append(_row_states(oracle))
    return snapshots


def _final_check(rng, kernel_oracle, reference, graph, hot):
    """Both oracles end exact against a cold rebuild, and agree."""
    fresh = FrozenOracle(kernel_oracle.graph.copy(), hot=hot)
    for source in rng.sample(list(graph.nodes()), 6):
        expected = fresh.distances_from(source)
        assert kernel_oracle.distances_from(source) == expected
        assert reference.distances_from(source) == expected


# ----------------------------------------------------------------------
# vectorized label arrays
# ----------------------------------------------------------------------

@pytest.mark.parametrize("patchable", [False, True])
@pytest.mark.parametrize("direction", ["up", "mixed"])
def test_vectorized_matches_list_rows(direction, patchable):
    """Randomized streams: bit-identical row state after every patch."""
    for trial in range(3):
        rng = random.Random(4100 * trial + (direction == "up") + 2 * patchable)
        graph = random_graph(rng)
        hot = rng.sample(list(graph.nodes()), 5)
        ops = _patch_stream(rng, graph, rounds=8, direction=direction)
        vectorized = FrozenOracle(
            graph.copy(), hot=hot, patchable=patchable, vectorized=True
        )
        reference = FrozenOracle(graph.copy(), hot=hot, patchable=patchable)
        assert _replay(vectorized, ops) == _replay(reference, ops)
        # Same cache-evolution decisions: the root-choice heuristics read
        # the query counters, so these must match exactly too.
        assert vectorized._queries == reference._queries
        _final_check(rng, vectorized, reference, graph, hot)


@pytest.mark.parametrize("direction", ["up", "mixed"])
def test_vectorized_matches_with_shared_regions(direction, monkeypatch):
    """Forced region sharing: the vectorized seed/reset/settle scans and
    the single-boundary offset solve leave state identical to the
    list-backed shared path and the per-row reference."""
    monkeypatch.setattr(indexed, "PLANNER_SHARE_MIN_ROWS", 1)
    monkeypatch.setattr(indexed, "PLANNER_SHARE_DENSITY", 0.0)
    for trial in range(3):
        rng = random.Random(5200 * trial + (direction == "up"))
        graph = random_graph(rng)
        hot = rng.sample(list(graph.nodes()), 5)
        ops = _patch_stream(rng, graph, rounds=8, direction=direction)
        vec = FrozenOracle(
            graph.copy(), hot=hot, vectorized=True, share_regions=True
        )
        plain = FrozenOracle(graph.copy(), hot=hot, share_regions=True)
        legacy = FrozenOracle(graph.copy(), hot=hot, planner=False)
        vec_snaps = _replay(vec, ops)
        assert vec_snaps == _replay(plain, ops)
        assert vec_snaps == _replay(legacy, ops)
        _final_check(rng, vec, plain, graph, hot)


def test_offset_solve_single_boundary_pod(monkeypatch):
    """A bridge-detached pod region repairs through the offset solve.

    Star-of-trees behind a single uplink (the ``test_patch_planner``
    amortisation topology): every row rooted outside the pod detaches
    the same single-boundary region when the uplink cost grows, so the
    vectorized oracle must route those repairs through
    ``_SharedRegion.apply_offset`` and still match the list-backed
    reference bit for bit.
    """
    monkeypatch.setattr(indexed, "PLANNER_SHARE_MIN_ROWS", 1)
    monkeypatch.setattr(indexed, "PLANNER_SHARE_DENSITY", 0.0)
    applied = []
    orig = indexed._SharedRegion.apply_offset

    def counting(self, *args, **kwargs):
        result = orig(self, *args, **kwargs)
        applied.append(result)
        return result

    monkeypatch.setattr(indexed._SharedRegion, "apply_offset", counting)
    edges = [
        ("hub", "s0", 1.0), ("hub", "s1", 1.2), ("hub", "s2", 1.4),
        ("hub", "p0", 1.0), ("p0", "p1", 1.1), ("p1", "p2", 1.2),
        ("p0", "q0", 0.5), ("p1", "q1", 0.5), ("p2", "q2", 0.5),
    ]
    rows = ("hub", "s0", "s1", "s2", "p0", "p1", "q2")
    vec = FrozenOracle(Graph.from_edges(edges), vectorized=True)
    plain = FrozenOracle(Graph.from_edges(edges))
    for oracle in (vec, plain):
        for node in rows:
            oracle.distances_from(node)
        oracle.patch_edge_costs({("hub", "p0"): 3.0})
    assert applied and any(applied), "offset solve never engaged"
    assert _row_states(vec) == _row_states(plain)
    fresh = FrozenOracle(vec.graph.copy())
    for node in rows:
        assert vec.distances_from(node) == fresh.distances_from(node)


def test_offset_solve_unreachable_region():
    """Offset path handles a region whose lone boundary seed is dead.

    After the uplink fails entirely the pod is unreachable from outside
    rows; a later cost patch inside the pod must keep outside rows at
    ``inf`` through the offset path's reset-only branch.
    """
    edges = [
        ("hub", "s0", 1.0),
        ("hub", "p0", 1.0), ("p0", "p1", 1.1), ("p0", "q0", 0.5),
    ]
    vec = FrozenOracle(Graph.from_edges(edges), vectorized=True)
    plain = FrozenOracle(Graph.from_edges(edges))
    for oracle in (vec, plain):
        for node in ("hub", "s0", "p0"):
            oracle.distances_from(node)
        oracle.patch_topology(removed=[("hub", "p0")])
        oracle.patch_edge_costs({("p0", "p1"): 4.0})
        assert oracle.distance("hub", "p1") == INF
    assert _row_states(vec) == _row_states(plain)


def test_vectorized_rows_store_arrays():
    """Vectorized oracles actually cache buffer-backed rows (and the
    reference keeps lists), so the equivalence above covers the intended
    storage tier rather than two list-backed paths."""
    rng = random.Random(7)
    graph = random_graph(rng)
    vec = FrozenOracle(graph.copy(), vectorized=True)
    plain = FrozenOracle(graph.copy())
    vec.distances_from(0)
    plain.distances_from(0)
    vrow = next(iter(vec._rows.values()))
    prow = next(iter(plain._rows.values()))
    assert isinstance(vrow.dist, array) and vrow.dist.typecode == "d"
    assert isinstance(vrow.parent, array) and vrow.parent.typecode == "q"
    assert isinstance(prow.dist, list) and isinstance(prow.parent, list)
    # Scalar reads stay plain Python numbers on both tiers.
    assert type(vrow.dist[0]) is float and type(vrow.parent[0]) is int


# ----------------------------------------------------------------------
# batched query entry points
# ----------------------------------------------------------------------

@pytest.mark.parametrize("vectorized", [False, True])
def test_distances_to_matches_scalar(vectorized):
    """``distances_to`` returns scalar-loop values AND scalar-loop side
    effects (query counters, cached row set) in every cache state."""
    for trial in range(3):
        rng = random.Random(610 + trial)
        graph = random_graph(rng)
        nodes = list(graph.nodes())
        hot = rng.sample(nodes, 5)
        batched = FrozenOracle(graph.copy(), hot=hot, vectorized=vectorized)
        scalar = FrozenOracle(graph.copy(), hot=hot, vectorized=vectorized)
        for _ in range(30):
            source = rng.choice(nodes)
            targets = rng.sample(nodes, rng.randint(1, 10))
            if rng.random() < 0.3:
                targets.append(("ghost", rng.randint(0, 5)))  # not in graph
                rng.shuffle(targets)
            got = batched.distances_to(source, targets)
            want = [scalar.distance(source, t) for t in targets]
            assert got == want
            if rng.random() < 0.3:
                node = rng.choice(nodes)
                batched.prefetch_rows([node])
                scalar.warm([node])
        assert batched._queries == scalar._queries
        assert _row_states(batched) == _row_states(scalar)


def test_detour_distances_matches_scalar():
    """``detour_distances`` either answers with scalar values + scalar
    side effects, or returns ``None`` leaving the oracle untouched."""
    for trial in range(3):
        rng = random.Random(910 + trial)
        graph = random_graph(rng)
        nodes = list(graph.nodes())
        batched = FrozenOracle(graph.copy(), vectorized=True)
        scalar = FrozenOracle(graph.copy(), vectorized=True)
        answered = 0
        for round_index in range(30):
            a, b = rng.sample(nodes, 2)
            targets = rng.sample(nodes, rng.randint(1, 8))
            if rng.random() < 0.2:
                targets.append(("ghost", rng.randint(0, 5)))
                rng.shuffle(targets)
            before_queries = dict(batched._queries)
            before_rows = _row_states(batched)
            got = batched.detour_distances(a, b, targets)
            if got is None:
                # Refusal must be side-effect free.
                assert batched._queries == before_queries
                assert _row_states(batched) == before_rows
                for m in targets:  # keep both caches in lockstep
                    batched.distance(a, m)
                    batched.distance(b, m)
            else:
                answered += 1
                da, db = got
                assert da == [scalar.distance(a, m) for m in targets]
                assert db == [scalar.distance(b, m) for m in targets]
                continue  # scalar side already queried below
            for m in targets:
                scalar.distance(a, m)
                scalar.distance(b, m)
            if rng.random() < 0.4:
                pair = rng.sample(nodes, 2)
                batched.prefetch_rows(pair)
                scalar.prefetch_rows(pair)
            assert batched._queries == scalar._queries
        # Warm both endpoint rows explicitly: the fast path must engage.
        a, b = rng.sample(nodes, 2)
        batched.prefetch_rows([a, b])
        scalar.prefetch_rows([a, b])
        got = batched.detour_distances(a, b, nodes)
        assert got is not None
        da, db = got
        assert da == [scalar.distance(a, m) for m in nodes]
        assert db == [scalar.distance(b, m) for m in nodes]
        assert batched._queries == scalar._queries


# ----------------------------------------------------------------------
# parallel rows
# ----------------------------------------------------------------------

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="platform has no fork start method",
)


@needs_fork
@pytest.mark.parametrize("contracted", [False, True])
def test_parallel_prefetch_matches_serial(contracted, monkeypatch):
    """Fork-pool cold-row builds are bit-identical to serial builds."""
    monkeypatch.setattr(indexed, "PARALLEL_MIN_BATCH", 2)
    if contracted:
        monkeypatch.setattr(indexed, "CONTRACT_MIN_INTERIOR", 1)
    for trial in range(2):
        rng = random.Random(7300 + trial)
        graph = random_graph(rng)
        nodes = list(graph.nodes())
        hot = rng.sample(nodes, 6)
        parallel = FrozenOracle(
            graph.copy(), hot=hot, parallel_rows=2, vectorized=True
        )
        serial = FrozenOracle(graph.copy(), hot=hot, vectorized=True)
        if contracted:
            assert parallel.contracted is not None
        for _ in range(6):
            batch = rng.sample(nodes, rng.randint(2, 9))
            parallel.prefetch_rows(batch)
            serial.prefetch_rows(batch)
            assert _row_states(parallel) == _row_states(serial)
        for _ in range(20):
            u, v = rng.choice(nodes), rng.choice(nodes)
            assert parallel.distance(u, v) == serial.distance(u, v)
        assert _row_states(parallel) == _row_states(serial)


@needs_fork
@pytest.mark.parametrize("direction", ["up", "mixed"])
def test_parallel_patch_repairs_match_serial(direction, monkeypatch):
    """Fork-pool patch repairs are bit-identical after every patch."""
    monkeypatch.setattr(indexed, "PARALLEL_MIN_BATCH", 2)
    monkeypatch.setattr(indexed, "PARALLEL_MIN_REPAIRS", 2)
    for trial in range(2):
        rng = random.Random(8400 * (trial + 1) + (direction == "up"))
        graph = random_graph(rng)
        hot = rng.sample(list(graph.nodes()), 5)
        ops = _patch_stream(rng, graph, rounds=6, direction=direction)
        parallel = FrozenOracle(
            graph.copy(), hot=hot, patchable=True,
            parallel_rows=2, vectorized=True,
        )
        serial = FrozenOracle(graph.copy(), hot=hot, patchable=True)
        assert _replay(parallel, ops) == _replay(serial, ops)
        assert parallel._queries == serial._queries
        _final_check(rng, parallel, serial, graph, hot)


@needs_fork
def test_parallel_shared_regions_match_serial(monkeypatch):
    """Parallel repairs compose with forced region sharing + offsets."""
    monkeypatch.setattr(indexed, "PLANNER_SHARE_MIN_ROWS", 1)
    monkeypatch.setattr(indexed, "PLANNER_SHARE_DENSITY", 0.0)
    monkeypatch.setattr(indexed, "PARALLEL_MIN_REPAIRS", 2)
    for trial in range(2):
        rng = random.Random(9500 + trial)
        graph = random_graph(rng)
        hot = rng.sample(list(graph.nodes()), 5)
        ops = _patch_stream(rng, graph, rounds=6, direction="up")
        parallel = FrozenOracle(
            graph.copy(), hot=hot, parallel_rows=2, vectorized=True,
            share_regions=True,
        )
        serial = FrozenOracle(graph.copy(), hot=hot, planner=False)
        assert _replay(parallel, ops) == _replay(serial, ops)


@needs_fork
def test_parallel_topology_patches_match_serial(monkeypatch):
    """Link failure/recovery streams stay bit-identical under the
    kernel tier (tombstone removes, decrease-from-infinity inserts)."""
    monkeypatch.setattr(indexed, "PARALLEL_MIN_BATCH", 2)
    monkeypatch.setattr(indexed, "PARALLEL_MIN_REPAIRS", 2)
    for trial in range(2):
        rng = random.Random(1600 + trial)
        graph = random_graph(rng)
        hot = rng.sample(list(graph.nodes()), 5)
        ops = _topology_stream(rng, graph, rounds=8)
        parallel = FrozenOracle(
            graph.copy(), hot=hot, patchable=True,
            parallel_rows=2, vectorized=True,
        )
        serial = FrozenOracle(graph.copy(), hot=hot, patchable=True)
        assert _replay(parallel, ops) == _replay(serial, ops)


def test_no_fork_fallback_warns_once_and_matches(monkeypatch):
    """Without fork the kernel tier runs serially -- identical results,
    one ``RuntimeWarning`` naming the call site, never a crash."""
    monkeypatch.setattr(indexed, "PARALLEL_MIN_BATCH", 2)
    monkeypatch.setattr(
        multiprocessing, "get_all_start_methods", lambda: ["spawn"]
    )
    monkeypatch.setattr(kernel, "_warned_no_fork", False)
    rng = random.Random(42)
    graph = random_graph(rng)
    nodes = list(graph.nodes())
    hot = rng.sample(nodes, 5)
    parallel = FrozenOracle(
        graph.copy(), hot=hot, parallel_rows=4, vectorized=True
    )
    serial = FrozenOracle(graph.copy(), hot=hot, vectorized=True)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        parallel.prefetch_rows(nodes[:10])
        parallel.prefetch_rows(nodes[10:20])
    serial.prefetch_rows(nodes[:10])
    serial.prefetch_rows(nodes[10:20])
    runtime = [w for w in caught if issubclass(w.category, RuntimeWarning)]
    assert len(runtime) == 1  # once per process, not once per call
    assert "fork" in str(runtime[0].message)
    assert _row_states(parallel) == _row_states(serial)


# ----------------------------------------------------------------------
# cross-layer: simulator churn and clones
# ----------------------------------------------------------------------

def test_rebased_clone_preserves_kernel_flags():
    rng = random.Random(3)
    graph = random_graph(rng)
    oracle = FrozenOracle(graph, vectorized=True, parallel_rows=3)
    oracle.distances_from(0)
    clone = oracle.rebased(graph.copy(), {})
    assert clone.vectorized and clone.parallel_rows == 3
    assert _row_states(clone) == _row_states(oracle)
    # Copied rows keep the buffer storage tier (type-preserving copies).
    row = next(iter(clone._rows.values()))
    assert isinstance(row.dist, array) and isinstance(row.parent, array)


def test_simulator_kernel_flags_bit_identical_churn():
    """An online churn run under the kernel tier embeds every request at
    the exact serial cost with the exact acceptance decisions."""
    from repro.core.sofda import sofda
    from repro.online import RequestGenerator, run_online_comparison
    from repro.topology import softlayer_network

    network = softlayer_network(seed=3)
    requests = RequestGenerator(
        network, seed=5, destinations_range=(3, 4), sources_range=(2, 2),
        chain_length=2,
    ).take(4)
    embedders = {"SOFDA": lambda inst: sofda(inst).forest}
    plain = run_online_comparison(
        lambda: network, embedders, requests, vms_per_datacenter=2
    )
    kerneled = run_online_comparison(
        lambda: network, embedders, requests, vms_per_datacenter=2,
        parallel_rows=2, vectorized=True,
    )
    assert plain["SOFDA"].per_request_cost == kerneled["SOFDA"].per_request_cost
    assert plain["SOFDA"].rejected == kerneled["SOFDA"].rejected
