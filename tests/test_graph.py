"""Unit tests for the Graph type."""

import pytest

from repro.graph import Graph
from repro.graph.graph import canonical_edge, edge_sort_key, node_sort_key


def test_add_and_query_edges():
    g = Graph.from_edges([(1, 2, 3.0), (2, 3, 1.5)])
    assert g.has_edge(1, 2) and g.has_edge(2, 1)
    assert g.cost(2, 3) == 1.5
    assert g.cost(3, 2) == 1.5
    assert len(g) == 3
    assert g.num_edges() == 2


def test_add_edge_overwrites_cost():
    g = Graph.from_edges([(1, 2, 3.0)])
    g.add_edge(1, 2, 7.0)
    assert g.cost(1, 2) == 7.0
    assert g.num_edges() == 1


def test_self_loop_rejected():
    g = Graph()
    with pytest.raises(ValueError):
        g.add_edge(1, 1, 2.0)


def test_negative_cost_rejected():
    g = Graph()
    with pytest.raises(ValueError):
        g.add_edge(1, 2, -0.5)


def test_isolated_node():
    g = Graph()
    g.add_node("lonely")
    assert "lonely" in g
    assert g.degree("lonely") == 0
    assert list(g.edges()) == []


def test_remove_edge_and_node():
    g = Graph.from_edges([(1, 2, 1.0), (2, 3, 1.0), (1, 3, 1.0)])
    g.remove_edge(1, 2)
    assert not g.has_edge(1, 2)
    g.remove_node(3)
    assert 3 not in g
    assert g.num_edges() == 0
    assert len(g) == 2


def test_remove_missing_edge_raises():
    g = Graph.from_edges([(1, 2, 1.0)])
    with pytest.raises(KeyError):
        g.remove_edge(1, 3)


def test_copy_is_deep():
    g = Graph.from_edges([(1, 2, 1.0)])
    h = g.copy()
    h.add_edge(2, 3, 5.0)
    assert not g.has_edge(2, 3)
    assert h.has_edge(2, 3)


def test_neighbors_and_degree():
    g = Graph.from_edges([(1, 2, 1.0), (1, 3, 2.0)])
    assert set(g.neighbors(1)) == {2, 3}
    assert g.degree(1) == 2
    assert dict(g.neighbor_items(1)) == {2: 1.0, 3: 2.0}


def test_edges_iterates_each_once():
    g = Graph.from_edges([(1, 2, 1.0), (2, 3, 2.0), (1, 3, 3.0)])
    seen = {canonical_edge(u, v) for u, v, _ in g.edges()}
    assert len(seen) == 3


def test_subgraph_induced():
    g = Graph.from_edges([(1, 2, 1.0), (2, 3, 2.0), (1, 3, 3.0), (3, 4, 1.0)])
    sub = g.subgraph({1, 2, 3})
    assert len(sub) == 3
    assert sub.num_edges() == 3
    assert not sub.has_edge(3, 4)


def test_subgraph_missing_node_raises():
    g = Graph.from_edges([(1, 2, 1.0)])
    with pytest.raises(KeyError):
        g.subgraph({1, 99})


def test_connected_components():
    g = Graph.from_edges([(1, 2, 1.0), (3, 4, 1.0)])
    g.add_node(5)
    comps = sorted(g.connected_components(), key=lambda c: sorted(map(repr, c)))
    assert len(comps) == 3
    assert not g.is_connected()
    g.add_edge(2, 3, 1.0)
    g.add_edge(4, 5, 1.0)
    assert g.is_connected()


def test_empty_graph_is_connected():
    assert Graph().is_connected()


def test_total_edge_cost():
    g = Graph.from_edges([(1, 2, 1.5), (2, 3, 2.5)])
    assert g.total_edge_cost() == 4.0


def test_canonical_edge_mixed_types():
    assert canonical_edge(2, 1) == (1, 2)
    a = canonical_edge("x", ("vm", 1))
    b = canonical_edge(("vm", 1), "x")
    assert a == b


def test_node_sort_key_numeric_order():
    # repr-sorting puts 10 before 9; the canonical key keeps numeric order.
    assert sorted([10, 9, 2], key=node_sort_key) == [2, 9, 10]
    assert sorted([1.5, 0.25, 10.0], key=node_sort_key) == [0.25, 1.5, 10.0]
    # Ints and floats share one numeric group: order stays numeric even
    # when the types are mixed.
    assert sorted([2.5, 1, 3], key=node_sort_key) == [1, 2.5, 3]


def test_node_sort_key_mixed_types_total_order():
    nodes = [("vm", 10, 0), ("vm", 9, 0), "switch", 7, 10, ("vm", 2)]
    ordered = sorted(nodes, key=node_sort_key)
    # Sorting never raises across types, is deterministic, and numeric
    # components inside tuples keep numeric order too.
    assert ordered == sorted(ordered, key=node_sort_key)
    assert ordered.index(7) < ordered.index(10)
    assert ordered.index(("vm", 9, 0)) < ordered.index(("vm", 10, 0))


def test_edge_sort_key_numeric_order():
    edges = [(2, 10), (2, 9), ("s", ("vm", 0, 1))]
    ordered = sorted(edges, key=edge_sort_key)
    assert ordered.index((2, 9)) < ordered.index((2, 10))
