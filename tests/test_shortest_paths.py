"""Dijkstra / oracle tests, cross-checked against networkx."""

import random

import networkx as nx
import pytest

from helpers import random_connected_graph
from repro.graph import DistanceOracle, Graph, dijkstra, shortest_path, walk_cost


def to_networkx(g: Graph) -> nx.Graph:
    h = nx.Graph()
    for u, v, c in g.edges():
        h.add_edge(u, v, weight=c)
    for n in g.nodes():
        h.add_node(n)
    return h


def test_dijkstra_simple_line():
    g = Graph.from_edges([(1, 2, 1.0), (2, 3, 2.0)])
    dist, parent = dijkstra(g, 1)
    assert dist == {1: 0.0, 2: 1.0, 3: 3.0}
    assert parent[3] == 2


def test_dijkstra_prefers_cheaper_detour():
    g = Graph.from_edges([(1, 2, 10.0), (1, 3, 1.0), (3, 2, 1.0)])
    dist, _ = dijkstra(g, 1)
    assert dist[2] == 2.0


def test_dijkstra_unknown_source_raises():
    with pytest.raises(KeyError):
        dijkstra(Graph(), "nope")


def test_dijkstra_early_exit_targets():
    g = Graph.from_edges([(i, i + 1, 1.0) for i in range(50)])
    dist, _ = dijkstra(g, 0, targets={5})
    assert dist[5] == 5.0
    # Early exit must not have settled the far end.
    assert 50 not in dist or dist[50] >= 5.0


def test_shortest_path_reconstruction():
    g = Graph.from_edges([(1, 2, 1.0), (2, 3, 1.0), (1, 3, 5.0)])
    path, cost = shortest_path(g, 1, 3)
    assert path == [1, 2, 3]
    assert cost == 2.0


def test_shortest_path_unreachable_raises():
    g = Graph.from_edges([(1, 2, 1.0)])
    g.add_node(3)
    with pytest.raises(ValueError):
        shortest_path(g, 1, 3)


def test_walk_cost_counts_repeats():
    g = Graph.from_edges([(1, 2, 3.0), (2, 3, 1.0)])
    assert walk_cost(g, [1, 2, 1, 2, 3]) == 3.0 * 3 + 1.0


@pytest.mark.parametrize("seed", range(8))
def test_dijkstra_matches_networkx(seed):
    rng = random.Random(seed)
    g = random_connected_graph(rng, 30, extra_edges=25)
    h = to_networkx(g)
    dist, _ = dijkstra(g, 0)
    nx_dist = nx.single_source_dijkstra_path_length(h, 0)
    assert set(dist) == set(nx_dist)
    for node, d in dist.items():
        assert d == pytest.approx(nx_dist[node])


def test_oracle_caches_and_matches_direct():
    rng = random.Random(5)
    g = random_connected_graph(rng, 25, extra_edges=15)
    oracle = DistanceOracle(g)
    for s, t in [(0, 10), (0, 24), (3, 7)]:
        path, cost = shortest_path(g, s, t)
        assert oracle.distance(s, t) == pytest.approx(cost)
        opath = oracle.path(s, t)
        assert opath[0] == s and opath[-1] == t
        assert walk_cost(g, opath) == pytest.approx(cost)


def test_oracle_reverse_direction_served_from_cache():
    g = Graph.from_edges([(1, 2, 2.0), (2, 3, 4.0)])
    oracle = DistanceOracle(g)
    assert oracle.distance(1, 3) == 6.0
    # Reverse query must be answered (symmetric) without error.
    assert oracle.distance(3, 1) == 6.0


def test_oracle_unreachable_is_inf():
    g = Graph.from_edges([(1, 2, 1.0)])
    g.add_node(9)
    oracle = DistanceOracle(g)
    assert oracle.distance(1, 9) == float("inf")
    with pytest.raises(ValueError):
        oracle.path(1, 9)


def test_oracle_invalidate():
    g = Graph.from_edges([(1, 2, 5.0)])
    oracle = DistanceOracle(g)
    assert oracle.distance(1, 2) == 5.0
    g.add_edge(1, 2, 1.0)
    oracle.invalidate()
    assert oracle.distance(1, 2) == 1.0
