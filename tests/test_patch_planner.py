"""Planner-vs-per-row equivalence for the patch repair engine.

The cross-row patch planner (``FrozenOracle(planner=True)``, the default)
must be *bit-identical* to the historical per-row rescan repair kept
behind ``planner=False``: same surviving row set, same distances, same
parent trees, same settle flags and demotions, same stale marks -- after
every patch of a stream, not just at the end.  These tests replay
identical randomized query+patch streams into a planner oracle and a
per-row oracle over copies of the same graph and compare full row state
after each patch.

The same contract extends to dense-patch region sharing
(``share_regions=True``, the default): with the sharing thresholds
forced to zero, every planned patch repairs through shared
:class:`_SharedRegion` groups, and the resulting row state must still be
bit-identical to both the unshared planned path and the per-row
reference.

The settle-cutoff demotion boundary is audited here too: a repaired
label landing *exactly* on ``row.cutoff`` is provably exact and must
stay settled, while one strictly above may route through never-settled
territory and must be demoted (the test includes a case where serving
the unsettled label would be wrong).
"""

import random

import pytest

from repro.core.problem import ServiceChain
from repro.graph import FrozenOracle, Graph
from repro.graph import indexed
from repro.topology import inet_network

INF = float("inf")


def random_graph(rng, num_nodes=36, edge_probability=0.15):
    graph = Graph()
    for i in range(num_nodes):
        graph.add_node(i)
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            if rng.random() < edge_probability:
                graph.add_edge(i, j, rng.uniform(0.1, 5.0))
    return graph


def _patch_stream(rng, graph, rounds, direction, working=5, queries=10):
    """One randomized op stream (built once, replayed into both oracles).

    Patches are drawn against a simulated running cost state, so an "up"
    stream stays a strict per-edge increase even when the same edge is
    drawn twice -- the planned repair path only engages on pure-increase
    batches.
    """
    nodes = list(graph.nodes())
    cost_now = {(u, v): cost for u, v, cost in graph.edges()}
    edges = list(cost_now)
    hot_rows = rng.sample(nodes, working)
    ops = []
    for _ in range(rounds):
        for _ in range(queries):
            ops.append(("distance", rng.choice(nodes), rng.choice(nodes)))
        # A persistent working set: rows that survive many patches in a
        # row exercise repeated in-place repair (and index maintenance).
        for node in hot_rows:
            ops.append(("distance", node, rng.choice(nodes)))
        if rng.random() < 0.3:
            ops.append(("full", rng.choice(nodes)))
        changed = {}
        for key in rng.sample(edges, rng.randint(1, 6)):
            if direction == "up":
                factor = rng.uniform(1.05, 2.5)
            else:
                factor = rng.uniform(0.3, 2.5)
            cost_now[key] = cost_now[key] * factor
            changed[key] = cost_now[key]
        ops.append(("patch", changed))
    return ops


def _row_states(oracle):
    """Full observable repair state of every cached row."""
    return {
        sid: (
            row.dist,
            row.parent,
            None if row.settled is None else bytes(row.settled),
            row.full,
            row.stale,
            row.cutoff,
        )
        for sid, row in oracle._rows.items()
    }


def _replay(oracle, ops):
    """Apply one op stream; returns the row-state snapshot per patch."""
    snapshots = []
    for op in ops:
        if op[0] == "distance":
            oracle.distance(op[1], op[2])
        elif op[0] == "full":
            oracle.distances_from(op[1])
        else:
            oracle.patch_edge_costs(op[1])
            snapshots.append(_row_states(oracle))
    return snapshots


@pytest.mark.parametrize("patchable", [False, True])
@pytest.mark.parametrize("direction", ["up", "mixed"])
def test_planner_matches_per_row_repair(direction, patchable):
    """Randomized patch streams: bit-identical row state after every patch.

    ``up`` streams run the planned repair path on every patch; ``mixed``
    streams interleave it with the decrease fallback.  ``patchable=True``
    is the online simulator's configuration (exhaustive rows, no
    demotions); ``patchable=False`` exercises early-stopped rows with
    settle-cutoff demotions and stale-row recomputes.
    """
    for trial in range(4):
        rng = random.Random(100 * trial + (direction == "up") + 2 * patchable)
        graph = random_graph(rng)
        hot = rng.sample(list(graph.nodes()), 5)
        ops = _patch_stream(rng, graph, rounds=8, direction=direction)
        planned = FrozenOracle(
            graph.copy(), hot=hot, patchable=patchable, planner=True
        )
        legacy = FrozenOracle(
            graph.copy(), hot=hot, patchable=patchable, planner=False
        )
        assert _replay(planned, ops) == _replay(legacy, ops)
        # Both end exact: spot-check against a cold oracle per final cost.
        fresh = FrozenOracle(planned.graph.copy(), hot=hot)
        for source in rng.sample(list(graph.nodes()), 6):
            expected = fresh.distances_from(source)
            assert planned.distances_from(source) == expected
            assert legacy.distances_from(source) == expected


@pytest.mark.parametrize("patchable", [False, True])
@pytest.mark.parametrize("direction", ["up", "mixed"])
def test_shared_matches_unshared_and_per_row(direction, patchable, monkeypatch):
    """Forced region sharing: bit-identical across all three repair modes.

    With the sharing thresholds forced to zero every detached root of a
    pure-increase patch goes through a shared-region group, so the
    randomized streams exercise region verification, variant founding,
    union repairs (rows with several detached roots) and the walk
    fallback for rows whose regions fragment -- all of which must leave
    row state identical to the unshared planned path and the per-row
    reference after every patch.
    """
    monkeypatch.setattr(indexed, "PLANNER_SHARE_MIN_ROWS", 1)
    monkeypatch.setattr(indexed, "PLANNER_SHARE_DENSITY", 0.0)
    for trial in range(4):
        rng = random.Random(300 * trial + (direction == "up") + 2 * patchable)
        graph = random_graph(rng)
        hot = rng.sample(list(graph.nodes()), 5)
        ops = _patch_stream(rng, graph, rounds=8, direction=direction)
        shared = FrozenOracle(
            graph.copy(), hot=hot, patchable=patchable,
            planner=True, share_regions=True,
        )
        unshared = FrozenOracle(
            graph.copy(), hot=hot, patchable=patchable,
            planner=True, share_regions=False,
        )
        legacy = FrozenOracle(
            graph.copy(), hot=hot, patchable=patchable, planner=False
        )
        shared_snaps = _replay(shared, ops)
        assert shared_snaps == _replay(unshared, ops)
        assert shared_snaps == _replay(legacy, ops)
        fresh = FrozenOracle(shared.graph.copy(), hot=hot)
        for source in rng.sample(list(graph.nodes()), 6):
            expected = fresh.distances_from(source)
            assert shared.distances_from(source) == expected


def test_shared_matches_with_tree_index(monkeypatch):
    """Region sharing composes with the inverted tree-edge index."""
    monkeypatch.setattr(indexed, "PLANNER_INDEX_MIN_ROWS", 1)
    monkeypatch.setattr(indexed, "PLANNER_INDEX_BUILD_STREAK", 0)
    monkeypatch.setattr(indexed, "PLANNER_SHARE_MIN_ROWS", 1)
    monkeypatch.setattr(indexed, "PLANNER_SHARE_DENSITY", 0.0)
    for trial in range(4):
        rng = random.Random(8800 + trial)
        graph = random_graph(rng)
        hot = rng.sample(list(graph.nodes()), 5)
        ops = _patch_stream(rng, graph, rounds=10, direction="up")
        shared = FrozenOracle(graph.copy(), hot=hot, share_regions=True)
        unshared = FrozenOracle(graph.copy(), hot=hot, share_regions=False)
        assert _replay(shared, ops) == _replay(unshared, ops)


def test_shared_regions_amortize_region_builds(monkeypatch):
    """One dense patch builds each detached region once, not once per row.

    A pod topology: every row rooted outside the pod detaches the same
    region when the pod's uplink cost grows, and the pod's own rows all
    detach the complement.  The patch must therefore build at most two
    shared regions (one per signature group) while repairing every row,
    and the repaired distances must match a cold oracle.
    """
    monkeypatch.setattr(indexed, "PLANNER_SHARE_MIN_ROWS", 1)
    monkeypatch.setattr(indexed, "PLANNER_SHARE_DENSITY", 0.0)
    builds = []
    real_region = indexed._SharedRegion

    class CountingRegion(real_region):
        def __init__(self, *args, **kwargs):
            builds.append(1)
            super().__init__(*args, **kwargs)

    monkeypatch.setattr(indexed, "_SharedRegion", CountingRegion)
    # Star-of-trees: "hub" with three leaf spokes and a pod (chain of 3
    # with a leaf each) behind the single uplink hub-p0.  Trees have
    # unique shortest-path forests, so region signatures cannot
    # fragment across rows.
    graph = Graph.from_edges([
        ("hub", "s0", 1.0), ("hub", "s1", 1.2), ("hub", "s2", 1.4),
        ("hub", "p0", 1.0), ("p0", "p1", 1.1), ("p1", "p2", 1.2),
        ("p0", "q0", 0.5), ("p1", "q1", 0.5), ("p2", "q2", 0.5),
    ])
    oracle = FrozenOracle(graph, planner=True, share_regions=True)
    for node in ("hub", "s0", "s1", "s2", "p0", "p1", "q2"):
        oracle.distances_from(node)
    oracle.patch_edge_costs({("hub", "p0"): 3.0})
    # 4 outside rows share the pod region, 3 pod rows share the
    # complement: two groups, two builds, seven repairs.
    assert len(builds) == 2
    fresh = FrozenOracle(graph.copy())
    for node in ("hub", "s0", "s1", "s2", "p0", "p1", "q2"):
        assert oracle.distances_from(node) == fresh.distances_from(node)


def test_planner_matches_per_row_with_tree_index(monkeypatch):
    """Equivalence holds with the inverted tree-edge index forced on."""
    monkeypatch.setattr(indexed, "PLANNER_INDEX_MIN_ROWS", 1)
    monkeypatch.setattr(indexed, "PLANNER_INDEX_BUILD_STREAK", 0)
    for trial in range(4):
        rng = random.Random(7000 + trial)
        graph = random_graph(rng)
        hot = rng.sample(list(graph.nodes()), 5)
        ops = _patch_stream(rng, graph, rounds=10, direction="up")
        planned = FrozenOracle(graph.copy(), hot=hot, planner=True)
        legacy = FrozenOracle(graph.copy(), hot=hot, planner=False)
        assert _replay(planned, ops) == _replay(legacy, ops)


def test_tree_index_engages_and_adapts(monkeypatch):
    """The inverted index builds on sparse patches and drops on dense ones."""
    monkeypatch.setattr(indexed, "PLANNER_INDEX_MIN_ROWS", 1)
    monkeypatch.setattr(indexed, "PLANNER_INDEX_BUILD_STREAK", 0)
    graph = Graph.from_edges([
        ("a", "b", 1.0), ("b", "c", 1.0), ("c", "d", 1.0), ("a", "d", 5.0),
        ("x", "y", 1.0),
    ])
    oracle = FrozenOracle(graph, planner=True)
    # Three full rows: a, b and x (x's component is isolated, so a patch
    # of x-y is a tree edge in only one of the three).
    assert oracle.distances_from("a")["c"] == 2.0
    assert oracle.distances_from("b")["d"] == 2.0
    assert oracle.distances_from("x")["y"] == 1.0
    oracle.patch_edge_costs({("x", "y"): 2.0})
    # Sparse patch (1 of 3 rows repaired): the index builds and survives.
    assert oracle._tree_index is not None
    assert oracle.distance("x", "y") == 2.0
    assert oracle.distances_from("a")["c"] == 2.0  # untouched row, exact
    oracle.distances_from("b")
    oracle.patch_edge_costs({("b", "c"): 1.5})
    # Dense patch (b-c is a tree edge of both surviving component rows):
    # repairs are exact and the adaptive policy drops the index.
    assert oracle._tree_index is None
    assert oracle.distance("a", "c") == 2.5
    assert oracle.distance("a", "d") == 3.5
    assert oracle.distance("b", "d") == 2.5


@pytest.mark.parametrize("planner", [True, False])
def test_settle_cutoff_boundary_exact_landing(planner):
    """A repaired label exactly *on* the cutoff stays settled; one above
    is demoted -- and the demotion is load-bearing, not conservative.

    After the patch, x's repaired distance is exactly ``row.cutoff`` and
    provably exact (any path through never-settled territory costs at
    least the cutoff), so it must keep serving without a recompute.  h's
    repaired label (3.0) is only an upper bound: the true distance routes
    through the never-settled node y (2.6), so serving the label without
    demotion would be *wrong*, not merely stale.
    """
    graph = Graph.from_edges([
        ("s", "x", 1.0), ("x", "h", 1.0), ("s", "y", 2.5), ("y", "h", 0.1),
    ])
    oracle = FrozenOracle(graph, hot={"s", "h"}, planner=planner)
    assert oracle.distance("s", "h") == 2.0  # early-stops once h settles
    core = oracle.core
    sid, xid, hid = core.index["s"], core.index["x"], core.index["h"]
    row = oracle._rows[sid]
    assert not row.full  # the search stopped before exhausting y

    oracle.patch_edge_costs({("s", "x"): 2.0})
    assert row.cutoff == 2.0  # the original settle frontier (h's label)
    assert row.dist[xid] == row.cutoff  # repaired to exactly the boundary
    assert row.settled[xid] == 1  # on-the-cutoff stays settled
    assert row.settled[hid] == 0  # strictly above: demoted
    # x serves from the surviving row, no recompute.
    assert oracle.distance("s", "x") == 2.0
    assert oracle._rows[sid] is row
    # h recomputes as a cold miss and finds the y-route the repaired
    # label could not see.
    assert oracle.distance("s", "h") == pytest.approx(2.6, rel=0, abs=1e-12)
    fresh = FrozenOracle(graph.copy(), hot={"s", "h"})
    assert oracle.distance("s", "h") == fresh.distance("s", "h")


# ----------------------------------------------------------------------
# contracted mode
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def contracted_instance():
    network = inet_network(
        num_nodes=400, num_links=800, num_datacenters=120, seed=5
    )
    return network.make_instance(
        num_sources=4, num_destinations=5, num_vms=10,
        chain=ServiceChain.of_length(3), seed=21,
    )


def test_planner_matches_per_row_contracted(contracted_instance, monkeypatch):
    monkeypatch.setattr(indexed, "PLANNER_SHARE_MIN_ROWS", 1)
    monkeypatch.setattr(indexed, "PLANNER_SHARE_DENSITY", 0.0)
    instance = contracted_instance
    hot = instance.vms | instance.sources | instance.destinations
    special = sorted(hot, key=repr)
    oracles = []
    for planner, share in ((True, True), (True, False), (False, False)):
        oracle = FrozenOracle(
            instance.graph.copy(), hot=hot, planner=planner,
            share_regions=share,
        )
        assert oracle.contracted is not None
        oracle.warm(special)
        oracles.append(oracle)
    shared, planned, legacy = oracles
    rng = random.Random(13)
    cost_now = {(u, v): c for u, v, c in planned.graph.edges()}
    edges = list(cost_now)
    for _ in range(4):
        changed = {}
        for key in rng.sample(edges, 10):
            cost_now[key] = cost_now[key] * rng.uniform(1.05, 2.5)
            changed[key] = cost_now[key]
        shared.patch_edge_costs(dict(changed))
        planned.patch_edge_costs(dict(changed))
        legacy.patch_edge_costs(dict(changed))
        assert _row_states(planned) == _row_states(legacy)
        assert _row_states(shared) == _row_states(planned)
        for source in special[:4]:
            expected = legacy.distances_from(source)
            assert planned.distances_from(source) == expected
            assert shared.distances_from(source) == expected


# ----------------------------------------------------------------------
# tenant churn: planner/share modes across decrease-carrying batches
# ----------------------------------------------------------------------
def _churn_costs(planner, share_regions, seed=23, requests=9):
    """One randomized arrive/depart stream through the online simulator.

    Lease releases make the next sync a decrease-carrying batch -- the
    case the planner routes to the per-row reference -- while arrival
    commits stay pure increases on the planned path, so one stream
    exercises the mode switch both ways.  The stream is a pure function
    of the seeds: every configuration replays the identical workload.
    """
    from repro import sofda
    from repro.online import OnlineSimulator, RequestGenerator
    from repro.topology import softlayer_network

    network = softlayer_network(seed=3)
    simulator = OnlineSimulator(network, incremental=True, planner=planner,
                                share_regions=share_regions)
    generator = RequestGenerator(network, seed=5, destinations_range=(3, 4),
                                 sources_range=(2, 2))
    rng = random.Random(seed)
    active, costs = [], []
    for _ in range(requests):
        request = generator.next_request()
        instance = simulator.current_instance(request)
        forest = sofda(instance).forest
        costs.append(forest.total_cost())
        active.append(simulator.commit(forest, request))
        while active and rng.random() < 0.45:
            simulator.release(active.pop(rng.randrange(len(active))))
    return costs


def test_churn_planner_modes_bit_identical(monkeypatch):
    """Arrive/depart streams must not depend on planner/share modes."""
    # Force region sharing to engage on the shared run even at this
    # small scale, so all three repair paths really differ.
    monkeypatch.setattr(indexed, "PLANNER_SHARE_MIN_ROWS", 1)
    monkeypatch.setattr(indexed, "PLANNER_SHARE_DENSITY", 0.0)
    shared = _churn_costs(planner=True, share_regions=True)
    planned = _churn_costs(planner=True, share_regions=False)
    per_row = _churn_costs(planner=False, share_regions=False)
    assert planned == per_row
    assert shared == planned
