"""Tests for the budgeted RowCache layer and its oracle integration.

Contract under test: ``row_budget_bytes=None`` is bit-identical to the
historical unbounded dict; a budget only ever changes *residency* --
every evicted row recomputes on demand to identical labels, so a
budgeted oracle (and a budgeted online simulator) serves exactly the
same distances, forest costs and acceptance decisions as the unbounded
reference, while its accounted bytes never exceed the budget between
patches.
"""

import random

import pytest

from repro import sofda
from repro.graph import FrozenOracle, Graph, RowCache
from repro.graph.rowcache import ROW_OVERHEAD_BYTES, row_nbytes
from repro.graph.shortest_paths import DistanceOracle
from repro.online import OnlineSimulator, RequestGenerator
from repro.topology import softlayer_network
from repro.workload import (
    BackgroundChurn,
    ExponentialHolding,
    LinkFailureProcess,
    PoissonArrivals,
    WorkloadEngine,
    build_schedule,
)

SOFDA = lambda inst: sofda(inst).forest  # noqa: E731


class _FakeRow:
    """Minimal stand-in carrying the _Row attributes RowCache reads."""

    def __init__(self, n, settled=True, full=True, used=False,
                 settled_count=None):
        self.dist = [0.0] * n
        self.parent = [-1] * n
        if settled:
            mask = bytearray(n)
            for i in range(settled_count if settled_count is not None else n):
                mask[i] = 1
            self.settled = mask
        else:
            self.settled = None
        self.full = full
        self.used = used
        self.stale = False
        self.cutoff = 0.0


# ----------------------------------------------------------------------
# byte accounting
# ----------------------------------------------------------------------
def test_row_nbytes_model():
    assert row_nbytes(10) == 16 * 10 + 10 + ROW_OVERHEAD_BYTES
    assert row_nbytes(10, settled=False) == 16 * 10 + ROW_OVERHEAD_BYTES


def test_accounting_tracks_mutations_exactly():
    cache = RowCache()
    cache[1] = _FakeRow(10)
    cache[2] = _FakeRow(10, settled=False)
    assert cache.total_bytes == row_nbytes(10) + row_nbytes(10, settled=False)
    assert cache.peak_bytes == cache.total_bytes
    # Replacing a row swaps its bytes, not adds them.
    cache[1] = _FakeRow(10, settled=False)
    assert cache.total_bytes == 2 * row_nbytes(10, settled=False)
    peak = cache.peak_bytes
    del cache[1]
    assert cache.total_bytes == row_nbytes(10, settled=False)
    assert cache.pop(2).settled is None
    assert cache.total_bytes == 0
    assert cache.pop(2, None) is None
    with pytest.raises(KeyError):
        cache.pop(2)
    assert cache.peak_bytes == peak  # peak is a lifetime high-water mark


def test_clear_resets_residency_not_history():
    cache = RowCache()
    cache[1] = _FakeRow(5)
    cache.evict(1, "idle")
    cache[2] = _FakeRow(5)
    cache.clear()
    assert cache.total_bytes == 0 and len(cache) == 0
    assert cache.evictions == 1 and cache.idle_evictions == 1


def test_get_counts_hits_and_misses():
    cache = RowCache()
    cache[1] = _FakeRow(5)
    assert cache.get(1) is not None
    assert cache.get(9) is None
    assert cache.get(9, "fallback") == "fallback"
    assert cache.hits == 1 and cache.misses == 2
    # Recency ticks only accrue under a budget.
    assert not cache._served
    budgeted = RowCache(budget_bytes=10 ** 6)
    budgeted[1] = _FakeRow(5)
    budgeted.get(1)
    assert budgeted._served[1] == 1


def test_budget_must_be_positive():
    with pytest.raises(ValueError):
        RowCache(budget_bytes=0)
    with pytest.raises(ValueError):
        RowCache(budget_bytes=-5)


# ----------------------------------------------------------------------
# eviction policy
# ----------------------------------------------------------------------
def test_evict_reasons_and_callback():
    cache = RowCache()
    dropped = []
    cache.on_evict = lambda sid, row: dropped.append(sid)
    for sid in (1, 2, 3):
        cache[sid] = _FakeRow(5)
    cache.evict(1, "idle")
    cache.evict(2, "repair")
    cache.evict(3, "budget")
    assert dropped == [1, 2, 3]
    assert cache.evictions == 3
    assert (cache.idle_evictions, cache.repair_evictions,
            cache.budget_evictions) == (1, 1, 1)
    assert cache.total_bytes == 0


def test_enforce_prefers_unused_then_cheap_then_lru():
    n = 100
    cache = RowCache(budget_bytes=row_nbytes(n))
    # Three rows, one slot: the unused row must go first...
    cache[1] = _FakeRow(n, used=True)
    cache[2] = _FakeRow(n, used=False)
    cache[3] = _FakeRow(n, used=True)
    assert sorted(cache) == [1, 2, 3]
    cache.enforce()
    assert 2 not in cache and cache.total_bytes <= cache.budget_bytes
    # ... then, among used rows, the cheapest recompute per byte
    # (early-stopped rows re-settle only their frontier)...
    cache.clear()
    cache[1] = _FakeRow(n, used=True, settled_count=5)   # cheap rebuild
    cache[3] = _FakeRow(n, used=True, full=False, settled_count=5)
    cache[3].full = False
    cache[1].full = False
    cache[4] = _FakeRow(n, used=True)                    # full: costly
    cache[4].full = True
    cache.enforce()
    assert 4 in cache
    # ... and least-recently-served breaks exact ties.
    cache.clear()
    cache[5] = _FakeRow(n, used=True)
    cache[6] = _FakeRow(n, used=True)
    cache.get(5)  # 6 is now the least recently served
    cache.enforce()
    assert 5 in cache and 6 not in cache


def test_enforce_respects_protection_and_counts_overshoot():
    n = 50
    cache = RowCache(budget_bytes=row_nbytes(n))
    cache[1] = _FakeRow(n)
    cache[2] = _FakeRow(n)
    assert cache.enforce(protect=(1, 2)) == 0
    assert cache.overshoots == 1 and len(cache) == 2
    assert cache.enforce() == 1
    assert cache.total_bytes <= cache.budget_bytes
    assert cache.overshoots == 1


def test_retention_order_reverses_eviction_order():
    n = 30
    cache = RowCache(budget_bytes=10 ** 9)
    cache[1] = _FakeRow(n, used=False)
    cache[2] = _FakeRow(n, used=True)
    cache[3] = _FakeRow(n, used=True)
    cache.get(3)
    order = cache.retention_order()
    assert order == [3, 2, 1]  # recently served first, unused last
    assert order == sorted(cache, key=cache._evict_key, reverse=True)


def test_would_fit():
    n = 20
    cache = RowCache(budget_bytes=2 * row_nbytes(n))
    row = _FakeRow(n)
    assert cache.would_fit(row)
    cache[1] = _FakeRow(n)
    cache[2] = _FakeRow(n)
    assert not cache.would_fit(row)
    assert RowCache().would_fit(row)  # unbounded always fits


def test_stats_shape():
    cache = RowCache(budget_bytes=12345)
    stats = cache.stats()
    for key in ("rows", "budget_bytes", "total_bytes", "peak_bytes",
                "hits", "misses", "evictions", "idle_evictions",
                "budget_evictions", "repair_evictions", "overshoots"):
        assert key in stats
    assert stats["budget_bytes"] == 12345


# ----------------------------------------------------------------------
# oracle integration: budgeted == unbounded, bytes bounded
# ----------------------------------------------------------------------
def _random_graph(rng, num_nodes=40, edge_probability=0.15):
    graph = Graph()
    for i in range(num_nodes):
        graph.add_node(i)
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            if rng.random() < edge_probability:
                graph.add_edge(i, j, rng.uniform(0.1, 5.0))
    return graph


def _per_row_bytes(graph):
    """Accounted bytes of one cached row of ``graph`` (probe oracle)."""
    probe = FrozenOracle(graph, patchable=True)
    probe.distances_from(0)
    stats = probe.cache_stats()
    assert stats["rows"] >= 1
    return stats["total_bytes"] // stats["rows"]


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_budgeted_oracle_matches_unbounded_across_patches(seed):
    rng = random.Random(seed)
    graph = _random_graph(rng)
    nodes = sorted(graph.nodes())
    budget = 4 * _per_row_bytes(graph)
    reference = FrozenOracle(graph.copy(), patchable=True)
    budgeted = FrozenOracle(graph, patchable=True, row_budget_bytes=budget)
    assert budgeted.row_budget_bytes == budget

    for _ in range(6):
        # Query more source rows than the budget holds, forcing
        # evictions; every row (including recomputes of evicted rows)
        # must be bit-identical to the unbounded oracle's.  Cross-row
        # ``distance(u, v)`` is deliberately not compared here: the
        # undirected-symmetry contract lets residency pick the serving
        # direction, and opposite directions may differ in the last ulp
        # on either oracle.
        for s in rng.sample(nodes, 8):
            assert budgeted.distances_from(s) == reference.distances_from(s)
        stats = budgeted.cache_stats()
        assert stats["total_bytes"] <= budget
        # Randomized edge-cost churn, both directions.
        changed = {}
        for u, v, cost in rng.sample(list(graph.edges()), 5):
            changed[(u, v)] = cost * rng.uniform(0.3, 2.5)
        budgeted.patch_edge_costs(changed)
        reference.patch_edge_costs(changed)
        assert budgeted.cache_stats()["total_bytes"] <= budget

    stats = budgeted.cache_stats()
    assert stats["budget_evictions"] > 0
    assert stats["overshoots"] == 0
    # Evicted rows recompute to identical full rows: cross-check a
    # fresh dict oracle over the final costs.
    fresh = DistanceOracle(graph)
    for s in nodes[:6]:
        row = budgeted.distances_from(s)
        expect = fresh.distances_from(s)
        assert all(
            row.get(t, float("inf")) == expect.get(t, float("inf"))
            for t in nodes
        )


def test_unbounded_default_is_plain_dict_behavior():
    rng = random.Random(3)
    graph = _random_graph(rng)
    oracle = FrozenOracle(graph, patchable=True)
    assert oracle.row_budget_bytes is None
    for s in range(10):
        oracle.distances_from(s)
    stats = oracle.cache_stats()
    assert stats["budget_evictions"] == 0 and stats["overshoots"] == 0
    assert stats["rows"] == len(oracle._rows)
    assert "tree_index_bytes" in stats


def test_rebased_clone_inherits_and_respects_budget():
    rng = random.Random(4)
    graph = _random_graph(rng)
    budget = 3 * _per_row_bytes(graph)
    oracle = FrozenOracle(graph, patchable=True, row_budget_bytes=budget)
    for s in range(8):
        oracle.distances_from(s)
    changed = {}
    for u, v, cost in rng.sample(list(graph.edges()), 4):
        changed[(u, v)] = cost * 1.7
    clone = oracle.rebased(graph.copy(), changed)
    assert clone.row_budget_bytes == budget
    assert clone.cache_stats()["total_bytes"] <= budget
    # The clone answers over the patched costs, same as a fresh oracle.
    patched = graph.copy()
    for (u, v), cost in changed.items():
        patched.add_edge(u, v, cost)
    fresh = DistanceOracle(patched)
    for s in range(8):
        row = clone.distances_from(s)
        expect = fresh.distances_from(s)
        assert all(
            row.get(t, float("inf")) == expect.get(t, float("inf"))
            for t in sorted(graph.nodes())
        )


def test_rebased_unbounded_still_copies_every_row():
    rng = random.Random(5)
    graph = _random_graph(rng)
    oracle = FrozenOracle(graph, patchable=True)
    for s in range(6):
        oracle.distances_from(s)
    before = len(oracle._rows)
    clone = oracle.rebased(graph.copy(), {})
    assert len(clone._rows) == before


# ----------------------------------------------------------------------
# simulator integration: budgeted churn/failure streams are equivalent
# ----------------------------------------------------------------------
def _simulator_budget(network, rows):
    """A budget of ``rows`` rows of the simulator's (VM-attached) graph."""
    sim = OnlineSimulator(network, vms_per_datacenter=2)
    sim.apply_background_load((), 0.0)  # warm the VM-pool rows
    stats = sim.cache_stats()
    return rows * (stats["total_bytes"] // stats["rows"])


def _churn_schedule(network, seed, failures=False):
    generator = RequestGenerator(network, seed=seed,
                                 destinations_range=(3, 4),
                                 sources_range=(2, 2))
    process = PoissonArrivals(generator, rate=0.8, seed=seed + 1)
    holding = ExponentialHolding(mean=3.0, seed=seed + 2)
    links = sorted(((u, v) for u, v, _ in network.graph.edges()),
                   key=repr)
    kwargs = {}
    if failures:
        picked = random.Random(seed + 3).sample(links, 6)
        kwargs["failures"] = LinkFailureProcess(
            picked, mtbf=8.0, mttr=1.0, seed=seed + 4
        )
    else:
        kwargs["background"] = BackgroundChurn(
            period=2.0,
            link_batches=(tuple(links[:6]), tuple(links[6:12])),
            demand_mbps=2.0,
        )
    return build_schedule(process, horizon=12.0, holding=holding, **kwargs)


@pytest.mark.parametrize("failures", [False, True])
@pytest.mark.parametrize("seed", [11, 23])
def test_budgeted_simulator_stream_is_equivalent(seed, failures):
    # The budget must cover the VM pool plus the stream's per-request
    # working set: below that, evicting a row flips the serving
    # *direction* of later symmetric queries, whose last-ulp rounding
    # differences legitimately change equal-cost tie-breaks (the oracle
    # only contracts d(u,v) == d(v,u) up to symmetrisation).  These
    # margins are the smallest per-stream values that still evict.
    rows = 38 if (seed, failures) == (11, False) else 34
    budget = _simulator_budget(softlayer_network(seed=seed), rows=rows)
    results = {}
    for name, kwargs in (("unbounded", {}),
                         ("budgeted", {"row_budget_bytes": budget})):
        network = softlayer_network(seed=seed)
        schedule = _churn_schedule(network, seed, failures=failures)
        simulator = OnlineSimulator(network, vms_per_datacenter=2, **kwargs)
        engine = WorkloadEngine(simulator, SOFDA, name=name)
        results[name] = engine.run(schedule)
    unbounded, budgeted = results["unbounded"], results["budgeted"]
    # Identical embedding costs (exact ==, not approx) and decisions.
    assert budgeted.per_request_cost == unbounded.per_request_cost
    assert (budgeted.accepted, budgeted.rejected, budgeted.departures) \
        == (unbounded.accepted, unbounded.rejected, unbounded.departures)
    if failures:
        assert (budgeted.rerouted, budgeted.disrupted) \
            == (unbounded.rerouted, unbounded.disrupted)
    stats = budgeted.cache_stats
    assert stats is not None
    assert stats["budget_bytes"] == budget
    assert stats["total_bytes"] <= budget
    assert stats["overshoots"] == 0
    assert stats["budget_evictions"] > 0  # the budget actually bound
    assert unbounded.cache_stats["budget_bytes"] is None
    assert unbounded.cache_stats["budget_evictions"] == 0


# ----------------------------------------------------------------------
# distributed integration: per-domain controllers honour the budget
# ----------------------------------------------------------------------
def test_budgeted_controller_matches_unbounded():
    from repro import ServiceChain
    from repro.distributed import Controller, partition_domains

    instance = softlayer_network(seed=2).make_instance(
        num_sources=4, num_destinations=5, num_vms=10,
        chain=ServiceChain.of_length(3), seed=5,
    )
    domains = partition_domains(instance.graph, 3, seed=1)
    domain = max(domains, key=len)
    plain = Controller.for_domain(0, domain, instance.graph)
    reference = plain.border_matrix()
    # Room for two rows: the border matrix needs one row per border
    # router, so the budget forces evictions mid-build.
    budget = 2 * row_nbytes(len(domain), settled=True)
    tight = Controller.for_domain(0, domain, instance.graph,
                                  row_budget_bytes=budget)
    assert tight.border_matrix() == reference
    stats = tight.cache_stats()
    assert stats["budget_bytes"] == budget
    assert stats["total_bytes"] <= budget
    assert stats["overshoots"] == 0
    assert plain.cache_stats()["budget_bytes"] is None
