"""Shared test helpers (importable: pytest's conftest is not)."""

from __future__ import annotations

import random

from repro import Graph, ServiceChain, SOFInstance


def random_connected_graph(rng: random.Random, n: int, extra_edges: int,
                           max_cost: float = 10.0) -> Graph:
    """Random connected graph: a random spanning tree plus extra edges."""
    graph = Graph()
    nodes = list(range(n))
    for i in range(1, n):
        j = rng.randrange(i)
        graph.add_edge(nodes[i], nodes[j], rng.uniform(1.0, max_cost))
    added = 0
    attempts = 0
    while added < extra_edges and attempts < extra_edges * 20:
        attempts += 1
        u, v = rng.sample(nodes, 2)
        if not graph.has_edge(u, v):
            graph.add_edge(u, v, rng.uniform(1.0, max_cost))
            added += 1
    return graph


def random_instance(seed: int, n: int = 14, num_vms: int = 6,
                    num_sources: int = 2, num_dests: int = 3,
                    chain_len: int = 2) -> SOFInstance:
    """A random but always-valid SOF instance for property tests."""
    rng = random.Random(seed)
    graph = random_connected_graph(rng, n, extra_edges=n // 2)
    nodes = list(range(n))
    rng.shuffle(nodes)
    vms = nodes[:num_vms]
    rest = nodes[num_vms:]
    sources = rest[:num_sources]
    dests = rest[num_sources:num_sources + num_dests]
    return SOFInstance(
        graph=graph,
        vms=vms,
        sources=sources,
        destinations=dests,
        chain=ServiceChain.of_length(chain_len),
        node_costs={vm: rng.uniform(0.5, 20.0) for vm in vms},
    )
