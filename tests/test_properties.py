"""Property-based tests (hypothesis) on the core invariants.

Strategies build random connected weighted graphs and random SOF
instances; the properties are the paper's structural claims:

- shortest paths satisfy the triangle inequality;
- MST weight is invariant across algorithms;
- Procedure 1's instance is metric (Lemma 1);
- every SOFDA / SOFDA-SS / baseline forest is feasible;
- the exact IP is never beaten by any heuristic;
- forest cost accounting is consistent (setup + connection = total,
  nonnegative, monotone under adding tree edges).
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from helpers import random_connected_graph, random_instance
from repro import check_forest, sofda, sofda_ss
from repro.core.transform import build_kstroll_instance
from repro.graph import DistanceOracle, kruskal_mst, prim_mst
from repro.ilp import solve_sof_ilp

SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graph_spec(draw, max_nodes=24):
    n = draw(st.integers(min_value=3, max_value=max_nodes))
    extra = draw(st.integers(min_value=0, max_value=2 * n))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return n, extra, seed


@st.composite
def instance_spec(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n = draw(st.integers(min_value=10, max_value=22))
    num_vms = draw(st.integers(min_value=3, max_value=min(7, n - 4)))
    rest = n - num_vms
    num_sources = draw(st.integers(min_value=1, max_value=min(3, rest - 1)))
    num_dests = draw(
        st.integers(min_value=1, max_value=min(3, rest - num_sources))
    )
    chain_len = draw(st.integers(min_value=1, max_value=min(3, num_vms)))
    return dict(seed=seed, n=n, num_vms=num_vms, num_sources=num_sources,
                num_dests=num_dests, chain_len=chain_len)


@given(graph_spec())
@settings(max_examples=40, **SETTINGS)
def test_shortest_paths_triangle_inequality(spec):
    n, extra, seed = spec
    g = random_connected_graph(random.Random(seed), n, extra)
    oracle = DistanceOracle(g)
    rng = random.Random(seed + 1)
    for _ in range(10):
        a, b, c = rng.sample(range(n), 3) if n >= 3 else (0, 1, 2)
        assert oracle.distance(a, c) <= (
            oracle.distance(a, b) + oracle.distance(b, c) + 1e-9
        )


@given(graph_spec())
@settings(max_examples=40, **SETTINGS)
def test_mst_weight_algorithm_invariant(spec):
    n, extra, seed = spec
    g = random_connected_graph(random.Random(seed), n, extra)
    k = kruskal_mst(g)
    p = prim_mst(g, root=0)
    assert abs(k.total_edge_cost() - p.total_edge_cost()) < 1e-6
    assert k.num_edges() == n - 1


@given(instance_spec())
@settings(max_examples=30, **SETTINGS)
def test_procedure1_instance_is_metric(spec):
    instance = random_instance(**spec)
    source = sorted(instance.sources, key=repr)[0]
    vms = sorted(instance.vms, key=repr)
    last = vms[0] if vms[0] != source else vms[1]
    kinst = build_kstroll_instance(instance, source, last)
    nodes = kinst.nodes
    rng = random.Random(spec["seed"])
    for _ in range(12):
        if len(nodes) < 3:
            break
        a, b, c = rng.sample(nodes, 3)
        assert kinst.edge(a, c) <= kinst.edge(a, b) + kinst.edge(b, c) + 1e-9


@given(instance_spec())
@settings(max_examples=25, **SETTINGS)
def test_sofda_always_feasible(spec):
    instance = random_instance(**spec)
    result = sofda(instance)
    check_forest(instance, result.forest)
    assert result.cost >= 0


@given(instance_spec())
@settings(max_examples=15, **SETTINGS)
def test_sofda_ss_always_feasible(spec):
    instance = random_instance(**spec)
    forest = sofda_ss(instance)
    check_forest(instance, forest)


@given(instance_spec())
@settings(max_examples=10, **SETTINGS)
def test_heuristics_never_beat_the_ip(spec):
    instance = random_instance(**spec)
    opt = solve_sof_ilp(instance, decode=False).objective
    assert sofda(instance).cost >= opt - 1e-6
    assert sofda_ss(instance).total_cost() >= opt - 1e-6


@given(instance_spec())
@settings(max_examples=20, **SETTINGS)
def test_forest_cost_accounting_consistent(spec):
    instance = random_instance(**spec)
    forest = sofda(instance).forest
    assert forest.total_cost() == forest.setup_cost() + forest.connection_cost()
    assert forest.setup_cost() >= 0
    assert forest.connection_cost() >= 0
    # Adding an unrelated tree edge can only increase the connection cost.
    before = forest.connection_cost()
    u, v, _ = next(iter(instance.graph.edges()))
    clone = forest.copy()
    clone.add_tree_edge(u, v)
    assert clone.connection_cost() >= before - 1e-9
