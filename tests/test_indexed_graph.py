"""Equivalence tests for the indexed graph core and the shared oracle.

The contract of :mod:`repro.graph.indexed` is exactness: whatever mode the
:class:`FrozenOracle` picks (dict-replicated array Dijkstra or the
degree-2-contracted core), its distances must equal the reference
dict-Dijkstra's, and SOFDA's results on seeded instances must be
bit-identical to the pre-refactor pipeline (constants below were recorded
with the seed implementation).
"""

import random

import pytest

from repro.core.problem import ServiceChain
from repro.core.sofda import sofda
from repro.core.sofda_ss import sofda_ss
from repro.core.transform import build_kstroll_instance
from repro.graph import (
    DistanceOracle,
    FrozenOracle,
    Graph,
    IndexedGraph,
    steiner_tree,
)
from repro.graph.indexed import CONTRACT_MIN_INTERIOR
from repro.graph.shortest_paths import dijkstra, walk_cost
from repro.topology import inet_network
from repro.topology.generators import erdos_renyi_network, softlayer_network

INF = float("inf")


def random_graph(rng, num_nodes=30, edge_probability=0.2):
    graph = Graph()
    for i in range(num_nodes):
        graph.add_node(i)
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            if rng.random() < edge_probability:
                graph.add_edge(i, j, rng.uniform(0.1, 5.0))
    return graph


# ----------------------------------------------------------------------
# IndexedGraph vs the dict Dijkstra
# ----------------------------------------------------------------------
def test_indexed_dijkstra_matches_dict_dijkstra():
    rng = random.Random(11)
    for trial in range(5):
        graph = random_graph(rng)
        core = IndexedGraph.from_graph(graph)
        source = rng.randrange(len(graph))
        ref_dist, ref_parent = dijkstra(graph, source)
        dist, parent, settled, exhausted = core.dijkstra(core.id_of(source))
        assert exhausted
        for node in graph.nodes():
            i = core.id_of(node)
            assert dist[i] == ref_dist.get(node, INF)
            # Identical relaxation order implies identical parents.
            if node in ref_parent:
                assert core.node_of(parent[i]) == ref_parent[node]


def test_indexed_graph_roundtrip():
    rng = random.Random(3)
    graph = random_graph(rng, num_nodes=15)
    core = IndexedGraph.from_graph(graph)
    assert len(core) == len(graph)
    assert core.num_edges() == graph.num_edges()
    for node in graph.nodes():
        assert node in core
        row = core.neighbor_items(core.id_of(node))
        assert sorted((w, core.node_of(v)) for w, v in row) == sorted(
            (w, v) for v, w in graph.neighbor_items(node)
        )


def test_indexed_dijkstra_early_stop_is_exact_on_settled_targets():
    rng = random.Random(4)
    graph = random_graph(rng, num_nodes=40)
    core = IndexedGraph.from_graph(graph)
    targets = [core.id_of(n) for n in [3, 17, 29]]
    ref_dist, _ = dijkstra(graph, 0)
    dist, _, settled, _ = core.dijkstra(core.id_of(0), targets)
    for t in targets:
        if settled[t]:
            assert dist[t] == ref_dist.get(core.node_of(t), INF)


# ----------------------------------------------------------------------
# FrozenOracle vs DistanceOracle (both modes)
# ----------------------------------------------------------------------
def test_frozen_oracle_matches_distance_oracle_small_graphs():
    rng = random.Random(7)
    for trial in range(4):
        graph = random_graph(rng)
        nodes = list(graph.nodes())
        hot = rng.sample(nodes, 6)
        frozen = FrozenOracle(graph, hot=hot)
        reference = DistanceOracle(graph)
        assert frozen.contracted is None  # too small to contract
        for _ in range(60):
            u, v = rng.choice(nodes), rng.choice(nodes)
            # Either oracle may serve a query from the reverse row (the
            # documented symmetry contract), whose float summation order
            # differs in the last ulp.
            assert frozen.distance(u, v) == pytest.approx(
                reference.distance(u, v), rel=0, abs=1e-9
            )
        for _ in range(20):
            u, v = rng.choice(nodes), rng.choice(nodes)
            if reference.distance(u, v) == INF:
                continue
            # Small graphs replicate the dict relaxation order: identical paths.
            assert frozen.path(u, v) == reference.path(u, v)
        source = rng.choice(nodes)
        assert frozen.distances_from(source) == reference.distances_from(source)


@pytest.fixture(scope="module")
def contracted_setting():
    network = inet_network(num_nodes=400, num_links=800,
                           num_datacenters=120, seed=5)
    instance = network.make_instance(
        num_sources=4, num_destinations=5, num_vms=10,
        chain=ServiceChain.of_length(3), seed=21,
    )
    return instance


def test_frozen_oracle_contracts_large_continuous_graphs(contracted_setting):
    instance = contracted_setting
    oracle = instance.oracle
    assert oracle.contracted is not None
    assert len(oracle.contracted.interior) >= CONTRACT_MIN_INTERIOR


def test_contracted_distances_exact(contracted_setting):
    instance = contracted_setting
    oracle = instance.oracle
    reference = DistanceOracle(instance.graph)
    rng = random.Random(2)
    nodes = list(instance.graph.nodes())
    special = list(instance.vms | instance.sources | instance.destinations)
    for u in special:
        for v in rng.sample(special, 5) + rng.sample(nodes, 5):
            # Reverse-row serving accumulates the same edge weights in the
            # opposite order: equal up to the last ulp.
            assert oracle.distance(u, v) == pytest.approx(
                reference.distance(u, v), rel=0, abs=1e-9
            )


def test_contracted_paths_are_shortest(contracted_setting):
    instance = contracted_setting
    oracle = instance.oracle
    reference = DistanceOracle(instance.graph)
    rng = random.Random(9)
    special = sorted(instance.vms | instance.sources | instance.destinations,
                     key=repr)
    for _ in range(40):
        u, v = rng.choice(special), rng.choice(special)
        d = reference.distance(u, v)
        if d == INF:
            continue
        path = oracle.path(u, v)
        assert path[0] == u and path[-1] == v
        # The expanded path must be a real walk of exactly optimal cost.
        assert walk_cost(instance.graph, path) == pytest.approx(d, rel=0, abs=1e-12)


def test_contracted_distances_from_covers_interiors(contracted_setting):
    instance = contracted_setting
    oracle = instance.oracle
    source = sorted(instance.sources, key=repr)[0]
    ref_dist, _ = dijkstra(instance.graph, source)
    got = oracle.distances_from(source)
    assert set(got) == set(ref_dist)
    for node, d in ref_dist.items():
        assert got[node] == pytest.approx(d, rel=0, abs=1e-12)


def test_extend_hot_rebuilds_for_contracted_interior(contracted_setting):
    instance = contracted_setting
    oracle = FrozenOracle(
        instance.graph,
        hot=instance.vms | instance.sources | instance.destinations,
    )
    contracted = oracle.contracted
    assert contracted is not None
    interior = next(iter(contracted.interior))
    oracle.extend_hot([interior])
    rebuilt = oracle.contracted
    assert rebuilt is None or interior not in rebuilt.interior
    # The newly hot node is served exactly either way.
    reference = DistanceOracle(instance.graph)
    probe = sorted(instance.destinations, key=repr)[0]
    assert oracle.distance(interior, probe) == reference.distance(interior, probe)


def test_early_stopped_row_never_reported_full_on_break():
    # Regression: with hot = {a, u} on the path a-u-v, the early stop on u
    # fires exactly when the heap is empty, but u's out-edge to v was never
    # relaxed -- the cached row must NOT be treated as full.
    graph = Graph.from_edges([("a", "u", 1.0), ("u", "v", 1.0)])
    oracle = FrozenOracle(graph, hot=["a", "u"])
    assert oracle.distance("a", "u") == 1.0
    assert oracle.distance("a", "v") == 2.0
    assert oracle.path("a", "v") == ["a", "u", "v"]


def test_oracle_error_contract():
    graph = Graph()
    graph.add_edge("a", "b", 1.0)
    graph.add_node("island")
    oracle = FrozenOracle(graph)
    assert oracle.distance("a", "island") == INF
    assert oracle.distance("a", "missing") == INF
    with pytest.raises(ValueError):
        oracle.path("a", "island")
    with pytest.raises(KeyError):
        oracle.distance("missing", "a")


# ----------------------------------------------------------------------
# Procedure-1 fast path vs the lazy edge-cost closure
# ----------------------------------------------------------------------
def test_kstroll_fast_path_matches_lazy_costs(contracted_setting):
    instance = contracted_setting
    source = sorted(instance.sources, key=repr)[0]
    last_vm = sorted(instance.vms, key=repr)[0]
    fast = build_kstroll_instance(instance, source, last_vm)
    # Passing an (empty) override dict forces the historical lazy closure
    # while leaving every effective setup cost unchanged.
    lazy = build_kstroll_instance(instance, source, last_vm, setup_costs={})
    assert fast.nodes == lazy.nodes
    assert not callable(fast.cost) and callable(lazy.cost)
    for i, a in enumerate(fast.nodes):
        for b in fast.nodes[i + 1:]:
            assert fast.edge(a, b) == lazy.edge(a, b)
            assert fast.edge(b, a) == lazy.edge(a, b)


# ----------------------------------------------------------------------
# Steiner solvers under the shared oracle
# ----------------------------------------------------------------------
def test_steiner_same_result_with_default_and_explicit_oracle():
    rng = random.Random(13)
    for trial in range(3):
        graph = random_graph(rng, num_nodes=25, edge_probability=0.25)
        terminals = rng.sample(list(graph.nodes()), 5)
        with_frozen = steiner_tree(graph, terminals, method="kmb")
        with_dict = steiner_tree(
            graph, terminals, method="kmb", oracle=DistanceOracle(graph)
        )
        assert with_frozen.cost == with_dict.cost
        assert (
            sorted(map(repr, with_frozen.tree.edges()))
            == sorted(map(repr, with_dict.tree.edges()))
        )


# ----------------------------------------------------------------------
# SOFDA regression: identical forest costs on seeded instances
# ----------------------------------------------------------------------
#: total_cost values recorded with the seed (pre-refactor) implementation.
#: Comparisons allow the last ulp to wobble: the pipeline (seed included)
#: sums forest costs over hash-ordered containers, so rare PYTHONHASHSEED
#: values shift the total by one unit in the last place.  Any behavioural
#: regression moves costs by many orders of magnitude more than 1e-9.
SEED_SOFDA_COSTS = {
    "inet_200": 882.5071308981337,
    "softlayer": 539.4765753650847,
    "er40": 249.81117881712453,
}


def test_sofda_cost_identical_on_seeded_inet_instance():
    network = inet_network(num_nodes=200, num_links=400,
                           num_datacenters=80, seed=7)
    instance = network.make_instance(
        num_sources=4, num_destinations=6, num_vms=12,
        chain=ServiceChain.of_length(3), seed=7 + 200 + 4,
    )
    assert instance.oracle.contracted is not None  # fast mode exercised
    assert sofda(instance).cost == pytest.approx(
        SEED_SOFDA_COSTS["inet_200"], rel=0, abs=1e-9
    )


def test_sofda_cost_identical_on_seeded_softlayer_instance():
    network = softlayer_network(seed=2)
    instance = network.make_instance(
        num_sources=5, num_destinations=4, num_vms=10,
        chain=ServiceChain.of_length(2), seed=11,
    )
    assert instance.oracle.contracted is None  # replicated mode exercised
    assert sofda(instance).cost == pytest.approx(
        SEED_SOFDA_COSTS["softlayer"], rel=0, abs=1e-9
    )


def test_sofda_and_ss_cost_identical_on_seeded_er_instance():
    network = erdos_renyi_network(num_nodes=40, edge_probability=0.15,
                                  num_datacenters=10, seed=9)
    instance = network.make_instance(
        num_sources=3, num_destinations=3, num_vms=6,
        chain=ServiceChain.of_length(2), seed=4,
    )
    assert sofda(instance).cost == pytest.approx(
        SEED_SOFDA_COSTS["er40"], rel=0, abs=1e-9
    )
    # sofda_ss sums the same forest in a hash-seed-dependent order (a
    # pre-existing seed behaviour), so allow the last ulp to wobble.
    assert sofda_ss(instance).total_cost() == pytest.approx(
        SEED_SOFDA_COSTS["er40"], rel=0, abs=1e-9
    )
