"""Tests for the distributed multi-controller implementation."""

import pytest

from repro import ServiceChain, check_forest, sofda
from repro.distributed import Controller, DistributedSOFDA, MessageBus, partition_domains
from repro.topology import softlayer_network


@pytest.fixture
def instance():
    return softlayer_network(seed=2).make_instance(
        num_sources=4, num_destinations=5, num_vms=10,
        chain=ServiceChain.of_length(3), seed=5,
    )


def test_partition_covers_all_nodes(instance):
    domains = partition_domains(instance.graph, 4, seed=1)
    assert len(domains) == 4
    union = set().union(*domains)
    assert union == set(instance.graph.nodes())
    for a in range(4):
        for b in range(a + 1, 4):
            assert not domains[a] & domains[b]


def test_partition_validations(instance):
    with pytest.raises(ValueError):
        partition_domains(instance.graph, 0)
    with pytest.raises(ValueError):
        partition_domains(instance.graph, 10_000)


def test_controller_borders(instance):
    domains = partition_domains(instance.graph, 3, seed=1)
    controllers = [
        Controller.for_domain(i, d, instance.graph) for i, d in enumerate(domains)
    ]
    for c in controllers:
        for b in c.border_routers:
            assert b in c.domain
            assert any(
                nb not in c.domain for nb in instance.graph.neighbors(b)
            )
        # Matrix entries are symmetric and nonnegative.
        matrix = c.border_matrix()
        for (x, y), d in matrix.items():
            assert d >= 0
            assert matrix[(y, x)] == pytest.approx(d)
        assert c.matrix_size() == len(c.border_routers) * (len(c.border_routers) - 1)


def test_controller_rejects_foreign_node(instance):
    domains = partition_domains(instance.graph, 2, seed=1)
    controller = Controller.for_domain(0, domains[0], instance.graph)
    foreign = next(iter(domains[1]))
    with pytest.raises(KeyError):
        controller.distance_to_borders(foreign)


@pytest.mark.parametrize("num_domains", [1, 2, 4])
def test_distributed_equals_centralized(instance, num_domains):
    distributed = DistributedSOFDA(instance, num_domains=num_domains, seed=1)
    result = distributed.run()
    check_forest(instance, result.forest)
    central = sofda(instance)
    assert result.cost == pytest.approx(central.cost)


def test_abstraction_is_lossless(instance):
    distributed = DistributedSOFDA(instance, num_domains=3, seed=1)
    assert distributed.verify_abstraction(samples=40, seed=3)


def test_messages_accounted(instance):
    distributed = DistributedSOFDA(instance, num_domains=3, seed=1)
    result = distributed.run()
    kinds = result.bus.by_kind()
    assert "matrix-exchange" in kinds
    # Full-mesh matrix exchange: k * (k - 1) messages.
    assert kinds["matrix-exchange"][0] == 3 * 2
    assert result.bus.num_messages > 0
    assert result.num_domains == 3


def test_more_domains_more_messages(instance):
    few = DistributedSOFDA(instance, num_domains=2, seed=1).run()
    many = DistributedSOFDA(instance, num_domains=6, seed=1).run()
    assert many.bus.num_messages > few.bus.num_messages


def test_message_bus_basics():
    bus = MessageBus()
    bus.send(0, 1, "x", 5)
    bus.send(1, 1, "self", 5)  # dropped
    bus.broadcast(2, [0, 1], "y", 3)
    assert bus.num_messages == 3
    assert bus.total_size == 11
    assert bus.by_kind()["y"] == (2, 6)


def test_controller_serves_from_per_domain_oracle(instance):
    """Intra-domain rows come from one FrozenOracle per controller."""
    from repro.graph import FrozenOracle
    from repro.graph.shortest_paths import dijkstra

    domains = partition_domains(instance.graph, 3, seed=1)
    for i, domain in enumerate(domains):
        controller = Controller.for_domain(i, domain, instance.graph)
        assert isinstance(controller.oracle, FrozenOracle)
        assert controller.oracle is controller.oracle  # one per domain
        for node in sorted(domain, key=repr)[:4]:
            expected, _ = dijkstra(controller.local_graph, node)
            got = controller.local_distances_from(node)
            assert set(got) == set(expected)
            for target, dist in expected.items():
                assert got[target] == pytest.approx(dist, rel=0, abs=1e-9)


#: Message statistics recorded before the controllers were contracted
#: onto per-domain oracles -- the protocol must not notice the swap.
PRE_ORACLE_MESSAGE_STATS = {
    2: (18, 76),
    3: (43, 290),
    4: (57, 221),
}


@pytest.mark.parametrize("num_domains", [2, 3, 4])
def test_message_stats_unchanged_by_oracle_contraction(instance, num_domains):
    result = DistributedSOFDA(instance, num_domains=num_domains, seed=1).run()
    assert (
        result.bus.num_messages, result.bus.total_size
    ) == PRE_ORACLE_MESSAGE_STATS[num_domains]
    # The embedded forest is still the centralized one.
    central = sofda(instance)
    assert result.cost == pytest.approx(central.cost, rel=0, abs=1e-9)


def test_leader_is_a_source_controller(instance):
    distributed = DistributedSOFDA(instance, num_domains=4, seed=1)
    result = distributed.run()
    leader_domain = distributed.controllers[result.leader].domain
    assert any(s in leader_domain for s in instance.sources)
