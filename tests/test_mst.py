"""MST tests, cross-checked against networkx."""

import random

import networkx as nx
import pytest

from helpers import random_connected_graph
from repro.graph import Graph, kruskal_mst, prim_mst


def test_kruskal_simple():
    g = Graph.from_edges([(1, 2, 1.0), (2, 3, 2.0), (1, 3, 10.0)])
    mst = kruskal_mst(g)
    assert mst.num_edges() == 2
    assert mst.total_edge_cost() == 3.0


def test_prim_matches_kruskal_weight():
    for seed in range(6):
        rng = random.Random(seed)
        g = random_connected_graph(rng, 24, extra_edges=30)
        k = kruskal_mst(g)
        p = prim_mst(g, root=0)
        assert k.total_edge_cost() == pytest.approx(p.total_edge_cost())


@pytest.mark.parametrize("seed", range(5))
def test_kruskal_matches_networkx(seed):
    rng = random.Random(seed)
    g = random_connected_graph(rng, 30, extra_edges=40)
    h = nx.Graph()
    for u, v, c in g.edges():
        h.add_edge(u, v, weight=c)
    nx_weight = sum(
        d["weight"] for _, _, d in nx.minimum_spanning_tree(h).edges(data=True)
    )
    assert kruskal_mst(g).total_edge_cost() == pytest.approx(nx_weight)


def test_kruskal_spanning_forest_of_disconnected():
    g = Graph.from_edges([(1, 2, 1.0), (3, 4, 2.0)])
    mst = kruskal_mst(g)
    assert mst.num_edges() == 2
    assert len(mst) == 4


def test_prim_spans_component_only():
    g = Graph.from_edges([(1, 2, 1.0), (3, 4, 2.0)])
    tree = prim_mst(g, root=1)
    assert 3 not in tree
    assert tree.has_edge(1, 2)


def test_prim_empty_graph():
    assert len(prim_mst(Graph())) == 0
