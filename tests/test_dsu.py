"""Unit tests for the disjoint-set union."""

from repro.graph import DisjointSetUnion


def test_singletons():
    dsu = DisjointSetUnion([1, 2, 3])
    assert dsu.num_sets == 3
    assert not dsu.connected(1, 2)


def test_union_and_find():
    dsu = DisjointSetUnion()
    assert dsu.union(1, 2)
    assert dsu.connected(1, 2)
    assert not dsu.union(1, 2)  # already merged
    assert dsu.num_sets == 1


def test_transitive_union():
    dsu = DisjointSetUnion()
    dsu.union("a", "b")
    dsu.union("b", "c")
    assert dsu.connected("a", "c")
    assert dsu.find("a") == dsu.find("c")


def test_lazy_add_on_find():
    dsu = DisjointSetUnion()
    assert dsu.find("fresh") == "fresh"
    assert len(dsu) == 1


def test_num_sets_tracks_merges():
    dsu = DisjointSetUnion(range(10))
    for i in range(9):
        dsu.union(i, i + 1)
    assert dsu.num_sets == 1
    assert len(dsu) == 10


def test_many_unions_path_compression():
    dsu = DisjointSetUnion()
    n = 500
    for i in range(n - 1):
        dsu.union(i, i + 1)
    root = dsu.find(0)
    assert all(dsu.find(i) == root for i in range(n))
