"""Tests for the testbed QoE simulator (topology, flows, video, experiment)."""

import pytest

from repro import sofda
from repro.baselines import est_baseline
from repro.testbed import (
    FlowSimulator,
    VideoSession,
    VideoSpec,
    destination_paths,
    fig13_topology,
    run_qoe_experiment,
)
from repro.testbed.experiment import _testbed_instance
from repro.testbed.flowsim import stream_multiplicity


def test_fig13_counts():
    net = fig13_topology()
    assert net.num_nodes == 14
    assert net.num_links == 20
    assert net.graph.is_connected()
    assert len(net.datacenters) == 14


def test_testbed_instance_structure():
    instance, congestion = _testbed_instance(seed=1)
    assert len(instance.sources) == 2
    assert len(instance.destinations) == 4
    assert len(instance.chain) == 2
    assert len(congestion) == 20
    for bw in congestion.values():
        assert 4.5 <= bw <= 40.0


def test_destination_paths_reach_all():
    instance, _ = _testbed_instance(seed=2)
    forest = sofda(instance, steiner_method="exact").forest
    paths = destination_paths(forest)
    assert set(paths) == set(instance.destinations)
    for dest, path in paths.items():
        # The path is a connected edge sequence starting at a source.
        assert path[0][0] in instance.sources or not path
        for (a, b), (c, d) in zip(path, path[1:]):
            assert b == c
        if path:
            assert path[-1][1] == dest
        for a, b in path:
            assert instance.graph.has_edge(a, b)


def test_stream_multiplicity_counts_stages():
    instance, _ = _testbed_instance(seed=2)
    forest = sofda(instance, steiner_method="exact").forest
    mult = stream_multiplicity(forest)
    assert all(m >= 1 for m in mult.values())


def test_flow_simulator_goodput_bounds():
    instance, congestion = _testbed_instance(seed=3)
    forest = sofda(instance, steiner_method="exact").forest
    sim = FlowSimulator(forest, base_bandwidth=congestion, seed=1)
    for _ in range(5):
        goodput = sim.step_goodput()
        assert set(goodput) == set(instance.destinations)
        for rate in goodput.values():
            assert 0.0 < rate <= 41.0  # clear-range top + jitter


def test_flow_simulator_deterministic():
    instance, congestion = _testbed_instance(seed=3)
    forest = sofda(instance, steiner_method="exact").forest
    a = FlowSimulator(forest, base_bandwidth=congestion, seed=9)
    b = FlowSimulator(forest, base_bandwidth=congestion, seed=9)
    assert a.step_goodput() == b.step_goodput()


def test_video_session_fast_link_no_stall():
    session = VideoSession(spec=VideoSpec(duration_s=10.0, bitrate_mbps=8.0))
    for _ in range(100):
        if session.finished:
            break
        session.advance(16.0)  # 2x bitrate
    assert session.finished
    assert session.rebuffering_s == 0.0
    assert session.startup_latency == pytest.approx(1.0)


def test_video_session_slow_link_stalls():
    session = VideoSession(spec=VideoSpec(duration_s=10.0, bitrate_mbps=8.0))
    for _ in range(1000):
        if session.finished:
            break
        session.advance(4.0)  # half the bitrate
    assert session.finished
    assert session.rebuffering_s > 5.0
    assert session.startup_latency > 1.0


def test_video_session_total_time_conservation():
    # wall clock = startup + playback + stalls (within one step).
    spec = VideoSpec(duration_s=20.0, bitrate_mbps=8.0)
    session = VideoSession(spec=spec)
    import random

    rng = random.Random(4)
    while not session.finished:
        session.advance(rng.uniform(4.0, 12.0))
    assert session.clock_s == pytest.approx(
        session.startup_latency + spec.duration_s + session.rebuffering_s,
        abs=2.0,
    )


def test_video_session_run_to_completion():
    session = VideoSession(spec=VideoSpec(duration_s=5.0))
    session.run_to_completion(iter(lambda: 10.0, None))
    assert session.finished
    assert session.played_s == pytest.approx(5.0)


def test_qoe_experiment_smoke():
    reports = run_qoe_experiment(
        {
            "SOFDA": lambda inst: sofda(inst, steiner_method="exact").forest,
            "eST": lambda inst: est_baseline(inst, steiner_method="exact"),
        },
        trials=4,
        seed=1,
    )
    for report in reports.values():
        assert len(report.startup_latencies) == 4 * 4  # trials x destinations
        assert report.mean_startup_latency > 0
        assert 0 <= report.mean_rebuffering < 137.0
