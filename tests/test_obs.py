"""Tests for :mod:`repro.obs`: registry, tracer, recorder, equivalence.

The load-bearing contract is the last section: a randomized churn +
link-failure workload replayed with metrics and tracing ON must produce
**bit-identical** per-request costs, acceptance decisions, availability
counters, and oracle row state to the metrics-OFF run -- the recorder
only observes, exactly like the ``planner=``/``vectorized=`` reference
flags.  The trace sections pin the Chrome trace-event JSONL schema and
the span-total/histogram-sum reconciliation the CLI and CI rely on.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    CACHE_SNAPSHOT_SCHEMA,
    DEFAULT_BUCKETS,
    FakeClock,
    MetricsRegistry,
    NULL_RECORDER,
    NullRecorder,
    PHASE_GROUPS,
    Recorder,
    SpanTracer,
    TRACE_RECORD,
    TRACE_VERSION,
    dump_trace_events,
    load_trace_events,
    phase_breakdown,
    read_trace_events,
    series_key,
    span_totals,
    to_chrome_json,
    validate_trace_events,
    write_trace_events,
)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

def test_series_key_sorts_labels():
    assert series_key("m", {}) == "m"
    assert series_key("m", {"b": 2, "a": 1}) == "m{a=1,b=2}"
    # Same labels in any insertion order -> same key.
    assert series_key("m", {"a": 1, "b": 2}) == series_key("m", {"b": 2, "a": 1})


def test_registry_counters_and_gauges():
    reg = MetricsRegistry()
    reg.inc("reqs")
    reg.inc("reqs", 2)
    reg.inc("reqs", outcome="ok")
    reg.gauge("level", 7.5, scope="oracle")
    reg.gauge("level", 3.0, scope="oracle")  # last write wins
    snap = reg.snapshot()
    assert snap["counters"] == {"reqs": 3, "reqs{outcome=ok}": 1}
    assert snap["gauges"] == {"level{scope=oracle}": 3.0}
    assert reg.counter_total("reqs") == 4


def test_registry_histogram_buckets_and_overflow():
    reg = MetricsRegistry()
    reg.declare_histogram("sizes", (1, 10, 100))
    for value in (0.5, 1, 5, 100, 1000):
        reg.observe("sizes", value)
    hist = reg.snapshot()["histograms"]["sizes"]
    assert hist["count"] == 5
    assert hist["sum"] == pytest.approx(1106.5)
    # Inclusive upper bounds: 0.5 and 1 -> le=1; 5 -> le=10; 100 -> le=100.
    assert hist["buckets"] == [[1, 2], [10, 1], [100, 1]]
    assert hist["overflow"] == 1
    # Undeclared names fall back to the duration decades.
    reg.observe("spans", 0.05)
    assert reg.snapshot()["histograms"]["spans"]["buckets"][5] == [0.1, 1]
    assert len(DEFAULT_BUCKETS) == 9


def test_registry_name_matching_spans_label_series():
    reg = MetricsRegistry()
    reg.observe("oracle.query", 1.0, op="a")
    reg.observe("oracle.query", 2.0, op="b")
    reg.observe("oracle.query_other", 100.0)
    assert reg.histogram_sum("oracle.query") == pytest.approx(3.0)
    assert reg.histogram_count("oracle.query") == 2


def test_snapshot_is_deterministically_ordered():
    reg = MetricsRegistry()
    for name in ("zeta", "alpha", "mid"):
        reg.inc(name)
        reg.observe(name, 1.0)
    snap = reg.snapshot()
    assert list(snap["counters"]) == ["alpha", "mid", "zeta"]
    assert list(snap["histograms"]) == ["alpha", "mid", "zeta"]
    # And the canonical JSON form is reproducible.
    assert json.dumps(snap, sort_keys=True) == json.dumps(
        reg.snapshot(), sort_keys=True
    )


def test_phase_breakdown_groups_label_series():
    reg = MetricsRegistry()
    reg.observe("oracle.build", 1.0, kind="core")
    reg.observe("oracle.row_build", 0.5, kind="cold")
    reg.observe("oracle.patch.costs", 0.25)
    reg.observe("kernel.fork", 0.125, pool="x", mode="serial")
    out = phase_breakdown(reg.snapshot())
    assert set(out) == set(PHASE_GROUPS)
    assert out["build"] == pytest.approx(1.5)
    assert out["repair"] == pytest.approx(0.25)
    assert out["query"] == 0.0
    assert out["fork"] == pytest.approx(0.125)


# ----------------------------------------------------------------------
# recorder
# ----------------------------------------------------------------------

def test_null_recorder_is_falsy_noop():
    assert not NULL_RECORDER
    assert not NullRecorder()
    assert NULL_RECORDER.clock() == 0.0
    assert NULL_RECORDER.span("x", 0.0) == 0.0
    NULL_RECORDER.inc("x")
    NULL_RECORDER.observe("x", 1.0)
    assert NULL_RECORDER.snapshot() == {}
    assert NULL_RECORDER.registry is None and NULL_RECORDER.tracer is None


def test_recorder_span_feeds_histogram_and_trace():
    clock = FakeClock(step=0.25)
    rec = Recorder(
        registry=MetricsRegistry(), tracer=SpanTracer(), clock=clock
    )
    t0 = rec.clock()
    dur = rec.span("oracle.query", t0, op="distance", trace_args={"n": 3})
    assert dur == pytest.approx(0.25)
    hist = rec.snapshot()["histograms"]["oracle.query{op=distance}"]
    assert hist["count"] == 1 and hist["sum"] == pytest.approx(0.25)
    (event,) = rec.tracer.events
    assert event["name"] == "oracle.query"
    assert event["ph"] == "X"
    assert event["dur"] == pytest.approx(0.25e6)
    # Labels and trace_args merge into the trace event's args.
    assert event["args"] == {"op": "distance", "n": 3}


def test_recorder_without_tracer_still_observes():
    rec = Recorder(registry=MetricsRegistry(), clock=FakeClock())
    rec.span("x", rec.clock())
    assert rec.tracer is None
    assert rec.snapshot()["histograms"]["x"]["count"] == 1


def test_fake_clock_is_monotone_deterministic():
    a, b = FakeClock(step=0.5), FakeClock(step=0.5)
    assert [a() for _ in range(3)] == [b() for _ in range(3)] == [0.0, 0.5, 1.0]


# ----------------------------------------------------------------------
# trace JSONL codec
# ----------------------------------------------------------------------

def _sample_events():
    tracer = SpanTracer()
    tracer.complete("alpha", 0.0, 10.0, args={"n": 1})
    tracer.complete("beta", 5.0, 2.5)
    tracer.complete("alpha", 20.0, 30.0)
    return tracer.events


def test_trace_jsonl_round_trip(tmp_path):
    events = _sample_events()
    path = tmp_path / "trace.jsonl"
    write_trace_events(events, str(path))
    lines = path.read_text().splitlines()
    # Line 1 is the metadata event -- itself a valid Chrome event.
    head = json.loads(lines[0])
    assert head["ph"] == "M"
    assert head["args"] == {"record": TRACE_RECORD, "version": TRACE_VERSION}
    assert len(lines) == len(events) + 1
    loaded = read_trace_events(str(path))
    assert loaded == events


def test_dump_load_string_form():
    events = _sample_events()
    lines = list(dump_trace_events(events))
    assert load_trace_events(lines) == events


def test_load_rejects_wrong_record_and_version():
    events = _sample_events()
    lines = list(dump_trace_events(events))
    bad_head = json.loads(lines[0])
    bad_head["args"]["record"] = "not-ours"
    with pytest.raises(ValueError):
        load_trace_events([json.dumps(bad_head)] + lines[1:])
    bad_head = json.loads(lines[0])
    bad_head["args"]["version"] = 999
    with pytest.raises(ValueError):
        load_trace_events([json.dumps(bad_head)] + lines[1:])
    with pytest.raises(ValueError):
        load_trace_events([])


@pytest.mark.parametrize("mutate", [
    lambda e: e.pop("name"),
    lambda e: e.__setitem__("name", ""),
    lambda e: e.__setitem__("ph", "B"),
    lambda e: e.__setitem__("ts", -1.0),
    lambda e: e.__setitem__("dur", "fast"),
    lambda e: e.__setitem__("pid", 1.5),
    lambda e: e.__setitem__("args", [1, 2]),
])
def test_validate_rejects_malformed_events(mutate):
    events = [dict(e) for e in _sample_events()]
    mutate(events[1])
    with pytest.raises(ValueError):
        validate_trace_events(events)


def test_to_chrome_json_and_span_totals():
    events = _sample_events()
    payload = json.loads(to_chrome_json(events))
    assert payload == {"traceEvents": events}
    totals = span_totals(events)
    assert totals["alpha"] == pytest.approx(40.0 / 1e6)
    assert totals["beta"] == pytest.approx(2.5 / 1e6)
    assert list(totals) == sorted(totals)


# ----------------------------------------------------------------------
# metrics-on == metrics-off equivalence (the tentpole invariant)
# ----------------------------------------------------------------------

def _row_states(oracle):
    """Observable repair state, normalised across buffer storage."""
    return {
        sid: (
            list(row.dist),
            list(row.parent),
            None if row.settled is None else bytes(row.settled),
            row.full,
            row.stale,
            row.cutoff,
        )
        for sid, row in oracle._rows.items()
    }


def _churn_run(metrics=None, vectorized=False, parallel_rows=0):
    """One seeded churn + failure workload; returns (result, simulator)."""
    from repro.core.sofda import sofda
    from repro.online import RequestGenerator
    from repro.online.simulator import OnlineSimulator
    from repro.topology import softlayer_network
    from repro.workload import (
        ExponentialHolding,
        LinkFailureProcess,
        PoissonArrivals,
        WorkloadEngine,
        build_schedule,
    )

    network = softlayer_network(seed=1)
    generator = RequestGenerator(
        network, seed=0, destinations_range=(3, 4), sources_range=(2, 2),
        chain_length=2,
    )
    process = PoissonArrivals(generator, rate=1.2, seed=1)
    links = sorted(((u, v) for u, v, _ in network.graph.edges()), key=repr)
    failures = LinkFailureProcess(links[:2], mtbf=3.0, mttr=1.0, seed=0)
    schedule = build_schedule(
        process, horizon=6.0,
        holding=ExponentialHolding(3.0, seed=2),
        failures=failures,
    )
    simulator = OnlineSimulator(
        network, metrics=metrics, vectorized=vectorized,
        parallel_rows=parallel_rows,
    )
    engine = WorkloadEngine(
        simulator, lambda inst: sofda(inst).forest, name="SOFDA"
    )
    return engine.run(schedule), simulator


def test_churn_bit_identical_with_metrics_on():
    recorder = Recorder(registry=MetricsRegistry(), tracer=SpanTracer())
    plain, plain_sim = _churn_run(metrics=None)
    traced, traced_sim = _churn_run(metrics=recorder)

    # Bit-identical outcomes: costs, decisions, availability accounting.
    assert traced.per_request_cost == plain.per_request_cost
    assert traced.accepted == plain.accepted
    assert traced.rejected == plain.rejected
    assert traced.departures == plain.departures
    assert traced.failures == plain.failures
    assert traced.rerouted == plain.rerouted
    assert traced.disrupted == plain.disrupted
    assert traced.recovery_latencies == plain.recovery_latencies
    # Bit-identical oracle row state.
    assert _row_states(traced_sim._oracle) == _row_states(plain_sim._oracle)

    # The traced run actually recorded the stack's seams.
    snap = recorder.snapshot()
    assert snap["counters"]["sim.commits"] == plain.accepted
    assert snap["counters"]["workload.accepted{algo=SOFDA}"] == plain.accepted
    assert snap["counters"]["sim.failures"] == plain.failures
    assert recorder.registry.histogram_count("workload.event") > 0
    assert len(recorder.tracer.events) > 0
    # Registry counters agree with the engine's own accounting.
    assert recorder.registry.counter_total("sim.embeds") == (
        plain.accepted + plain.rejected
    )


def test_churn_span_totals_reconcile_with_histograms(tmp_path):
    recorder = Recorder(registry=MetricsRegistry(), tracer=SpanTracer())
    _churn_run(metrics=recorder)
    path = tmp_path / "churn.jsonl"
    write_trace_events(recorder.tracer.events, str(path))
    events = read_trace_events(str(path))
    assert len(events) == len(recorder.tracer.events)
    totals = span_totals(events)
    assert totals  # spans were emitted
    for name, total in totals.items():
        hist_sum = recorder.registry.histogram_sum(name)
        assert total == pytest.approx(hist_sum, rel=1e-9, abs=1e-9)
    # The run exercises build, repair and query phases.
    breakdown = phase_breakdown(recorder.snapshot())
    assert breakdown["build"] > 0
    assert breakdown["repair"] > 0
    assert breakdown["query"] > 0


def test_null_recorder_knob_behaves_like_none():
    from repro.graph import FrozenOracle, Graph

    graph = Graph()
    graph.add_edge("a", "b", 1.0)
    oracle = FrozenOracle(graph, metrics=NULL_RECORDER)
    assert oracle.metrics is None
    assert oracle.distance("a", "b") == 1.0


def test_metrics_flag_threads_to_clones_and_fallback():
    from repro.graph import FrozenOracle, Graph

    graph = Graph()
    for i in range(5):
        graph.add_edge(i, i + 1, 1.0)
    recorder = Recorder(registry=MetricsRegistry())
    oracle = FrozenOracle(graph, patchable=True, metrics=recorder)
    assert oracle.metrics is recorder
    clone = oracle.rebased(graph.copy(), {(0, 1): 2.0})
    assert clone.metrics is recorder


# ----------------------------------------------------------------------
# unified cache snapshots
# ----------------------------------------------------------------------

_SNAPSHOT_KEYS = {
    "schema", "scope", "rows", "budget_bytes", "total_bytes", "peak_bytes",
    "hits", "misses", "evictions", "idle_evictions", "budget_evictions",
    "repair_evictions", "overshoots", "tree_index_bytes",
}


def test_cache_snapshot_unified_schema():
    from repro.graph import FrozenOracle, Graph

    graph = Graph()
    for i in range(4):
        graph.add_edge(i, i + 1, 1.0)
    oracle = FrozenOracle(graph)
    oracle.distance(0, 3)
    snap = oracle.cache_snapshot()
    assert snap["schema"] == CACHE_SNAPSHOT_SCHEMA
    assert snap["scope"] == "oracle"
    assert _SNAPSHOT_KEYS.issubset(snap)
    assert snap["rows"] >= 1
    # The legacy name is a thin alias of the same shape.
    assert oracle.cache_stats() == snap


def test_simulator_and_controller_snapshot_scopes():
    from repro.distributed.controller import Controller
    from repro.graph import Graph
    from repro.online.simulator import OnlineSimulator
    from repro.topology import softlayer_network

    simulator = OnlineSimulator(softlayer_network(seed=1))
    sim_snap = simulator.cache_snapshot()
    assert sim_snap["scope"] == "simulator"
    assert sim_snap["schema"] == CACHE_SNAPSHOT_SCHEMA
    assert simulator.cache_stats() == sim_snap

    graph = Graph()
    for i in range(6):
        graph.add_edge(i, (i + 1) % 6, 1.0)
    controller = Controller.for_domain(3, {0, 1, 2}, graph)
    controller.local_distances_from(0)
    ctrl_snap = controller.cache_snapshot()
    assert ctrl_snap["scope"] == "controller"
    assert ctrl_snap["domain"] == 3
    assert controller.cache_stats() == ctrl_snap


def test_snapshot_with_recorder_publishes_gauges():
    from repro.graph import FrozenOracle, Graph

    graph = Graph()
    for i in range(4):
        graph.add_edge(i, i + 1, 1.0)
    recorder = Recorder(registry=MetricsRegistry())
    oracle = FrozenOracle(graph, metrics=recorder)
    oracle.distance(0, 3)
    snap = oracle.cache_snapshot()
    gauges = recorder.snapshot()["gauges"]
    assert gauges["oracle.cache.rows"] == snap["rows"]
    assert gauges["oracle.cache.total_bytes"] == snap["total_bytes"]
    assert gauges["oracle.cache.tree_index_bytes"] == snap["tree_index_bytes"]


# ----------------------------------------------------------------------
# distributed + sweep integration
# ----------------------------------------------------------------------

def test_distributed_counters_and_identical_forest():
    from repro import ServiceChain
    from repro.distributed import DistributedSOFDA
    from repro.graph import FrozenOracle
    from repro.topology import softlayer_network

    def make_instance(metrics=None):
        instance = softlayer_network(seed=2).make_instance(
            num_sources=2, num_destinations=3, num_vms=6,
            chain=ServiceChain.of_length(2), seed=4,
        )
        if metrics is not None:
            # Pre-build the shared oracle with the recorder knob so the
            # coordinator and its per-domain controllers inherit it.
            instance._oracle = FrozenOracle(
                instance.graph,
                hot=instance.vms | instance.sources | instance.destinations,
                metrics=metrics,
            )
        return instance

    plain = DistributedSOFDA(make_instance(), num_domains=3, seed=0).run()
    recorder = Recorder(registry=MetricsRegistry())
    coordinator = DistributedSOFDA(
        make_instance(metrics=recorder), num_domains=3, seed=0
    )
    traced = coordinator.run()
    # Abstraction queries (border matrices, node-to-border rows) are what
    # the dist.query counters observe.
    assert coordinator.verify_abstraction(samples=5)

    assert traced.forest.total_cost() == plain.forest.total_cost()
    assert traced.bus.num_messages == plain.bus.num_messages
    snap = recorder.snapshot()
    assert recorder.registry.counter_total("dist.query") > 0
    assert recorder.registry.counter_total("dist.messages") == (
        plain.bus.num_messages
    )
    kinds = {
        k for k in snap["counters"] if k.startswith("dist.messages{")
    }
    assert kinds  # per-kind series present


def test_run_sweep_merges_cell_timings():
    from repro.experiments.harness import run_sweep
    from repro.topology import softlayer_network

    network = softlayer_network(seed=1)
    algorithms = {"SOFDA": None}
    from repro.core.sofda import sofda as _sofda

    algorithms = {"SOFDA": lambda inst: _sofda(inst).forest}
    overrides = {
        "num_sources": 2, "num_destinations": 2, "num_vms": 4,
        "chain_length": 2,
    }
    recorder = Recorder(registry=MetricsRegistry())
    plain = run_sweep(
        network, "num_sources", [2, 3], algorithms=algorithms, seeds=2,
        overrides=overrides,
    )
    traced = run_sweep(
        network, "num_sources", [2, 3], algorithms=algorithms, seeds=2,
        overrides=overrides, metrics=recorder,
    )
    assert traced.mean_cost == plain.mean_cost
    assert traced.mean_vms_used == plain.mean_vms_used
    assert recorder.registry.counter_total("sweep.cells") == 4
    assert recorder.registry.histogram_count("sweep.cell") == 4
    # Histogram sums mirror the merged mean runtimes.
    total = sum(sum(v) for v in traced.mean_runtime_s.values()) * 2
    assert recorder.registry.histogram_sum("sweep.cell") == pytest.approx(
        total
    )


# ----------------------------------------------------------------------
# smoke entry point
# ----------------------------------------------------------------------

def test_smoke_snapshot_is_canonical(tmp_path):
    from repro.obs.smoke import run_smoke

    out = run_smoke(trace_out=str(tmp_path / "trace.jsonl"))
    snap = json.loads(out)
    assert set(snap) == {"counters", "gauges", "histograms"}
    assert out == json.dumps(snap, sort_keys=True, indent=2)
    assert (tmp_path / "trace.jsonl").exists()
