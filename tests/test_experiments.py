"""Tests for the experiment harness and reporting."""

import pytest

from repro.experiments import (
    fig7_cost_function,
    render_series,
    render_table,
    run_sweep,
)
from repro.experiments.harness import DEFAULTS, SweepResult, default_algorithms
from repro.topology import softlayer_network


def test_fig7_series():
    curve = fig7_cost_function(samples=13)
    assert len(curve) == 13
    assert curve[0] == (0.0, 0.0)
    assert curve[-1][0] == pytest.approx(1.2)


def test_default_algorithms_names():
    algos = default_algorithms()
    assert set(algos) == {"SOFDA", "eNEMP", "eST", "ST"}
    with_ilp = default_algorithms(include_ilp=True)
    assert "CPLEX" in with_ilp


def test_run_sweep_structure():
    network = softlayer_network(seed=1)
    result = run_sweep(
        network, "num_vms", [5, 10], seeds=2,
        overrides={"num_sources": 3, "num_destinations": 3,
                   "chain_length": 2},
    )
    assert result.parameter == "num_vms"
    assert result.values == [5, 10]
    for name in ("SOFDA", "eNEMP", "eST", "ST"):
        assert len(result.mean_cost[name]) == 2
        assert len(result.mean_vms_used[name]) == 2
        assert all(c > 0 for c in result.mean_cost[name])
    assert len(result.winner_per_value()) == 2


def test_run_sweep_unknown_parameter():
    with pytest.raises(ValueError):
        run_sweep(softlayer_network(seed=1), "frobnication", [1, 2])


def test_run_sweep_custom_algorithms():
    from repro.core.sofda import sofda

    network = softlayer_network(seed=1)
    result = run_sweep(
        network, "chain_length", [2], seeds=1,
        algorithms={"only": lambda inst: sofda(inst).forest},
        overrides={"num_sources": 2, "num_destinations": 2, "num_vms": 6},
    )
    assert list(result.mean_cost) == ["only"]


def test_run_sweep_workers_matches_serial():
    """The pooled sweep must reproduce the serial output exactly."""
    network = softlayer_network(seed=1)
    kwargs = dict(
        parameter="num_vms", values=[5, 10], seeds=2,
        overrides={"num_sources": 3, "num_destinations": 3,
                   "chain_length": 2},
    )
    serial = run_sweep(network, **kwargs)
    pooled = run_sweep(network, workers=4, **kwargs)
    assert pooled.values == serial.values
    assert pooled.mean_cost == serial.mean_cost
    assert pooled.mean_vms_used == serial.mean_vms_used
    # Runtimes are measured per cell, so both modes report sane values.
    for name in serial.mean_cost:
        assert all(t >= 0 for t in pooled.mean_runtime_s[name])


def test_run_sweep_warns_once_without_fork(monkeypatch):
    """Platforms without fork fall back to serial -- loudly, once."""
    import warnings

    from repro.experiments import harness

    monkeypatch.setattr(
        harness.multiprocessing, "get_all_start_methods", lambda: ["spawn"]
    )
    monkeypatch.setattr(harness, "_warned_no_fork", False)
    network = softlayer_network(seed=1)
    kwargs = dict(
        parameter="num_vms", values=[5, 10], seeds=1,
        overrides={"num_sources": 2, "num_destinations": 2,
                   "chain_length": 2},
    )
    with pytest.warns(RuntimeWarning, match="fork.*unavailable"):
        fallback = run_sweep(network, workers=4, **kwargs)
    # The fallback still evaluates every cell -- serially and exactly.
    serial = run_sweep(network, **kwargs)
    assert fallback.mean_cost == serial.mean_cost
    # Only the first sweep reports; repeats stay quiet.
    with warnings.catch_warnings():
        warnings.simplefilter("error", RuntimeWarning)
        run_sweep(network, workers=4, **kwargs)


def test_run_sweep_workers_custom_algorithms():
    """Fork inheritance carries even lambda embedders to the workers."""
    from repro.core.sofda import sofda

    network = softlayer_network(seed=1)
    kwargs = dict(
        parameter="chain_length", values=[2], seeds=2,
        algorithms={"only": lambda inst: sofda(inst).forest},
        overrides={"num_sources": 2, "num_destinations": 2, "num_vms": 6},
    )
    serial = run_sweep(network, **kwargs)
    pooled = run_sweep(network, workers=2, **kwargs)
    assert pooled.mean_cost == serial.mean_cost


def test_defaults_match_paper():
    assert DEFAULTS == {
        "num_sources": 14, "num_destinations": 6,
        "num_vms": 25, "chain_length": 3,
    }


def test_render_series():
    result = SweepResult(
        parameter="num_vms", values=[5, 10],
        mean_cost={"A": [3.0, 2.0], "B": [4.0, 1.0]},
    )
    text = render_series(result, title="demo")
    assert "demo" in text
    assert "num_vms" in text
    assert "winner" in text
    assert result.winner_per_value() == ["A", "B"]


def test_render_table():
    text = render_table(
        {"SOFDA": {"startup": 2.5, "label": "x"}},
        headers=["startup", "label"],
        title="QoE",
    )
    assert "QoE" in text and "SOFDA" in text and "2.500" in text
