"""Tests for SOFDA-SS (Algorithm 1, single source)."""

import pytest

from helpers import random_instance
from repro import check_forest, sofda_ss
from repro.ilp import solve_sof_ilp


def test_fig3_example_runs(fig3_instance):
    forest = sofda_ss(fig3_instance, source=1)
    check_forest(fig3_instance, forest)
    # One tree, all five VNFs placed in order.
    assert forest.num_trees() == 1
    assert len(forest.enabled) == 5


def test_fig3_example_cost_reasonable(fig3_instance):
    forest = sofda_ss(fig3_instance, source=1)
    opt = solve_sof_ilp(fig3_instance).objective
    assert forest.total_cost() >= opt - 1e-9
    # Theorem 2: (2 + rho_ST) with rho_ST = 2 for KMB -> factor 4.
    assert forest.total_cost() <= 4 * opt + 1e-9


def test_fig2_single_source(fig2_instance):
    forest = sofda_ss(fig2_instance, source=1)
    check_forest(fig2_instance, forest)
    assert forest.chains[0].source == 1


def test_best_source_selection(fig2_instance):
    best = sofda_ss(fig2_instance)  # tries both sources
    fixed0 = sofda_ss(fig2_instance, source=0)
    fixed1 = sofda_ss(fig2_instance, source=1)
    assert best.total_cost() <= min(fixed0.total_cost(), fixed1.total_cost()) + 1e-9


def test_invalid_source_raises(fig2_instance):
    with pytest.raises(ValueError):
        sofda_ss(fig2_instance, source=99)


def test_candidate_restriction(fig2_instance):
    forest = sofda_ss(fig2_instance, source=1, candidate_last_vms=[7])
    assert forest.chains[0].last_vm == 7


@pytest.mark.parametrize("seed", range(10))
def test_feasible_on_random_instances(seed):
    instance = random_instance(seed, n=16, num_vms=6, num_sources=1,
                               num_dests=3, chain_len=2)
    forest = sofda_ss(instance)
    check_forest(instance, forest)


@pytest.mark.parametrize("seed", range(6))
def test_approximation_bound_versus_optimum(seed):
    instance = random_instance(seed + 40, n=14, num_vms=5, num_sources=1,
                               num_dests=3, chain_len=2)
    forest = sofda_ss(instance)
    opt = solve_sof_ilp(instance).objective
    assert forest.total_cost() >= opt - 1e-6
    assert forest.total_cost() <= 4 * opt + 1e-6  # (2 + rho) with rho = 2


def test_exact_steiner_never_worse(fig3_instance):
    kmb = sofda_ss(fig3_instance, source=1, steiner_method="kmb")
    exact = sofda_ss(fig3_instance, source=1, steiner_method="exact")
    assert exact.total_cost() <= kmb.total_cost() + 1e-9


def test_chain_order_respected(fig3_instance):
    forest = sofda_ss(fig3_instance, source=1)
    chain = forest.chains[0]
    positions = [pos for pos, _ in chain.vnf_positions()]
    assert positions == sorted(positions)
    vnfs = [vnf for _, vnf in chain.vnf_positions()]
    assert vnfs == list(range(5))
