"""Tests for SOFDA (Algorithm 2, general case)."""

import pytest

from helpers import random_instance
from repro import Graph, ServiceChain, SOFInstance, check_forest, sofda
from repro.core.sofda import build_auxiliary_graph
from repro.ilp import solve_sof_ilp


def test_fig2_matches_optimum(fig2_instance):
    result = sofda(fig2_instance)
    check_forest(fig2_instance, result.forest)
    opt = solve_sof_ilp(fig2_instance)
    assert opt.objective == pytest.approx(28.0)
    assert result.cost == pytest.approx(28.0)


def test_auxiliary_graph_structure(fig2_instance):
    aux = build_auxiliary_graph(fig2_instance)
    g = aux.graph
    assert aux.virtual_source in g
    # Source duplicates hang off the virtual source with cost 0.
    for s in fig2_instance.sources:
        assert g.cost(aux.virtual_source, ("src^", s)) == 0.0
    # VM duplicates hang off their VM with cost 0.
    for u in fig2_instance.vms:
        assert g.cost(u, ("vm^", u)) == 0.0
    # Virtual edges price complete candidate chains.
    for (v, u), walk in aux.walks.items():
        assert g.cost(("src^", v), ("vm^", u)) == pytest.approx(walk.total_cost)
        assert len(walk.stroll) == len(fig2_instance.chain) + 1


def test_virtual_edge_cost_equals_chain_cost(fig2_instance):
    aux = build_auxiliary_graph(fig2_instance)
    for walk in aux.walks.values():
        recomputed = sum(
            fig2_instance.graph.cost(a, b)
            for a, b in zip(walk.walk, walk.walk[1:])
        ) + sum(fig2_instance.setup_cost(m) for m in walk.stroll[1:])
        assert walk.total_cost == pytest.approx(recomputed)


@pytest.mark.parametrize("seed", range(12))
def test_feasible_on_random_instances(seed):
    instance = random_instance(seed, n=18, num_vms=7, num_sources=3,
                               num_dests=4, chain_len=3)
    result = sofda(instance)
    check_forest(instance, result.forest)


@pytest.mark.parametrize("seed", range(8))
def test_never_below_optimum_and_within_bound(seed):
    instance = random_instance(seed + 90, n=14, num_vms=5, num_sources=2,
                               num_dests=3, chain_len=2)
    result = sofda(instance)
    opt = solve_sof_ilp(instance).objective
    assert result.cost >= opt - 1e-6
    # Theorem 3: 3 * rho_ST with rho_ST = 2 for KMB -> factor 6.
    assert result.cost <= 6 * opt + 1e-6


def test_multi_tree_on_separated_clusters():
    """Two far-apart clusters force a two-tree forest."""
    g = Graph()
    # Cluster A: source sA, VMs a1 a2, dests dA1 dA2.
    for u, v, c in [("sA", "a1", 1), ("a1", "a2", 1), ("a2", "dA1", 1),
                    ("a2", "dA2", 1)]:
        g.add_edge(u, v, float(c))
    # Cluster B mirrors A.
    for u, v, c in [("sB", "b1", 1), ("b1", "b2", 1), ("b2", "dB1", 1),
                    ("b2", "dB2", 1)]:
        g.add_edge(u, v, float(c))
    # One very expensive bridge.
    g.add_edge("a2", "b2", 100.0)
    instance = SOFInstance(
        graph=g, vms={"a1", "a2", "b1", "b2"}, sources={"sA", "sB"},
        destinations={"dA1", "dA2", "dB1", "dB2"},
        chain=ServiceChain.of_length(2),
        node_costs={"a1": 1.0, "a2": 1.0, "b1": 1.0, "b2": 1.0},
    )
    result = sofda(instance)
    check_forest(instance, result.forest)
    assert result.forest.num_trees() == 2
    assert result.cost < 100.0  # never crosses the bridge


def test_deterministic(fig2_instance):
    a = sofda(fig2_instance)
    b = sofda(fig2_instance)
    assert a.cost == b.cost
    assert [c.walk for c in a.forest.chains] == [c.walk for c in b.forest.chains]


def test_prune_flag(fig2_instance):
    pruned = sofda(fig2_instance, prune=True)
    raw = sofda(fig2_instance, prune=False)
    assert pruned.cost <= raw.cost + 1e-9
    check_forest(fig2_instance, raw.forest)


def test_single_source_instance_degenerates_to_one_tree(fig3_instance):
    result = sofda(fig3_instance)
    check_forest(fig3_instance, result.forest)
    assert result.forest.num_trees() == 1


def test_result_diagnostics(fig2_instance):
    result = sofda(fig2_instance)
    assert result.num_virtual_edges >= 1
    stats = result.stats.as_dict()
    assert stats["clean"] >= 1
    assert result.stats.total_conflicted() + stats["clean"] >= result.num_virtual_edges
