"""Tests for the Fortz--Thorup cost model and the load tracker."""

import pytest

from repro.costmodel import (
    LoadTracker,
    assign_static_costs,
    fortz_thorup_cost,
    fortz_thorup_curve,
)
from repro.graph import Graph


def test_exact_segment_values():
    # Evaluate the printed formula at representative points (p = 1).
    assert fortz_thorup_cost(0.2) == pytest.approx(0.2)
    assert fortz_thorup_cost(0.5) == pytest.approx(3 * 0.5 - 2 / 3)
    assert fortz_thorup_cost(0.8) == pytest.approx(10 * 0.8 - 16 / 3)
    assert fortz_thorup_cost(0.95) == pytest.approx(70 * 0.95 - 178 / 3)
    assert fortz_thorup_cost(1.05) == pytest.approx(500 * 1.05 - 1468 / 3)
    assert fortz_thorup_cost(1.5) == pytest.approx(5000 * 1.5 - 14318 / 3)


def test_continuity_at_breakpoints():
    for knee in (1 / 3, 2 / 3, 9 / 10, 1.0):
        below = fortz_thorup_cost(knee - 1e-9)
        above = fortz_thorup_cost(knee + 1e-9)
        assert below == pytest.approx(above, abs=1e-4)


def test_paper_discontinuity_at_last_knee():
    """The paper prints intercept -14318/3 for the last segment; the
    original Fortz--Thorup function uses -16318/3, which would be
    continuous.  We reproduce the paper as printed, so the function jumps
    at l/p = 11/10 -- this test documents that deliberate fidelity."""
    below = fortz_thorup_cost(1.1 - 1e-9)
    above = fortz_thorup_cost(1.1 + 1e-9)
    assert above > below + 600  # the printed coefficients jump by ~666.7


def test_capacity_scaling():
    # Homogeneity: c(l, p) = p * c(l/p, 1).
    for load, cap in [(30.0, 100.0), (95.0, 100.0), (4.0, 5.0)]:
        assert fortz_thorup_cost(load, cap) == pytest.approx(
            cap * fortz_thorup_cost(load / cap, 1.0)
        )


def test_invalid_arguments():
    with pytest.raises(ValueError):
        fortz_thorup_cost(1.0, 0.0)
    with pytest.raises(ValueError):
        fortz_thorup_cost(-1.0, 1.0)


def test_curve_shape():
    curve = fortz_thorup_curve(samples=121)
    assert len(curve) == 121
    assert curve[0] == (0.0, 0.0)
    costs = [c for _, c in curve]
    assert all(b >= a for a, b in zip(costs, costs[1:]))
    with pytest.raises(ValueError):
        fortz_thorup_curve(samples=1)


def test_assign_static_costs():
    import random

    g = Graph.from_edges([(0, 1, 99.0), (1, 2, 99.0)])
    assign_static_costs(g, random.Random(0), capacity=100.0)
    for _, _, cost in g.edges():
        assert 0.0 <= cost <= fortz_thorup_cost(100.0, 100.0)
        assert cost != 99.0


def test_load_tracker_links():
    tracker = LoadTracker(link_capacity=100.0)
    tracker.add_link_load(0, 1, 30.0)
    tracker.add_link_load(1, 0, 20.0)  # same undirected link
    assert tracker.link_utilisation(0, 1) == pytest.approx(0.5)
    assert tracker.link_cost(0, 1) == pytest.approx(fortz_thorup_cost(50.0, 100.0))
    assert tracker.link_cost(5, 6) == 0.0  # untouched link


def test_load_tracker_nodes():
    tracker = LoadTracker(node_capacity=5.0)
    for _ in range(5):
        tracker.add_node_load("vm")
    assert tracker.node_utilisation("vm") == pytest.approx(1.0)
    assert tracker.node_cost("vm") == pytest.approx(fortz_thorup_cost(5.0, 5.0))


def test_congestion_queries():
    tracker = LoadTracker(link_capacity=10.0, node_capacity=2.0)
    tracker.add_link_load(0, 1, 9.5)
    tracker.add_link_load(1, 2, 1.0)
    tracker.add_node_load("vm", 2.0)
    assert list(tracker.congested_links()) == [(0, 1)]
    assert list(tracker.overloaded_nodes()) == ["vm"]


def test_congestion_threshold_boundary_is_strict():
    """Exactly-at-threshold utilisation is NOT congested/overloaded.

    The documented boundary is strict ``>``; the rerouting layer shares
    it, so a link or host sitting precisely on the 0.9 default can never
    be classified differently by the two layers.
    """
    tracker = LoadTracker(link_capacity=100.0, node_capacity=5.0)
    tracker.add_link_load(0, 1, 90.0)  # exactly 0.9 utilisation
    tracker.add_node_load("vm", 4.5)   # exactly 0.9 utilisation
    assert list(tracker.congested_links()) == []
    assert list(tracker.overloaded_nodes()) == []
    # One epsilon of extra load tips both over.
    tracker.add_link_load(0, 1, 1e-9)
    tracker.add_node_load("vm", 1e-9)
    assert list(tracker.congested_links()) == [(0, 1)]
    assert list(tracker.overloaded_nodes()) == ["vm"]


def test_apply_to_graph_floor():
    tracker = LoadTracker()
    g = Graph.from_edges([(0, 1, 5.0)])
    tracker.apply_to_graph(g, floor=0.25)
    assert g.cost(0, 1) == 0.25  # zero load -> floor
    tracker.add_link_load(0, 1, 90.0)
    tracker.apply_to_graph(g)
    assert g.cost(0, 1) == pytest.approx(fortz_thorup_cost(90.0, 100.0))
