"""Steiner-tree solver tests: correctness, bounds, cross-validation."""

import random

import pytest

from helpers import random_connected_graph
from repro.graph import Graph, metric_closure, steiner_tree
from repro.graph.steiner import (
    dreyfus_wagner_steiner_tree,
    kmb_steiner_tree,
    mehlhorn_steiner_tree,
)


def _grid_graph(n: int) -> Graph:
    g = Graph()
    for i in range(n):
        for j in range(n):
            if i + 1 < n:
                g.add_edge((i, j), (i + 1, j), 1.0)
            if j + 1 < n:
                g.add_edge((i, j), (i, j + 1), 1.0)
    return g


def _check_valid_tree(result, graph, terminals):
    tree = result.tree
    assert all(t in tree for t in terminals)
    assert tree.is_connected()
    # A tree: |E| = |V| - 1.
    assert tree.num_edges() == len(tree) - 1
    # Every tree edge is a graph edge with the same cost.
    for u, v, c in tree.edges():
        assert graph.has_edge(u, v)
        assert graph.cost(u, v) == pytest.approx(c)
    # No non-terminal leaves remain.
    for node in tree.nodes():
        if node not in terminals:
            assert tree.degree(node) >= 2
    assert result.cost == pytest.approx(tree.total_edge_cost())


@pytest.mark.parametrize("method", ["kmb", "mehlhorn", "exact"])
def test_single_terminal(method):
    g = Graph.from_edges([(1, 2, 1.0)])
    result = steiner_tree(g, [1], method=method)
    assert result.cost == 0.0
    assert 1 in result.tree


@pytest.mark.parametrize("method", ["kmb", "mehlhorn", "exact"])
def test_two_terminals_is_shortest_path(method):
    g = Graph.from_edges([(1, 2, 1.0), (2, 3, 1.0), (1, 3, 5.0)])
    result = steiner_tree(g, [1, 3], method=method)
    assert result.cost == pytest.approx(2.0)


@pytest.mark.parametrize("method", ["kmb", "mehlhorn", "exact"])
def test_star_uses_steiner_point(method):
    # Classic: 3 terminals around a cheap hub; the tree should use the hub.
    g = Graph.from_edges([
        ("hub", "a", 1.0), ("hub", "b", 1.0), ("hub", "c", 1.0),
        ("a", "b", 3.0), ("b", "c", 3.0), ("a", "c", 3.0),
    ])
    result = steiner_tree(g, ["a", "b", "c"], method=method)
    assert result.cost == pytest.approx(3.0)
    assert "hub" in result.tree


@pytest.mark.parametrize("method", ["kmb", "mehlhorn", "exact"])
@pytest.mark.parametrize("seed", range(4))
def test_valid_tree_on_random_graphs(method, seed):
    rng = random.Random(seed)
    g = random_connected_graph(rng, 25, extra_edges=20)
    terminals = rng.sample(range(25), 5)
    result = steiner_tree(g, terminals, method=method)
    _check_valid_tree(result, g, set(terminals))


@pytest.mark.parametrize("seed", range(6))
def test_kmb_within_2x_of_exact(seed):
    rng = random.Random(seed + 100)
    g = random_connected_graph(rng, 20, extra_edges=15)
    terminals = rng.sample(range(20), 5)
    exact = dreyfus_wagner_steiner_tree(g, terminals)
    kmb = kmb_steiner_tree(g, terminals)
    mehl = mehlhorn_steiner_tree(g, terminals)
    assert exact.cost <= kmb.cost + 1e-9
    assert exact.cost <= mehl.cost + 1e-9
    assert kmb.cost <= 2 * exact.cost + 1e-9
    assert mehl.cost <= 2 * exact.cost + 1e-9


def test_exact_on_grid_known_value():
    # Terminals at 3 corners of a 3x3 grid: the optimal Steiner tree is
    # the L-shaped 4-edge tree.
    g = _grid_graph(3)
    result = dreyfus_wagner_steiner_tree(g, [(0, 0), (0, 2), (2, 0)])
    assert result.cost == pytest.approx(4.0)


def test_exact_too_many_terminals_raises():
    g = _grid_graph(5)
    terminals = list(g.nodes())[:15]
    with pytest.raises(ValueError):
        dreyfus_wagner_steiner_tree(g, terminals)


def test_unreachable_terminals_raise():
    g = Graph.from_edges([(1, 2, 1.0)])
    g.add_node(9)
    for method in ("kmb", "mehlhorn", "exact"):
        with pytest.raises(ValueError):
            steiner_tree(g, [1, 9], method=method)


def test_duplicate_terminals_deduplicated():
    g = Graph.from_edges([(1, 2, 1.0), (2, 3, 1.0)])
    result = steiner_tree(g, [1, 3, 1, 3], method="kmb")
    assert result.cost == pytest.approx(2.0)


def test_unknown_method_raises():
    g = Graph.from_edges([(1, 2, 1.0)])
    with pytest.raises(ValueError):
        steiner_tree(g, [1, 2], method="quantum")


def test_auto_uses_exact_on_small_instances():
    g = Graph.from_edges([
        ("hub", "a", 1.0), ("hub", "b", 1.0), ("hub", "c", 1.0),
        ("a", "b", 3.0), ("b", "c", 3.0), ("a", "c", 3.0),
    ])
    result = steiner_tree(g, ["a", "b", "c"], method="auto")
    assert result.cost == pytest.approx(3.0)


def test_metric_closure_costs_are_shortest_paths():
    g = Graph.from_edges([(1, 2, 1.0), (2, 3, 1.0), (1, 3, 9.0)])
    closure = metric_closure(g, [1, 3])
    assert closure.cost(1, 3) == pytest.approx(2.0)


def test_steiner_cost_at_least_metric_mst_lower_bound():
    # The optimal Steiner tree costs at least half the metric-closure MST
    # (standard bound); sanity-check the relation on random graphs.
    from repro.graph import kruskal_mst

    rng = random.Random(77)
    g = random_connected_graph(rng, 22, extra_edges=18)
    terminals = rng.sample(range(22), 5)
    closure_mst = kruskal_mst(metric_closure(g, terminals))
    exact = dreyfus_wagner_steiner_tree(g, terminals)
    assert exact.cost >= closure_mst.total_edge_cost() / 2 - 1e-9
    assert exact.cost <= closure_mst.total_edge_cost() + 1e-9
