"""Tests for link-failure injection through the online stack.

Covers the seeded :class:`LinkFailureProcess`, the fail/recover event
kinds in the workload engine and trace codec (version 2, with version-1
churn-only back-compat), the simulator's graceful-degradation hooks
(mass rerouting, disrupted-lease release), and the equivalence of every
acceptance/reroute/disruption decision between incremental topology
patching and the invalidate-and-rebuild reference.
"""

import json
import random

import pytest

from repro import sofda
from repro.online import FailureImpact, RequestGenerator
from repro.online.simulator import OnlineSimulator
from repro.topology import inet_network, softlayer_network
from repro.workload import (
    ExponentialHolding,
    LinkFailureProcess,
    PoissonArrivals,
    WorkloadEngine,
    build_schedule,
    dump_trace,
    load_trace,
)

EMBED = lambda inst: sofda(inst).forest  # noqa: E731


def physical_links(network):
    return sorted(((u, v) for u, v, _ in network.graph.edges()), key=repr)


# ----------------------------------------------------------------------
# LinkFailureProcess
# ----------------------------------------------------------------------
def test_failure_process_is_deterministic():
    links = [(0, 1), (1, 2), (2, 3)]
    a = LinkFailureProcess(links, mtbf=10.0, mttr=1.0, seed=3).events(50.0)
    b = LinkFailureProcess(links, mtbf=10.0, mttr=1.0, seed=3).events(50.0)
    assert a == b
    c = LinkFailureProcess(links, mtbf=10.0, mttr=1.0, seed=4).events(50.0)
    assert a != c


def test_failure_process_pairs_fail_with_recover():
    links = [(0, 1), (1, 2)]
    events = LinkFailureProcess(links, mtbf=5.0, mttr=2.0, seed=1).events(40.0)
    assert events == sorted(events, key=lambda e: e.time)
    open_links = set()
    per_link = {}
    for event in events:
        if event.kind == "fail":
            assert event.link not in open_links
            assert event.time <= 40.0
            open_links.add(event.link)
        else:
            assert event.kind == "recover"
            assert event.link in open_links
            open_links.remove(event.link)
        per_link.setdefault(event.link, []).append(event)
    # Every failure recovered, even if the repair lands past the horizon.
    assert not open_links
    for seq in per_link.values():
        kinds = [e.kind for e in sorted(seq, key=lambda e: e.time)]
        assert kinds == ["fail", "recover"] * (len(kinds) // 2)


def test_failure_process_validation():
    with pytest.raises(ValueError):
        LinkFailureProcess([(0, 1)], mtbf=0.0, mttr=1.0)
    with pytest.raises(ValueError):
        LinkFailureProcess([(0, 1)], mtbf=1.0, mttr=-1.0)
    with pytest.raises(ValueError):
        LinkFailureProcess([], mtbf=1.0, mttr=1.0)
    with pytest.raises(ValueError):
        LinkFailureProcess([(0, 1)], mtbf=1.0, mttr=1.0).events(0.0)


# ----------------------------------------------------------------------
# trace codec: version 2 + version-1 back-compat
# ----------------------------------------------------------------------
def make_failure_schedule(network, horizon=15.0, seed=0):
    generator = RequestGenerator(network, seed=seed)
    process = PoissonArrivals(generator, rate=1.5, seed=seed + 1)
    holding = ExponentialHolding(mean=4.0, seed=seed + 2)
    failures = LinkFailureProcess(
        physical_links(network)[:12], mtbf=12.0, mttr=1.5, seed=seed + 3
    )
    return build_schedule(process, horizon=horizon, holding=holding,
                          failures=failures)


def test_trace_round_trip_version2():
    network = softlayer_network(seed=3)
    schedule = make_failure_schedule(network)
    assert any(e.kind == "fail" for e in schedule)
    lines = list(dump_trace(schedule))
    assert json.loads(lines[0])["version"] == 2
    replayed = load_trace(lines)
    assert len(replayed) == len(schedule)
    for original, copy in zip(schedule, replayed):
        assert copy.time == original.time
        assert copy.kind == original.kind
        assert copy.link == original.link


def test_churn_only_trace_stays_version1():
    network = softlayer_network(seed=3)
    generator = RequestGenerator(network, seed=0)
    process = PoissonArrivals(generator, rate=1.0, seed=1)
    schedule = build_schedule(
        process, horizon=10.0, holding=ExponentialHolding(3.0, seed=2)
    )
    lines = list(dump_trace(schedule))
    assert json.loads(lines[0])["version"] == 1
    replayed = load_trace(lines)
    assert len(replayed) == len(schedule)
    assert all(e.kind == "arrive" for e in replayed)


def test_unsupported_trace_version_rejected():
    lines = [json.dumps({"record": "sof-workload-trace", "version": 3})]
    with pytest.raises(ValueError, match="unsupported trace version"):
        load_trace(lines)


# ----------------------------------------------------------------------
# simulator failure hooks
# ----------------------------------------------------------------------
@pytest.fixture
def loaded_simulator():
    network = softlayer_network(seed=3)
    simulator = OnlineSimulator(network)
    generator = RequestGenerator(network, seed=11)
    leases = []
    for _ in range(6):
        cost, lease = simulator.embed_leased(generator.next_request(), EMBED)
        assert cost is not None
        leases.append(lease)
    return network, simulator, leases


def carried_physical_link(leases):
    for lease in leases:
        for (u, v), _ in lease.link_loads:
            if not (isinstance(u, tuple) and u and u[0] == "vm") and \
                    not (isinstance(v, tuple) and v and v[0] == "vm"):
                return (u, v)
    raise AssertionError("no physical link carried by any lease")


def test_fail_link_reroutes_or_disrupts(loaded_simulator):
    network, simulator, leases = loaded_simulator
    link = carried_physical_link(leases)
    impact = simulator.fail_link(*link)
    assert isinstance(impact, FailureImpact)
    assert impact.crossing == len(impact.rerouted) + len(impact.disrupted)
    assert impact.crossing >= 1
    # Disrupted tenants were released; rerouted ones still hold loads
    # and no lease still charges the dead link.
    for lease in leases:
        if lease.request_index in impact.disrupted:
            assert lease.released
        else:
            assert not lease.released
            assert all(edge != impact.link for edge, _ in lease.link_loads)


def test_fail_link_rejects_dead_or_unknown_links(loaded_simulator):
    network, simulator, leases = loaded_simulator
    link = carried_physical_link(leases)
    simulator.fail_link(*link)
    with pytest.raises(ValueError, match="already failed"):
        simulator.fail_link(*link)
    with pytest.raises(ValueError, match="not a live link"):
        simulator.fail_link("nope", "nada")
    with pytest.raises(ValueError, match="not a failed link"):
        simulator.recover_link("nope", "nada")


def test_recover_link_restores_embedding(loaded_simulator):
    network, simulator, leases = loaded_simulator
    link = carried_physical_link(leases)
    simulator.fail_link(*link)
    simulator.recover_link(*link)
    generator = RequestGenerator(network, seed=99)
    cost, lease = simulator.embed_leased(generator.next_request(), EMBED)
    assert cost is not None
    simulator.release(lease)


def test_double_release_raises(loaded_simulator):
    network, simulator, leases = loaded_simulator
    simulator.release(leases[0])
    with pytest.raises(ValueError, match="already released"):
        simulator.release(leases[0])


def test_release_after_disruption_raises(loaded_simulator):
    network, simulator, leases = loaded_simulator
    link = carried_physical_link(leases)
    impact = simulator.fail_link(*link)
    for lease in leases:
        if lease.request_index in impact.disrupted:
            with pytest.raises(ValueError, match="already released"):
                simulator.release(lease)


def test_loads_conserved_after_full_churn(loaded_simulator):
    network, simulator, leases = loaded_simulator
    link = carried_physical_link(leases)
    impact = simulator.fail_link(*link)
    simulator.recover_link(*link)
    for lease in leases:
        if not lease.released:
            simulator.release(lease)
    tracker = simulator.tracker
    for load in tracker.link_load.values():
        assert load == pytest.approx(0.0, abs=1e-9)
    for load in tracker.node_load.values():
        assert load == pytest.approx(0.0, abs=1e-9)


# ----------------------------------------------------------------------
# engine equivalence: incremental vs invalidate, failures interleaved
# ----------------------------------------------------------------------
def run_engine(network, schedule, **simulator_kwargs):
    simulator = OnlineSimulator(network, **simulator_kwargs)
    return WorkloadEngine(simulator, EMBED, name="x").run(schedule), simulator


@pytest.mark.parametrize("reference_kwargs", [
    {"incremental": False},
    {"topology_patch": False},
])
def test_engine_failures_match_rebuild_reference(reference_kwargs):
    network = inet_network(
        num_nodes=100, num_links=200, num_datacenters=25, seed=3
    )
    schedule = make_failure_schedule(network, horizon=12.0, seed=5)
    assert any(e.kind == "fail" for e in schedule)
    patched, _ = run_engine(network, schedule)
    reference, _ = run_engine(network, schedule, **reference_kwargs)
    assert patched.accepted == reference.accepted
    assert patched.rejected == reference.rejected
    assert patched.rerouted == reference.rerouted
    assert patched.disrupted == reference.disrupted
    assert patched.departures == reference.departures
    assert patched.failures == reference.failures
    assert patched.recoveries == reference.recoveries
    assert patched.recovery_latencies == reference.recovery_latencies
    for ours, theirs in zip(patched.per_request_cost,
                            reference.per_request_cost):
        if ours is None or theirs is None:
            assert ours is None and theirs is None
        else:
            assert ours == pytest.approx(theirs, rel=0, abs=1e-9)


def test_engine_counts_disruptions():
    """A disrupted tenant's scheduled departure must not double-release."""
    network = softlayer_network(seed=3)
    # Hammer a small link subset so some reroutes fail.
    generator = RequestGenerator(network, seed=11)
    process = PoissonArrivals(generator, rate=1.2, seed=7)
    holding = ExponentialHolding(mean=8.0, seed=5)
    rng = random.Random(9)
    links = rng.sample(physical_links(network), 14)
    failures = LinkFailureProcess(links, mtbf=15.0, mttr=2.0, seed=13)
    schedule = build_schedule(process, horizon=30.0, holding=holding,
                              failures=failures)
    result, simulator = run_engine(network, schedule)
    assert result.failures > 0 and result.recoveries == result.failures
    assert result.rerouted + result.disrupted > 0
    assert len(result.recovery_latencies) == result.recoveries
    assert all(latency > 0 for latency in result.recovery_latencies)
    # Conservation: everything accepted either departed, was disrupted,
    # or is still active at the end of the run.
    assert result.accepted \
        == result.departures + result.disrupted + result.final_active
    assert 0.0 <= result.disruption_rate <= 1.0
