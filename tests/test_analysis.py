"""Tests for :mod:`repro.analysis`, the AST-based invariant linter.

Fixture snippets are written into per-test temp trees whose directory
names (``graph/``, ``online/``, ...) drive the same path-role
classification as the real layout, so each rule is exercised with a
true positive, a true negative, a suppression, and a baseline
round-trip.  The integration tests at the bottom assert the live tree
is clean under ``--strict`` and that a *fake* oracle flag injected into
a copy of the real sources is reported at every threading site.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import textwrap
from pathlib import Path
from typing import Dict, List

import pytest

from repro.analysis import (
    Baseline,
    all_rules,
    analyze,
    default_baseline_path,
)
from repro.analysis.cli import main as analysis_main
from repro.cli import main as repro_main

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------

def write_tree(root: Path, files: Dict[str, str]) -> Path:
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")
    return root


def lint(root: Path, baseline: Baseline = None):
    return analyze([str(root)], baseline=baseline or Baseline())


def rules_found(result) -> List[str]:
    return sorted(f.rule for f in result.findings)


# ----------------------------------------------------------------------
# determinism rules
# ----------------------------------------------------------------------

SET_ITER_TP = """
    def consume(xs, out):
        items = set(xs)
        for x in items:
            out.append(x)
"""


def test_det_set_iter_true_positive(tmp_path):
    write_tree(tmp_path, {"graph/mod.py": SET_ITER_TP})
    result = lint(tmp_path)
    assert rules_found(result) == ["det-set-iter"]
    (finding,) = result.findings
    assert finding.symbol == "consume"
    assert finding.line == 4


def test_det_set_iter_sorted_is_clean(tmp_path):
    write_tree(tmp_path, {"graph/mod.py": """
        def consume(xs, out):
            items = set(xs)
            for x in sorted(items):
                out.append(x)
    """})
    assert not lint(tmp_path).findings


def test_det_set_iter_only_in_solver_modules(tmp_path):
    # Same snippet outside the solver segments: not in scope.
    write_tree(tmp_path, {"util/mod.py": SET_ITER_TP})
    assert not lint(tmp_path).findings


def test_det_set_iter_order_free_consumers_exempt(tmp_path):
    write_tree(tmp_path, {"graph/mod.py": """
        def probe(xs, d):
            items = set(xs)
            hit = any(x in d for x in items)
            k = sum(1 for x in items)
            lo = min(x for x in items)
            return hit, k, lo
    """})
    assert not lint(tmp_path).findings


def test_det_set_iter_float_sum_still_flagged(tmp_path):
    # sum of non-constant elements is order-sensitive (float addition).
    write_tree(tmp_path, {"graph/mod.py": """
        def total(xs):
            items = set(xs)
            return sum(x for x in items)
    """})
    assert rules_found(lint(tmp_path)) == ["det-set-iter"]


def test_det_set_iter_set_comprehension_exempt(tmp_path):
    write_tree(tmp_path, {"graph/mod.py": """
        def rebuild(xs):
            items = set(xs)
            return {x for x in items}
    """})
    assert not lint(tmp_path).findings


def test_det_unseeded_rng(tmp_path):
    write_tree(tmp_path, {"core/mod.py": """
        import random

        def draw(xs):
            r = random.Random()
            return random.choice(xs), r
    """})
    result = lint(tmp_path)
    assert rules_found(result) == ["det-unseeded-rng", "det-unseeded-rng"]


def test_seeded_rng_is_clean(tmp_path):
    write_tree(tmp_path, {"core/mod.py": """
        import random

        def draw(xs, seed):
            rng = random.Random(seed)
            return rng.choice(xs)
    """})
    assert not lint(tmp_path).findings


def test_det_wallclock(tmp_path):
    write_tree(tmp_path, {"experiments/mod.py": """
        import time

        def stamp():
            return time.time()
    """})
    assert rules_found(lint(tmp_path)) == ["det-wallclock"]


def test_perf_counter_is_clean(tmp_path):
    write_tree(tmp_path, {"experiments/mod.py": """
        import time

        def measure():
            return time.perf_counter()
    """})
    assert not lint(tmp_path).findings


def test_det_ambient_sort_key(tmp_path):
    write_tree(tmp_path, {"core/mod.py": """
        def order(xs):
            return sorted(xs, key=id)

        def order2(xs):
            return sorted(xs, key=lambda x: hash(x))
    """})
    result = lint(tmp_path)
    assert rules_found(result) == [
        "det-ambient-sort-key", "det-ambient-sort-key",
    ]


def test_content_sort_key_is_clean(tmp_path):
    write_tree(tmp_path, {"core/mod.py": """
        def order(xs):
            return sorted(xs, key=repr)
    """})
    assert not lint(tmp_path).findings


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------

def test_inline_suppression(tmp_path):
    write_tree(tmp_path, {"graph/mod.py": """
        def consume(xs, out):
            items = set(xs)
            for x in items:  # repro-lint: disable=det-set-iter -- order sunk
                out.append(x)
    """})
    result = lint(tmp_path)
    assert not result.findings
    assert result.suppressed == 1


def test_standalone_suppression_comment_spans_its_block(tmp_path):
    # A multi-line justification comment still covers the next code line.
    write_tree(tmp_path, {"graph/mod.py": """
        def consume(xs, out):
            items = set(xs)
            # repro-lint: disable=det-set-iter -- the accumulator below is
            # order-insensitive, kept unsorted to match the reference.
            for x in items:
                out.append(x)
    """})
    result = lint(tmp_path)
    assert not result.findings
    assert result.suppressed == 1


def test_suppression_is_rule_specific(tmp_path):
    write_tree(tmp_path, {"graph/mod.py": """
        def consume(xs, out):
            items = set(xs)
            for x in items:  # repro-lint: disable=det-wallclock
                out.append(x)
    """})
    result = lint(tmp_path)
    assert rules_found(result) == ["det-set-iter"]
    assert result.suppressed == 0


# ----------------------------------------------------------------------
# oracle rules
# ----------------------------------------------------------------------

def test_oracle_second_build(tmp_path):
    write_tree(tmp_path, {"online/mod.py": """
        from repro.graph.indexed import FrozenOracle

        def build(graph):
            return FrozenOracle(graph)
    """})
    result = lint(tmp_path)
    assert rules_found(result) == ["oracle-second-build"]
    assert result.findings[0].symbol == "build"


def test_oracle_second_build_sees_import_alias(tmp_path):
    write_tree(tmp_path, {"online/mod.py": """
        from repro.graph.indexed import FrozenOracle as _FO

        def build(graph):
            return _FO(graph)
    """})
    assert rules_found(lint(tmp_path)) == ["oracle-second-build"]


def test_oracle_factory_sites_allowed(tmp_path):
    write_tree(tmp_path, {"online/mod.py": """
        from repro.graph.indexed import FrozenOracle

        class OnlineSimulator:
            def __init__(self, graph):
                self._oracle = FrozenOracle(graph)
    """})
    assert not lint(tmp_path).findings


def test_oracle_default_factory_idiom_allowed(tmp_path):
    write_tree(tmp_path, {"online/mod.py": """
        from repro.graph.indexed import FrozenOracle

        def serve(graph, oracle=None):
            oracle = oracle or FrozenOracle(graph)
            if oracle is None:
                oracle = FrozenOracle(graph)
            return oracle
    """})
    assert not lint(tmp_path).findings


def test_oracle_invalidate_rebuild(tmp_path):
    write_tree(tmp_path, {"online/mod.py": """
        class Sim:
            def on_change(self):
                self._oracle.invalidate()
    """})
    assert rules_found(lint(tmp_path)) == ["oracle-invalidate-rebuild"]


def test_oracle_invalidate_guarded_is_clean(tmp_path):
    write_tree(tmp_path, {"online/mod.py": """
        class Sim:
            def on_change(self, pairs):
                if self._incremental:
                    self._oracle.patch_edge_costs(pairs)
                else:
                    self._oracle.invalidate()
    """})
    assert not lint(tmp_path).findings


def test_oracle_invalidate_outside_patching_modules_is_clean(tmp_path):
    # graph/ owns the oracle; its own invalidate() is the implementation.
    write_tree(tmp_path, {"graph/mod.py": """
        class Cache:
            def drop(self):
                self._oracle.invalidate()
    """})
    assert not lint(tmp_path).findings


# ----------------------------------------------------------------------
# flag threading (project-wide)
# ----------------------------------------------------------------------

FLAG_FIXTURE = {
    "graph/indexed.py": """
        class FrozenOracle:
            def __init__(self, graph, hot=None, alpha=False, beta=0,
                         patchable=False):
                self._alpha = alpha
                self._beta = beta
                self._patchable = patchable

            def rebased(self, graph):
                return FrozenOracle(
                    graph, alpha=self._alpha, beta=self._beta,
                    patchable=self._patchable,
                )
    """,
    "online/simulator.py": """
        from repro.graph.indexed import FrozenOracle

        class OnlineSimulator:
            def __init__(self, graph):
                self._oracle = FrozenOracle(graph, alpha=True)
    """,
    "distributed/controller.py": """
        from repro.graph.indexed import FrozenOracle

        class Controller:
            def oracle(self, graph):
                return FrozenOracle(graph, alpha=True, beta=2)
    """,
    "experiments/harness.py": """
        from repro.online.simulator import OnlineSimulator

        def run_churn_comparison(graph, **simulator_kwargs):
            return OnlineSimulator(graph, **simulator_kwargs)
    """,
}


def test_flag_threading_reports_missing_flags(tmp_path):
    write_tree(tmp_path, FLAG_FIXTURE)
    result = lint(tmp_path)
    findings = [f for f in result.findings if f.rule == "thread-oracle-flag"]
    # OnlineSimulator threads alpha but not beta/patchable.
    missing = {
        (f.symbol, flag)
        for f in findings
        for flag in ("alpha", "beta", "patchable")
        if f"'{flag}'" in f.message
    }
    assert missing == {
        ("OnlineSimulator", "beta"), ("OnlineSimulator", "patchable"),
    }
    # Nothing else slipped in (constructions are at factory sites).
    assert len(result.findings) == len(findings)


def test_flag_threading_repair_flags_exempt_at_serve_only_sites(tmp_path):
    # Controller omits `patchable` (repair-only) but threads the rest:
    # clean, because per-domain oracles are never patched.
    fixture = dict(FLAG_FIXTURE)
    fixture["online/simulator.py"] = """
        from repro.graph.indexed import FrozenOracle

        class OnlineSimulator:
            def __init__(self, graph):
                self._oracle = FrozenOracle(
                    graph, alpha=True, beta=1, patchable=True,
                )
    """
    write_tree(tmp_path, fixture)
    assert not lint(tmp_path).findings


def test_flag_threading_kwargs_forward_satisfies_all(tmp_path):
    # run_churn_comparison forwards **simulator_kwargs: every flag passes.
    write_tree(tmp_path, FLAG_FIXTURE)
    result = lint(tmp_path)
    assert not any(
        f.symbol == "run_churn_comparison" for f in result.findings
    )


# ----------------------------------------------------------------------
# fork safety
# ----------------------------------------------------------------------

def test_fork_mutation_window(tmp_path):
    write_tree(tmp_path, {"graph/mod.py": """
        from repro.graph import kernel

        def repair(rows, adjacency, changes, job):
            plan = _PatchPlan(adjacency, changes)
            dist = {}
            for v, val in rows:
                dist[v] = val
            return kernel.fork_map(job, rows)
    """})
    assert rules_found(lint(tmp_path)) == ["fork-mutation-window"]


def test_fork_before_write_back_is_clean(tmp_path):
    write_tree(tmp_path, {"graph/mod.py": """
        from repro.graph import kernel

        def repair(rows, adjacency, changes, job):
            plan = _PatchPlan(adjacency, changes)
            repaired = kernel.fork_map(job, rows)
            dist = {}
            for v, val in repaired:
                dist[v] = val
            return dist
    """})
    assert not lint(tmp_path).findings


def test_fork_raw_pool(tmp_path):
    write_tree(tmp_path, {"core/mod.py": """
        import multiprocessing

        def sweep(fn, items):
            ctx = multiprocessing.get_context("fork")
            with ctx.Pool(2) as pool:
                return pool.map(fn, items)
    """})
    assert rules_found(lint(tmp_path)) == ["fork-raw-pool"]


def test_raw_pool_allowed_in_kernel(tmp_path):
    write_tree(tmp_path, {"graph/kernel.py": """
        import multiprocessing

        def fork_map(fn, items):
            global _WORKER_FN
            _WORKER_FN = fn
            ctx = multiprocessing.get_context("fork")
            with ctx.Pool(2) as pool:
                return pool.map(_call_worker, items)
    """})
    assert not lint(tmp_path).findings


def test_fork_worker_order(tmp_path):
    write_tree(tmp_path, {"graph/kernel.py": """
        import multiprocessing

        def fork_map(fn, items):
            global _WORKER_FN
            ctx = multiprocessing.get_context("fork")
            with ctx.Pool(2) as pool:
                _WORKER_FN = fn
                return pool.map(_call_worker, items)
    """})
    assert rules_found(lint(tmp_path)) == ["fork-worker-order"]


def test_constant_reset_after_pool_is_clean(tmp_path):
    write_tree(tmp_path, {"graph/kernel.py": """
        import multiprocessing

        def fork_map(fn, items):
            global _WORKER_FN
            _WORKER_FN = fn
            ctx = multiprocessing.get_context("fork")
            try:
                with ctx.Pool(2) as pool:
                    return pool.map(_call_worker, items)
            finally:
                _WORKER_FN = None
    """})
    assert not lint(tmp_path).findings


# ----------------------------------------------------------------------
# framework: parse errors and baseline round-trip
# ----------------------------------------------------------------------

def test_parse_error_is_a_finding(tmp_path):
    write_tree(tmp_path, {"graph/mod.py": "def broken(:\n"})
    assert rules_found(lint(tmp_path)) == ["parse-error"]


def test_baseline_round_trip(tmp_path):
    root = write_tree(tmp_path / "tree", {"graph/mod.py": SET_ITER_TP})
    result = lint(root)
    assert len(result.findings) == 1

    baseline_file = tmp_path / "baseline.json"
    baseline = Baseline(path=str(baseline_file))
    baseline.write(result.findings)

    reloaded = Baseline.load(str(baseline_file))
    assert reloaded.covers(result.findings[0])

    rerun = lint(root, baseline=reloaded)
    assert not rerun.findings
    assert len(rerun.baselined) == 1
    assert rerun.clean  # clean == no *actionable* findings


def test_baseline_keeps_justifications_on_rewrite(tmp_path):
    root = write_tree(tmp_path / "tree", {"graph/mod.py": SET_ITER_TP})
    finding = lint(root).findings[0]
    baseline_file = tmp_path / "baseline.json"

    baseline = Baseline(path=str(baseline_file))
    baseline.write([finding])
    key = (finding.rule, finding.path, finding.symbol)
    assert baseline.entries[key].startswith("TODO")

    baseline.entries[key] = "intentional: reference implementation"
    baseline.write([finding])
    reloaded = Baseline.load(str(baseline_file))
    assert reloaded.entries[key] == "intentional: reference implementation"


def test_committed_baseline_is_empty():
    # Every finding on the live tree is fixed or justified inline; the
    # shipped baseline must not quietly grandfather anything.
    committed = Baseline.load(default_baseline_path())
    assert committed.entries == {}


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def test_cli_strict_exit_code_and_message(tmp_path, capsys):
    write_tree(tmp_path, {"graph/mod.py": SET_ITER_TP})
    rc = analysis_main(["--strict", "--no-baseline", str(tmp_path)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "det-set-iter" in out
    assert "mod.py:4" in out


def test_cli_non_strict_exit_zero(tmp_path, capsys):
    write_tree(tmp_path, {"graph/mod.py": SET_ITER_TP})
    rc = analysis_main(["--no-baseline", str(tmp_path)])
    capsys.readouterr()
    assert rc == 0


def test_cli_json_output(tmp_path, capsys):
    write_tree(tmp_path, {"graph/mod.py": SET_ITER_TP})
    rc = analysis_main(["--json", "--no-baseline", str(tmp_path)])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert payload["checked_files"] == 1
    assert payload["clean"] is False
    assert [f["rule"] for f in payload["findings"]] == ["det-set-iter"]


def test_cli_list_rules(capsys):
    rc = analysis_main(["--list-rules"])
    out = capsys.readouterr().out
    assert rc == 0
    for rule_id in (
        "det-set-iter", "det-unseeded-rng", "det-wallclock",
        "det-ambient-sort-key", "oracle-second-build",
        "oracle-invalidate-rebuild", "thread-oracle-flag",
        "fork-mutation-window", "fork-raw-pool", "fork-worker-order",
    ):
        assert rule_id in out


def test_cli_baseline_rewrite_then_strict_passes(tmp_path, capsys):
    root = write_tree(tmp_path / "tree", {"graph/mod.py": SET_ITER_TP})
    baseline_file = str(tmp_path / "baseline.json")
    rc = analysis_main([
        "--baseline", "--baseline-file", baseline_file, str(root),
    ])
    assert rc == 0
    rc = analysis_main([
        "--strict", "--baseline-file", baseline_file, str(root),
    ])
    capsys.readouterr()
    assert rc == 0


def test_repro_cli_analysis_subcommand(tmp_path, capsys):
    write_tree(tmp_path, {"graph/mod.py": SET_ITER_TP})
    rc = repro_main([
        "analysis", str(tmp_path), "--strict", "--no-baseline",
    ])
    out = capsys.readouterr().out
    assert rc == 1
    assert "det-set-iter" in out

    rc = repro_main(["analysis", "--list-rules"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "thread-oracle-flag" in out


def test_all_rules_are_documented_in_readme():
    readme = (SRC / "repro" / "analysis" / "README.md").read_text()
    for rule in all_rules():
        assert rule.rule_id in readme


# ----------------------------------------------------------------------
# obs-null-guard
# ----------------------------------------------------------------------

def test_obs_null_guard_raw_clock_true_positive(tmp_path):
    write_tree(tmp_path, {"graph/fast.py": """
        import time

        def repair(rows):
            t0 = time.perf_counter()
            for row in rows:
                row.fix()
            return time.perf_counter() - t0
    """})
    result = lint(tmp_path)
    assert rules_found(result) == ["obs-null-guard", "obs-null-guard"]
    assert all("perf_counter" in f.message for f in result.findings)


def test_obs_null_guard_imported_clock_true_positive(tmp_path):
    write_tree(tmp_path, {"online/sim.py": """
        from time import monotonic

        def step():
            return monotonic()
    """})
    assert rules_found(lint(tmp_path)) == ["obs-null-guard"]


def test_obs_null_guard_recorder_construction_true_positive(tmp_path):
    write_tree(tmp_path, {"workload/engine.py": """
        from repro.obs import MetricsRegistry, Recorder

        def run(schedule):
            mx = Recorder(registry=MetricsRegistry())
            return mx
    """})
    result = lint(tmp_path)
    assert rules_found(result) == ["obs-null-guard", "obs-null-guard"]
    assert any("Recorder(...)" in f.message for f in result.findings)


def test_obs_null_guard_injected_recorder_is_clean(tmp_path):
    # The blessed discipline: injected recorder, guarded clock reads.
    write_tree(tmp_path, {"graph/fast.py": """
        class Oracle:
            def __init__(self, graph, metrics=None):
                self._metrics = metrics if metrics else None

            def repair(self, rows):
                mx = self._metrics
                t0 = mx.clock() if mx else 0.0
                for row in rows:
                    row.fix()
                if mx:
                    mx.span("oracle.repair", t0, rows=len(rows))
    """})
    assert not lint(tmp_path).findings


def test_obs_null_guard_out_of_scope_modules_are_clean(tmp_path):
    # experiments/ keeps raw timers (measured runtime is its output) and
    # tests are never linted for this rule.
    write_tree(tmp_path, {
        "experiments/bench.py": """
            import time

            def measure(fn):
                t0 = time.perf_counter()
                fn()
                return time.perf_counter() - t0
        """,
        "tests/test_mod.py": """
            import time

            def test_clock():
                assert time.perf_counter() >= 0
        """,
    })
    assert not lint(tmp_path).findings


def test_obs_null_guard_suppression(tmp_path):
    write_tree(tmp_path, {"graph/fast.py": """
        import time

        def boot():
            # repro-lint: disable=obs-null-guard -- one-time cold-start
            # stamp outside any hot path.
            return time.perf_counter()
    """})
    assert not lint(tmp_path).findings


# ----------------------------------------------------------------------
# integration: the live tree, and the fake-flag regression
# ----------------------------------------------------------------------

def test_live_tree_is_clean_under_strict():
    env = dict(os.environ, PYTHONPATH=str(SRC))
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--strict", "src", "tests"],
        cwd=str(REPO_ROOT), env=env, capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


#: The real modules that carry the flag-threading sites, copied (not
#: imported) so the regression test can mutate the oracle signature.
_SITE_FILES = (
    "repro/graph/indexed.py",
    "repro/core/sofda.py",
    "repro/online/simulator.py",
    "repro/distributed/controller.py",
    "repro/distributed/coordinator.py",
    "repro/experiments/harness.py",
)

_INIT_TAIL = "        metrics: Optional[object] = None,\n    ) -> None:"


def test_fake_flag_is_reported_at_every_threading_site(tmp_path):
    """Injecting a new FrozenOracle knob must flag every missed site.

    This is the regression the rule exists for: PRs 4 and 7 each added a
    flag that silently failed to reach some construction sites.  A fake
    ``fake_knob`` added only to ``__init__`` must surface one finding
    per non-forwarding site, each naming the site.
    """
    for rel in _SITE_FILES:
        dst = tmp_path / Path(rel).relative_to("repro")
        dst.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(SRC / rel, dst)

    indexed = tmp_path / "graph" / "indexed.py"
    text = indexed.read_text(encoding="utf-8")
    assert text.count(_INIT_TAIL) == 1, "FrozenOracle.__init__ moved"
    indexed.write_text(text.replace(
        _INIT_TAIL,
        "        row_budget_bytes: Optional[int] = None,\n"
        "        fake_knob: bool = False,\n"
        "    ) -> None:",
    ), encoding="utf-8")

    result = lint(tmp_path)
    findings = [f for f in result.findings if f.rule == "thread-oracle-flag"]
    assert result.findings == findings, rules_found(result)
    assert all("'fake_knob'" in f.message for f in findings)

    flagged_sites = {
        site for f in findings
        for site in (
            "FrozenOracle.rebased", "AuxiliaryOracle", "OnlineSimulator",
            "Controller", "DistributedSOFDA",
        )
        if f"'{site}'" in f.message
    }
    assert flagged_sites == {
        "FrozenOracle.rebased", "AuxiliaryOracle", "OnlineSimulator",
        "Controller", "DistributedSOFDA",
    }
    # The comparison runners forward **simulator_kwargs and stay clean.
    assert not any("run_online_comparison" in f.message for f in findings)
    assert not any("run_churn_comparison" in f.message for f in findings)


def test_unpatched_copy_of_site_files_is_clean(tmp_path):
    for rel in _SITE_FILES:
        dst = tmp_path / Path(rel).relative_to("repro")
        dst.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(SRC / rel, dst)
    result = lint(tmp_path)
    assert not result.findings, rules_found(result)
