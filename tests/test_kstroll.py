"""k-stroll solver tests."""

import itertools
import random

import pytest

from repro.graph import KStrollInstance, solve_kstroll
from repro.graph.kstroll import (
    solve_kstroll_exact,
    solve_kstroll_greedy,
    solve_kstroll_insertion,
)


def _metric_instance(seed: int, n: int) -> KStrollInstance:
    """Random points on a line -> metric (absolute difference) costs."""
    rng = random.Random(seed)
    points = {i: rng.uniform(0, 100) for i in range(n)}
    cost = {
        u: {v: abs(points[u] - points[v]) for v in points if v != u}
        for u in points
    }
    return KStrollInstance(nodes=list(points), source=0, target=n - 1, cost=cost)


def _brute_force(instance: KStrollInstance, k: int) -> float:
    pool = [n for n in instance.nodes if n not in (instance.source, instance.target)]
    best = float("inf")
    for subset in itertools.combinations(pool, k - 2):
        for order in itertools.permutations(subset):
            path = [instance.source] + list(order) + [instance.target]
            best = min(best, instance.path_cost(path))
    return best


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("k", [2, 3, 4, 5])
def test_exact_matches_brute_force(seed, k):
    instance = _metric_instance(seed, 8)
    path, cost = solve_kstroll_exact(instance, k)
    assert cost == pytest.approx(_brute_force(instance, k))
    assert len(path) == k
    assert len(set(path)) == k
    assert path[0] == instance.source and path[-1] == instance.target
    assert instance.path_cost(path) == pytest.approx(cost)


@pytest.mark.parametrize("solver", [solve_kstroll_insertion, solve_kstroll_greedy])
@pytest.mark.parametrize("seed", range(5))
def test_heuristics_return_valid_paths(solver, seed):
    instance = _metric_instance(seed + 50, 12)
    for k in (2, 4, 6):
        path, cost = solver(instance, k)
        assert len(path) == k
        assert len(set(path)) == k
        assert path[0] == instance.source and path[-1] == instance.target
        assert instance.path_cost(path) == pytest.approx(cost)


@pytest.mark.parametrize("seed", range(8))
def test_insertion_within_2x_of_exact_on_metric(seed):
    instance = _metric_instance(seed + 200, 10)
    for k in (3, 5, 7):
        _, exact_cost = solve_kstroll_exact(instance, k)
        _, ins_cost = solve_kstroll_insertion(instance, k)
        assert ins_cost >= exact_cost - 1e-9
        if exact_cost > 0:
            assert ins_cost <= 2 * exact_cost + 1e-9


def test_k2_is_direct_edge():
    instance = _metric_instance(3, 6)
    path, cost = solve_kstroll(instance, 2, method="exact")
    assert path == [0, 5]
    assert cost == pytest.approx(instance.edge(0, 5))


def test_k_too_large_raises():
    instance = _metric_instance(0, 4)
    with pytest.raises(ValueError):
        solve_kstroll(instance, 6, method="exact")


def test_k_below_two_raises():
    instance = _metric_instance(0, 4)
    with pytest.raises(ValueError):
        solve_kstroll(instance, 1)


def test_auto_dispatch_small_uses_exact():
    instance = _metric_instance(9, 8)
    auto_path, auto_cost = solve_kstroll(instance, 4, method="auto")
    _, exact_cost = solve_kstroll_exact(instance, 4)
    assert auto_cost == pytest.approx(exact_cost)


def test_auto_dispatch_large_uses_better_heuristic():
    instance = _metric_instance(10, 20)
    _, auto_cost = solve_kstroll(instance, 5, method="auto")
    _, ins = solve_kstroll_insertion(instance, 5)
    _, grd = solve_kstroll_greedy(instance, 5)
    assert auto_cost == pytest.approx(min(ins, grd))


def test_unknown_method_raises():
    instance = _metric_instance(0, 5)
    with pytest.raises(ValueError):
        solve_kstroll(instance, 3, method="oracle")


def test_callable_cost_form():
    cost_fn = lambda u, v: abs(u - v)  # noqa: E731
    instance = KStrollInstance(nodes=[0, 1, 2, 3], source=0, target=3, cost=cost_fn)
    path, cost = solve_kstroll_exact(instance, 4)
    assert path == [0, 1, 2, 3]
    assert cost == pytest.approx(3.0)


def test_endpoints_must_be_in_nodes():
    with pytest.raises(ValueError):
        KStrollInstance(nodes=[1, 2], source=0, target=2, cost=lambda u, v: 1.0)
