"""Tests for the feasibility checker (every violation type)."""

import pytest

from repro import (
    DeployedChain,
    ForestInfeasible,
    Graph,
    ServiceChain,
    ServiceOverlayForest,
    SOFInstance,
    check_forest,
)
from repro.core.validation import is_feasible


@pytest.fixture
def instance():
    graph = Graph.from_edges([
        (0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0), (2, 5, 1.0),
    ])
    return SOFInstance(
        graph=graph, vms={1, 2, 3}, sources={0}, destinations={4, 5},
        chain=ServiceChain.of_length(2),
    )


def _good_forest(instance):
    forest = ServiceOverlayForest(instance=instance)
    forest.add_chain(DeployedChain(walk=[0, 1, 2], placements={1: 0, 2: 1}))
    forest.add_tree_edge(2, 3)
    forest.add_tree_edge(3, 4)
    forest.add_tree_edge(2, 5)
    return forest


def test_good_forest_passes(instance):
    check_forest(instance, _good_forest(instance))
    assert is_feasible(instance, _good_forest(instance))


def test_walk_must_follow_edges(instance):
    forest = ServiceOverlayForest(instance=instance)
    forest.add_chain(DeployedChain(walk=[0, 2], placements={1: 0}))
    with pytest.raises(ForestInfeasible, match="not an edge"):
        check_forest(instance, forest)


def test_chain_must_cover_all_functions(instance):
    forest = ServiceOverlayForest(instance=instance)
    forest.add_chain(DeployedChain(walk=[0, 1, 2], placements={1: 0}))
    with pytest.raises(ForestInfeasible, match="placements"):
        check_forest(instance, forest)


def test_functions_must_be_in_order(instance):
    forest = ServiceOverlayForest(instance=instance)
    chain = DeployedChain(walk=[0, 1, 2], placements={1: 1, 2: 0})
    forest.chains.append(chain)
    forest.enabled = {1: 1, 2: 0}
    with pytest.raises(ForestInfeasible):
        check_forest(instance, forest)


def test_placement_on_non_vm_rejected(instance):
    forest = ServiceOverlayForest(instance=instance)
    chain = DeployedChain(walk=[0, 1, 2, 3, 4], placements={1: 0, 4: 1})
    forest.chains.append(chain)
    forest.enabled = {1: 0, 4: 1}
    with pytest.raises(ForestInfeasible, match="non-VM"):
        check_forest(instance, forest)


def test_vnf_conflict_across_chains(instance):
    forest = ServiceOverlayForest(instance=instance)
    forest.chains.append(DeployedChain(walk=[0, 1, 2], placements={1: 0, 2: 1}))
    forest.chains.append(DeployedChain(walk=[0, 1, 2], placements={1: 1, 2: 0}))
    forest.enabled = {1: 0, 2: 1}
    with pytest.raises(ForestInfeasible):
        check_forest(instance, forest)


def test_enabled_map_must_match(instance):
    forest = _good_forest(instance)
    forest.enabled[3] = 0  # phantom enabling
    with pytest.raises(ForestInfeasible, match="no chain uses it"):
        check_forest(instance, forest)


def test_chain_must_start_at_source(instance):
    forest = ServiceOverlayForest(instance=instance)
    forest.add_chain(DeployedChain(walk=[1, 2, 3], placements={1: 0, 2: 1}))
    forest.add_tree_edge(3, 4)
    forest.add_tree_edge(2, 5)
    with pytest.raises(ForestInfeasible, match="not a source"):
        check_forest(instance, forest)


def test_unserved_destination_detected(instance):
    forest = ServiceOverlayForest(instance=instance)
    forest.add_chain(DeployedChain(walk=[0, 1, 2], placements={1: 0, 2: 1}))
    forest.add_tree_edge(2, 3)
    forest.add_tree_edge(3, 4)
    # Destination 5 untouched.
    with pytest.raises(ForestInfeasible, match="5"):
        check_forest(instance, forest)


def test_tree_edge_must_exist_in_graph(instance):
    forest = _good_forest(instance)
    forest.tree_edges.add((0, 4))
    with pytest.raises(ForestInfeasible, match="not an edge of G"):
        check_forest(instance, forest)


def test_destination_on_processed_tail_is_served(instance):
    forest = ServiceOverlayForest(instance=instance)
    forest.add_chain(
        DeployedChain(walk=[0, 1, 2, 3, 4], placements={1: 0, 2: 1})
    )
    forest.add_tree_edge(2, 5)
    check_forest(instance, forest)


def test_destination_connected_through_unprocessed_segment_rejected(instance):
    # Tree edge touching only the walk's pre-processing prefix serves
    # nothing: content there has not passed the chain.
    forest = ServiceOverlayForest(instance=instance)
    forest.add_chain(DeployedChain(walk=[0, 1, 2], placements={1: 0, 2: 1}))
    forest.add_tree_edge(0, 1)  # pre-chain segment
    forest.add_tree_edge(3, 4)
    forest.add_tree_edge(2, 5)
    # 4 connects to {3} only; 3 is not a delivery point.
    with pytest.raises(ForestInfeasible):
        check_forest(instance, forest)


def test_empty_forest_rejected(instance):
    forest = ServiceOverlayForest(instance=instance)
    with pytest.raises(ForestInfeasible, match="no complete chain"):
        check_forest(instance, forest)
