"""Executable check of the Theorem-1 reduction (Appendix A)."""

import random

import pytest

from helpers import random_connected_graph
from repro.core.reduction import REDUCTION_SOURCE, steiner_to_sof, verify_reduction
from repro.graph import Graph


def test_reduction_structure():
    g = Graph.from_edges([(0, 1, 1.0), (1, 2, 2.0), (0, 2, 4.0)])
    instance = steiner_to_sof(g, root=0, terminals=[1, 2], edge_weight=3.0)
    assert instance.vms == {0}
    assert instance.sources == {REDUCTION_SOURCE}
    assert instance.destinations == {1, 2}
    assert len(instance.chain) == 1
    assert instance.graph.cost(REDUCTION_SOURCE, 0) == 3.0
    assert instance.setup_cost(0) == 0.0


def test_reduction_rejects_bad_arguments():
    g = Graph.from_edges([(0, 1, 1.0)])
    with pytest.raises(ValueError):
        steiner_to_sof(g, 0, [1], edge_weight=0.0)
    with pytest.raises(ValueError):
        steiner_to_sof(g, 0, [0, 1])


@pytest.mark.parametrize("seed", range(5))
def test_theorem1_optimum_identity(seed):
    """OPT_SOF == OPT_Steiner + w on random small instances."""
    rng = random.Random(seed)
    g = random_connected_graph(rng, 12, extra_edges=10)
    terminals = rng.sample(range(1, 12), 4)
    w = rng.uniform(0.5, 5.0)
    opt_steiner, opt_sof = verify_reduction(g, 0, terminals, edge_weight=w)
    assert opt_sof == pytest.approx(opt_steiner + w, rel=1e-6)
