"""Tests for the ST / eST / eNEMP baselines."""

import statistics

import pytest

from helpers import random_instance
from repro import check_forest, sofda
from repro.baselines import enemp_baseline, est_baseline, st_baseline
from repro.baselines.common import assemble_forest, chain_total_cost, greedy_chain


@pytest.mark.parametrize("baseline", [st_baseline, est_baseline, enemp_baseline])
@pytest.mark.parametrize("seed", range(6))
def test_baselines_feasible(baseline, seed):
    instance = random_instance(seed, n=18, num_vms=7, num_sources=3,
                               num_dests=4, chain_len=3)
    forest = baseline(instance)
    check_forest(instance, forest)


def test_st_single_tree(fig2_instance):
    forest = st_baseline(fig2_instance)
    check_forest(fig2_instance, forest)
    assert forest.num_trees() == 1


@pytest.mark.parametrize("baseline", [est_baseline, enemp_baseline])
def test_single_source_mode(baseline, fig2_instance):
    single = baseline(fig2_instance, multi_source=False)
    multi = baseline(fig2_instance, multi_source=True)
    check_forest(fig2_instance, single)
    assert single.num_trees() == 1
    assert multi.total_cost() <= single.total_cost() + 1e-9


def test_greedy_chain_structure(fig2_instance):
    chain = greedy_chain(fig2_instance, 1, fig2_instance.vms)
    assert chain is not None
    assert chain.source == 1
    assert [v for _, v in chain.vnf_positions()] == [0, 1]
    for a, b in chain.all_edges():
        assert fig2_instance.graph.has_edge(a, b)


def test_greedy_chain_pool_too_small(fig2_instance):
    assert greedy_chain(fig2_instance, 1, {2}) is None


def test_greedy_chain_partial_length(fig2_instance):
    chain = greedy_chain(fig2_instance, 1, fig2_instance.vms, num_functions=1)
    assert len(chain.placements) == 1


def test_chain_total_cost(fig2_instance):
    chain = greedy_chain(fig2_instance, 1, fig2_instance.vms)
    cost = chain_total_cost(fig2_instance, chain)
    edges = sum(fig2_instance.graph.cost(a, b) for a, b in chain.all_edges())
    setups = sum(
        fig2_instance.setup_cost(chain.walk[p]) for p in chain.placements
    )
    assert cost == pytest.approx(edges + setups)


def test_assemble_forest_assigns_nearest(fig2_instance):
    from repro.baselines.common import SingleTree

    chain = greedy_chain(fig2_instance, 1, fig2_instance.vms)
    tree = SingleTree(source=1, chain=chain,
                      chain_cost=chain_total_cost(fig2_instance, chain))
    forest = assemble_forest(fig2_instance, [tree])
    check_forest(fig2_instance, forest)


def test_sofda_beats_baselines_on_average():
    """The paper's headline: SOFDA is the cheapest heuristic on average."""
    sofda_costs, other = [], {"eNEMP": [], "eST": [], "ST": []}
    for seed in range(10):
        instance = random_instance(seed + 700, n=20, num_vms=8,
                                   num_sources=3, num_dests=4, chain_len=3)
        sofda_costs.append(sofda(instance).cost)
        other["eNEMP"].append(enemp_baseline(instance).total_cost())
        other["eST"].append(est_baseline(instance).total_cost())
        other["ST"].append(st_baseline(instance).total_cost())
    mean_sofda = statistics.mean(sofda_costs)
    for name, costs in other.items():
        assert mean_sofda <= statistics.mean(costs) * 1.02, (
            f"SOFDA ({mean_sofda:.2f}) should not lose to {name} "
            f"({statistics.mean(costs):.2f}) on average"
        )


def test_st_is_worst_on_average():
    est_costs, st_costs = [], []
    for seed in range(10):
        instance = random_instance(seed + 800, n=20, num_vms=8,
                                   num_sources=3, num_dests=4, chain_len=3)
        est_costs.append(est_baseline(instance).total_cost())
        st_costs.append(st_baseline(instance).total_cost())
    assert statistics.mean(st_costs) >= statistics.mean(est_costs)
