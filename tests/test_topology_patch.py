"""Tests for topology-change patches (``FrozenOracle.patch_topology``).

The contract: after failing (tombstoning) or reinserting edges, the
oracle must answer exactly as a fresh :class:`FrozenOracle` built over
the mutated graph would -- in both replicated and contracted modes --
with ``topology_patch=False`` keeping invalidate-and-rebuild as the
bit-identical equivalence reference.  Removed edges may legitimately
leave regions *unreachable* (``dist=inf``), which no cost-only patch can
produce.
"""

import math
import random

import pytest

from repro.core.problem import ServiceChain
from repro.graph import FrozenOracle, Graph
from repro.topology import inet_network

INF = float("inf")


def random_graph(rng, num_nodes=40, edge_probability=0.15):
    graph = Graph()
    for i in range(num_nodes):
        graph.add_node(i)
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            if rng.random() < edge_probability:
                graph.add_edge(i, j, rng.uniform(0.1, 5.0))
    return graph


def removable_edges(rng, graph, count):
    """Sample ``count`` live edges (endpoint pairs only)."""
    edges = [(u, v) for u, v, _ in graph.edges()]
    return rng.sample(edges, min(count, len(edges)))


# ----------------------------------------------------------------------
# replicated (uncontracted) mode
# ----------------------------------------------------------------------
def test_removed_edges_match_fresh_oracle_uncontracted():
    rng = random.Random(31)
    for trial in range(6):
        graph = random_graph(rng)
        nodes = list(graph.nodes())
        hot = rng.sample(nodes, 6)
        oracle = FrozenOracle(graph, hot=hot)
        assert oracle.contracted is None
        for _ in range(30):
            oracle.distance(rng.choice(nodes), rng.choice(nodes))
        removed = removable_edges(rng, graph, 4)
        reference = graph.copy()
        for u, v in removed:
            reference.remove_edge(u, v)
        oracle.patch_topology(removed=removed)
        fresh = FrozenOracle(reference, hot=hot)
        for source in rng.sample(nodes, 8):
            assert oracle.distances_from(source) == fresh.distances_from(source)


def test_reinserted_edges_match_fresh_oracle_uncontracted():
    rng = random.Random(37)
    for trial in range(4):
        graph = random_graph(rng)
        nodes = list(graph.nodes())
        oracle = FrozenOracle(graph, hot=rng.sample(nodes, 5))
        for _ in range(20):
            oracle.distance(rng.choice(nodes), rng.choice(nodes))
        removed = removable_edges(rng, graph, 3)
        oracle.patch_topology(removed=removed)
        # Revive every failed edge at a fresh cost: a decrease from inf.
        revived = {(u, v): rng.uniform(0.1, 5.0) for u, v in removed}
        oracle.patch_topology(inserted=revived)
        fresh = FrozenOracle(graph.copy(), hot=rng.sample(nodes, 5))
        for source in rng.sample(nodes, 8):
            assert oracle.distances_from(source) == fresh.distances_from(source)


def test_mixed_removal_and_insert_batch():
    rng = random.Random(41)
    graph = random_graph(rng)
    nodes = list(graph.nodes())
    oracle = FrozenOracle(graph, hot=rng.sample(nodes, 5))
    for _ in range(20):
        oracle.distance(rng.choice(nodes), rng.choice(nodes))
    first = removable_edges(rng, graph, 2)
    oracle.patch_topology(removed=first)
    second = removable_edges(rng, graph, 2)
    revived = {(u, v): rng.uniform(0.1, 5.0) for u, v in first}
    oracle.patch_topology(removed=second, inserted=revived)
    reference = graph.copy()
    fresh = FrozenOracle(reference, hot=rng.sample(nodes, 5))
    for source in rng.sample(nodes, 8):
        assert oracle.distances_from(source) == fresh.distances_from(source)


def test_randomized_fail_recover_cost_stream_matches_reference():
    """Interleaved fail/recover/cost patches vs the invalidate reference.

    ``topology_patch=False`` routes every topology change through
    invalidate-and-rebuild; per-step row state must stay bit-identical.
    """
    rng = random.Random(43)
    graph = random_graph(rng, num_nodes=35)
    nodes = list(graph.nodes())
    hot = rng.sample(nodes, 5)
    patched = FrozenOracle(graph, hot=hot)
    reference = FrozenOracle(graph.copy(), hot=hot, topology_patch=False)
    down = []
    for step in range(15):
        action = rng.random()
        if action < 0.35 and len(down) < 4:
            live = [(u, v) for u, v, _ in graph.edges()]
            edge = rng.choice(live)
            patched.patch_topology(removed=[edge])
            reference.patch_topology(removed=[edge])
            down.append(edge)
        elif action < 0.6 and down:
            edge = down.pop(rng.randrange(len(down)))
            cost = rng.uniform(0.1, 5.0)
            patched.patch_topology(inserted={edge: cost})
            reference.patch_topology(inserted={edge: cost})
        else:
            live = [(u, v, c) for u, v, c in graph.edges()]
            u, v, c = rng.choice(live)
            changed = {(u, v): c * rng.uniform(0.2, 3.0)}
            patched.patch_edge_costs(changed)
            reference.patch_edge_costs(dict(changed))
        for source in rng.sample(nodes, 4):
            assert patched.distances_from(source) \
                == reference.distances_from(source)


# ----------------------------------------------------------------------
# unreachable-row semantics
# ----------------------------------------------------------------------
def bridge_graph():
    """Two triangles joined by a single bridge edge."""
    graph = Graph()
    for u, v, c in [(0, 1, 1.0), (1, 2, 1.5), (0, 2, 2.0),
                    (3, 4, 1.0), (4, 5, 1.5), (3, 5, 2.0),
                    (2, 3, 0.7)]:
        graph.add_edge(u, v, c)
    return graph


def test_unreachable_after_bridge_failure():
    graph = bridge_graph()
    oracle = FrozenOracle(graph)
    before = oracle.distance(0, 5)
    assert math.isfinite(before)
    oracle.patch_topology(removed=[(2, 3)])
    # The far triangle is now a separate component.
    assert oracle.distance(0, 5) == INF
    assert oracle.distance(0, 3) == INF
    assert oracle.distance(0, 1) == 1.0
    with pytest.raises(ValueError):
        oracle.path(0, 5)
    row = oracle.distances_from(0)
    for far in (3, 4, 5):
        assert row.get(far, INF) == INF


def test_unreachable_resettles_after_recovery():
    graph = bridge_graph()
    oracle = FrozenOracle(graph)
    before = {n: oracle.distances_from(n) for n in range(6)}
    oracle.patch_topology(removed=[(2, 3)])
    assert oracle.distance(0, 5) == INF
    oracle.patch_topology(inserted={(2, 3): 0.7})
    for n in range(6):
        assert oracle.distances_from(n) == before[n]
    assert oracle.path(0, 5)[0] == 0
    assert oracle.path(0, 5)[-1] == 5


# ----------------------------------------------------------------------
# contracted mode
#
# A topology change alters the degree-2 chain structure, so a fresh
# rebuild re-contracts and sums chain hops in a different order than the
# repaired oracle's kept prefix arrays (``da + (w1 + w2)`` versus
# ``(da + w1) + w2``).  Both are exact shortest-path sums; they differ
# only in the last ulp, so contracted cross-structure comparisons use
# the repo's 1e-9 tolerance while uncontracted comparisons stay
# bit-exact.
# ----------------------------------------------------------------------
def assert_rows_close(oracle, fresh, source):
    ours, theirs = oracle.distances_from(source), fresh.distances_from(source)
    assert ours.keys() == theirs.keys()
    for node, d in ours.items():
        assert d == pytest.approx(theirs[node], rel=0, abs=1e-9)


@pytest.fixture
def contracted_oracle():
    network = inet_network(
        num_nodes=400, num_links=800, num_datacenters=120, seed=5
    )
    instance = network.make_instance(
        num_sources=4, num_destinations=5, num_vms=10,
        chain=ServiceChain.of_length(3), seed=21,
    )
    graph = instance.graph.copy()
    hot = instance.vms | instance.sources | instance.destinations
    rng = random.Random(3)
    oracle = FrozenOracle(graph, hot=hot)
    assert oracle.contracted is not None
    oracle.warm(sorted(hot, key=repr))
    return graph, oracle, hot, rng


def test_contracted_removal_matches_fresh(contracted_oracle):
    graph, oracle, hot, rng = contracted_oracle
    probes = sorted(hot, key=repr)[:8]
    removed = removable_edges(rng, graph, 5)
    reference = graph.copy()
    for u, v in removed:
        reference.remove_edge(u, v)
    oracle.patch_topology(removed=removed)
    fresh = FrozenOracle(reference, hot=hot)
    assert fresh.contracted is not None
    for source in probes:
        assert_rows_close(oracle, fresh, source)


def test_contracted_chain_edge_failure_and_recovery(contracted_oracle):
    """Fail an edge *interior* to a contracted chain, then revive it."""
    graph, oracle, hot, rng = contracted_oracle
    contracted = oracle.contracted
    probes = sorted(hot, key=repr)[:8]
    # Find a chain with interiors and fail its first hop.
    target = None
    for a, b, interiors, prefix, total in contracted.chains:
        if interiors:
            target = (contracted.nodes[a], interiors[0])
            break
    assert target is not None, "fixture produced no contracted chains"
    reference = graph.copy()
    reference.remove_edge(*target)
    oracle.patch_topology(removed=[target])
    fresh = FrozenOracle(reference, hot=hot)
    for source in probes:
        assert_rows_close(oracle, fresh, source)
    cost = rng.uniform(0.1, 5.0)
    oracle.patch_topology(inserted={target: cost})
    fresh_after = FrozenOracle(graph.copy(), hot=hot)
    for source in probes:
        assert_rows_close(oracle, fresh_after, source)


# ----------------------------------------------------------------------
# validation and atomicity
# ----------------------------------------------------------------------
def small_graph():
    graph = Graph()
    for u, v, c in [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.5), (0, 3, 4.0)]:
        graph.add_edge(u, v, c)
    return graph


def test_remove_unknown_edge_rejected_atomically():
    graph = small_graph()
    oracle = FrozenOracle(graph)
    oracle.distance(0, 3)
    with pytest.raises(KeyError):
        oracle.patch_topology(removed=[(0, 1), (0, 2)])
    # Nothing was mutated: the valid half of the batch did not apply.
    assert graph.cost(0, 1) == 1.0
    assert oracle.distance(0, 1) == 1.0


def test_insert_existing_edge_rejected():
    oracle = FrozenOracle(small_graph())
    with pytest.raises(ValueError, match="already an edge"):
        oracle.patch_topology(inserted={(0, 1): 2.0})


@pytest.mark.parametrize("bad", [float("nan"), -1.0, INF])
def test_insert_invalid_cost_rejected(bad):
    graph = small_graph()
    oracle = FrozenOracle(graph)
    oracle.patch_topology(removed=[(0, 1)])
    with pytest.raises(ValueError):
        oracle.patch_topology(inserted={(0, 1): bad})
    assert not graph.has_edge(0, 1)


def test_remove_and_insert_same_edge_in_one_batch_rejected():
    oracle = FrozenOracle(small_graph())
    with pytest.raises(ValueError):
        oracle.patch_topology(removed=[(0, 1)], inserted={(1, 0): 1.0})


def test_insert_never_removed_edge_rejected_on_built_oracle():
    """The frozen CSR core cannot grow slots for brand-new edges."""
    graph = small_graph()
    oracle = FrozenOracle(graph)
    oracle.distance(0, 3)  # force the build
    with pytest.raises(ValueError, match="never removed"):
        oracle.patch_topology(inserted={(0, 2): 1.0})
    assert not graph.has_edge(0, 2)


def test_insert_new_edge_on_unbuilt_oracle_allowed():
    graph = small_graph()
    oracle = FrozenOracle(graph)
    oracle.patch_topology(inserted={(0, 2): 1.0})
    assert graph.cost(0, 2) == 1.0
    assert oracle.distance(0, 2) == 1.0


def test_invalidate_clears_tombstones():
    graph = small_graph()
    oracle = FrozenOracle(graph)
    oracle.distance(0, 3)
    oracle.patch_topology(removed=[(0, 1)])
    oracle.invalidate()
    # After a rebuild the (0, 1) slot is gone entirely, so reviving it
    # is a brand-new edge: fine on the now-unbuilt oracle...
    oracle.patch_topology(inserted={(0, 1): 1.0})
    assert oracle.distance(0, 1) == 1.0
    oracle.distance(0, 3)
    # ...but not once the rebuilt CSR is frozen again.
    oracle.patch_topology(removed=[(0, 1)])
    oracle.invalidate()
    oracle.distance(0, 3)
    with pytest.raises(ValueError, match="never removed"):
        oracle.patch_topology(inserted={(0, 1): 1.0})


def test_rebased_carries_tombstones():
    rng = random.Random(47)
    graph = random_graph(rng, num_nodes=25)
    nodes = list(graph.nodes())
    oracle = FrozenOracle(graph, hot=rng.sample(nodes, 4))
    oracle.distance(nodes[0], nodes[-1])
    edge = removable_edges(rng, graph, 1)[0]
    oracle.patch_topology(removed=[edge])
    base = graph.copy()
    clone = oracle.rebased(base, {})
    # The clone may revive the tombstoned edge exactly like the original.
    clone.patch_topology(inserted={edge: 1.0})
    assert base.cost(*edge) == 1.0
    assert clone.distance(*edge) <= 1.0
    # The original oracle still sees the edge as dead.
    assert not graph.has_edge(*edge)


def test_topology_patch_false_reference_mode():
    rng = random.Random(53)
    graph = random_graph(rng, num_nodes=25)
    nodes = list(graph.nodes())
    oracle = FrozenOracle(graph, topology_patch=False)
    oracle.distance(nodes[0], nodes[-1])
    edge = removable_edges(rng, graph, 1)[0]
    oracle.patch_topology(removed=[edge])
    assert not graph.has_edge(*edge)
    fresh = FrozenOracle(graph.copy())
    for source in rng.sample(nodes, 6):
        assert oracle.distances_from(source) == fresh.distances_from(source)


# ----------------------------------------------------------------------
# cost-patch validation (both orientations)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("orientation", ["forward", "reverse"])
@pytest.mark.parametrize("bad", [float("nan"), -0.5, INF])
def test_patch_edge_costs_rejects_invalid_costs(orientation, bad):
    graph = small_graph()
    oracle = FrozenOracle(graph)
    oracle.distance(0, 3)
    edge = (0, 1) if orientation == "forward" else (1, 0)
    with pytest.raises(ValueError, match="finite and non-negative"):
        oracle.patch_edge_costs({(2, 3): 9.0, edge: bad})
    # Atomic: the valid change in the same batch did not land either.
    assert graph.cost(2, 3) == 1.5
    assert graph.cost(0, 1) == 1.0
    assert oracle.distance(2, 3) == 1.5
