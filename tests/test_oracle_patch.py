"""Tests for incremental oracle invalidation (``patch_edge_costs``).

The contract: after patching edge *costs* (topology fixed), the oracle
must answer exactly as a fresh :class:`FrozenOracle` built over the
updated graph would -- in both the replicated-order mode and the
degree-2-contracted mode -- while keeping every cached row the change
provably cannot affect.
"""

import random

import pytest

from repro.core.dynamic import reroute_congested_link
from repro.core.problem import ServiceChain
from repro.graph import DistanceOracle, FrozenOracle, Graph
from repro.graph.shortest_paths import walk_cost
from repro.topology import inet_network, softlayer_network

INF = float("inf")


def random_graph(rng, num_nodes=40, edge_probability=0.15):
    graph = Graph()
    for i in range(num_nodes):
        graph.add_node(i)
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            if rng.random() < edge_probability:
                graph.add_edge(i, j, rng.uniform(0.1, 5.0))
    return graph


def perturb(rng, graph, count, direction=None):
    """Draw ``count`` random edge-cost changes (not yet applied)."""
    edges = list(graph.edges())
    changed = {}
    for u, v, cost in rng.sample(edges, min(count, len(edges))):
        if direction == "up":
            factor = rng.uniform(1.1, 3.0)
        elif direction == "down":
            factor = rng.uniform(0.2, 0.9)
        else:
            factor = rng.uniform(0.2, 3.0)
        changed[(u, v)] = cost * factor
    return changed


# ----------------------------------------------------------------------
# replicated (uncontracted) mode
# ----------------------------------------------------------------------
@pytest.mark.parametrize("direction", [None, "up", "down"])
def test_patched_rows_match_fresh_oracle_uncontracted(direction):
    rng = random.Random(11 if direction is None else hash(direction) % 97)
    for trial in range(6):
        graph = random_graph(rng)
        nodes = list(graph.nodes())
        hot = rng.sample(nodes, 6)
        oracle = FrozenOracle(graph, hot=hot)
        assert oracle.contracted is None
        # Populate the row cache before patching.
        for _ in range(30):
            oracle.distance(rng.choice(nodes), rng.choice(nodes))
        changed = perturb(rng, graph, 8, direction)
        oracle.patch_edge_costs(changed)
        fresh = FrozenOracle(graph.copy(), hot=hot)
        for source in rng.sample(nodes, 8):
            # Full rows are bit-identical: a surviving row passed the
            # no-tree-use / no-improvement tests, so its distances are the
            # sums a fresh build performs too.
            assert oracle.distances_from(source) == fresh.distances_from(source)


def test_sequential_patches_stay_exact():
    rng = random.Random(23)
    graph = random_graph(rng)
    nodes = list(graph.nodes())
    oracle = FrozenOracle(graph, hot=rng.sample(nodes, 5))
    reference = DistanceOracle(graph)
    for _ in range(10):
        changed = perturb(rng, graph, 4)
        oracle.patch_edge_costs(changed)
        reference.invalidate()
        for _ in range(25):
            u, v = rng.choice(nodes), rng.choice(nodes)
            assert oracle.distance(u, v) == pytest.approx(
                reference.distance(u, v), rel=0, abs=1e-9
            )


def test_noop_patch_keeps_every_cached_row():
    rng = random.Random(5)
    graph = random_graph(rng)
    nodes = list(graph.nodes())
    oracle = FrozenOracle(graph, hot=rng.sample(nodes, 5))
    for _ in range(20):
        oracle.distance(rng.choice(nodes), rng.choice(nodes))
    before = dict(oracle._rows)
    unchanged = {(u, v): cost for u, v, cost in list(graph.edges())[:10]}
    assert oracle.patch_edge_costs(unchanged) == 0
    assert oracle._rows == before


def test_patch_only_evicts_affected_rows():
    # a-b-c path plus an isolated d-e edge: patching d-e must keep the
    # cached a-row (its tree cannot use d-e, and no distance can improve).
    graph = Graph.from_edges(
        [("a", "b", 1.0), ("b", "c", 1.0), ("d", "e", 1.0)]
    )
    oracle = FrozenOracle(graph)
    assert oracle.distance("a", "c") == 2.0
    row = next(iter(oracle._rows.values()))
    oracle.patch_edge_costs({("d", "e"): 5.0})
    assert next(iter(oracle._rows.values())) is row
    # Raising an on-tree edge evicts, and the answer tracks the new cost.
    oracle.patch_edge_costs({("a", "b"): 3.0})
    assert oracle.distance("a", "c") == 4.0


def test_patch_rejects_unknown_edges_atomically():
    graph = Graph.from_edges([("a", "b", 1.0), ("b", "c", 1.0)])
    oracle = FrozenOracle(graph)
    assert oracle.distance("a", "c") == 2.0
    with pytest.raises(KeyError):
        oracle.patch_edge_costs({("a", "b"): 10.0, ("a", "z"): 2.0})
    # The failed batch must not have mutated the graph or the oracle.
    assert graph.cost("a", "b") == 1.0
    assert oracle.distance("a", "c") == 2.0


# ----------------------------------------------------------------------
# batch canonicalisation (duplicate orientations)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("planner", [True, False])
def test_patch_duplicate_orientation_last_write_wins(planner):
    """A batch naming one edge in both orientations applies only the last.

    The regression: the uncanonicalised batch produced two ``applied``
    entries with the same pre-patch ``old`` cost, double-patched the CSR
    weights and inflated the returned count; when the two new costs
    straddled the old one it even classified a phantom decrease whose
    cost existed in neither the graph nor the batch's outcome.
    """
    graph = Graph.from_edges([("a", "b", 1.0), ("b", "c", 1.0)])
    oracle = FrozenOracle(graph, planner=planner)
    assert oracle.distance("a", "c") == 2.0
    # Same edge, both orientations: one logical change, last write wins.
    assert oracle.patch_edge_costs({("a", "b"): 5.0, ("b", "a"): 3.0}) == 1
    assert graph.cost("a", "b") == 3.0
    fresh = FrozenOracle(graph.copy(), planner=planner)
    for u in ("a", "b", "c"):
        assert oracle.distances_from(u) == fresh.distances_from(u)
    # Straddling duplicate: a decrease below the current cost followed by
    # an increase above it -- the batch must behave as a pure increase to
    # 4.0, not as a decrease-to-0.5 plus an increase.
    assert oracle.patch_edge_costs({("b", "c"): 0.5, ("c", "b"): 4.0}) == 1
    assert graph.cost("b", "c") == 4.0
    fresh = FrozenOracle(graph.copy(), planner=planner)
    for u in ("a", "b", "c"):
        assert oracle.distances_from(u) == fresh.distances_from(u)
    # A duplicate whose last entry restores the current cost is a no-op.
    rows_before = dict(oracle._rows)
    assert oracle.patch_edge_costs({("a", "b"): 9.0, ("b", "a"): 3.0}) == 0
    assert graph.cost("a", "b") == 3.0
    assert oracle._rows == rows_before


def test_patch_duplicate_orientation_matches_sequential_patches():
    """The deduped batch equals applying the mapping entries in order."""
    rng = random.Random(77)
    graph = random_graph(rng)
    batched = FrozenOracle(graph.copy(), hot=[0, 1])
    sequential = FrozenOracle(graph.copy(), hot=[0, 1])
    nodes = list(graph.nodes())
    for oracle in (batched, sequential):
        for _ in range(20):
            oracle.distance(rng.choice(nodes), rng.choice(nodes))
    u, v, cost = next(iter(graph.edges()))
    batched.patch_edge_costs({(u, v): cost * 2.0, (v, u): cost * 3.0})
    sequential.patch_edge_costs({(u, v): cost * 2.0})
    sequential.patch_edge_costs({(v, u): cost * 3.0})
    for source in rng.sample(nodes, 6):
        assert (
            batched.distances_from(source)
            == sequential.distances_from(source)
        )


# ----------------------------------------------------------------------
# patching an unbuilt oracle (before the first query)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("patchable", [False, True])
def test_patch_before_first_query(patchable):
    """Patches on an unbuilt oracle land in the graph; ``_build`` sees them.

    ``patch_edge_costs`` writes the new costs into the graph before the
    ``not self._built`` early-return, so an oracle patched before its
    first query must build over the patched costs and answer exactly
    like a fresh oracle on the updated graph.
    """
    rng = random.Random(19)
    graph = random_graph(rng)
    nodes = list(graph.nodes())
    hot = rng.sample(nodes, 4)
    oracle = FrozenOracle(graph, hot=hot, patchable=patchable)
    changed = perturb(rng, graph, 6)
    # Every drawn change is real (factors never equal 1.0 here).
    assert oracle.patch_edge_costs(dict(changed)) == len(changed)
    for (u, v), cost in changed.items():
        assert graph.cost(u, v) == float(cost)
    assert not oracle._built
    fresh = FrozenOracle(graph.copy(), hot=hot, patchable=patchable)
    for source in rng.sample(nodes, 8):
        assert oracle.distances_from(source) == fresh.distances_from(source)


def test_patch_before_first_query_rejects_unknown_edges():
    graph = Graph.from_edges([("a", "b", 1.0), ("b", "c", 1.0)])
    oracle = FrozenOracle(graph)
    with pytest.raises(KeyError):
        oracle.patch_edge_costs({("a", "b"): 10.0, ("a", "z"): 2.0})
    assert graph.cost("a", "b") == 1.0  # nothing written
    assert oracle.distance("a", "c") == 2.0


def test_patch_before_first_query_counts_real_changes():
    graph = Graph.from_edges([("a", "b", 1.0), ("b", "c", 1.0)])
    oracle = FrozenOracle(graph)
    # One real change, one no-op, one duplicated orientation.
    assert oracle.patch_edge_costs(
        {("a", "b"): 2.0, ("b", "a"): 4.0, ("b", "c"): 1.0}
    ) == 1
    assert graph.cost("a", "b") == 4.0
    assert graph.cost("b", "c") == 1.0
    assert oracle.distance("a", "c") == 5.0


# ----------------------------------------------------------------------
# tree-edge index maintenance across row-replacing recomputes
# ----------------------------------------------------------------------
def test_row_upgrade_registers_in_tree_index(monkeypatch):
    """A full-row upgrade registers its new tree edges immediately.

    The superset invariant: while the inverted tree-edge index is live,
    every tree edge of every cached row must have an index entry --
    a missing entry would make a later patch skip the row's repair and
    serve a stale distance.  Row-replacing recomputes (the
    ``distances_from`` upgrade here) bypass the in-place repair
    bookkeeping, so they must register through ``_install_row`` rather
    than waiting for the next patch's reconcile pass.
    """
    from repro.graph import indexed

    monkeypatch.setattr(indexed, "PLANNER_INDEX_MIN_ROWS", 1)
    monkeypatch.setattr(indexed, "PLANNER_INDEX_BUILD_STREAK", 0)
    graph = Graph.from_edges([
        ("s", "a", 1.0), ("a", "b", 1.0), ("b", "t", 1.0), ("x", "y", 1.0),
    ])
    oracle = FrozenOracle(graph, hot={"s", "a"}, planner=True)
    # Early-stopped row from s (settles once the hot set is done).
    assert oracle.distance("s", "a") == 1.0
    core = oracle.core
    sid = core.index["s"]
    assert not oracle._rows[sid].full
    # A sparse patch builds the index over the partial tree.
    oracle.patch_edge_costs({("x", "y"): 2.0})
    assert oracle._tree_index is not None
    key = tuple(sorted((core.index["b"], core.index["t"])))
    assert sid not in oracle._tree_index.get(key, set())
    # Full-row upgrade: the new tree gains b-t, which the index must see
    # *immediately* -- not only at the next patch's reconcile pass.
    assert oracle.distances_from("s")["t"] == 3.0
    assert oracle._rows[sid].full
    assert sid in oracle._tree_index.get(key, set())
    assert oracle._indexed[sid] is oracle._rows[sid]
    # And the repair driven through that registration serves fresh costs.
    oracle.patch_edge_costs({("b", "t"): 5.0})
    assert oracle.distance("s", "t") == 7.0
    fresh = FrozenOracle(graph.copy(), hot={"s", "a"})
    assert oracle.distance("s", "t") == fresh.distance("s", "t")


# ----------------------------------------------------------------------
# contracted mode
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def contracted_instance():
    network = inet_network(
        num_nodes=400, num_links=800, num_datacenters=120, seed=5
    )
    return network.make_instance(
        num_sources=4, num_destinations=5, num_vms=10,
        chain=ServiceChain.of_length(3), seed=21,
    )


def test_patched_contracted_matches_fresh(contracted_instance):
    instance = contracted_instance
    graph = instance.graph.copy()
    hot = instance.vms | instance.sources | instance.destinations
    oracle = FrozenOracle(graph, hot=hot)
    assert oracle.contracted is not None
    special = sorted(hot, key=repr)
    oracle.warm(special)
    rng = random.Random(7)
    for _ in range(4):
        changed = perturb(rng, graph, 12)
        oracle.patch_edge_costs(changed)
        fresh = FrozenOracle(graph.copy(), hot=hot)
        assert fresh.contracted is not None
        for source in special[:6]:
            # Covers core nodes and chain interiors (full-row expansion).
            assert oracle.distances_from(source) == fresh.distances_from(source)
        for _ in range(20):
            u, v = rng.choice(special), rng.choice(special)
            d = oracle.distance(u, v)
            assert d == pytest.approx(fresh.distance(u, v), rel=0, abs=1e-9)
            if d < INF and u != v:
                path = oracle.path(u, v)
                assert path[0] == u and path[-1] == v
                assert walk_cost(graph, path) == pytest.approx(
                    d, rel=0, abs=1e-9
                )


def test_patch_interior_chain_edge_served_exactly(contracted_instance):
    instance = contracted_instance
    graph = instance.graph.copy()
    hot = instance.vms | instance.sources | instance.destinations
    oracle = FrozenOracle(graph, hot=hot)
    contracted = oracle.contracted
    # Pick an edge buried inside a contracted chain (interior-interior
    # when the longest chain allows it, anchor-interior otherwise).
    chain = max(contracted.chains, key=lambda c: len(c[2]))
    interiors = chain[2]
    if len(interiors) >= 2:
        u, v = interiors[0], interiors[1]
    else:
        u, v = contracted.nodes[chain[0]], interiors[0]
    old = graph.cost(u, v)
    oracle.patch_edge_costs({(u, v): old * 4.0})
    reference = DistanceOracle(graph)
    probe = sorted(instance.sources, key=repr)[0]
    for node in (u, v):
        assert oracle.distance(probe, node) == pytest.approx(
            reference.distance(probe, node), rel=0, abs=1e-9
        )


# ----------------------------------------------------------------------
# rebased clones (the dynamic-adjustment path)
# ----------------------------------------------------------------------
def test_rebased_leaves_original_untouched():
    rng = random.Random(31)
    graph = random_graph(rng)
    nodes = list(graph.nodes())
    hot = rng.sample(nodes, 5)
    oracle = FrozenOracle(graph, hot=hot)
    for _ in range(20):
        oracle.distance(rng.choice(nodes), rng.choice(nodes))
    u, v, cost = next(iter(graph.edges()))
    before = {n: oracle.distances_from(n) for n in rng.sample(nodes, 5)}

    copy = graph.copy()
    rebased = oracle.rebased(copy, {(u, v): cost * 10.0})
    assert copy.cost(u, v) == cost * 10.0
    assert graph.cost(u, v) == cost  # original graph untouched
    for n, row in before.items():
        assert oracle.distances_from(n) == row
    fresh = FrozenOracle(copy.copy(), hot=hot)
    for n in rng.sample(nodes, 8):
        assert rebased.distances_from(n) == fresh.distances_from(n)


def test_rebased_inherits_repair_modes():
    graph = Graph.from_edges([("a", "b", 1.0), ("b", "c", 1.0)])
    oracle = FrozenOracle(graph, planner=False, share_regions=False)
    oracle.distance("a", "c")
    clone = oracle.rebased(graph.copy(), {("a", "b"): 2.0})
    assert clone._planner is False
    assert clone._share_regions is False
    assert clone.distance("a", "c") == 3.0


def test_reroute_congested_link_uses_rebased_oracle():
    from repro import sofda

    network = softlayer_network(seed=3)
    instance = network.make_instance(
        num_sources=3, num_destinations=4, num_vms=8,
        chain=ServiceChain.of_length(2), seed=9,
    )
    forest = sofda(instance).forest
    link = next(iter(forest.chains[0].all_edges()))
    old_cost = instance.graph.cost(*link)
    new_instance, rerouted, = None, None
    new_instance, rerouted = reroute_congested_link(
        forest, link, old_cost * 20.0
    )
    assert new_instance.graph.cost(*link) == old_cost * 20.0
    assert instance.graph.cost(*link) == old_cost
    # The rebased oracle answers exactly like a cold oracle on the
    # updated graph.
    fresh = DistanceOracle(new_instance.graph)
    rng = random.Random(1)
    nodes = sorted(new_instance.graph.nodes(), key=repr)
    for _ in range(25):
        a, b = rng.choice(nodes), rng.choice(nodes)
        assert new_instance.oracle.distance(a, b) == pytest.approx(
            fresh.distance(a, b), rel=0, abs=1e-9
        )


# ----------------------------------------------------------------------
# tenant churn: decrease-carrying patch batches from lease releases
# ----------------------------------------------------------------------
def _churn_trace_costs(incremental, seed=17, requests=9):
    """Replay one arrive/depart stream; returns (costs, decrease_batches).

    Departures release leases, so the next cost sync hands the oracle a
    batch containing *decreases* -- the patch direction no arrivals-only
    workload produces.  The stream (requests and departure draws) is a
    pure function of the seeds, so both oracle modes see identical
    workloads.
    """
    from repro import sofda
    from repro.online import OnlineSimulator, RequestGenerator

    network = softlayer_network(seed=3)
    simulator = OnlineSimulator(network, incremental=incremental)
    generator = RequestGenerator(network, seed=5, destinations_range=(3, 4),
                                 sources_range=(2, 2))
    rng = random.Random(seed)
    decrease_batches = 0
    if incremental:
        oracle = simulator._oracle
        graph = simulator._graph
        original = oracle.patch_edge_costs

        def spying_patch(changed):
            nonlocal decrease_batches
            if any(cost < graph.cost(u, v) for (u, v), cost in changed.items()):
                decrease_batches += 1
            return original(changed)

        oracle.patch_edge_costs = spying_patch
    active, costs = [], []
    for _ in range(requests):
        request = generator.next_request()
        instance = simulator.current_instance(request)
        forest = sofda(instance).forest
        costs.append(forest.total_cost())
        active.append(simulator.commit(forest, request))
        while active and rng.random() < 0.45:
            simulator.release(active.pop(rng.randrange(len(active))))
    return costs, decrease_batches


def test_churn_decrease_batches_match_full_rebuild():
    """Patching through decreases must equal the invalidate reference."""
    patched, decrease_batches = _churn_trace_costs(incremental=True)
    rebuilt, _ = _churn_trace_costs(incremental=False)
    # The stream must actually exercise the decrease path, not just
    # happen to pass without it.
    assert decrease_batches >= 2
    assert patched == rebuilt
