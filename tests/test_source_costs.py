"""Appendix D: scenarios with setup costs on sources."""

import pytest

from repro import Graph, ServiceChain, SOFInstance, check_forest, sofda, sofda_ss


@pytest.fixture
def two_source_instance():
    """Symmetric network where only the source setup cost differs."""
    g = Graph.from_edges([
        ("sA", "m1", 1.0), ("sB", "m1", 1.0),
        ("m1", "m2", 1.0), ("m2", "d", 1.0),
    ])
    return dict(
        graph=g, vms={"m1", "m2"}, sources={"sA", "sB"},
        destinations={"d"}, chain=ServiceChain.of_length(2),
        node_costs={"m1": 1.0, "m2": 1.0},
    )


def test_source_cost_steers_selection(two_source_instance):
    instance = SOFInstance(
        source_costs={"sA": 100.0, "sB": 0.0}, **two_source_instance
    )
    forest = sofda_ss(instance)
    check_forest(instance, forest)
    assert forest.used_sources() == {"sB"}


def test_source_cost_included_in_total(two_source_instance):
    free = SOFInstance(**two_source_instance)
    priced = SOFInstance(
        source_costs={"sA": 5.0, "sB": 5.0}, **two_source_instance
    )
    cost_free = sofda_ss(free).total_cost()
    cost_priced = sofda_ss(priced).total_cost()
    assert cost_priced == pytest.approx(cost_free + 5.0)


def test_sofda_with_source_costs_feasible(two_source_instance):
    instance = SOFInstance(
        source_costs={"sA": 2.0, "sB": 3.0}, **two_source_instance
    )
    result = sofda(instance)
    check_forest(instance, result.forest)
    # Exactly one source used; its setup cost is charged once.
    assert result.forest.setup_cost() >= 2.0


def test_zero_source_costs_match_default(two_source_instance):
    explicit = SOFInstance(
        source_costs={"sA": 0.0, "sB": 0.0}, **two_source_instance
    )
    implicit = SOFInstance(**two_source_instance)
    assert sofda(explicit).cost == pytest.approx(sofda(implicit).cost)
