"""Tests for the tenant-churn workload engine (arrivals/departures/trace)."""

import pytest

from repro import sofda
from repro.baselines import est_baseline
from repro.core.problem import ServiceChain
from repro.costmodel import LoadTracker
from repro.experiments import run_churn_comparison
from repro.online import OnlineSimulator, Request, RequestGenerator
from repro.topology import softlayer_network
from repro.workload import (
    BackgroundChurn,
    read_trace_metadata,
    DiurnalArrivals,
    ExponentialHolding,
    FixedHolding,
    FlashCrowdArrivals,
    PoissonArrivals,
    WorkloadEngine,
    WorkloadEvent,
    build_schedule,
    dump_trace,
    load_trace,
    read_trace,
    write_trace,
)

SOFDA = lambda inst: sofda(inst).forest  # noqa: E731


@pytest.fixture
def network():
    return softlayer_network(seed=3)


def _generator(network, seed=7):
    return RequestGenerator(network, seed=seed, destinations_range=(3, 4),
                            sources_range=(2, 2))


def _schedule(network, horizon=20.0, rate=0.5, hold_mean=4.0, seed=1,
              background=None):
    process = PoissonArrivals(_generator(network), rate=rate, seed=seed)
    holding = ExponentialHolding(mean=hold_mean, seed=seed + 1)
    return build_schedule(process, horizon=horizon, holding=holding,
                          background=background)


# ----------------------------------------------------------------------
# arrival processes
# ----------------------------------------------------------------------
def test_poisson_arrivals_deterministic(network):
    def draw(seed):
        process = PoissonArrivals(_generator(network), rate=1.0, seed=seed)
        return [(a.time, a.request.sources, a.request.destinations)
                for a in process.arrivals(30.0)]

    assert draw(5) == draw(5)
    assert draw(5) != draw(6)


def test_arrival_times_increase_within_horizon(network):
    process = PoissonArrivals(_generator(network), rate=2.0, seed=0)
    arrivals = process.take(15.0)
    times = [a.time for a in arrivals]
    assert times == sorted(times)
    assert all(0 < t <= 15.0 for t in times)
    # Request indices follow the generator's stream in arrival order.
    assert [a.request.index for a in arrivals] == list(range(len(arrivals)))


def test_diurnal_rate_modulates_arrivals(network):
    # Peak quarter (around period/4) vs trough quarter (around 3*period/4)
    # over many periods: the peak must collect far more arrivals.
    process = DiurnalArrivals(_generator(network), base_rate=1.0,
                              amplitude=1.0, period=8.0, seed=3)
    peak = trough = 0
    for arrival in process.arrivals(400.0):
        phase = (arrival.time % 8.0) / 8.0
        if phase < 0.5:
            peak += 1
        else:
            trough += 1
    assert peak > 2 * trough


def test_flash_crowd_concentrates_in_burst(network):
    process = FlashCrowdArrivals(_generator(network), base_rate=0.5,
                                 burst_start=10.0, burst_duration=5.0,
                                 burst_factor=8.0, seed=4)
    inside = outside = 0
    for arrival in process.arrivals(40.0):
        if 10.0 <= arrival.time < 15.0:
            inside += 1
        else:
            outside += 1
    # 5 burst units at 4.0/unit vs 35 base units at 0.5/unit.
    assert inside > outside / 2


def test_process_parameter_validation(network):
    generator = _generator(network)
    with pytest.raises(ValueError):
        PoissonArrivals(generator, rate=0.0)
    with pytest.raises(ValueError):
        DiurnalArrivals(generator, base_rate=1.0, amplitude=1.5)
    with pytest.raises(ValueError):
        FlashCrowdArrivals(generator, base_rate=1.0, burst_start=0.0,
                           burst_duration=-1.0)
    with pytest.raises(ValueError):
        FlashCrowdArrivals(generator, base_rate=1.0, burst_start=0.0,
                           burst_duration=1.0, burst_factor=0.5)


def test_request_stream_independent_of_timing(network):
    """Two processes over same-seed generators draw identical requests."""
    poisson = PoissonArrivals(_generator(network, seed=9), rate=1.0, seed=1)
    diurnal = DiurnalArrivals(_generator(network, seed=9), base_rate=1.0,
                              seed=2)
    a = [x.request for x in poisson.arrivals(20.0)]
    b = [x.request for x in diurnal.arrivals(20.0)]
    shared = min(len(a), len(b))
    assert shared > 0
    assert a[:shared] == b[:shared]


# ----------------------------------------------------------------------
# schedules
# ----------------------------------------------------------------------
def test_build_schedule_sorted_with_holds(network):
    churn = BackgroundChurn(
        period=5.0,
        link_batches=(((0, 1),), ((1, 2),)),
        demand_mbps=2.0,
    )
    schedule = _schedule(network, background=churn)
    times = [e.time for e in schedule]
    assert times == sorted(times)
    kinds = {e.kind for e in schedule}
    assert kinds == {"arrive", "background"}
    for event in schedule:
        if event.kind == "arrive":
            assert event.hold is not None and event.hold > 0
            assert event.request is not None
        else:
            assert event.links and event.demand_mbps == 2.0


def test_background_churn_cycles_batches():
    churn = BackgroundChurn(
        period=2.0,
        link_batches=((("a", "b"),), (("c", "d"),)),
        demand_mbps=1.0,
    )
    events = churn.events(9.0)
    assert [e.time for e in events] == [2.0, 4.0, 6.0, 8.0]
    assert events[0].links == (("a", "b"),)
    assert events[1].links == (("c", "d"),)
    assert events[2].links == (("a", "b"),)


def test_background_churn_validated_at_construction():
    with pytest.raises(ValueError, match="period must be positive"):
        BackgroundChurn(period=0.0, link_batches=(((0, 1),),),
                        demand_mbps=1.0)
    with pytest.raises(ValueError, match="at least one batch"):
        BackgroundChurn(period=1.0, link_batches=(), demand_mbps=1.0)
    with pytest.raises(ValueError, match="must be >= 0"):
        BackgroundChurn(period=1.0, link_batches=(((0, 1),),),
                        demand_mbps=-1.0)


def test_fixed_holding_and_no_departures(network):
    process = PoissonArrivals(_generator(network), rate=0.5, seed=1)
    fixed = build_schedule(process, horizon=10.0, holding=FixedHolding(3.5))
    assert all(e.hold == 3.5 for e in fixed)
    process = PoissonArrivals(_generator(network), rate=0.5, seed=1)
    forever = build_schedule(process, horizon=10.0, holding=None)
    assert all(e.hold is None for e in forever)


# ----------------------------------------------------------------------
# the engine: leases, departures, load conservation
# ----------------------------------------------------------------------
def test_commit_returns_lease_release_reverses(network):
    simulator = OnlineSimulator(network)
    request = _generator(network, seed=2).next_request()
    instance = simulator.current_instance(request)
    forest = SOFDA(instance)
    first_cost = forest.total_cost()
    lease = simulator.commit(forest, request)
    assert lease.link_loads and lease.node_loads
    assert any(simulator.tracker.link_load.values())
    simulator.release(lease)
    assert all(v == 0.0 for v in simulator.tracker.link_load.values())
    assert all(v == 0.0 for v in simulator.tracker.node_load.values())
    # With every lease released the simulator re-prices back to the
    # unloaded state: the same request embeds at its original cost.
    second_cost = simulator.embed(request, SOFDA)
    assert second_cost == first_cost


def test_embed_leased_rejection(network):
    simulator = OnlineSimulator(network)
    request = _generator(network, seed=2).next_request()

    def broken(instance):
        raise RuntimeError("embedder exploded")

    assert simulator.embed_leased(request, broken) == (None, None)
    cost, lease = simulator.embed_leased(request, SOFDA)
    assert cost is not None and lease is not None


def test_release_is_single_shot(network):
    simulator = OnlineSimulator(network)
    request = _generator(network, seed=2).next_request()
    forest = SOFDA(simulator.current_instance(request))
    lease = simulator.commit(forest, request)
    simulator.release(lease)
    with pytest.raises(ValueError, match="already released"):
        simulator.release(lease)


def test_engine_drains_all_departures(network):
    schedule = _schedule(network, horizon=15.0)
    engine = WorkloadEngine(OnlineSimulator(network), SOFDA, name="SOFDA")
    result = engine.run(schedule)
    arrivals = [e for e in schedule if e.kind == "arrive"]
    assert result.accepted + result.rejected == len(arrivals)
    # Every accepted tenant eventually departs (the heap drains fully,
    # even past the arrival horizon), so the network ends empty.
    assert result.departures == result.accepted
    assert result.final_active == 0
    assert result.peak_active >= 1
    assert len(result.per_request_cost) == len(arrivals)


def test_engine_conserves_load_over_full_churn(network):
    simulator = OnlineSimulator(network)
    engine = WorkloadEngine(simulator, SOFDA)
    engine.run(_schedule(network, horizon=15.0))
    assert all(v == 0.0 for v in simulator.tracker.link_load.values())
    assert all(v == 0.0 for v in simulator.tracker.node_load.values())


def test_engine_counts_rejections(network):
    def broken(instance):
        raise RuntimeError("embedder exploded")

    schedule = _schedule(network, horizon=10.0)
    result = WorkloadEngine(OnlineSimulator(network), broken).run(schedule)
    assert result.accepted == 0
    assert result.departures == 0
    assert result.acceptance_rate == 0.0
    assert all(c is None for c in result.per_request_cost)


def test_engine_incremental_matches_invalidate(network):
    """Churn (decrease patches included) must not depend on the oracle mode."""
    schedule = _schedule(network, horizon=18.0, hold_mean=3.0)

    def run(incremental):
        simulator = OnlineSimulator(softlayer_network(seed=3),
                                    incremental=incremental)
        return WorkloadEngine(simulator, SOFDA).run(schedule)

    fast, reference = run(True), run(False)
    assert fast.per_request_cost == reference.per_request_cost
    assert fast.departures == reference.departures


# ----------------------------------------------------------------------
# load-tracker release semantics
# ----------------------------------------------------------------------
def test_release_link_load_guard_and_clamp():
    tracker = LoadTracker()
    tracker.add_link_load(0, 1, 5.0)
    with pytest.raises(ValueError, match="cannot release"):
        tracker.release_link_load(0, 1, 6.0)
    tracker.drain_dirty_links()
    tracker.release_link_load(1, 0, 5.0)  # canonical: same undirected link
    assert tracker.link_load[(0, 1)] == 0.0
    # Released links are marked dirty so the next sync re-prices them.
    assert (0, 1) in tracker.drain_dirty_links()
    with pytest.raises(ValueError, match="cannot release"):
        tracker.release_link_load(0, 1, 1.0)


def test_release_clamps_float_residue():
    tracker = LoadTracker()
    for _ in range(10):
        tracker.add_link_load(0, 1, 0.1)
    tracker.release_link_load(0, 1, 1.0)  # 10 * 0.1 != 1.0 in floats
    assert tracker.link_load[(0, 1)] == 0.0
    tracker.add_node_load("vm", 0.3)
    tracker.release_node_load("vm", 0.1)
    tracker.release_node_load("vm", 0.1)
    tracker.release_node_load("vm", 0.1)
    assert tracker.node_load["vm"] == 0.0


def test_negative_demand_rejected(network):
    tracker = LoadTracker()
    with pytest.raises(ValueError, match="must be >= 0"):
        tracker.add_link_load(0, 1, -1.0)
    with pytest.raises(ValueError, match="must be >= 0"):
        tracker.add_node_load("vm", -1.0)
    with pytest.raises(ValueError, match="must be >= 0"):
        tracker.release_link_load(0, 1, -1.0)
    with pytest.raises(ValueError, match="must be >= 0"):
        tracker.release_node_load("vm", -1.0)
    simulator = OnlineSimulator(network)
    link = next(iter(network.graph.edges()))[:2]
    with pytest.raises(ValueError, match="must be >= 0"):
        simulator.apply_background_load([link], demand_mbps=-2.0)


def test_release_node_load_guard():
    tracker = LoadTracker()
    tracker.add_node_load("vm", 1.0)
    with pytest.raises(ValueError, match="cannot release"):
        tracker.release_node_load("vm", 2.0)
    tracker.release_node_load("vm", 1.0)
    assert tracker.node_load["vm"] == 0.0


# ----------------------------------------------------------------------
# trace record/replay
# ----------------------------------------------------------------------
def test_trace_round_trip_preserves_events(network):
    churn = BackgroundChurn(
        period=6.0, link_batches=(((0, 1), (2, 3)),), demand_mbps=1.5
    )
    schedule = _schedule(network, background=churn)
    assert load_trace(dump_trace(schedule)) == schedule


def test_trace_round_trips_tuple_nodes():
    request = Request(
        index=3,
        sources=(("vm", 0, 1), "gw"),
        destinations=((("pod", 2), 4),),
        chain=ServiceChain(["transcode", "cache"]),
        demand_mbps=2.5,
    )
    schedule = [
        WorkloadEvent(time=1.5, kind="arrive", request=request, hold=4.0),
        WorkloadEvent(time=2.0, kind="background",
                      links=((("vm", 0, 1), "gw"),), demand_mbps=0.5),
    ]
    replayed = load_trace(dump_trace(schedule))
    assert replayed == schedule
    assert isinstance(replayed[0].request.sources[0], tuple)


def test_trace_encodes_infinite_hold_as_null(network):
    """`inf` holds must not leak the non-JSON `Infinity` token."""
    request = _generator(network).next_request()
    schedule = [WorkloadEvent(time=1.0, kind="arrive", request=request,
                              hold=float("inf"))]
    lines = list(dump_trace(schedule))
    assert "Infinity" not in "\n".join(lines)
    # The engine treats a null hold exactly like an infinite one
    # (the tenant never departs), so the encoding is lossless.
    assert load_trace(lines)[0].hold is None


def test_trace_metadata_round_trip(tmp_path):
    path = tmp_path / "meta.jsonl"
    write_trace([], path, meta={"topology": "cogent", "topology_seed": 4})
    assert read_trace_metadata(path) == {
        "topology": "cogent", "topology_seed": 4,
    }
    assert read_trace(path) == []
    # Traces recorded without metadata read back an empty mapping.
    write_trace([], path)
    assert read_trace_metadata(path) == {}


def test_trace_header_validation():
    with pytest.raises(ValueError, match="empty trace"):
        load_trace([])
    with pytest.raises(ValueError, match="not a workload trace"):
        load_trace(['{"record": "something-else", "version": 1}'])
    with pytest.raises(ValueError, match="unsupported trace version"):
        load_trace(['{"record": "sof-workload-trace", "version": 99}'])
    with pytest.raises(ValueError, match="unknown event kind"):
        load_trace([
            '{"record": "sof-workload-trace", "version": 1}',
            '{"time": 1.0, "kind": "depart"}',
        ])


def test_trace_file_replay_is_deterministic(network, tmp_path):
    """Recording a run and replaying its JSONL yields identical results."""
    path = tmp_path / "churn.jsonl"
    schedule = _schedule(network, horizon=15.0)
    write_trace(schedule, path)
    replayed = read_trace(path)
    assert replayed == schedule

    def run(events):
        simulator = OnlineSimulator(softlayer_network(seed=3))
        return WorkloadEngine(simulator, SOFDA).run(events)

    recorded_run, replayed_run = run(schedule), run(replayed)
    assert recorded_run.per_request_cost == replayed_run.per_request_cost
    assert [c is None for c in recorded_run.per_request_cost] == \
        [c is None for c in replayed_run.per_request_cost]
    assert recorded_run.departures == replayed_run.departures


# ----------------------------------------------------------------------
# harness + CLI integration
# ----------------------------------------------------------------------
def test_run_churn_comparison_isolates_state(network):
    schedule = _schedule(network, horizon=12.0)
    results = run_churn_comparison(
        lambda: softlayer_network(seed=3),
        {"SOFDA": SOFDA, "eST": est_baseline},
        schedule,
    )
    assert set(results) == {"SOFDA", "eST"}
    arrivals = sum(1 for e in schedule if e.kind == "arrive")
    for result in results.values():
        assert result.accepted + result.rejected == arrivals
        assert 0.0 <= result.acceptance_rate <= 1.0


def test_cli_workload_record_replay(tmp_path, capsys):
    from repro.cli import main

    trace_path = tmp_path / "cli.jsonl"
    assert main([
        "workload", "--process", "poisson", "--rate", "0.4",
        "--horizon", "10", "--hold-mean", "4", "--seed", "1",
        "--topology-seed", "2", "--record", str(trace_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "SOFDA" in out and "recorded trace" in out
    assert read_trace_metadata(trace_path) == {
        "topology": "softlayer", "topology_seed": 2,
    }
    # Replay reconstructs the recorded topology even though the flags
    # would default to topology seed 1.
    assert main(["workload", "--replay", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "replaying" in out and "SOFDA" in out
    assert "topology softlayer, seed 2" in out


def test_cli_workload_holding_flags_exclusive():
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(["workload", "--no-departures", "--hold-fixed", "5",
              "--horizon", "4"])


def test_cli_workload_replay_rejects_unknown_topology(tmp_path):
    from repro.cli import main

    path = tmp_path / "alien.jsonl"
    write_trace([], path, meta={"topology": "inet5000"})
    with pytest.raises(SystemExit, match="inet5000"):
        main(["workload", "--replay", str(path)])


def test_cli_workload_flash_with_baselines(capsys):
    from repro.cli import main

    assert main([
        "workload", "--process", "flash", "--rate", "0.3",
        "--burst-start", "2", "--burst-duration", "3",
        "--burst-factor", "4", "--horizon", "8", "--hold-fixed", "3",
        "--seed", "2", "--baselines",
    ]) == 0
    out = capsys.readouterr().out
    for name in ("SOFDA", "eNEMP", "eST", "ST"):
        assert name in out
