"""Tests for the six dynamic adjustments (Section VII-C)."""

import pytest

from repro import ServiceChain, check_forest, sofda
from repro.core.dynamic import (
    DynamicError,
    destination_join,
    destination_leave,
    relocate_overloaded_vm,
    reroute_congested_link,
    vnf_deletion,
    vnf_insertion,
)
from repro.topology import softlayer_network


@pytest.fixture
def embedded():
    network = softlayer_network(seed=5)
    instance = network.make_instance(
        num_sources=3, num_destinations=4, num_vms=10,
        chain=ServiceChain.of_length(3), seed=9,
    )
    forest = sofda(instance).forest
    return instance, forest


def test_destination_leave(embedded):
    instance, forest = embedded
    victim = sorted(instance.destinations, key=repr)[0]
    new_instance, new_forest = destination_leave(forest, victim)
    assert victim not in new_instance.destinations
    check_forest(new_instance, new_forest)
    # Leaving never increases the cost (paths are only pruned).
    assert new_forest.total_cost() <= forest.total_cost() + 1e-9


def test_destination_leave_unknown_raises(embedded):
    _, forest = embedded
    with pytest.raises(DynamicError):
        destination_leave(forest, "not-a-destination")


def test_destination_join(embedded):
    instance, forest = embedded
    outsider = next(
        n for n in sorted(instance.graph.nodes(), key=repr)
        if n not in instance.destinations
        and n not in instance.sources
        and n not in instance.vms
    )
    new_instance, new_forest = destination_join(forest, outsider)
    assert outsider in new_instance.destinations
    check_forest(new_instance, new_forest)
    assert new_forest.total_cost() >= forest.total_cost() - 1e-9


def test_destination_join_existing_raises(embedded):
    instance, forest = embedded
    existing = sorted(instance.destinations, key=repr)[0]
    with pytest.raises(DynamicError):
        destination_join(forest, existing)


def test_destination_join_unknown_node_raises(embedded):
    _, forest = embedded
    with pytest.raises(DynamicError):
        destination_join(forest, "ghost-node")


def test_join_then_leave_roundtrip(embedded):
    instance, forest = embedded
    outsider = next(
        n for n in sorted(instance.graph.nodes(), key=repr)
        if n not in instance.destinations
        and n not in instance.sources
        and n not in instance.vms
    )
    joined_instance, joined = destination_join(forest, outsider)
    left_instance, left = destination_leave(joined, outsider)
    assert left_instance.destinations == instance.destinations
    check_forest(left_instance, left)


def test_vnf_deletion(embedded):
    instance, forest = embedded
    new_instance, new_forest = vnf_deletion(forest, 1)
    assert len(new_instance.chain) == 2
    check_forest(new_instance, new_forest)


def test_vnf_deletion_first_and_last(embedded):
    instance, forest = embedded
    for idx in (0, len(instance.chain) - 1):
        new_instance, new_forest = vnf_deletion(forest, idx)
        check_forest(new_instance, new_forest)


def test_vnf_deletion_bad_index(embedded):
    _, forest = embedded
    with pytest.raises(DynamicError):
        vnf_deletion(forest, 99)


def test_vnf_deletion_last_function_rejected():
    network = softlayer_network(seed=5)
    instance = network.make_instance(
        num_sources=2, num_destinations=3, num_vms=6,
        chain=ServiceChain.of_length(1), seed=3,
    )
    forest = sofda(instance).forest
    with pytest.raises(DynamicError):
        vnf_deletion(forest, 0)


def test_vnf_insertion(embedded):
    instance, forest = embedded
    new_instance, new_forest = vnf_insertion(forest, 1, "firewall")
    assert len(new_instance.chain) == 4
    assert new_instance.chain[1] == "firewall"
    check_forest(new_instance, new_forest)
    # Insertion can only add cost.
    assert new_forest.total_cost() >= forest.total_cost() - 1e-6


def test_vnf_insertion_at_ends(embedded):
    instance, forest = embedded
    for idx in (0, len(instance.chain)):
        new_instance, new_forest = vnf_insertion(forest, idx, "nat")
        check_forest(new_instance, new_forest)


def test_vnf_insert_then_delete_roundtrip(embedded):
    instance, forest = embedded
    inserted_instance, inserted = vnf_insertion(forest, 1, "cache")
    deleted_instance, deleted = vnf_deletion(inserted, 1)
    assert list(deleted_instance.chain) == list(instance.chain)
    check_forest(deleted_instance, deleted)


def test_reroute_congested_link(embedded):
    instance, forest = embedded
    # Congest the most-used chain edge.
    from collections import Counter

    from repro.graph.graph import canonical_edge

    usage = Counter()
    for chain in forest.chains:
        for a, b in chain.all_edges():
            usage[canonical_edge(a, b)] += 1
    for edge in forest.tree_edges:
        usage[edge] += 1
    hot = usage.most_common(1)[0][0]
    new_instance, new_forest = reroute_congested_link(forest, hot, 1e6)
    check_forest(new_instance, new_forest)
    # The rerouted forest avoids the congested link unless unavoidable.
    still_used = any(
        canonical_edge(a, b) == hot
        for chain in new_forest.chains for a, b in chain.all_edges()
    )
    if still_used:
        # Only acceptable when the graph offers no alternative; the cost
        # model then reflects the congestion.
        assert new_forest.total_cost() >= 1e6


def test_reroute_unknown_link_raises(embedded):
    _, forest = embedded
    with pytest.raises(DynamicError):
        reroute_congested_link(forest, ("x", "y"), 10.0)


def test_relocate_overloaded_vm(embedded):
    instance, forest = embedded
    vm = sorted(forest.enabled, key=repr)[0]
    new_instance, new_forest = relocate_overloaded_vm(forest, vm, 1e6)
    check_forest(new_instance, new_forest)
    assert vm not in new_forest.enabled


def test_relocate_idle_vm_raises(embedded):
    instance, forest = embedded
    idle = next(vm for vm in instance.vms if vm not in forest.enabled)
    with pytest.raises(DynamicError):
        relocate_overloaded_vm(forest, idle, 10.0)
