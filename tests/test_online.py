"""Tests for the online deployment simulator."""

import pytest

from repro import sofda
from repro.baselines import est_baseline
from repro.graph import FrozenOracle
from repro.online import OnlineSimulator, RequestGenerator, run_online_comparison
from repro.topology import softlayer_network


@pytest.fixture
def network():
    return softlayer_network(seed=3)


def test_request_generator_deterministic(network):
    a = RequestGenerator(network, seed=5).take(4)
    b = RequestGenerator(network, seed=5).take(4)
    assert [(r.sources, r.destinations) for r in a] == [
        (r.sources, r.destinations) for r in b
    ]
    c = RequestGenerator(network, seed=6).take(4)
    assert [(r.sources, r.destinations) for r in a] != [
        (r.sources, r.destinations) for r in c
    ]


def test_request_generator_paper_ranges(network):
    gen = RequestGenerator(network, seed=0)
    for request in gen.take(10):
        assert 13 <= len(request.destinations) <= 17
        assert 8 <= len(request.sources) <= 12
        assert len(request.chain) == 3
        assert request.demand_mbps == 5.0


def test_request_generator_custom_ranges(network):
    gen = RequestGenerator(network, seed=0, destinations_range=(2, 3),
                           sources_range=(1, 2), chain_length=2)
    request = gen.next_request()
    assert 2 <= len(request.destinations) <= 3
    assert 1 <= len(request.sources) <= 2
    # Small enough to stay disjoint.
    assert set(request.sources).isdisjoint(request.destinations)


def test_request_ranges_validated(network):
    with pytest.raises(ValueError):
        RequestGenerator(network, seed=0, destinations_range=(30, 40),
                         sources_range=(1, 2))


def test_simulator_builds_vm_pool(network):
    sim = OnlineSimulator(network, vms_per_datacenter=5)
    assert len(sim.vms) == 5 * len(network.datacenters)


def test_simulator_commit_raises_loads(network):
    sim = OnlineSimulator(network)
    gen = RequestGenerator(network, seed=2, destinations_range=(3, 3),
                           sources_range=(2, 2))
    request = gen.next_request()
    instance = sim.current_instance(request)
    forest = sofda(instance).forest
    assert not sim.tracker.link_load
    sim.commit(forest, request)
    assert sim.tracker.link_load
    assert sim.tracker.node_load
    # Every used VM got one slot of load.
    for vm in forest.enabled:
        assert sim.tracker.node_load[vm] == 1.0


def test_costs_rise_with_load(network):
    sim = OnlineSimulator(network)
    gen = RequestGenerator(network, seed=2, destinations_range=(3, 3),
                           sources_range=(2, 2))
    request = gen.next_request()
    first = sim.embed(request, lambda inst: sofda(inst).forest)
    # Re-embedding the identical request now sees loaded links.
    second = sim.embed(request, lambda inst: sofda(inst).forest)
    assert second >= first - 1e-9


def test_run_online_comparison_isolates_state(network):
    gen = RequestGenerator(network, seed=7, destinations_range=(3, 4),
                           sources_range=(2, 2))
    requests = gen.take(3)
    results = run_online_comparison(
        lambda: softlayer_network(seed=3),
        {
            "SOFDA": lambda inst: sofda(inst).forest,
            "eST": est_baseline,
        },
        requests,
    )
    assert set(results) == {"SOFDA", "eST"}
    for res in results.values():
        assert len(res.accumulative_cost) == 3
        assert res.rejected == 0
        # Accumulative series is nondecreasing.
        assert all(
            b >= a - 1e-9
            for a, b in zip(res.accumulative_cost, res.accumulative_cost[1:])
        )


def test_incremental_patch_matches_full_rebuild(network):
    """The patch path must replay a trace exactly like invalidate() did."""

    def trace(incremental):
        net = softlayer_network(seed=3)
        sim = OnlineSimulator(net, incremental=incremental)
        gen = RequestGenerator(net, seed=7, destinations_range=(4, 5),
                               sources_range=(2, 3))
        return [
            sim.embed(request, lambda inst: sofda(inst).forest)
            for request in gen.take(6)
        ]

    assert trace(True) == trace(False)


def test_share_regions_matches_unshared_trace(monkeypatch):
    """Dense-patch region sharing must replay a trace bit-identically."""
    from repro.graph import indexed

    monkeypatch.setattr(indexed, "PLANNER_SHARE_MIN_ROWS", 1)
    monkeypatch.setattr(indexed, "PLANNER_SHARE_DENSITY", 0.0)

    def trace(share):
        net = softlayer_network(seed=3)
        sim = OnlineSimulator(net, share_regions=share)
        gen = RequestGenerator(net, seed=7, destinations_range=(4, 5),
                               sources_range=(2, 3))
        return [
            sim.embed(request, lambda inst: sofda(inst).forest)
            for request in gen.take(6)
        ]

    assert trace(True) == trace(False)


def test_apply_background_load_reprices_and_repairs(network):
    """Background churn reprices the live graph and repairs cached rows."""
    sim = OnlineSimulator(network)
    gen = RequestGenerator(network, seed=2, destinations_range=(3, 3),
                           sources_range=(2, 2))
    assert sim.embed(gen.next_request(), lambda inst: sofda(inst).forest) \
        is not None
    graph_before = sim._graph
    oracle_before = sim._oracle
    rows_before = len(sim._oracle._rows)
    link = next(iter(graph_before.edges()))[:2]
    cost_before = graph_before.cost(*link)
    sim.apply_background_load([link], demand_mbps=40.0)
    # Same live graph/oracle objects, repriced link, pool rows kept.
    assert sim._graph is graph_before
    assert sim._oracle is oracle_before
    assert graph_before.cost(*link) == max(
        sim.tracker.link_cost(*link), sim._cost_floor
    )
    assert graph_before.cost(*link) > cost_before
    assert len(sim._oracle._rows) >= rows_before
    # The repaired oracle answers like a cold one over the live graph.
    fresh = FrozenOracle(graph_before.copy(), hot=sim.vms)
    vms = sim.vms
    for vm in vms[:3]:
        assert sim._oracle.distance(vm, vms[-1]) == pytest.approx(
            fresh.distance(vm, vms[-1]), rel=0, abs=1e-12
        )


def test_sync_costs_patches_graph_in_place(network):
    sim = OnlineSimulator(network)
    gen = RequestGenerator(network, seed=2, destinations_range=(3, 3),
                           sources_range=(2, 2))
    request = gen.next_request()
    first = sim.embed(request, lambda inst: sofda(inst).forest)
    assert first is not None
    graph_before = sim._graph
    oracle_before = sim._oracle
    # The next sync must patch the same live graph and oracle objects.
    sim.current_instance(gen.next_request())
    assert sim._graph is graph_before
    assert sim._oracle is oracle_before
    # Loaded links now carry their Fortz--Thorup cost in the live graph.
    loaded = next(iter(sim.tracker.link_load))
    assert sim._graph.cost(*loaded) == max(
        sim.tracker.link_cost(*loaded), sim._cost_floor
    )


def test_rejection_counted(network):
    sim = OnlineSimulator(network)
    gen = RequestGenerator(network, seed=1, destinations_range=(2, 2),
                           sources_range=(2, 2))
    request = gen.next_request()

    def broken(instance):
        raise RuntimeError("embedder exploded")

    assert sim.embed(request, broken) is None
