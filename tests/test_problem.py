"""Tests for the SOF problem model."""

import pytest

from repro import Graph, ServiceChain, SOFInstance


def _tiny_graph():
    return Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])


def test_service_chain_basics():
    chain = ServiceChain(["a", "b"])
    assert len(chain) == 2
    assert list(chain) == ["a", "b"]
    assert chain[1] == "b"


def test_service_chain_of_length():
    chain = ServiceChain.of_length(3)
    assert list(chain) == ["f1", "f2", "f3"]


def test_service_chain_empty_rejected():
    with pytest.raises(ValueError):
        ServiceChain([])
    with pytest.raises(ValueError):
        ServiceChain.of_length(0)


def test_instance_validation_passes():
    instance = SOFInstance(
        graph=_tiny_graph(), vms={1, 2}, sources={0}, destinations={3},
        chain=ServiceChain.of_length(2), node_costs={1: 1.0, 2: 2.0},
    )
    assert instance.setup_cost(1) == 1.0
    assert instance.setup_cost(0) == 0.0  # switches cost nothing
    assert instance.switches() == {0, 3}


def test_instance_rejects_unknown_nodes():
    with pytest.raises(ValueError):
        SOFInstance(
            graph=_tiny_graph(), vms={99}, sources={0}, destinations={3},
            chain=ServiceChain.of_length(1),
        )


def test_instance_requires_sources_and_destinations():
    with pytest.raises(ValueError):
        SOFInstance(graph=_tiny_graph(), vms={1}, sources=set(),
                    destinations={3}, chain=ServiceChain.of_length(1))
    with pytest.raises(ValueError):
        SOFInstance(graph=_tiny_graph(), vms={1}, sources={0},
                    destinations=set(), chain=ServiceChain.of_length(1))


def test_instance_rejects_negative_setup_cost():
    with pytest.raises(ValueError):
        SOFInstance(
            graph=_tiny_graph(), vms={1}, sources={0}, destinations={3},
            chain=ServiceChain.of_length(1), node_costs={1: -1.0},
        )


def test_instance_rejects_chain_longer_than_vm_pool():
    with pytest.raises(ValueError):
        SOFInstance(
            graph=_tiny_graph(), vms={1}, sources={0}, destinations={3},
            chain=ServiceChain.of_length(2),
        )


def test_replicate_vms():
    instance = SOFInstance(
        graph=_tiny_graph(), vms={1}, sources={0}, destinations={3},
        chain=ServiceChain.of_length(1), node_costs={1: 5.0},
    )
    replicated = instance.replicate_vms(copies=3)
    assert len(replicated.vms) == 3
    replica = (1, "replica1")
    assert replica in replicated.vms
    assert replicated.setup_cost(replica) == 5.0
    assert replicated.graph.has_edge(1, replica)
    # A 3-function chain is now embeddable on the single physical host.
    longer = SOFInstance(
        graph=replicated.graph, vms=replicated.vms, sources={0},
        destinations={3}, chain=ServiceChain.of_length(3),
        node_costs=replicated.node_costs,
    )
    assert len(longer.chain) == 3


def test_with_chain_shares_oracle():
    instance = SOFInstance(
        graph=_tiny_graph(), vms={1, 2}, sources={0}, destinations={3},
        chain=ServiceChain.of_length(1),
    )
    _ = instance.oracle.distance(0, 3)
    clone = instance.with_chain(ServiceChain.of_length(2))
    assert clone._oracle is instance._oracle
    assert len(clone.chain) == 2


def test_restrict_sources():
    g = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0)])
    instance = SOFInstance(
        graph=g, vms={1, 2}, sources={0, 4}, destinations={3},
        chain=ServiceChain.of_length(1),
    )
    restricted = instance.restrict_sources({0})
    assert restricted.sources == {0}


def test_source_setup_cost_defaults_zero():
    instance = SOFInstance(
        graph=_tiny_graph(), vms={1, 2}, sources={0}, destinations={3},
        chain=ServiceChain.of_length(1), source_costs={0: 4.0},
    )
    assert instance.source_setup_cost(0) == 4.0
    assert instance.source_setup_cost(3) == 0.0
