"""Shared helpers for the baseline algorithms."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, List, Optional, Sequence

from repro.core.forest import DeployedChain, ServiceOverlayForest
from repro.core.problem import SOFInstance
from repro.graph import steiner_tree

Node = Hashable


@dataclass
class SingleTree:
    """One baseline service tree: a deployed chain plus its hand-off point.

    ``chain_cost`` is the chain's standalone cost (setup + walk edges); the
    distribution tree is (re)built by the multi-source combiner, so it is
    not stored here.
    """

    source: Node
    chain: DeployedChain
    chain_cost: float

    @property
    def handoff(self) -> Node:
        """The node where fully-processed content becomes available."""
        return self.chain.walk[-1]


def greedy_chain(
    instance: SOFInstance,
    source: Node,
    allowed_vms: Iterable[Node],
    num_functions: Optional[int] = None,
) -> Optional[DeployedChain]:
    """Nearest-VM sequential chain construction (the style of [13]).

    From the current endpoint, repeatedly hop to the unused allowed VM
    minimising (shortest-path distance + setup cost), once per function
    (``num_functions`` defaults to ``|C|``; eNEMP passes ``|C|-1`` and
    places the last VNF on its anchor VM itself).

    Returns a (possibly partial) :class:`DeployedChain` or ``None`` when
    the pool is too small or disconnected.
    """
    oracle = instance.oracle
    distance = oracle.distance
    setup_cost = instance.setup_cost
    count = num_functions if num_functions is not None else len(instance.chain)
    pool = set(allowed_vms)
    pool.discard(source)
    if len(pool) < count:
        return None
    walk: List[Node] = [source]
    placements: dict = {}
    current = source
    for vnf in range(count):
        best_vm = None
        best_score = float("inf")
        # repro-lint: disable=det-set-iter -- the repr tie-break below
        # makes the arg-min independent of scan order.
        for vm in pool:
            d = distance(current, vm)
            if d == float("inf"):
                continue
            score = d + setup_cost(vm)
            if score < best_score or (score == best_score and repr(vm) < repr(best_vm)):
                best_vm, best_score = vm, score
        if best_vm is None:
            return None
        segment = oracle.path(current, best_vm)
        walk.extend(segment[1:])
        placements[len(walk) - 1] = vnf
        pool.discard(best_vm)
        current = best_vm
    return DeployedChain(walk=walk, placements=placements)


def chain_total_cost(instance: SOFInstance, chain: DeployedChain) -> float:
    """Standalone cost of a chain: VM setups + per-traversal walk edges."""
    cost = sum(
        instance.setup_cost(chain.walk[pos]) for pos in chain.placements
    )
    for u, v in chain.all_edges():
        cost += instance.graph.cost(u, v)
    return cost


def extend_to(
    instance: SOFInstance, chain: DeployedChain, target: Node
) -> DeployedChain:
    """Append a pass-through shortest path from the chain's end to ``target``."""
    if chain.walk[-1] == target:
        return chain
    path = instance.oracle.path(chain.walk[-1], target)
    out = chain.copy()
    out.walk.extend(path[1:])
    return out


def assemble_forest(
    instance: SOFInstance,
    trees: Sequence[SingleTree],
    steiner_method: str = "kmb",
    prune: bool = True,
) -> ServiceOverlayForest:
    """Combine baseline trees into a forest (the paper's combiner).

    Each destination is served by the tree whose hand-off point is closest;
    each tree then gets a Steiner tree over its hand-off point and assigned
    destinations.  Unassigned trees still pay their chain (the caller's
    iterative wrapper only accepts additions that lower the total cost, so
    useless trees are naturally rejected).
    """
    oracle = instance.oracle
    forest = ServiceOverlayForest(instance=instance)
    for tree in trees:
        forest.add_chain(tree.chain.copy())
    assignment: dict = {i: [] for i in range(len(trees))}
    for dest in sorted(instance.destinations, key=repr):
        best_i = min(
            range(len(trees)),
            key=lambda i: oracle.distance(trees[i].handoff, dest),
        )
        assignment[best_i].append(dest)
    for i, tree in enumerate(trees):
        dests = assignment[i]
        if not dests:
            continue
        result = steiner_tree(
            instance.graph,
            [tree.handoff] + dests,
            method=steiner_method,
            oracle=oracle,
        )
        forest.add_tree(result.tree)
    if prune:
        forest.prune_tree_edges()
    return forest
