"""Baseline algorithms from the paper's evaluation (Section VIII-A).

- :func:`~repro.baselines.st.st_baseline` -- **ST**: a single Steiner tree
  rooted at the best source with one service chain appended.
- :func:`~repro.baselines.est.est_baseline` -- **eST**: the enhanced Steiner
  tree -- best-source Steiner tree plus the shortest service chain closest
  to the tree (chain construction in the style of [13]/[62]), extended to
  multiple sources via iterative tree addition.
- :func:`~repro.baselines.enemp.enemp_baseline` -- **eNEMP**: the enhanced
  NFV-enabled-multicast heuristic (Zhang et al. [27] generalised): pick the
  VM minimising (source-distance + tree cost), route the chain through it,
  also with iterative multi-source extension.
- :mod:`~repro.baselines.multi_source` -- the shared iterative
  tree-addition wrapper the paper describes for enabling eST/eNEMP to use
  multiple sources.

All baselines return plain :class:`~repro.core.forest.ServiceOverlayForest`
objects evaluated by the same cost function as SOFDA and the IP.
"""

from repro.baselines.st import st_baseline
from repro.baselines.est import est_baseline
from repro.baselines.enemp import enemp_baseline
from repro.baselines.multi_source import iterative_multi_source

__all__ = [
    "st_baseline",
    "est_baseline",
    "enemp_baseline",
    "iterative_multi_source",
]
