"""Iterative multi-source tree addition (Section VIII-A).

The paper enables eST and eNEMP "to support multiple sources via the
modification as follows: iteratively add a service tree in the solution
until no tree can reduce the total cost.  At each iteration, we elect the
minimal-cost service tree among all candidate trees rooted at each unused
source, run VNFs sequentially on unused VMs, and span all the destinations
in D ... we calculate the total cost of the current forest with the
elected tree, where each destination is spanned and served by the closest
tree."

``iterative_multi_source`` implements exactly that loop on top of a
pluggable single-tree builder (eST's or eNEMP's).
"""

from __future__ import annotations

from typing import Callable, Hashable, List, Optional, Set

from repro.baselines.common import SingleTree, assemble_forest
from repro.core.forest import ServiceOverlayForest
from repro.core.problem import SOFInstance
from repro.core.validation import check_forest

Node = Hashable

SingleTreeBuilder = Callable[..., Optional[SingleTree]]


def iterative_multi_source(
    instance: SOFInstance,
    builder: SingleTreeBuilder,
    steiner_method: str = "kmb",
    multi_source: bool = True,
    validate: bool = True,
) -> ServiceOverlayForest:
    """Grow a forest one service tree at a time while the cost drops.

    Args:
        instance: the SOF instance.
        builder: single-tree constructor with signature
            ``builder(instance, source, allowed_vms, steiner_method=...)``.
        steiner_method: Steiner solver passed through to the builder and
            the destination-assignment combiner.
        multi_source: when ``False``, stop after the first tree (the
            single-source variants used in the #sources=1 sweeps).
        validate: feasibility-check the final forest.
    """
    used_sources: Set[Node] = set()
    used_vms: Set[Node] = set()
    trees: List[SingleTree] = []
    best_forest: Optional[ServiceOverlayForest] = None
    best_cost = float("inf")

    while True:
        remaining = sorted(instance.sources - used_sources, key=repr)
        if not remaining:
            break
        allowed = instance.vms - used_vms
        candidates: List[SingleTree] = []
        for s in remaining:
            tree = builder(instance, s, allowed, steiner_method=steiner_method)
            if tree is not None:
                candidates.append(tree)
        if not candidates:
            break
        elected = min(candidates, key=lambda t: t.chain_cost)
        trial_trees = trees + [elected]
        trial = assemble_forest(
            instance, trial_trees, steiner_method=steiner_method
        )
        trial_cost = trial.total_cost()
        if trial_cost < best_cost:
            trees = trial_trees
            best_forest, best_cost = trial, trial_cost
            used_sources.add(elected.source)
            used_vms.update(
                elected.chain.walk[pos] for pos in elected.chain.placements
            )
            if not multi_source:
                break
        else:
            break

    if best_forest is None:
        raise RuntimeError("multi-source wrapper produced no feasible forest")
    if validate:
        check_forest(instance, best_forest)
    return best_forest
