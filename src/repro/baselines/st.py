"""ST baseline: one Steiner tree plus one greedily-appended service chain.

The paper's weakest comparator ("a special case with only one Steiner tree
connected with a service chain"): pick the source whose Steiner tree over
the destinations is cheapest, build a service chain with the sequential
nearest-VM heuristic, and attach the chain's last VM to the nearest tree
node.  No joint optimisation, no multiple sources.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.baselines.common import extend_to, greedy_chain
from repro.core.forest import ServiceOverlayForest
from repro.core.problem import SOFInstance
from repro.core.validation import check_forest
from repro.graph import steiner_tree

Node = Hashable


def st_baseline(
    instance: SOFInstance,
    steiner_method: str = "kmb",
    validate: bool = True,
) -> ServiceOverlayForest:
    """Run the ST baseline and return its (single-tree) forest."""
    oracle = instance.oracle
    destinations = sorted(instance.destinations, key=repr)

    best_source: Optional[Node] = None
    best_tree = None
    best_cost = float("inf")
    for s in sorted(instance.sources, key=repr):
        try:
            result = steiner_tree(
                instance.graph, [s] + destinations,
                method=steiner_method, oracle=oracle,
            )
        except ValueError:
            continue
        if result.cost < best_cost:
            best_source, best_tree, best_cost = s, result, result.cost
    if best_tree is None:
        raise RuntimeError("ST: no source can reach all destinations")

    chain = greedy_chain(instance, best_source, instance.vms)
    if chain is None:
        raise RuntimeError("ST: cannot build a service chain")

    # ST hangs the chain off the tree's root: the processed content is
    # routed from the last VM back to the source, which then feeds the
    # predetermined tree (Fig. 1(b)'s "Steiner tree with predetermined
    # VMs" shape).  eST improves on this with nearest-node attachment.
    chain = extend_to(instance, chain, best_source)

    forest = ServiceOverlayForest(instance=instance)
    forest.add_chain(chain)
    forest.add_tree(best_tree.tree)
    forest.prune_tree_edges()
    if validate:
        check_forest(instance, forest)
    return forest
