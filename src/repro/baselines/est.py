"""eST baseline: enhanced Steiner tree (Section VIII-A).

Single-tree core: pick the cheapest Steiner tree over the destinations
among all sources, then "construct the shortest service chain that is
closest to the tree from [13], [62] and connect it to the tree with the
minimum cost".  Chain construction follows the sequential VNF-deployment
style of [13] (nearest-VM hops -- see
:func:`repro.baselines.common.greedy_chain`); the chain's last VM is then
attached to the nearest tree node.  The tree routing and the chain are
optimised *separately* -- exactly the decoupling SOFDA improves on.
Multiple sources come from the iterative tree-addition wrapper
(:mod:`repro.baselines.multi_source`).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional

from repro.baselines.common import (
    SingleTree,
    chain_total_cost,
    extend_to,
    greedy_chain,
)
from repro.baselines.multi_source import iterative_multi_source
from repro.core.forest import ServiceOverlayForest
from repro.core.problem import SOFInstance
from repro.graph import steiner_tree

Node = Hashable


def _est_single_tree(
    instance: SOFInstance,
    source: Node,
    allowed_vms: Iterable[Node],
    steiner_method: str = "kmb",
) -> Optional[SingleTree]:
    """The eST single-tree builder used by the multi-source wrapper."""
    oracle = instance.oracle
    destinations = sorted(instance.destinations, key=repr)
    allowed = set(allowed_vms)
    if len(allowed) < len(instance.chain):
        return None
    try:
        tree = steiner_tree(
            instance.graph, [source] + destinations,
            method=steiner_method, oracle=oracle,
        )
    except ValueError:
        return None
    tree_nodes = list(tree.tree.nodes()) or [source]

    chain = greedy_chain(instance, source, allowed)
    if chain is None:
        return None
    attach = min(tree_nodes, key=lambda n: oracle.distance(chain.walk[-1], n))
    chain = extend_to(instance, chain, attach)
    return SingleTree(
        source=source, chain=chain,
        chain_cost=chain_total_cost(instance, chain),
    )


def est_baseline(
    instance: SOFInstance,
    steiner_method: str = "kmb",
    multi_source: bool = True,
    validate: bool = True,
) -> ServiceOverlayForest:
    """Run eST (optionally with the iterative multi-source extension)."""
    return iterative_multi_source(
        instance,
        _est_single_tree,
        steiner_method=steiner_method,
        multi_source=multi_source,
        validate=validate,
    )
