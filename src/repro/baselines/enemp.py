"""eNEMP baseline: enhanced NFV-enabled multicast (Section VIII-A).

NEMP (Zhang et al. [27]) routes a multicast tree *through* a single chosen
VM.  The paper extends it to chains and multiple sources: pick the anchor
VM ``u`` minimising (distance from the source) + (Steiner tree over ``u``
and the destinations), route the full service chain from the source to
``u`` (the chain "spans the VM that has been chosen in the tree"), and add
further trees with the iterative wrapper.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional

from repro.baselines.common import SingleTree, chain_total_cost
from repro.baselines.multi_source import iterative_multi_source
from repro.core.forest import ServiceOverlayForest
from repro.core.problem import SOFInstance
from repro.graph import steiner_tree

Node = Hashable


def _enemp_single_tree(
    instance: SOFInstance,
    source: Node,
    allowed_vms: Iterable[Node],
    steiner_method: str = "kmb",
) -> Optional[SingleTree]:
    """The eNEMP single-tree builder used by the multi-source wrapper."""
    oracle = instance.oracle
    destinations = sorted(instance.destinations, key=repr)
    allowed = set(allowed_vms)
    if len(allowed) < len(instance.chain):
        return None

    # NEMP anchor selection: the VM minimising source distance + setup +
    # tree cost hosts the last VNF, so the multicast tree hangs off a VM
    # the chain is guaranteed to span.
    best_anchor: Optional[Node] = None
    best_score = float("inf")
    for u in sorted(allowed, key=repr):
        d = oracle.distance(source, u)
        if d == float("inf"):
            continue
        try:
            tree = steiner_tree(
                instance.graph, [u] + destinations,
                method=steiner_method, oracle=oracle,
            )
        except ValueError:
            continue
        score = d + instance.setup_cost(u) + tree.cost
        if score < best_score:
            best_anchor, best_score = u, score
    if best_anchor is None:
        return None

    # Chain construction "similar to the above extension" (sequential
    # deployment in the style of [13]), but *anchored*: every hop scores
    # (distance + setup + remaining distance to the anchor), so the chain
    # heads toward the VM the tree hangs off; the anchor runs f_|C|.
    chain = _anchored_greedy_chain(instance, source, allowed, best_anchor)
    if chain is None:
        return None
    return SingleTree(
        source=source, chain=chain,
        chain_cost=chain_total_cost(instance, chain),
    )


def _anchored_greedy_chain(
    instance: SOFInstance,
    source: Node,
    allowed_vms,
    anchor: Node,
):
    """Greedy chain from ``source`` that ends with ``f_|C|`` at ``anchor``."""
    from repro.core.forest import DeployedChain

    oracle = instance.oracle
    num_functions = len(instance.chain)
    pool = set(allowed_vms) - {source, anchor}
    if len(pool) < num_functions - 1:
        return None
    walk = [source]
    placements = {}
    current = source
    for vnf in range(num_functions - 1):
        best_vm = None
        best_score = float("inf")
        # repro-lint: disable=det-set-iter -- the repr tie-break below
        # makes the arg-min independent of scan order.
        for vm in pool:
            d = oracle.distance(current, vm)
            tail = oracle.distance(vm, anchor)
            if d == float("inf") or tail == float("inf"):
                continue
            score = d + instance.setup_cost(vm) + tail
            if score < best_score or (
                score == best_score and repr(vm) < repr(best_vm)
            ):
                best_vm, best_score = vm, score
        if best_vm is None:
            return None
        segment = oracle.path(current, best_vm)
        walk.extend(segment[1:])
        placements[len(walk) - 1] = vnf
        pool.discard(best_vm)
        current = best_vm
    if oracle.distance(current, anchor) == float("inf"):
        return None
    segment = oracle.path(current, anchor)
    walk.extend(segment[1:])
    placements[len(walk) - 1] = num_functions - 1
    return DeployedChain(walk=walk, placements=placements)


def enemp_baseline(
    instance: SOFInstance,
    steiner_method: str = "kmb",
    multi_source: bool = True,
    validate: bool = True,
) -> ServiceOverlayForest:
    """Run eNEMP (optionally with the iterative multi-source extension)."""
    return iterative_multi_source(
        instance,
        _enemp_single_tree,
        steiner_method=steiner_method,
        multi_source=multi_source,
        validate=validate,
    )
