"""The Fortz--Thorup convex piecewise-linear load cost (paper Section VII-B).

The paper's exact definition, for current load ``l`` and capacity ``p``::

    c = l                     if l/p <= 1/3,
        3 l - 2/3 p           if l/p <= 2/3,
        10 l - 16/3 p         if l/p <= 9/10,
        70 l - 178/3 p        if l/p <= 1,
        500 l - 1468/3 p      if l/p <= 11/10,
        5000 l - 14318/3 p    otherwise.

The function is continuous, convex and increasing; Fig. 7 plots it for
``p = 1``.  Costs grow mildly until ~2/3 utilisation and explode past
capacity, which is what steers the online embedder away from congested
links and overloaded hosts.
"""

from __future__ import annotations

from typing import List, Tuple

#: ``(utilisation upper bound, slope, intercept coefficient of p)`` per segment.
FORTZ_THORUP_BREAKPOINTS: List[Tuple[float, float, float]] = [
    (1.0 / 3.0, 1.0, 0.0),
    (2.0 / 3.0, 3.0, -2.0 / 3.0),
    (9.0 / 10.0, 10.0, -16.0 / 3.0),
    (1.0, 70.0, -178.0 / 3.0),
    (11.0 / 10.0, 500.0, -1468.0 / 3.0),
    (float("inf"), 5000.0, -14318.0 / 3.0),
]


def fortz_thorup_cost(load: float, capacity: float = 1.0) -> float:
    """Evaluate the paper's cost function at load ``load``, capacity ``capacity``."""
    if capacity <= 0:
        raise ValueError(f"capacity must be positive (got {capacity})")
    if load < 0:
        raise ValueError(f"load must be nonnegative (got {load})")
    utilisation = load / capacity
    for bound, slope, intercept in FORTZ_THORUP_BREAKPOINTS:
        if utilisation <= bound:
            return slope * load + intercept * capacity
    raise AssertionError("unreachable: last segment is unbounded")


def fortz_thorup_curve(
    capacity: float = 1.0, max_utilisation: float = 1.2, samples: int = 121
) -> List[Tuple[float, float]]:
    """Sample the cost curve -- the data series behind Fig. 7.

    Returns ``[(load, cost), ...]`` with ``samples`` evenly spaced loads in
    ``[0, max_utilisation * capacity]``.
    """
    if samples < 2:
        raise ValueError("need at least two samples")
    step = max_utilisation * capacity / (samples - 1)
    return [
        (i * step, fortz_thorup_cost(i * step, capacity)) for i in range(samples)
    ]
