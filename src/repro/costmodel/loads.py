"""Load bookkeeping and load-to-cost conversion.

Two uses, matching Section VIII-A's two scenarios:

- **One-time deployment**: link usages are drawn uniformly in ``(0, 1)``
  and converted to edge costs once (:func:`assign_static_costs`).
- **Online deployment**: usages start at zero and each embedded request
  adds its demand to every link/VM it uses; costs are re-derived from the
  updated loads (:class:`LoadTracker`).

Tenant departures run the online bookkeeping in reverse:
:meth:`LoadTracker.release_link_load` / :meth:`LoadTracker.release_node_load`
subtract exactly the demand a departing forest's lease recorded, clamp
floating-point residue at zero, and mark released links dirty so the next
cost sync re-prices them *downward* -- the decrease-carrying edge-cost
patches of the churn workload.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Tuple

from repro.costmodel.fortz_thorup import fortz_thorup_cost
from repro.graph.graph import Graph, canonical_edge

Node = Hashable
Edge = Tuple[Node, Node]


def assign_static_costs(
    graph: Graph,
    rng: random.Random,
    capacity: float = 100.0,
    cost_scale: float = 1.0,
) -> None:
    """Draw a usage in ``(0, 1)`` per link and set its Fortz--Thorup cost.

    Mutates ``graph`` in place.  ``capacity`` is the paper's 100 Mbps link
    bandwidth; ``cost_scale`` rescales the resulting costs (shape-neutral).
    """
    for u, v, _ in list(graph.edges()):
        usage = rng.random()
        cost = fortz_thorup_cost(usage * capacity, capacity) * cost_scale
        graph.add_edge(u, v, cost)


@dataclass
class LoadTracker:
    """Per-link and per-node load state for the online scenario.

    Attributes:
        link_capacity: capacity of every link (100 Mbps in the paper).
        node_capacity: capacity of every VM host (request slots).
        cost_scale: scale factor applied to derived costs.
    """

    link_capacity: float = 100.0
    node_capacity: float = 5.0
    cost_scale: float = 1.0
    link_load: Dict[Edge, float] = field(default_factory=dict)
    node_load: Dict[Node, float] = field(default_factory=dict)
    #: Links whose load changed since the last :meth:`drain_dirty_links`
    #: call -- lets graph/oracle maintenance stay incremental.
    dirty_links: set = field(default_factory=set)

    #: Releases within this much of the recorded load are treated as
    #: exact (floating-point residue from repeated add/release cycles);
    #: anything further above the recorded load is a caller bug.
    _RELEASE_TOLERANCE = 1e-9

    def add_link_load(self, u: Node, v: Node, demand: float) -> None:
        """Add ``demand`` to link ``{u, v}`` (``demand`` must be >= 0).

        A negative demand would silently corrupt utilisation and cost;
        use :meth:`release_link_load` to take load off a link.
        """
        if demand < 0:
            raise ValueError(
                f"link demand must be >= 0, got {demand!r} for "
                f"({u!r}, {v!r}); use release_link_load to remove load"
            )
        key = canonical_edge(u, v)
        self.link_load[key] = self.link_load.get(key, 0.0) + demand
        self.dirty_links.add(key)

    def release_link_load(self, u: Node, v: Node, demand: float) -> None:
        """Remove ``demand`` from link ``{u, v}`` (a tenant departing).

        Releasing more than the link currently carries raises -- a lease
        can only give back what :meth:`add_link_load` accounted -- and
        the remaining load is clamped at zero so floating-point residue
        from repeated arrive/depart cycles never leaves a phantom
        utilisation.  The link is marked dirty, so the next cost sync
        re-prices it downward (a decrease-carrying oracle patch).
        """
        if demand < 0:
            raise ValueError(
                f"released demand must be >= 0, got {demand!r} for "
                f"({u!r}, {v!r})"
            )
        key = canonical_edge(u, v)
        load = self.link_load.get(key, 0.0)
        if demand > load + self._RELEASE_TOLERANCE:
            raise ValueError(
                f"cannot release {demand!r} Mbps from link {key!r} "
                f"carrying only {load!r} Mbps"
            )
        remaining = load - demand
        self.link_load[key] = remaining if remaining > self._RELEASE_TOLERANCE else 0.0
        self.dirty_links.add(key)

    def drain_dirty_links(self) -> set:
        """Links loaded since the last drain (and reset the dirty set)."""
        dirty = self.dirty_links
        self.dirty_links = set()
        return dirty

    def add_node_load(self, node: Node, demand: float = 1.0) -> None:
        """Add ``demand`` to a VM host (``demand`` must be >= 0)."""
        if demand < 0:
            raise ValueError(
                f"node demand must be >= 0, got {demand!r} for {node!r}; "
                "use release_node_load to remove load"
            )
        self.node_load[node] = self.node_load.get(node, 0.0) + demand

    def release_node_load(self, node: Node, demand: float = 1.0) -> None:
        """Remove ``demand`` from a VM host (slots freed by a departure).

        Same contract as :meth:`release_link_load`: over-releasing
        raises, residue clamps to zero.  Node costs are derived fresh at
        each instance materialisation, so no dirty marking is needed.
        """
        if demand < 0:
            raise ValueError(
                f"released demand must be >= 0, got {demand!r} for {node!r}"
            )
        load = self.node_load.get(node, 0.0)
        if demand > load + self._RELEASE_TOLERANCE:
            raise ValueError(
                f"cannot release {demand!r} slots from host {node!r} "
                f"carrying only {load!r}"
            )
        remaining = load - demand
        self.node_load[node] = remaining if remaining > self._RELEASE_TOLERANCE else 0.0

    def link_utilisation(self, u: Node, v: Node) -> float:
        """Current load of link {u, v} over its capacity."""
        return self.link_load.get(canonical_edge(u, v), 0.0) / self.link_capacity

    def node_utilisation(self, node: Node) -> float:
        """Current load of a VM host over its capacity."""
        return self.node_load.get(node, 0.0) / self.node_capacity

    def link_cost(self, u: Node, v: Node) -> float:
        """Fortz--Thorup cost of the link at its current load."""
        load = self.link_load.get(canonical_edge(u, v), 0.0)
        return fortz_thorup_cost(load, self.link_capacity) * self.cost_scale

    def node_cost(self, node: Node) -> float:
        """Fortz--Thorup cost of the VM host at its current load."""
        load = self.node_load.get(node, 0.0)
        return fortz_thorup_cost(load, self.node_capacity) * self.cost_scale

    def congested_links(self, threshold: float = 0.9) -> Iterable[Edge]:
        """Links *strictly* above ``threshold`` utilisation (VII-C case 5).

        Boundary semantics: a link at exactly ``threshold`` utilisation is
        NOT congested (strict ``>``).  Callers that phrase the trigger as
        "exceeds the threshold" -- the rerouting layer in
        :mod:`repro.online.rerouting` -- share this exact comparison, so a
        link loaded to precisely 0.9 never flips between the two layers.
        """
        return [
            edge for edge, load in self.link_load.items()
            if load / self.link_capacity > threshold
        ]

    def overloaded_nodes(self, threshold: float = 0.9) -> Iterable[Node]:
        """Hosts *strictly* above ``threshold`` utilisation (VII-C case 6).

        Same strict-``>`` boundary as :meth:`congested_links`: a host at
        exactly ``threshold`` utilisation is not overloaded.
        """
        return [
            node for node, load in self.node_load.items()
            if load / self.node_capacity > threshold
        ]

    def apply_to_graph(self, graph: Graph, floor: float = 0.01) -> None:
        """Write current link costs into ``graph`` (in place).

        ``floor`` keeps zero-load edges from being entirely free, so the
        embedder still prefers short routes among uncongested links.
        """
        for u, v, _ in list(graph.edges()):
            graph.add_edge(u, v, max(self.link_cost(u, v), floor))
