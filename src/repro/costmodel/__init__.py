"""Cost models (Section VII-B).

The paper assigns every link and node a convex piecewise-linear cost in its
load, following Fortz--Thorup's online traffic-engineering cost [46] (links)
and the host-utilisation cost of [48] (VMs).  :func:`fortz_thorup_cost`
reproduces the exact six-segment function printed in the paper (Fig. 7);
:class:`LoadTracker` maintains per-link/per-node loads for the online
scenario and converts them to costs.
"""

from repro.costmodel.fortz_thorup import (
    FORTZ_THORUP_BREAKPOINTS,
    fortz_thorup_cost,
    fortz_thorup_curve,
)
from repro.costmodel.loads import LoadTracker, assign_static_costs

__all__ = [
    "FORTZ_THORUP_BREAKPOINTS",
    "fortz_thorup_cost",
    "fortz_thorup_curve",
    "LoadTracker",
    "assign_static_costs",
]
