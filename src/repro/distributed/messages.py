"""East--west message accounting between controllers."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class Message:
    """One inter-controller message (east--west interface)."""

    sender: int
    receiver: int
    kind: str
    size: int  # abstract payload size (entries, not bytes)


@dataclass
class MessageBus:
    """Records every message; experiments read the per-phase statistics."""

    log: List[Message] = field(default_factory=list)

    def send(self, sender: int, receiver: int, kind: str, size: int) -> None:
        """Deliver (record) a message; self-messages are not counted."""
        if sender == receiver:
            return
        self.log.append(Message(sender, receiver, kind, max(0, int(size))))

    def broadcast(self, sender: int, receivers, kind: str, size: int) -> None:
        """Send the same payload to every other controller."""
        for r in receivers:
            self.send(sender, r, kind, size)

    @property
    def num_messages(self) -> int:
        """Total messages recorded."""
        return len(self.log)

    @property
    def total_size(self) -> int:
        """Total payload entries across all messages."""
        return sum(m.size for m in self.log)

    def by_kind(self) -> Dict[str, Tuple[int, int]]:
        """``{kind: (message count, total size)}``."""
        counts: Counter = Counter()
        sizes: Counter = Counter()
        for m in self.log:
            counts[m.kind] += 1
            sizes[m.kind] += m.size
        return {k: (counts[k], sizes[k]) for k in counts}
