"""Domain partitioning for multi-controller deployments."""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, Hashable, List

from repro.graph import Graph

Node = Hashable


def partition_domains(
    graph: Graph, num_domains: int, seed: int = 0
) -> List[set]:
    """Partition the nodes into ``num_domains`` connected, balanced domains.

    Multi-source BFS from randomly chosen seeds: each domain grows one
    frontier hop per round, claiming unclaimed nodes, which yields
    connected regions of roughly equal size (the standard approximation of
    an SDN domain layout).
    """
    if num_domains < 1:
        raise ValueError("need at least one domain")
    nodes = sorted(graph.nodes(), key=repr)
    if num_domains > len(nodes):
        raise ValueError(
            f"cannot split {len(nodes)} nodes into {num_domains} domains"
        )
    rng = random.Random(seed)
    seeds = rng.sample(nodes, num_domains)
    owner: Dict[Node, int] = {s: i for i, s in enumerate(seeds)}
    queues = [deque([s]) for s in seeds]
    remaining = len(nodes) - num_domains
    while remaining > 0:
        progressed = False
        for i, queue in enumerate(queues):
            if not queue:
                continue
            node = queue.popleft()
            for neighbor in sorted(graph.neighbors(node), key=repr):
                if neighbor not in owner:
                    owner[neighbor] = i
                    queue.append(neighbor)
                    remaining -= 1
                    progressed = True
            if remaining == 0:
                break
        if not progressed:
            # Disconnected leftovers: assign to the smallest domain.
            leftover = next(n for n in nodes if n not in owner)
            sizes = [sum(1 for v in owner.values() if v == i) for i in range(num_domains)]
            owner[leftover] = sizes.index(min(sizes))
            queues[owner[leftover]].append(leftover)
            remaining -= 1
    domains = [set() for _ in range(num_domains)]
    for node, i in owner.items():
        domains[i].add(node)
    return domains
