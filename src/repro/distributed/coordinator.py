"""The phased distributed-SOFDA protocol (Section VI).

Phases, each charged to the :class:`~repro.distributed.messages.MessageBus`:

1. **matrix-exchange** -- every controller broadcasts its border-router
   distance matrix (SDNi east--west).
2. **chain-construction** -- every controller covering a source queries
   remote controllers for VM-to-border distances and reports its candidate
   service chains (the virtual links of the auxiliary graph) to the leader.
3. **steiner** -- the controllers jointly compute the Steiner tree over
   the auxiliary graph; we charge the standard distributed-MST message
   pattern (edges examined per merge round, [34]) while computing the tree
   itself with the same solver as centralized SOFDA -- the border
   abstraction is lossless, so both reach the same tree.
4. **conflict-elimination** -- controllers observing a VNF conflict
   notify the peer owning the other walk (one round trip per conflict).
5. **rule-installation** -- the leader tells each controller which
   forwarding rules to install (one message per controller whose domain
   the forest touches).

The result carries the forest (identical to centralized SOFDA by
construction -- asserted in tests) plus the message statistics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List

from repro.core.conflict import ResolutionStats
from repro.core.forest import ServiceOverlayForest
from repro.core.problem import SOFInstance
from repro.core.sofda import SOFDAResult, sofda
from repro.distributed.controller import Controller
from repro.distributed.domains import partition_domains
from repro.distributed.messages import MessageBus

Node = Hashable


@dataclass
class DistributedResult:
    """Outcome of a distributed embedding."""

    forest: ServiceOverlayForest
    stats: ResolutionStats
    bus: MessageBus
    leader: int
    num_domains: int

    @property
    def cost(self) -> float:
        """Total cost of the embedded forest."""
        return self.forest.total_cost()


class DistributedSOFDA:
    """Distributed SOFDA over a domain-partitioned network."""

    def __init__(
        self,
        instance: SOFInstance,
        num_domains: int,
        seed: int = 0,
    ) -> None:
        if num_domains < 1:
            raise ValueError("need at least one domain")
        self.instance = instance
        self.domains = partition_domains(instance.graph, num_domains, seed=seed)
        # Per-domain oracles inherit the instance oracle's kernel-tier
        # knobs and recorder, mirroring AuxiliaryOracle's fallback.
        base = instance.oracle
        self._metrics = base.metrics
        self.controllers = [
            Controller.for_domain(
                i, domain, instance.graph,
                parallel_rows=base.parallel_rows, vectorized=base.vectorized,
                row_budget_bytes=base.row_budget_bytes,
                metrics=base.metrics,
            )
            for i, domain in enumerate(self.domains)
        ]
        self.bus = MessageBus()

    # ------------------------------------------------------------------
    def controller_of(self, node: Node) -> Controller:
        """The controller covering ``node``."""
        for controller in self.controllers:
            if controller.covers(node):
                return controller
        raise KeyError(f"{node!r} is not covered by any controller")

    # ------------------------------------------------------------------
    def run(
        self,
        steiner_method: str = "kmb",
        kstroll_method: str = "auto",
    ) -> DistributedResult:
        """Execute the five protocol phases and return the forest."""
        instance = self.instance
        controllers = self.controllers
        ids = [c.controller_id for c in controllers]
        leader = self.controller_of(
            sorted(instance.sources, key=repr)[0]
        ).controller_id

        # Phase 1: border-matrix exchange (full mesh, as SDNi floods
        # reachability + the abstracted matrices).
        for c in controllers:
            self.bus.broadcast(
                c.controller_id,
                [i for i in ids if i != c.controller_id],
                "matrix-exchange",
                c.matrix_size(),
            )

        # Phase 2: candidate-chain construction.  The controller of each
        # source needs distances to every VM; VMs in remote domains cost a
        # query/response pair with the remote controller.
        vm_by_controller: Dict[int, List[Node]] = {}
        for vm in sorted(instance.vms, key=repr):
            vm_by_controller.setdefault(
                self.controller_of(vm).controller_id, []
            ).append(vm)
        for source in sorted(instance.sources, key=repr):
            source_ctrl = self.controller_of(source).controller_id
            for ctrl_id, vms in vm_by_controller.items():
                if ctrl_id != source_ctrl:
                    self.bus.send(
                        source_ctrl, ctrl_id, "chain-query",
                        len(self.controllers[source_ctrl].border_routers),
                    )
                    self.bus.send(
                        ctrl_id, source_ctrl, "chain-response", len(vms)
                    )
            # Report the candidate virtual links to the leader.
            self.bus.send(
                source_ctrl, leader, "chain-report", len(instance.vms)
            )

        # Phases 3-4: the actual embedding.  The border abstraction is
        # lossless (intra-domain matrices are exact and inter-domain
        # composition preserves shortest paths), so running the
        # centralized algorithm on the global instance yields exactly the
        # forest the controllers would agree on; we charge the
        # distributed-computation messages alongside.
        result: SOFDAResult = sofda(
            instance,
            steiner_method=steiner_method,
            kstroll_method=kstroll_method,
        )

        # Distributed Steiner ([34]-style GHS merging): O(rounds) merges,
        # each examining the frontier edges of every fragment.
        tree_nodes = (
            {n for chain in result.forest.chains for n in chain.walk}
            | {n for e in result.forest.tree_edges for n in e}
        )
        touched = sorted(
            {self.controller_of(n).controller_id for n in tree_nodes}
        )
        num_terminals = len(instance.destinations) + 1
        rounds = max(1, math.ceil(math.log2(max(2, num_terminals))))
        for _ in range(rounds):
            for i in touched:
                self.bus.broadcast(
                    i, [j for j in touched if j != i], "steiner-merge",
                    len(self.controllers[i].border_routers),
                )

        # Conflict elimination: one notify/ack pair per resolved conflict.
        conflicts = (
            result.stats.case1 + result.stats.case2 + result.stats.case3
            + result.stats.repairs + result.stats.grafts
        )
        for k in range(conflicts):
            a = touched[k % len(touched)]
            b = touched[(k + 1) % len(touched)]
            if a != b:
                self.bus.send(a, b, "conflict-notify", 2)
                self.bus.send(b, a, "conflict-ack", 1)

        # Phase 5: rule installation fan-out from the leader.
        for i in touched:
            self.bus.send(leader, i, "rule-install", len(tree_nodes))

        mx = self._metrics
        if mx:
            # Mirror the bus's per-kind accounting into the registry so
            # one snapshot covers the whole run (the bus keeps the
            # authoritative log; these counters are a read-only view).
            for kind, (count, size) in sorted(self.bus.by_kind().items()):
                mx.inc("dist.messages", count, kind=kind)
                mx.inc("dist.message_entries", size, kind=kind)

        return DistributedResult(
            forest=result.forest,
            stats=result.stats,
            bus=self.bus,
            leader=leader,
            num_domains=len(self.controllers),
        )

    # ------------------------------------------------------------------
    def abstract_border_graph(self):
        """The inter-domain abstraction: border matrices + physical links.

        Nodes are border routers; edges are the abstracted intra-domain
        lengths each controller propagated plus the physical inter-domain
        links, parallel candidates reduced to the cheapest.
        """
        from repro.graph import Graph as _Graph

        instance = self.instance
        abstract = _Graph()
        for c in self.controllers:
            for (b1, b2), d in c.border_matrix().items():
                if d < float("inf"):
                    if abstract.has_edge(b1, b2):
                        d = min(d, abstract.cost(b1, b2))
                    abstract.add_edge(b1, b2, d)
        for u, v, cost in instance.graph.edges():
            cu, cv = self.controller_of(u), self.controller_of(v)
            if cu.controller_id != cv.controller_id:
                if abstract.has_edge(u, v):
                    cost = min(cost, abstract.cost(u, v))
                abstract.add_edge(u, v, cost)
        return abstract

    def verify_abstraction(self, samples: int = 50, seed: int = 0) -> bool:
        """Check the border abstraction is lossless on sampled node pairs.

        For random pairs (s, t), compare the true shortest-path cost with
        the composed estimate: intra-domain when co-located, otherwise
        ``min over borders (local(s,b1) + inter(b1,b2) + local(b2,t))``
        where ``inter`` runs over the abstract border graph.  Every
        distance is served from oracle rows: ground truth from the
        instance's shared oracle, intra-domain legs from the per-domain
        controller oracles, and the abstract-graph legs from one oracle
        over the border graph.  Used by the test suite; returns True when
        every sample matches.
        """
        import random

        from repro.graph import FrozenOracle as _FrozenOracle

        instance = self.instance
        rng = random.Random(seed)
        nodes = sorted(instance.graph.nodes(), key=repr)

        abstract = self.abstract_border_graph()
        abstract_oracle = _FrozenOracle(abstract)

        for _ in range(samples):
            s, t = rng.sample(nodes, 2)
            truth = instance.oracle.distance(s, t)
            cs, ct = self.controller_of(s), self.controller_of(t)
            best = float("inf")
            if cs.controller_id == ct.controller_id:
                best = cs.local_distances_from(s).get(t, float("inf"))
            s_border = cs.distance_to_borders(s)
            t_border = ct.distance_to_borders(t)
            if s_border and t_border and len(abstract) > 0:
                for b1, d1 in s_border.items():
                    if d1 == float("inf") or b1 not in abstract:
                        continue
                    inter = abstract_oracle.distances_from(b1)
                    for b2, d2 in t_border.items():
                        if d2 == float("inf"):
                            continue
                        mid = 0.0 if b1 == b2 else inter.get(b2, float("inf"))
                        best = min(best, d1 + mid + d2)
            if not math.isclose(best, truth, rel_tol=1e-9, abs_tol=1e-9):
                return False
        return True
