"""Distributed SOFDA for multi-controller SDNs (Section VI).

The paper sketches a protocol: every controller abstracts a distance
matrix between its border routers, exchanges it east--west (SDNi), the
controllers covering sources build candidate service chains as virtual
links, a distributed Steiner algorithm spans the virtual source and the
destinations, and VNF conflicts are eliminated by pairwise controller
notifications.

This package simulates that protocol faithfully enough to validate its
key property -- the border-matrix abstraction is *lossless*, so the
distributed computation reaches exactly the centralized SOFDA forest --
while accounting every inter-controller message on a
:class:`~repro.distributed.messages.MessageBus`:

- :func:`~repro.distributed.domains.partition_domains` -- balanced BFS
  domain partitioning.
- :class:`~repro.distributed.controller.Controller` -- per-domain state:
  local topology, border routers, local distance matrices.
- :class:`~repro.distributed.coordinator.DistributedSOFDA` -- the phased
  protocol (matrix exchange, chain construction, Steiner, conflict
  elimination, rule installation) with per-phase message statistics.
"""

from repro.distributed.domains import partition_domains
from repro.distributed.messages import Message, MessageBus
from repro.distributed.controller import Controller
from repro.distributed.coordinator import DistributedResult, DistributedSOFDA

__all__ = [
    "partition_domains",
    "Message",
    "MessageBus",
    "Controller",
    "DistributedResult",
    "DistributedSOFDA",
]
