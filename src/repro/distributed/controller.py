"""Per-domain SDN controller state.

Each controller sees only its own domain: the induced subgraph, the border
routers (nodes with an inter-domain link) and the local distance matrix
between border routers -- the abstraction the paper's Section VI has each
controller compute "over the Southbound interface within its domain" and
propagate east--west.

Intra-domain shortest paths are served by one per-domain
:class:`~repro.graph.FrozenOracle` (hot at the border routers, the nodes
every abstraction query touches) -- the domain-scoped analogue of the
single-oracle invariant the centralized pipeline follows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.graph import FrozenOracle, Graph

Node = Hashable
INF = float("inf")


@dataclass
class Controller:
    """One SDN controller and its domain-local knowledge."""

    controller_id: int
    domain: Set[Node]
    local_graph: Graph
    border_routers: List[Node] = field(default_factory=list)
    #: Oracle kernel-tier knobs (fork-pool row builds / array label
    #: buffers); defaults keep the serial list-backed reference path.
    parallel_rows: int = 0
    vectorized: bool = False
    #: Per-domain row-cache residency budget in bytes (``None`` =
    #: unbounded); inherited from the instance oracle so a budgeted
    #: deployment bounds every controller's memory, not just the
    #: coordinator's.
    row_budget_bytes: Optional[int] = None
    #: Optional shared :class:`~repro.obs.recorder.Recorder`; ``None``
    #: (the default) keeps every query seam zero-overhead.
    metrics: Optional[object] = None
    #: Materialised oracle rows, keyed by source node.
    _local_dist: Dict[Node, Dict[Node, float]] = field(default_factory=dict, repr=False)
    _oracle: Optional[FrozenOracle] = field(default=None, repr=False)

    @classmethod
    def for_domain(
        cls, controller_id: int, domain: Set[Node], graph: Graph,
        parallel_rows: int = 0, vectorized: bool = False,
        row_budget_bytes: Optional[int] = None,
        metrics: Optional[object] = None,
    ) -> "Controller":
        """Build a controller from the global graph and its domain."""
        local = graph.subgraph(domain)
        borders = sorted(
            (
                n for n in domain
                if any(nb not in domain for nb in graph.neighbors(n))
            ),
            key=repr,
        )
        return cls(
            controller_id=controller_id,
            domain=set(domain),
            local_graph=local,
            border_routers=borders,
            parallel_rows=parallel_rows,
            vectorized=vectorized,
            row_budget_bytes=row_budget_bytes,
            metrics=metrics if metrics else None,
        )

    # ------------------------------------------------------------------
    def covers(self, node: Node) -> bool:
        """Whether this controller's domain contains ``node``."""
        return node in self.domain

    @property
    def oracle(self) -> FrozenOracle:
        """The per-domain distance oracle over the induced subgraph (lazy).

        One oracle serves every intra-domain query this controller answers
        (border matrices, node-to-border distances, verification samples);
        no component may build a second oracle over the same domain.
        """
        if self._oracle is None:
            self._oracle = FrozenOracle(
                self.local_graph, hot=self.border_routers,
                parallel_rows=self.parallel_rows,
                vectorized=self.vectorized,
                row_budget_bytes=self.row_budget_bytes,
                metrics=self.metrics,
            )
        return self._oracle

    def cache_snapshot(self) -> Dict[str, Optional[int]]:
        """The per-domain oracle's counters as a unified snapshot.

        Returns the ``sof-cache-stats/1`` shape documented in
        :mod:`repro.obs` with ``scope="controller"`` plus a ``domain``
        key (this controller's id); a coordinator-level residency
        rebalancer reads these to apportion a global budget across
        domains.
        """
        snapshot = self.oracle.cache_snapshot(scope="controller")
        snapshot["domain"] = self.controller_id
        return snapshot

    def cache_stats(self) -> Dict[str, Optional[int]]:
        """Alias of :meth:`cache_snapshot` (legacy name)."""
        return self.cache_snapshot()

    def local_distances_from(self, node: Node) -> Dict[Node, float]:
        """Intra-domain shortest-path costs from ``node`` (an oracle row)."""
        if node not in self._local_dist:
            if self.metrics:
                self.metrics.inc(
                    "dist.query", domain=self.controller_id,
                    op="distances_from",
                )
            self._local_dist[node] = self.oracle.distances_from(node)
        return self._local_dist[node]

    def border_matrix(self) -> Dict[Tuple[Node, Node], float]:
        """The abstracted border-to-border distance matrix.

        This is the payload each controller propagates to its peers
        ("a matrix that consists of the lengths between every pair of
        border routers").
        """
        if self.metrics:
            self.metrics.inc(
                "dist.query", domain=self.controller_id, op="border_matrix"
            )
        matrix: Dict[Tuple[Node, Node], float] = {}
        for b1 in self.border_routers:
            dist = self.local_distances_from(b1)
            for b2 in self.border_routers:
                if b1 != b2:
                    matrix[(b1, b2)] = dist.get(b2, INF)
        return matrix

    def distance_to_borders(self, node: Node) -> Dict[Node, float]:
        """Intra-domain distances from a covered node to each border router."""
        if not self.covers(node):
            raise KeyError(f"{node!r} is outside domain {self.controller_id}")
        if self.metrics:
            self.metrics.inc(
                "dist.query", domain=self.controller_id,
                op="distance_to_borders",
            )
        dist = self.local_distances_from(node)
        return {b: dist.get(b, INF) for b in self.border_routers}

    def matrix_size(self) -> int:
        """Number of entries in the border matrix (message size)."""
        n = len(self.border_routers)
        return n * (n - 1)
