"""Graph substrate for the SOF reproduction.

This package provides every graph primitive the paper's algorithms rely on,
implemented from scratch:

- :class:`~repro.graph.graph.Graph` -- an undirected weighted graph type.
- :mod:`~repro.graph.indexed` -- the interned CSR core: an int-indexed
  graph with array Dijkstra and the :class:`FrozenOracle` the SOFDA
  pipeline shares (see "Performance architecture" in ROADMAP.md).
- :mod:`~repro.graph.shortest_paths` -- Dijkstra, path reconstruction and a
  caching all-pairs distance oracle.
- :mod:`~repro.graph.dsu` -- disjoint-set union used by Kruskal.
- :mod:`~repro.graph.mst` -- Prim and Kruskal minimum spanning trees.
- :mod:`~repro.graph.steiner` -- Steiner-tree solvers (KMB 2-approximation,
  Mehlhorn's variant and the exact Dreyfus--Wagner dynamic program).
- :mod:`~repro.graph.kstroll` -- k-stroll solvers (exact subset DP and
  cheapest-insertion / nearest-extension heuristics) used to find service
  chains (Definition 2 in the paper).
"""

from repro.graph.graph import Graph
from repro.graph.dsu import DisjointSetUnion
from repro.graph.indexed import FrozenOracle, IndexedGraph
from repro.graph.rowcache import RowCache
from repro.graph.shortest_paths import (
    DistanceOracle,
    dijkstra,
    shortest_path,
    walk_cost,
)
from repro.graph.mst import kruskal_mst, prim_mst
from repro.graph.steiner import SteinerResult, metric_closure, steiner_tree
from repro.graph.kstroll import KStrollInstance, solve_kstroll

__all__ = [
    "Graph",
    "DisjointSetUnion",
    "FrozenOracle",
    "IndexedGraph",
    "RowCache",
    "DistanceOracle",
    "dijkstra",
    "shortest_path",
    "walk_cost",
    "kruskal_mst",
    "prim_mst",
    "SteinerResult",
    "metric_closure",
    "steiner_tree",
    "KStrollInstance",
    "solve_kstroll",
]
