"""Budgeted row-cache storage for :class:`~repro.graph.indexed.FrozenOracle`.

The oracle's cached single-source rows used to live in a loose ``dict``
inside :class:`FrozenOracle`, with the idle-at-patch drop heuristic as
inline special-case code.  :class:`RowCache` extracts that ownership into
one subsystem: it *is* the row store (a ``dict`` subclass, so the
oracle's lookup paths and iteration order are unchanged), and it owns

- **byte accounting** per resident row (label buffers plus a fixed
  per-row overhead -- see :func:`row_nbytes`),
- **eviction** as a single code path with one counter set (idle-at-patch
  drops, unbounded-repair drops and budget-pressure evictions all route
  through :meth:`evict`), and
- a **cost-aware budget policy** under ``budget_bytes``: when residency
  exceeds the budget, :meth:`enforce` evicts rows in ascending retention
  value -- unserved-since-last-patch rows first, then cheapest to
  recompute per resident byte, least-recently-served as the tiebreak --
  until the cache fits.

``budget_bytes=None`` (the default) preserves the historical unbounded
behavior bit-identically: lookups, insertion order and the idle-at-patch
drop are exactly the plain-dict code paths, and :meth:`enforce` is a
no-op.  The budget only ever *removes* rows between queries; every
evicted row recomputes on demand to bit-identical labels (the Dijkstra
cores are deterministic), so served distances never depend on the
budget -- only residency and recompute work do.

Byte model
----------
Sizes are **deterministic and platform-independent** (no
``sys.getsizeof``): 8 bytes per distance entry, 8 per parent entry, 1
per settled byte, plus :data:`ROW_OVERHEAD_BYTES` per row.  That is
near-exact for the kernel tier's ``array('d')``/``array('q')`` label
buffers and an undercount for plain-list rows (a Python float box costs
more than 8 bytes) -- the budget is a *residency model*, not an RSS
cap, and the model is chosen so budgeted runs behave identically across
list/array row stores and numpy availability.  Tree-index residency is
reported separately by :meth:`FrozenOracle.cache_stats` (it is owned by
the oracle, sized by the workload's patch history, and dropped
wholesale under the adaptive index policy); per-patch shared-region
caches are transient and never survive a patch.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["RowCache", "ROW_OVERHEAD_BYTES", "row_nbytes"]

#: Fixed accounting overhead per resident row: the ``_Row`` object, its
#: slot pointers and the store's per-entry bookkeeping.  A deterministic
#: constant (see the module docstring's byte model).
ROW_OVERHEAD_BYTES = 96


def row_nbytes(num_nodes: int, settled: bool = True) -> int:
    """Accounted bytes of one resident row over ``num_nodes`` core nodes.

    The same arithmetic :class:`RowCache` applies to live ``_Row``
    objects, exposed so benchmarks and tests can size budgets in *rows*
    ("hold the VM pool plus one request's working set") without
    duplicating the model: 8 bytes per distance, 8 per parent, 1 per
    settled flag when the row carries a settle mask, plus the fixed
    per-row overhead.
    """
    n = int(num_nodes)
    return 16 * n + (n if settled else 0) + ROW_OVERHEAD_BYTES


class RowCache(dict):
    """The oracle's row store with byte accounting and budgeted eviction.

    A ``dict`` mapping core node id -> ``_Row``.  All mutation goes
    through ``__setitem__`` / ``__delitem__`` / :meth:`evict` /
    :meth:`clear`, which keep :attr:`total_bytes` exact; lookups go
    through :meth:`get`, which tracks hits/misses and (under a budget)
    the recency order the eviction policy tiebreaks on.

    The cache never evicts on its own: the owning oracle calls
    :meth:`enforce` at its consistency boundaries (after a row install,
    at the end of a patch) and :meth:`evict` for policy drops, passing
    an ``on_evict`` callback that de-registers the row from the
    oracle's inverted tree-edge index.  Counters are lifetime values --
    :meth:`clear` (a full invalidate) resets residency, not history.
    """

    def __init__(self, budget_bytes: Optional[int] = None) -> None:
        super().__init__()
        if budget_bytes is not None:
            budget_bytes = int(budget_bytes)
            if budget_bytes <= 0:
                raise ValueError(
                    f"row_budget_bytes must be positive, got {budget_bytes}"
                )
        #: Residency ceiling in accounted bytes; ``None`` = unbounded.
        self.budget_bytes = budget_bytes
        #: Callback ``(source_id, row) -> None`` run by :meth:`evict`
        #: after the row leaves the store (tree-index de-registration).
        self.on_evict = None
        self.total_bytes = 0
        self.peak_bytes = 0
        self.hits = 0
        self.misses = 0
        #: Total rows dropped through :meth:`evict`, any reason.
        self.evictions = 0
        #: ... of which: idle-at-patch policy drops.
        self.idle_evictions = 0
        #: ... of which: budget-pressure drops (:meth:`enforce`).
        self.budget_evictions = 0
        #: ... of which: unbounded-repair drops (a decrease against an
        #: early-stopped row cannot be repaired in place).
        self.repair_evictions = 0
        #: Enforcement passes that could not reach the budget because
        #: every remaining row was protected (mid-install working set
        #: larger than the budget).  Strict benches assert this is 0.
        self.overshoots = 0
        #: Per-sid ``(nbytes, recompute_cost)``, maintained on mutation.
        self._meta: Dict[int, Tuple[int, int]] = {}
        #: Monotonic serve clock and per-sid last-served tick, tracked
        #: only under a budget (the unbounded tier pays nothing for it).
        self._tick = 0
        self._served: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # accounting model
    # ------------------------------------------------------------------
    @staticmethod
    def _row_nbytes(row) -> int:
        """Accounted bytes of ``row`` (see :func:`row_nbytes`)."""
        n = len(row.dist)
        settled = row.settled
        return 16 * n + (len(settled) if settled is not None else 0) \
            + ROW_OVERHEAD_BYTES

    @staticmethod
    def _recompute_cost(row) -> int:
        """Estimated relaxations to rebuild ``row`` from cold.

        Full rows re-run an exhaustive Dijkstra (cost ~ n); an
        early-stopped row re-settles only its frontier (cost ~ settled
        count).  The estimate prices *retention*: an expensive-to-
        rebuild row earns more bytes of residency.
        """
        if row.full or row.settled is None:
            return len(row.dist)
        return sum(row.settled)

    # ------------------------------------------------------------------
    # store mutation (every path keeps total_bytes exact)
    # ------------------------------------------------------------------
    def __setitem__(self, source_id: int, row) -> None:
        old = self._meta.get(source_id)
        if old is not None:
            self.total_bytes -= old[0]
        nbytes = self._row_nbytes(row)
        self._meta[source_id] = (nbytes, self._recompute_cost(row))
        self.total_bytes += nbytes
        if self.total_bytes > self.peak_bytes:
            self.peak_bytes = self.total_bytes
        super().__setitem__(source_id, row)

    def __delitem__(self, source_id: int) -> None:
        super().__delitem__(source_id)
        self.total_bytes -= self._meta.pop(source_id)[0]
        self._served.pop(source_id, None)

    def pop(self, source_id: int, *default):
        try:
            row = dict.__getitem__(self, source_id)
        except KeyError:
            if default:
                return default[0]
            raise
        del self[source_id]
        return row

    def popitem(self):  # pragma: no cover - not used by the oracle
        source_id = next(reversed(self))
        return source_id, self.pop(source_id)

    def setdefault(self, source_id: int, default=None):  # pragma: no cover
        if source_id not in self:
            self[source_id] = default
        return dict.__getitem__(self, source_id)

    def update(self, *args, **kwargs):  # pragma: no cover - not used
        for key, value in dict(*args, **kwargs).items():
            self[key] = value

    def clear(self) -> None:
        """Drop every row (a full invalidate -- not counted as eviction)."""
        super().clear()
        self._meta.clear()
        self._served.clear()
        self.total_bytes = 0

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def get(self, source_id, default=None):
        """Dict ``get`` plus hit/miss counting and (budgeted) recency.

        Every oracle serve path looks rows up through here, so the
        hit/miss counters read as *row-store lookups* (a query served by
        undirected symmetry probes both endpoint rows and may count one
        miss and one hit).  The recency tick feeds the eviction
        tiebreak and is skipped entirely on unbounded caches.
        """
        row = dict.get(self, source_id, default)
        if row is default:
            self.misses += 1
        else:
            self.hits += 1
            if self.budget_bytes is not None:
                self._tick += 1
                self._served[source_id] = self._tick
        return row

    # ------------------------------------------------------------------
    # eviction (the one code path for every drop policy)
    # ------------------------------------------------------------------
    def evict(self, source_id: int, reason: str = "budget"):
        """Drop one row, count it under ``reason``, run ``on_evict``.

        ``reason`` is one of ``"idle"`` (idle across a whole patch
        interval), ``"repair"`` (repair could not be bounded) or
        ``"budget"`` (residency pressure).  Returns the evicted row.
        """
        row = dict.__getitem__(self, source_id)
        del self[source_id]
        self.evictions += 1
        if reason == "idle":
            self.idle_evictions += 1
        elif reason == "repair":
            self.repair_evictions += 1
        else:
            self.budget_evictions += 1
        if self.on_evict is not None:
            self.on_evict(source_id, row)
        return row

    def _evict_key(self, source_id: int) -> Tuple[int, float, int, int]:
        """Ascending retention value: the eviction (min-first) sort key.

        Unserved-since-last-patch rows go first (they are the idle
        policy's candidates anyway), then the cheapest recompute per
        resident byte, then least-recently-served, then the stable id.
        """
        row = dict.__getitem__(self, source_id)
        nbytes, cost = self._meta[source_id]
        return (
            1 if row.used else 0,
            cost / nbytes,
            self._served.get(source_id, 0),
            source_id,
        )

    def enforce(self, protect: Iterable[int] = ()) -> int:
        """Evict ascending-value rows until ``total_bytes`` fits the budget.

        ``protect`` names rows that must survive this pass (the row just
        installed, mid-request working sets).  If protected rows alone
        exceed the budget the pass records an overshoot and returns with
        the cache over budget -- the caller's working set simply does
        not fit, and dropping it would only force immediate recomputes.
        Returns the number of rows evicted.
        """
        budget = self.budget_bytes
        if budget is None or self.total_bytes <= budget:
            return 0
        protected = set(protect)
        victims = sorted(
            (sid for sid in self if sid not in protected),
            key=self._evict_key,
        )
        count = 0
        for sid in victims:
            if self.total_bytes <= budget:
                break
            self.evict(sid, "budget")
            count += 1
        if self.total_bytes > budget:
            self.overshoots += 1
        return count

    def would_fit(self, row) -> bool:
        """Whether ``row`` can be added without crossing the budget."""
        if self.budget_bytes is None:
            return True
        return self.total_bytes + self._row_nbytes(row) <= self.budget_bytes

    def retention_order(self) -> List[int]:
        """Resident ids, most retention-worthy first.

        The exact reverse of the eviction order; ``rebased`` clones seed
        through this so a budgeted clone keeps the rows the policy would
        have kept.
        """
        return sorted(self, key=self._evict_key, reverse=True)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Optional[int]]:
        """A plain-dict snapshot for benches and service layers."""
        return {
            "rows": len(self),
            "budget_bytes": self.budget_bytes,
            "total_bytes": self.total_bytes,
            "peak_bytes": self.peak_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "idle_evictions": self.idle_evictions,
            "budget_evictions": self.budget_evictions,
            "repair_evictions": self.repair_evictions,
            "overshoots": self.overshoots,
        }

    def publish(self, recorder, prefix: str = "oracle.cache") -> None:
        """Fold the counters into a metrics registry as gauges.

        Called at the oracle's consistency boundaries (end of each
        patch, every cache snapshot) rather than live in :meth:`get` --
        the hottest lookup path stays untouched and the registry sees
        the same lifetime totals :meth:`stats` reports.  ``None``-valued
        entries (an unbounded budget) are skipped: gauges are numeric.
        """
        for key, value in self.stats().items():
            if value is not None:
                recorder.gauge(f"{prefix}.{key}", value)
