"""Steiner-tree solvers.

The paper invokes "the ρST-approximation algorithm for the Steiner Tree
problem [20]" as a black box (Byrka et al.'s LP-based 1.39-approximation).
That algorithm is far outside the scope of a practical reproduction, so we
provide the standard substitutes documented in DESIGN.md:

- :func:`kmb_steiner_tree` -- the Kou--Markowsky--Berman 2-approximation
  (MST of the metric closure over terminals, expanded and pruned).
- :func:`mehlhorn_steiner_tree` -- Mehlhorn's faster variant using Voronoi
  regions (same 2-approximation guarantee, one Dijkstra overall).
- :func:`dreyfus_wagner_steiner_tree` -- the exact dynamic program, usable
  for small terminal sets (|terminals| <= ~10) and used by the test suite to
  verify the approximations empirically.

ρST enters the paper's bounds only as a multiplicative constant, so the
substitution preserves every structural claim.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.graph.graph import Graph, canonical_edge
from repro.graph.indexed import FrozenOracle
from repro.graph.mst import kruskal_mst
from repro.graph.shortest_paths import DistanceOracle

Node = Hashable
INF = float("inf")


@dataclass
class SteinerResult:
    """A Steiner tree: its edges (as a :class:`Graph`) and total cost."""

    tree: Graph
    cost: float
    terminals: FrozenSet[Node] = field(default_factory=frozenset)

    def contains_terminals(self) -> bool:
        """Whether every terminal is present in the tree."""
        return all(t in self.tree for t in self.terminals)


def metric_closure(
    graph: Graph,
    nodes: Sequence[Node],
    oracle: Optional[DistanceOracle] = None,
) -> Graph:
    """Complete graph over ``nodes`` with shortest-path distances as costs."""
    # A terminal-hot FrozenOracle early-terminates each row at the last
    # settled terminal and returns bit-identical distances/paths.
    oracle = oracle or FrozenOracle(graph, hot=nodes)
    closure = Graph()
    node_list = list(nodes)
    for node in node_list:
        closure.add_node(node)
    for i, u in enumerate(node_list):
        for v in node_list[i + 1:]:
            d = oracle.distance(u, v)
            if d < INF:
                closure.add_edge(u, v, d)
    return closure


def _prune_nonterminal_leaves(tree: Graph, terminals: Iterable[Node]) -> None:
    """Iteratively remove degree-1 nodes that are not terminals (in place)."""
    terminal_set = set(terminals)
    changed = True
    while changed:
        changed = False
        for node in list(tree.nodes()):
            if node not in terminal_set and tree.degree(node) <= 1:
                tree.remove_node(node)
                changed = True


def kmb_steiner_tree(
    graph: Graph,
    terminals: Sequence[Node],
    oracle: Optional[DistanceOracle] = None,
) -> SteinerResult:
    """Kou--Markowsky--Berman 2-approximation.

    1. Build the metric closure over the terminals.
    2. Take its MST.
    3. Expand each closure edge to the underlying shortest path.
    4. Take the MST of the expansion and prune non-terminal leaves.
    """
    terminal_list = list(dict.fromkeys(terminals))
    if not terminal_list:
        return SteinerResult(Graph(), 0.0, frozenset())
    if len(terminal_list) == 1:
        tree = Graph()
        tree.add_node(terminal_list[0])
        return SteinerResult(tree, 0.0, frozenset(terminal_list))
    oracle = oracle or FrozenOracle(graph, hot=terminal_list)
    closure = metric_closure(graph, terminal_list, oracle)
    if not closure.is_connected():
        raise ValueError("terminals are not mutually reachable")
    closure_mst = kruskal_mst(closure)

    expanded = Graph()
    for u, v, _ in closure_mst.edges():
        path = oracle.path(u, v)
        for a, b in zip(path, path[1:]):
            expanded.add_edge(a, b, graph.cost(a, b))
    tree = kruskal_mst(expanded)
    _prune_nonterminal_leaves(tree, terminal_list)
    return SteinerResult(tree, tree.total_edge_cost(), frozenset(terminal_list))


def mehlhorn_steiner_tree(
    graph: Graph,
    terminals: Sequence[Node],
    oracle: Optional[DistanceOracle] = None,
) -> SteinerResult:
    """Mehlhorn's 2-approximation via Voronoi regions.

    A single multi-source Dijkstra partitions the graph into Voronoi regions
    around terminals; a reduced inter-terminal graph is built from boundary
    edges; its MST is expanded back and pruned.  Asymptotically faster than
    KMB and typically a slightly different (sometimes better) tree.
    """
    terminal_list = list(dict.fromkeys(terminals))
    if not terminal_list:
        return SteinerResult(Graph(), 0.0, frozenset())
    if len(terminal_list) == 1:
        tree = Graph()
        tree.add_node(terminal_list[0])
        return SteinerResult(tree, 0.0, frozenset(terminal_list))
    for t in terminal_list:
        if t not in graph:
            raise KeyError(f"terminal {t!r} not in graph")

    # Multi-source Dijkstra: dist to nearest terminal, owning terminal, parent.
    dist: Dict[Node, float] = {}
    owner: Dict[Node, Node] = {}
    parent: Dict[Node, Node] = {}
    heap: List[Tuple[float, int, Node, Node]] = []
    counter = 0
    for t in terminal_list:
        dist[t] = 0.0
        owner[t] = t
        heapq.heappush(heap, (0.0, counter, t, t))
        counter += 1
    settled = set()
    while heap:
        d, _, node, own = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        owner[node] = own
        for neighbor, cost in graph.neighbor_items(node):
            nd = d + cost
            if nd < dist.get(neighbor, INF):
                dist[neighbor] = nd
                parent[neighbor] = node
                heapq.heappush(heap, (nd, counter, neighbor, own))
                counter += 1

    # Reduced graph over terminals: for each edge crossing two regions, the
    # candidate connection cost is d(t1,u) + c(u,v) + d(v,t2).
    reduced = Graph()
    best_bridge: Dict[Tuple[Node, Node], Tuple[Node, Node]] = {}
    for t in terminal_list:
        reduced.add_node(t)
    for u, v, cost in graph.edges():
        if u not in owner or v not in owner:
            continue
        tu, tv = owner[u], owner[v]
        if tu == tv:
            continue
        weight = dist[u] + cost + dist[v]
        key = canonical_edge(tu, tv)
        if not reduced.has_edge(*key) or weight < reduced.cost(*key):
            reduced.add_edge(tu, tv, weight)
            best_bridge[key] = (u, v)
    if not reduced.is_connected():
        raise ValueError("terminals are not mutually reachable")
    reduced_mst = kruskal_mst(reduced)

    def walk_to_owner(node: Node) -> List[Node]:
        """Path from a node to its Voronoi-owning terminal."""
        path = [node]
        while path[-1] != owner[node]:
            path.append(parent[path[-1]])
        return path

    expanded = Graph()
    for t in terminal_list:
        expanded.add_node(t)
    for a, b, _ in reduced_mst.edges():
        u, v = best_bridge[canonical_edge(a, b)]
        chain = list(reversed(walk_to_owner(u))) + walk_to_owner(v)
        for x, y in zip(chain, chain[1:]):
            expanded.add_edge(x, y, graph.cost(x, y))
    tree = kruskal_mst(expanded)
    _prune_nonterminal_leaves(tree, terminal_list)
    return SteinerResult(tree, tree.total_edge_cost(), frozenset(terminal_list))


def dreyfus_wagner_steiner_tree(
    graph: Graph,
    terminals: Sequence[Node],
    oracle: Optional[DistanceOracle] = None,
) -> SteinerResult:
    """Exact Steiner tree via the Dreyfus--Wagner dynamic program.

    Runs in ``O(3^k n + 2^k n^2)``-ish time for ``k`` terminals, so it is
    only practical for small ``k``.  Used by tests and the CPLEX-substitute
    cross-checks.
    """
    terminal_list = list(dict.fromkeys(terminals))
    k = len(terminal_list)
    if k == 0:
        return SteinerResult(Graph(), 0.0, frozenset())
    if k == 1:
        tree = Graph()
        tree.add_node(terminal_list[0])
        return SteinerResult(tree, 0.0, frozenset(terminal_list))
    if k > 14:
        raise ValueError(f"Dreyfus-Wagner is impractical for {k} terminals")
    # The DP probes all node pairs, so full (non-early-stopped) rows win.
    oracle = oracle or FrozenOracle(graph)
    nodes = list(graph.nodes())
    node_index = {n: i for i, n in enumerate(nodes)}
    dist = [[oracle.distance(u, v) for v in nodes] for u in nodes]

    base = terminal_list[:-1]
    root = terminal_list[-1]
    full_mask = (1 << len(base)) - 1

    # dp[mask][v] = min cost of a tree spanning {base[i]: i in mask} U {v}.
    dp: List[List[float]] = [[INF] * len(nodes) for _ in range(full_mask + 1)]
    choice: Dict[Tuple[int, int], Tuple[str, object]] = {}
    for i, t in enumerate(base):
        ti = node_index[t]
        for vi in range(len(nodes)):
            dp[1 << i][vi] = dist[ti][vi]

    for mask in range(1, full_mask + 1):
        if mask & (mask - 1) == 0:
            continue
        # Merge two subtrees at v.
        sub = (mask - 1) & mask
        while sub:
            other = mask ^ sub
            if sub < other:  # each unordered split once
                for vi in range(len(nodes)):
                    cost = dp[sub][vi] + dp[other][vi]
                    if cost < dp[mask][vi]:
                        dp[mask][vi] = cost
                        choice[(mask, vi)] = ("merge", (sub, other))
            sub = (sub - 1) & mask
        # Relax: connect v to the best u via a shortest path.
        order = sorted(range(len(nodes)), key=lambda vi: dp[mask][vi])
        for ui in order:
            if dp[mask][ui] == INF:
                break
            for vi in range(len(nodes)):
                cost = dp[mask][ui] + dist[ui][vi]
                if cost < dp[mask][vi]:
                    dp[mask][vi] = cost
                    choice[(mask, vi)] = ("extend", ui)

    root_i = node_index[root]
    tree = Graph()
    for t in terminal_list:
        tree.add_node(t)

    def build(mask: int, vi: int) -> None:
        """Reconstruct the DP solution's tree edges recursively."""
        if mask & (mask - 1) == 0:
            i = mask.bit_length() - 1
            path = oracle.path(base[i], nodes[vi])
            for a, b in zip(path, path[1:]):
                tree.add_edge(a, b, graph.cost(a, b))
            return
        kind, data = choice[(mask, vi)]
        if kind == "merge":
            sub, other = data  # type: ignore[misc]
            build(sub, vi)
            build(other, vi)
        else:
            ui = data  # type: ignore[assignment]
            path = oracle.path(nodes[ui], nodes[vi])
            for a, b in zip(path, path[1:]):
                tree.add_edge(a, b, graph.cost(a, b))
            build(mask, ui)

    if dp[full_mask][root_i] == INF:
        raise ValueError("terminals are not mutually reachable")
    build(full_mask, root_i)
    pruned = kruskal_mst(tree)
    _prune_nonterminal_leaves(pruned, terminal_list)
    return SteinerResult(pruned, pruned.total_edge_cost(), frozenset(terminal_list))


_METHODS = {
    "kmb": kmb_steiner_tree,
    "mehlhorn": mehlhorn_steiner_tree,
    "exact": dreyfus_wagner_steiner_tree,
}

#: ``auto`` uses the exact DP below these limits, KMB above.
AUTO_EXACT_MAX_TERMINALS = 6
AUTO_EXACT_MAX_NODES = 60


def resolve_steiner_method(
    graph: Graph, terminals: Sequence[Node], method: str
) -> str:
    """Resolve ``auto`` to a concrete solver name (shared dispatch rule).

    Callers that pre-select per-solver resources (e.g. SOFDA's condensed
    auxiliary oracle, which only serves KMB's terminal queries) use this
    so their choice can never drift from :func:`steiner_tree`'s dispatch.
    """
    if method != "auto":
        return method
    if (
        len(set(terminals)) <= AUTO_EXACT_MAX_TERMINALS
        and len(graph) <= AUTO_EXACT_MAX_NODES
    ):
        return "exact"
    return "kmb"


def steiner_tree(
    graph: Graph,
    terminals: Sequence[Node],
    method: str = "kmb",
    oracle: Optional[DistanceOracle] = None,
) -> SteinerResult:
    """Dispatch to a Steiner-tree solver by name.

    Methods: ``kmb``, ``mehlhorn``, ``exact`` (Dreyfus--Wagner), or
    ``auto`` -- exact when the instance is small enough
    (<= :data:`AUTO_EXACT_MAX_TERMINALS` distinct terminals on a graph with
    <= :data:`AUTO_EXACT_MAX_NODES` nodes), KMB otherwise.
    """
    method = resolve_steiner_method(graph, terminals, method)
    try:
        solver = _METHODS[method]
    except KeyError:
        raise ValueError(f"unknown Steiner method {method!r}; choose from {sorted(_METHODS)}")
    return solver(graph, terminals, oracle=oracle)
