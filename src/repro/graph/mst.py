"""Minimum spanning trees: Kruskal and Prim.

MSTs appear twice in the reproduction: inside the KMB Steiner-tree
approximation (MST of the metric closure) and as a sanity baseline in the
test suite.
"""

from __future__ import annotations

import heapq
from operator import itemgetter
from typing import Hashable, List, Tuple

from repro.graph.dsu import DisjointSetUnion
from repro.graph.graph import Graph

Node = Hashable

_EDGE_COST = itemgetter(2)


def kruskal_mst(graph: Graph) -> Graph:
    """Minimum spanning forest via Kruskal's algorithm.

    Returns a new :class:`Graph` containing every node of ``graph`` and the
    MST edges of each connected component.  The sort is stable on the edge
    enumeration order, so equal-cost edges are considered in a
    deterministic order.
    """
    forest = Graph()
    for node in graph.nodes():
        forest.add_node(node)
    dsu = DisjointSetUnion(graph.nodes())
    union = dsu.union
    add_edge = forest.add_edge
    for u, v, cost in sorted(graph.edges(), key=_EDGE_COST):
        if union(u, v):
            add_edge(u, v, cost)
    return forest


def prim_mst(graph: Graph, root: Node = None) -> Graph:
    """Minimum spanning tree of the component containing ``root`` via Prim.

    If ``root`` is None an arbitrary node is used.  Only the root's
    component is spanned; use :func:`kruskal_mst` for a full spanning
    forest.
    """
    tree = Graph()
    if len(graph) == 0:
        return tree
    if root is None:
        root = next(graph.nodes())
    tree.add_node(root)
    visited = {root}
    heap: List[Tuple[float, int, Node, Node]] = []
    counter = 0

    def push_edges(node: Node) -> None:
        """Queue the frontier edges of a newly settled node."""
        nonlocal counter
        for neighbor, cost in graph.neighbor_items(node):
            if neighbor not in visited:
                heapq.heappush(heap, (cost, counter, node, neighbor))
                counter += 1

    push_edges(root)
    while heap:
        cost, _, u, v = heapq.heappop(heap)
        if v in visited:
            continue
        visited.add(v)
        tree.add_edge(u, v, cost)
        push_edges(v)
    return tree
