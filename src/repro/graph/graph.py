"""A minimal, explicit undirected weighted graph.

The SOF algorithms need only a handful of graph operations (neighbor
iteration, edge-cost lookup, node/edge enumeration, subgraphs), so the type
is deliberately small and dependency-free.  ``networkx`` is used in the test
suite as an independent cross-check, never in the library itself.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Tuple

Node = Hashable
Edge = Tuple[Node, Node]


def canonical_edge(u: Node, v: Node) -> Edge:
    """Return the canonical (sorted) representation of an undirected edge.

    Node identifiers in one graph are expected to be mutually orderable
    (ints, strings or tuples of those).  Mixed types fall back to ordering
    on ``repr`` which is stable within a run.
    """
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)


def node_sort_key(node: Node) -> Tuple:
    """Canonical sort key for nodes of arbitrary, possibly mixed types.

    Orders by type group first, then natively within numbers (ints and
    floats share one numeric group) and strings (recursively for
    tuples), falling back to ``repr`` for anything else.  Unlike sorting
    on raw ``repr``, numeric nodes keep numeric order (``repr`` puts 10
    before 9) and the order cannot shift with quoting or bracket
    characters when node types are mixed.
    """
    if isinstance(node, tuple):
        return ("tuple", tuple(node_sort_key(item) for item in node))
    if isinstance(node, (int, float)) and not isinstance(node, bool):
        return ("number", node)
    if isinstance(node, str):
        return ("str", node)
    return (type(node).__name__, repr(node))


def edge_sort_key(edge: Edge) -> Tuple:
    """Canonical sort key for (already canonical) undirected edges."""
    return (node_sort_key(edge[0]), node_sort_key(edge[1]))


class Graph:
    """Undirected graph with nonnegative edge costs.

    Parallel edges are not supported: adding an existing edge overwrites its
    cost.  Self-loops are rejected because they never help a minimum-cost
    walk or tree.
    """

    def __init__(self) -> None:
        self._adj: Dict[Node, Dict[Node, float]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[Node, Node, float]]) -> "Graph":
        """Build a graph from an iterable of ``(u, v, cost)`` triples."""
        graph = cls()
        for u, v, cost in edges:
            graph.add_edge(u, v, cost)
        return graph

    def add_node(self, node: Node) -> None:
        """Add an isolated node (no-op if it already exists)."""
        self._adj.setdefault(node, {})

    def add_edge(self, u: Node, v: Node, cost: float) -> None:
        """Add the undirected edge ``{u, v}`` with the given nonnegative cost."""
        if u == v:
            raise ValueError(f"self-loop on node {u!r} is not allowed")
        if cost < 0:
            raise ValueError(f"edge ({u!r}, {v!r}) has negative cost {cost}")
        self._adj.setdefault(u, {})[v] = float(cost)
        self._adj.setdefault(v, {})[u] = float(cost)

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the edge ``{u, v}``; raises ``KeyError`` if absent."""
        del self._adj[u][v]
        del self._adj[v][u]

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and all incident edges."""
        for neighbor in list(self._adj[node]):
            del self._adj[neighbor][node]
        del self._adj[node]

    def copy(self) -> "Graph":
        """Return a deep copy (nodes, edges and costs)."""
        clone = Graph()
        for node, neighbors in self._adj.items():
            clone._adj[node] = dict(neighbors)
        return clone

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def nodes(self) -> Iterator[Node]:
        """Iterate over all nodes."""
        return iter(self._adj)

    def edges(self) -> Iterator[Tuple[Node, Node, float]]:
        """Iterate over all undirected edges once as ``(u, v, cost)``.

        Each edge is yielded exactly once, from its lower-id endpoint --
        where a node's id is its insertion index, so every node is
        orderable regardless of type and no per-edge ``canonical_edge``
        tuple or seen-set entry is ever allocated.  The enumeration order
        (first encounter in adjacency order) is part of the contract:
        seeded cost assignment iterates edges in this order.
        """
        pos = {node: i for i, node in enumerate(self._adj)}
        for u, neighbors in self._adj.items():
            pu = pos[u]
            for v, cost in neighbors.items():
                if pu < pos[v]:
                    yield u, v, cost

    def num_edges(self) -> int:
        """Number of undirected edges."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def has_edge(self, u: Node, v: Node) -> bool:
        """Whether the undirected edge ``{u, v}`` exists."""
        return v in self._adj.get(u, {})

    def cost(self, u: Node, v: Node) -> float:
        """Cost of edge ``{u, v}``; raises ``KeyError`` if absent."""
        return self._adj[u][v]

    def neighbors(self, node: Node) -> Iterator[Node]:
        """Iterate over the neighbors of ``node``."""
        return iter(self._adj[node])

    def neighbor_items(self, node: Node) -> Iterator[Tuple[Node, float]]:
        """Iterate over ``(neighbor, edge_cost)`` pairs of ``node``."""
        return iter(self._adj[node].items())

    def degree(self, node: Node) -> int:
        """Number of incident edges of ``node``."""
        return len(self._adj[node])

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, nodes: Iterable[Node]) -> "Graph":
        """Return the subgraph induced by ``nodes``."""
        keep = set(nodes)
        missing = keep.difference(self._adj)
        if missing:
            node = min(missing, key=repr)
            raise KeyError(f"node {node!r} not in graph")
        sub = Graph()
        # Enumerate in the parent graph's (deterministic) insertion order,
        # not set order: the subgraph's node order seeds downstream index
        # interning and must not vary with PYTHONHASHSEED.
        for node in self._adj:
            if node in keep:
                sub.add_node(node)
        for u, v, cost in self.edges():
            if u in keep and v in keep:
                sub.add_edge(u, v, cost)
        return sub

    def connected_components(self) -> list:
        """Return connected components as a list of node sets."""
        remaining = set(self._adj)
        components = []
        while remaining:
            start = next(iter(remaining))
            stack = [start]
            component = {start}
            while stack:
                node = stack.pop()
                for neighbor in self._adj[node]:
                    if neighbor not in component:
                        component.add(neighbor)
                        stack.append(neighbor)
            components.append(component)
            remaining -= component
        return components

    def is_connected(self) -> bool:
        """Whether the graph is connected (empty graphs count as connected)."""
        return len(self) == 0 or len(self.connected_components()) == 1

    def total_edge_cost(self) -> float:
        """Sum of all edge costs."""
        return sum(cost for _, _, cost in self.edges())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(|V|={len(self)}, |E|={self.num_edges()})"
