"""Indexed graph core: node interning, CSR adjacency and array Dijkstra.

The dict-of-dicts :class:`~repro.graph.graph.Graph` is convenient for
construction and small instances, but every Dijkstra relaxation pays a hash
of an arbitrary node key and every heap entry carries a Python object.  The
paper-scale sweeps (Table I: |V| up to 5000, |S| up to 26) run dozens of
single-source searches per SOFDA call, so this module provides a compact
core the hot paths share:

- :class:`IndexedGraph` -- interns nodes into dense int ids and stores the
  adjacency as CSR-style flat arrays (``indptr``/``indices``/``weights``)
  plus per-node ``(weight, neighbor_id)`` rows for the Dijkstra inner loop.
- :meth:`IndexedGraph.dijkstra` -- array-based Dijkstra whose ``dist`` and
  ``parent`` are flat lists indexed by int id and whose heap entries are
  ``(float, int, int)`` tuples, so no node ``repr`` tie-breaking ever runs.
  The relaxation order (including the push-counter tie-break) replicates
  :func:`repro.graph.shortest_paths.dijkstra` exactly, so the two return
  identical distances *and* identical shortest-path trees.
- :class:`FrozenOracle` -- a drop-in replacement for
  :class:`~repro.graph.shortest_paths.DistanceOracle` over a graph that is
  not mutated while cached.  Rows are computed lazily into flat arrays; a
  ``hot`` node set names the nodes the workload queries repeatedly.

On large instances the oracle additionally *contracts* the search graph:
ISP-style topologies (Euclidean MST plus shortest extra links, Inet
preferential attachment) are dominated by degree-2 relay nodes, so every
maximal chain of non-hot degree-2 nodes is spliced into a single weighted
edge before Dijkstra runs.  On the Table-I instances this halves the node
count and removes a third of the edges while distances stay exact; paths
are re-expanded through the stored chain interiors on reconstruction.
Contraction only engages above :data:`CONTRACT_MIN_INTERIOR` interior
nodes -- small (typically integer-weighted, tie-heavy) graphs keep the
exact dict-Dijkstra relaxation order, bit for bit.

One FrozenOracle per :class:`~repro.core.problem.SOFInstance` is shared by
the whole SOFDA pipeline (Procedure 1 sweeps, conflict repairs, Steiner
closures, the baselines and the online simulator) -- the single-oracle
invariant documented in ROADMAP.md.

Edge-*cost* patches (:meth:`FrozenOracle.patch_edge_costs`) repair cached
rows instead of recomputing them.  The repair engine is split into a
*planner* -- one shared :class:`_PatchPlan` per patch that classifies the
changed batch (increase/decrease partition, degree-1 leaf edges, and the
rows that use each changed pair as a tree edge, via a lazily-maintained
inverted pair->rows index) -- and a *repairer*
(:func:`_repair_row_planned`) that applies the plan to one row.  The
historical per-row rescan (:func:`_repair_row`) is kept, bit-identical,
behind ``planner=False`` as the equivalence reference.

*Dense* patches -- a changed edge sitting in most rows' shortest-path
trees, the online workload's hot shared links -- additionally share the
repair bookkeeping across rows: rows detaching the same region (same
detached child, same detached-side node set; the region is the child's
subtree regardless of which changed pair detached it) are grouped
behind one :class:`_SharedRegion`, whose node list, membership mask,
boundary seed lists and region-internal adjacency are computed once per
group and reused by every member row's re-dijkstra (see
:data:`PLANNER_SHARE_MIN_ROWS` / :data:`PLANNER_SHARE_DENSITY` for the
engagement policy).  ``share_regions=False`` keeps the per-row region
rediscovery, bit-identically, as the equivalence reference.

Edge-*topology* patches (:meth:`FrozenOracle.patch_topology`) extend the
same repair engine to link failure and recovery.  A removed edge is a
*tombstone*: its CSR slots keep their positions (marked with an ``inf``
weight, which no live edge can carry -- costs are validated finite) and
node ids stay stable, so every cached row array stays addressable; the
removal reaches cached rows as an increase-to-infinity, whose detached
region repairs from its boundary and may legitimately end *unreachable*
(``dist=inf``, parent cleared -- the one outcome a pure cost patch can
never produce).  A reinserted edge un-tombstones its slots and reaches
rows as a decrease-from-infinity through the existing decrease
machinery.  In the contracted core a failed edge keeps its chain intact
and poisons the chain's prefix sums and total to ``inf`` instead
(infinite candidates never win a relaxation, and interior queries
expand through per-side prefix walks), so no global recontraction ever
runs.  ``topology_patch=False`` keeps invalidate-and-rebuild as the
bit-identical equivalence reference, exactly as ``planner=`` /
``share_regions=`` do for their layers.
"""

from __future__ import annotations

import heapq
import math
from array import array
from collections import Counter
from operator import itemgetter
from typing import (
    Dict, FrozenSet, Hashable, Iterable, List, Mapping, Optional, Sequence,
    Tuple,
)

from repro.graph import kernel
from repro.graph.graph import Graph, canonical_edge
from repro.graph.rowcache import RowCache
from repro.graph.shortest_paths import dijkstra as _dict_dijkstra

Node = Hashable
INF = float("inf")

#: Minimum number of contractible (non-hot, degree-2) nodes before the
#: oracle switches to the contracted search core.  Below this the exact
#: dict-Dijkstra relaxation order is replicated instead, which keeps
#: tie-breaking on small integer-weighted graphs byte-compatible.
CONTRACT_MIN_INTERIOR = 64

#: Minimum fraction of distinct edge costs for contraction to engage.
#: Continuous (randomly drawn) costs make equal-cost shortest-path ties
#: measure-zero, so the contracted core's different -- but equally valid --
#: tie choices can never change a result.  Repeated-cost graphs (e.g. the
#: online simulator's uniform floor costs) keep the replicated relaxation
#: order instead.
CONTRACT_MIN_DISTINCT_COSTS = 0.5


#: How many edges the continuity probe inspects (deterministic prefix of
#: the enumeration order) -- plenty to separate drawn-cost graphs from
#: uniform/integer-cost ones without an O(E) scan per oracle build.
_DISTINCT_COST_SAMPLE = 2048

#: Patch-planner index policy.  The inverted pair->rows tree-edge index
#: lets a patch visit only the rows that use a changed edge, but building
#: it costs O(rows x nodes) and every repair must maintain it, so it only
#: pays while patches keep touching a small minority of the cached rows.
#: The planner therefore classifies by scan pass until
#: :data:`PLANNER_INDEX_BUILD_STREAK` consecutive patches repaired at most
#: a quarter of at least :data:`PLANNER_INDEX_MIN_ROWS` live rows, and
#: drops the index again as soon as one patch repairs half of them.
PLANNER_INDEX_MIN_ROWS = 64
PLANNER_INDEX_BUILD_STREAK = 3

#: Region-sharing policy for dense patches.  A changed pair whose
#: detached child is a tree-edge child in at least
#: :data:`PLANNER_SHARE_MIN_ROWS` rows *and* at least
#: :data:`PLANNER_SHARE_DENSITY` of the live rows gets a shared-region
#: group: the detached region's node set, boundary seed lists and
#: internal adjacency are computed once per (pair, region signature) and
#: reused by every member row instead of being rediscovered per row.
#: Below the thresholds the per-patch group bookkeeping would cost more
#: than the per-row walks it replaces.
PLANNER_SHARE_MIN_ROWS = 24
PLANNER_SHARE_DENSITY = 0.5

#: How many distinct region variants one dense root may accumulate per
#: patch before later non-matching rows fall back to the per-row walk
#: (equal-cost ties or mid-stream repairs can fragment the region
#: signature across rows; unbounded variants would turn the
#: verification scan into the dominant cost).
_PLANNER_SHARE_MAX_VARIANTS = 4

#: Kernel-tier fork thresholds.  Below these batch sizes the pool's
#: per-task pickling and scheduling overhead exceeds the work farmed
#: out, so ``parallel_rows`` oracles stay serial (bit-identical either
#: way; the thresholds are pure engagement policy).
PARALLEL_MIN_BATCH = 4
PARALLEL_MIN_REPAIRS = 8


def _target_ids(index: Dict, targets: Sequence) -> Optional[List[int]]:
    """Resolve ``targets`` against ``index`` in one C-speed gather.

    Returns the id list when every target is present, ``None`` when any
    target is missing -- callers then run their exact per-target slow
    path.  ``operator.itemgetter`` keeps the per-element cost out of the
    interpreter on the batched query paths, where a ~1000-candidate pool
    is resolved on every Procedure-2 call.
    """
    try:
        if len(targets) == 1:
            return [index[targets[0]]]
        return list(itemgetter(*targets)(index))
    except KeyError:
        return None

#: Relative slack (in units of one ulp) granted per tree level when the
#: single-boundary offset solve checks whether a shared region's
#: separation margin survives re-running the same float additions from a
#: per-row base distance: each accumulated label carries at most one
#: rounding per tree level, both compared labels drift, plus slack for
#: the base seed add itself.  See :meth:`_SharedRegion.apply_offset`.
_OFFSET_ULPS_PER_LEVEL = 2
_OFFSET_ULPS_BASE = 4
_EPS = 2.0 ** -52


def _costs_mostly_distinct(graph: Graph) -> bool:
    """Whether the graph's edge costs look continuously distributed."""
    seen = set()
    count = 0
    for _, _, cost in graph.edges():
        seen.add(cost)
        count += 1
        if count >= _DISTINCT_COST_SAMPLE:
            break
    return count > 0 and len(seen) >= CONTRACT_MIN_DISTINCT_COSTS * count


class IndexedGraph:
    """A frozen, int-indexed view of an undirected weighted graph.

    Attributes:
        nodes: intern table; ``nodes[i]`` is the original node of id ``i``.
        index: reverse mapping ``node -> id``.
        indptr, indices, weights: CSR adjacency -- the neighbors of node
            ``i`` are ``indices[indptr[i]:indptr[i+1]]`` with edge costs in
            the matching slice of ``weights``.
    """

    __slots__ = ("nodes", "index", "indptr", "indices", "weights", "_rows")

    def __init__(
        self,
        nodes: List[Node],
        indptr: List[int],
        indices: List[int],
        weights: List[float],
    ) -> None:
        self.nodes = nodes
        self.index = {node: i for i, node in enumerate(nodes)}
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        # Per-node (weight, neighbor) tuples: the CSR slices pre-zipped for
        # the Dijkstra inner loop, where tuple unpacking beats two indexed
        # loads per edge in CPython.
        self._rows: List[Tuple[Tuple[float, int], ...]] = [
            tuple(zip(weights[indptr[i]:indptr[i + 1]],
                      indices[indptr[i]:indptr[i + 1]]))
            for i in range(len(nodes))
        ]

    @classmethod
    def from_graph(cls, graph: Graph) -> "IndexedGraph":
        """Intern ``graph`` preserving node and per-node neighbor order."""
        nodes = list(graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        indptr = [0]
        indices: List[int] = []
        weights: List[float] = []
        for node in nodes:
            for neighbor, cost in graph.neighbor_items(node):
                indices.append(index[neighbor])
                weights.append(cost)
            indptr.append(len(indices))
        return cls(nodes, indptr, indices, weights)

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node: Node) -> bool:
        return node in self.index

    def num_edges(self) -> int:
        """Number of *live* undirected edges (tombstones excluded)."""
        dead = sum(1 for w in self.weights if w == INF)
        return (len(self.indices) - dead) // 2

    def id_of(self, node: Node) -> int:
        """Int id of ``node``; raises ``KeyError`` if absent."""
        return self.index[node]

    def node_of(self, node_id: int) -> Node:
        """Original node of int id ``node_id``."""
        return self.nodes[node_id]

    def neighbor_items(self, node_id: int) -> Tuple[Tuple[float, int], ...]:
        """``(edge_cost, neighbor_id)`` pairs of ``node_id``."""
        return self._rows[node_id]

    def patch_edges(self, updates: Iterable[Tuple[int, int, float]]) -> None:
        """Overwrite edge *costs* in place; the topology must not change.

        ``updates`` holds ``(u_id, v_id, new_cost)`` triples for existing
        edges.  Both CSR directions and the pre-zipped Dijkstra rows of the
        touched endpoints are refreshed.
        """
        indptr, indices, weights = self.indptr, self.indices, self.weights
        touched = set()
        for u, v, cost in updates:
            for a, b in ((u, v), (v, u)):
                for pos in range(indptr[a], indptr[a + 1]):
                    if indices[pos] == b:
                        weights[pos] = cost
                        break
                else:
                    raise KeyError(f"no edge between ids {u} and {v}")
            touched.add(u)
            touched.add(v)
        self._rebuild_live_rows(touched)

    def _rebuild_live_rows(self, touched: Iterable[int]) -> None:
        """Refresh the pre-zipped rows of ``touched``, skipping tombstones."""
        indptr, indices, weights = self.indptr, self.indices, self.weights
        for node in touched:
            self._rows[node] = tuple(
                (w, nb)
                for w, nb in zip(weights[indptr[node]:indptr[node + 1]],
                                 indices[indptr[node]:indptr[node + 1]])
                if w != INF
            )

    def remove_edges(self, pairs: Iterable[Tuple[int, int]]) -> None:
        """Tombstone edges in place: weight becomes ``inf``, slots persist.

        The CSR slots keep their positions (so node ids and every cached
        row array stay stable) but the pre-zipped Dijkstra rows of the
        touched endpoints drop the dead entries entirely -- an absent edge
        must cost the search nothing.  Raises ``KeyError`` for a missing
        or already-removed edge.
        """
        indptr, indices, weights = self.indptr, self.indices, self.weights
        touched = set()
        for u, v in pairs:
            for a, b in ((u, v), (v, u)):
                for pos in range(indptr[a], indptr[a + 1]):
                    if indices[pos] == b and weights[pos] != INF:
                        weights[pos] = INF
                        break
                else:
                    raise KeyError(f"no live edge between ids {u} and {v}")
            touched.add(u)
            touched.add(v)
        self._rebuild_live_rows(touched)

    def restore_edges(self, updates: Iterable[Tuple[int, int, float]]) -> None:
        """Un-tombstone edges: write a finite cost back into dead slots.

        The inverse of :meth:`remove_edges`; the edge must currently be
        tombstoned (both CSR directions at ``inf``).  Raises ``KeyError``
        when no tombstoned slot exists for a pair.
        """
        indptr, indices, weights = self.indptr, self.indices, self.weights
        touched = set()
        for u, v, cost in updates:
            for a, b in ((u, v), (v, u)):
                for pos in range(indptr[a], indptr[a + 1]):
                    if indices[pos] == b and weights[pos] == INF:
                        weights[pos] = cost
                        break
                else:
                    raise KeyError(
                        f"no tombstoned edge between ids {u} and {v}"
                    )
            touched.add(u)
            touched.add(v)
        self._rebuild_live_rows(touched)

    def clone(self) -> "IndexedGraph":
        """A patchable copy sharing the frozen topology arrays.

        The intern table and CSR structure (``nodes``/``index``/``indptr``/
        ``indices``) are shared -- they only depend on the topology -- while
        ``weights`` and the per-node rows are copied so :meth:`patch_edges`
        on the clone leaves the original untouched.
        """
        dup = object.__new__(IndexedGraph)
        dup.nodes = self.nodes
        dup.index = self.index
        dup.indptr = self.indptr
        dup.indices = self.indices
        dup.weights = list(self.weights)
        dup._rows = list(self._rows)
        return dup

    # ------------------------------------------------------------------
    def dijkstra(
        self,
        source: int,
        targets: Optional[Iterable[int]] = None,
    ) -> Tuple[List[float], List[int], bytearray, bool]:
        """Single-source Dijkstra over int ids.

        Args:
            source: start node id.
            targets: optional ids; the search stops once all are settled.

        Returns:
            ``(dist, parent, settled, exhausted)`` -- flat lists indexed by
            node id (``parent[i] == -1`` for the source and unreached
            nodes), the settled flags, and whether the search ran to
            exhaustion (i.e. the row is valid for *every* node, not just
            the settled ones).
        """
        n = len(self.nodes)
        dist = [INF] * n
        parent = [-1] * n
        settled = bytearray(n)
        dist[source] = 0.0

        is_target = None
        remaining = 0
        if targets is not None:
            is_target = bytearray(n)
            for t in targets:
                if t != source and not is_target[t]:
                    is_target[t] = 1
                    remaining += 1

        rows = self._rows
        heap: List[Tuple[float, int, int]] = [(0.0, 0, source)]
        counter = 1
        push = heapq.heappush
        pop = heapq.heappop
        exhausted = True
        while heap:
            d, _, u = pop(heap)
            if settled[u]:
                continue
            settled[u] = 1
            if is_target is not None:
                if is_target[u]:
                    remaining -= 1
                if remaining <= 0:
                    # Stopped early: the last settled node's out-edges were
                    # never relaxed, so the row is NOT valid beyond the
                    # settled set even if the heap happens to be empty.
                    exhausted = False
                    break
            for w, v in rows[u]:
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    parent[v] = u
                    push(heap, (nd, counter, v))
                    counter += 1
        return dist, parent, settled, exhausted


class _ContractedCore:
    """The degree-2-contracted search graph behind a :class:`FrozenOracle`.

    Attributes:
        nodes / index: intern table over the *core* nodes (hot nodes and
            every node of degree != 2).
        rows: per-core-node ``(weight, neighbor_cid)`` adjacency; parallel
            candidates (an original edge and/or several spliced chains
            between the same core pair) are reduced to the cheapest one.
        meta: ``(a_cid, b_cid) -> interior node tuple`` for every kept
            spliced edge, in a->b order (both orientations stored), used to
            re-expand reconstructed paths.
        chains: every discovered chain (kept or not, including self-loop
            chains) as ``(a_cid, b_cid, interiors, prefix, total)`` where
            ``prefix[i]`` is the along-chain distance from ``a`` to
            ``interiors[i]`` -- enough to serve ``distances_from`` for the
            contracted interiors exactly.
        chain_weights: the original per-edge weights of every chain, in
            walk order -- ``prefix``/``total`` are recomputed from these
            when an interior edge cost is patched.
        pair_direct: ``pairkey -> cost`` of the original core-core edges.
        chain_by_pair: ``pairkey -> chain indices`` connecting that pair,
            in discovery order -- together with ``pair_direct`` the full
            candidate set per pair, so the kept minimum can be re-decided
            after a cost patch.
        edge_loc: original edge (as a node frozenset) -> where it lives in
            the core: ``("d", pairkey)`` for direct core-core edges,
            ``("c", chain_index, position)`` for chain edges.  Edges on
            isolated relay cycles are absent (they never touch the core).
            Purely topological and only needed by patching, so it is built
            lazily on first use (``None`` until then).
    """

    __slots__ = (
        "nodes", "index", "rows", "meta", "chains", "interior",
        "chain_weights", "pair_direct", "chain_by_pair", "edge_loc",
    )

    def __init__(self, graph: Graph, protected: set) -> None:
        # The raw adjacency dicts: this is a sibling module of Graph inside
        # the graph package, and dropping the per-edge method dispatch
        # matters at 10k+ edges.
        adj = graph._adj
        is_core = {
            node for node, neighbors in adj.items()
            if len(neighbors) != 2 or node in protected
        }
        self.nodes: List[Node] = [n for n in adj if n in is_core]
        self.index: Dict[Node, int] = {n: i for i, n in enumerate(self.nodes)}
        self.interior: set = set()

        # Candidate core-core connections: original edges first (in
        # enumeration order), then spliced chains -- the min per pair wins,
        # first encountered on ties, which keeps construction deterministic.
        candidates: Dict[Tuple[int, int], Tuple[float, Tuple[Node, ...]]] = {}

        def offer(a: int, b: int, weight: float, interiors: Tuple[Node, ...]) -> None:
            key = (a, b) if a <= b else (b, a)
            kept = candidates.get(key)
            if kept is None or weight < kept[0]:
                candidates[key] = (
                    weight, interiors if key == (a, b) else tuple(reversed(interiors))
                )

        self.pair_direct: Dict[Tuple[int, int], float] = {}
        self.chain_by_pair: Dict[Tuple[int, int], List[int]] = {}
        # Edge -> core-location map; pure topology, so built lazily by the
        # first patch (one-shot pipelines never pay for it).
        self.edge_loc: Optional[Dict[FrozenSet[Node], Tuple]] = None

        index = self.index
        for u in self.nodes:
            ui = index[u]
            for v, cost in adj[u].items():
                vi = index.get(v)
                if vi is not None and ui < vi:
                    offer(ui, vi, cost, ())
                    self.pair_direct[(ui, vi)] = cost

        self.chains: List[
            Tuple[int, int, Tuple[Node, ...], Tuple[float, ...], float]
        ] = []
        self.chain_weights: List[List[float]] = []
        visited: set = set()
        for a in self.nodes:
            for first, w0 in adj[a].items():
                if first in is_core or first in visited:
                    continue
                # Walk the chain of degree-2 interiors until a core node.
                interiors = [first]
                weights = [w0]
                prev, cur = a, first
                while True:
                    visited.add(cur)
                    n1, n2 = adj[cur]
                    nxt = n2 if n1 == prev else n1
                    weights.append(adj[cur][nxt])
                    if nxt in is_core:
                        b = nxt
                        break
                    interiors.append(nxt)
                    prev, cur = cur, nxt
                prefix: List[float] = []
                acc = 0.0
                for w in weights[:-1]:
                    acc += w
                    prefix.append(acc)
                total = acc + weights[-1]
                a_cid, b_cid = index[a], index[b]
                chain_index = len(self.chains)
                self.chains.append(
                    (a_cid, b_cid, tuple(interiors), tuple(prefix), total)
                )
                self.chain_weights.append(weights)
                self.interior.update(interiors)
                if a_cid != b_cid:  # self-loop chains never shorten paths
                    offer(a_cid, b_cid, total, tuple(interiors))
                    key = (a_cid, b_cid) if a_cid <= b_cid else (b_cid, a_cid)
                    self.chain_by_pair.setdefault(key, []).append(chain_index)
        # Interior cycles with no core anchor stay out of the core; slow
        # queries about them fall back to the dict Dijkstra.
        for node in adj:
            if node not in is_core and node not in visited:
                self.interior.add(node)

        adjacency: List[List[Tuple[float, int]]] = [[] for _ in self.nodes]
        self.meta: Dict[Tuple[int, int], Tuple[Node, ...]] = {}
        for (a, b), (weight, interiors) in candidates.items():
            adjacency[a].append((weight, b))
            adjacency[b].append((weight, a))
            if interiors:
                self.meta[(a, b)] = interiors
                self.meta[(b, a)] = tuple(reversed(interiors))
        self.rows: List[Tuple[Tuple[float, int], ...]] = [
            tuple(row) for row in adjacency
        ]

    def __len__(self) -> int:
        return len(self.nodes)

    def dijkstra(self, source: int) -> Tuple[List[float], List[int]]:
        """Full single-source Dijkstra over the contracted core.

        Heap entries are plain ``(dist, id)`` pairs: the contracted core
        only engages on continuous-cost instances, where exact distance
        ties are measure-zero, so no insertion-counter tie-break is kept.
        """
        n = len(self.nodes)
        dist = [INF] * n
        parent = [-1] * n
        dist[source] = 0.0
        rows = self.rows
        heap: List[Tuple[float, int]] = [(0.0, source)]
        push = heapq.heappush
        pop = heapq.heappop
        while heap:
            d, u = pop(heap)
            if d > dist[u]:  # stale entry: u was settled at a lower cost
                continue
            for w, v in rows[u]:
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    parent[v] = u
                    push(heap, (nd, v))
        return dist, parent

    def expand(self, core_path: List[int]) -> List[Node]:
        """Re-insert chain interiors into a path of core ids."""
        nodes = self.nodes
        meta = self.meta
        out: List[Node] = [nodes[core_path[0]]]
        for a, b in zip(core_path, core_path[1:]):
            interiors = meta.get((a, b))
            if interiors is not None:
                out.extend(interiors)
            out.append(nodes[b])
        return out

    # ------------------------------------------------------------------
    # incremental cost patching
    # ------------------------------------------------------------------
    def _ensure_edge_loc(self) -> Dict[FrozenSet[Node], Tuple]:
        """Build (once) the original-edge -> core-location map.

        ``("d", pairkey)`` for direct core-core edges, ``("c",
        chain_index, position)`` for chain edges; isolated relay-cycle
        edges stay absent.  Purely topological, so it is derived from the
        candidate bookkeeping on first use and shared by clones.
        """
        if self.edge_loc is None:
            nodes = self.nodes
            loc: Dict[FrozenSet[Node], Tuple] = {}
            for key in self.pair_direct:
                loc[frozenset((nodes[key[0]], nodes[key[1]]))] = ("d", key)
            for chain_index, (a_cid, b_cid, interiors, _, _) in enumerate(
                self.chains
            ):
                walk = [nodes[a_cid], *interiors, nodes[b_cid]]
                for pos, (x, y) in enumerate(zip(walk, walk[1:])):
                    loc[frozenset((x, y))] = ("c", chain_index, pos)
            self.edge_loc = loc
        return self.edge_loc

    def _kept_weight(self, key: Tuple[int, int]) -> float:
        """The currently kept core-edge weight of a candidate pair."""
        a, b = key
        for w, nb in self.rows[a]:
            if nb == b:
                return w
        raise KeyError(f"core pair {key} has no kept edge")

    def _recompute_kept(
        self, key: Tuple[int, int]
    ) -> Tuple[float, Tuple[Node, ...]]:
        """Re-decide the kept candidate of a pair after a cost change.

        Candidates are evaluated in construction order (the direct edge,
        then chains in discovery order) with a strict minimum, replicating
        the constructor's first-encountered-wins tie-break.
        """
        best = self.pair_direct.get(key, INF)
        best_interiors: Tuple[Node, ...] = ()
        for chain_index in self.chain_by_pair.get(key, ()):
            a_cid, _, interiors, _, total = self.chains[chain_index]
            if total < best:
                best = total
                best_interiors = (
                    interiors if a_cid == key[0] else tuple(reversed(interiors))
                )
        return best, best_interiors

    def _set_row_weight(self, a: int, b: int, weight: float) -> None:
        self.rows[a] = tuple(
            (weight, nb) if nb == b else (w, nb) for w, nb in self.rows[a]
        )

    def patch_edges(
        self, changes: Iterable[Tuple[Node, Node, float]]
    ) -> List[Tuple[int, int, float, float]]:
        """Apply original-edge cost updates to the contracted structures.

        Chain prefix sums and totals are recomputed from the stored
        per-edge weights, and for every core pair one of the changed edges
        participates in, the kept candidate is re-decided in construction
        order.  Returns ``(a_cid, b_cid, old_kept, new_kept)`` per affected
        pair, for the caller's row-cache eviction.
        """
        edge_loc = self._ensure_edge_loc()
        affected: Dict[Tuple[int, int], float] = {}
        for u, v, cost in changes:
            loc = edge_loc.get(frozenset((u, v)))
            if loc is None:
                continue  # an isolated relay-cycle edge: slow path only
            if loc[0] == "d":
                key = loc[1]
                if key not in affected:
                    affected[key] = self._kept_weight(key)
                self.pair_direct[key] = cost
            else:
                chain_index, pos = loc[1], loc[2]
                weights = self.chain_weights[chain_index]
                weights[pos] = cost
                a_cid, b_cid, interiors, _, _ = self.chains[chain_index]
                prefix: List[float] = []
                acc = 0.0
                for w in weights[:-1]:
                    acc += w
                    prefix.append(acc)
                self.chains[chain_index] = (
                    a_cid, b_cid, interiors, tuple(prefix), acc + weights[-1]
                )
                if a_cid != b_cid:
                    key = (a_cid, b_cid) if a_cid <= b_cid else (b_cid, a_cid)
                    if key not in affected:
                        affected[key] = self._kept_weight(key)
        out: List[Tuple[int, int, float, float]] = []
        for key, old_weight in affected.items():
            a, b = key
            new_weight, interiors = self._recompute_kept(key)
            if new_weight != old_weight:
                self._set_row_weight(a, b, new_weight)
                self._set_row_weight(b, a, new_weight)
            # The winning candidate may switch even on equal weight (the
            # direct edge wins ties); refresh the expansion map either way.
            if interiors:
                self.meta[(a, b)] = interiors
                self.meta[(b, a)] = tuple(reversed(interiors))
            else:
                self.meta.pop((a, b), None)
                self.meta.pop((b, a), None)
            out.append((a, b, old_weight, new_weight))
        return out

    def clone(self) -> "_ContractedCore":
        """A patchable copy sharing every topology-only structure."""
        self._ensure_edge_loc()  # build once here, share with every clone
        dup = object.__new__(_ContractedCore)
        dup.nodes = self.nodes
        dup.index = self.index
        dup.interior = self.interior
        dup.rows = list(self.rows)
        dup.meta = dict(self.meta)
        dup.chains = list(self.chains)
        dup.chain_weights = [list(w) for w in self.chain_weights]
        dup.pair_direct = dict(self.pair_direct)
        dup.chain_by_pair = self.chain_by_pair
        dup.edge_loc = self.edge_loc
        return dup


def _repair_row(
    adjacency: List[Tuple[Tuple[float, int], ...]],
    row: "_Row",
    increases: List[Tuple[int, int]],
    decreases: List[Tuple[int, int, float]],
) -> bool:
    """Repair one cached row in place after a batch of edge-cost changes.

    ``adjacency`` must already carry the *new* weights.  Returns ``False``
    when the row cannot be repaired (it must be evicted), ``True`` when its
    distances are exact again.

    Increases follow Ramalingam--Reps: only descendants of a detached tree
    edge can change, so exactly that region -- found by walking the row's
    lazily-built (and then maintained) children lists -- is recomputed
    from its boundary of intact nodes.  On early-stopped rows, a repaired
    node whose new distance exceeds the original settle cutoff is demoted
    to unsettled (its true distance could route through never-settled
    territory, whose labels are mere upper bounds); conversely a repaired
    node back under the cutoff is provably exact, since every path through
    never-settled territory costs at least the cutoff.  Decreases
    propagate improvements outward on full rows; early-stopped rows
    survive a decrease only when it provably cannot improve any label
    (both endpoints settled, no slack).
    """
    dist = row.dist
    parent = row.parent
    settled = row.settled
    full = row.full

    if decreases:
        if full:
            heap: List[Tuple[float, int]] = []
            push = heapq.heappush
            pop = heapq.heappop
            for a, b, w in decreases:
                if dist[a] + w < dist[b]:
                    dist[b] = dist[a] + w
                    parent[b] = a
                    push(heap, (dist[b], b))
                elif dist[b] + w < dist[a]:
                    dist[a] = dist[b] + w
                    parent[a] = b
                    push(heap, (dist[a], a))
            if heap:
                row.children = None  # parents moved: rebuild lazily
            while heap:
                d, v = pop(heap)
                if d > dist[v]:
                    continue
                for w, u in adjacency[v]:
                    nd = d + w
                    if nd < dist[u]:
                        dist[u] = nd
                        parent[u] = v
                        push(heap, (nd, u))
        else:
            for a, b, w in decreases:
                if not (settled[a] and settled[b]):
                    return False
                if dist[a] + w < dist[b] or dist[b] + w < dist[a]:
                    return False

    if increases:
        roots = []
        for a, b in increases:
            if parent[b] == a:
                roots.append(b)
            elif parent[a] == b:
                roots.append(a)
        if roots:
            n = len(dist)
            if not full and row.cutoff is None:
                # The original run's settle frontier: every never-settled
                # node's true distance is at least this (Dijkstra settles
                # in nondecreasing order), and edge costs only grew since.
                row.cutoff = max(
                    (dist[v] for v in range(n) if settled[v]), default=0.0
                )
            children = row.children
            if children is None:
                children = [[] for _ in range(n)]
                for v, p in enumerate(parent):
                    if p >= 0:
                        children[p].append(v)
                row.children = children
            # Every child of an affected node is affected (an intact node's
            # root path avoids detached edges, so its parent is intact
            # too), so the affected region is the forest below the roots.
            affect = bytearray(n)
            affected: List[int] = []
            stack = []
            for r in roots:
                if not affect[r]:
                    affect[r] = 1
                    children[parent[r]].remove(r)
                    stack.append(r)
            while stack:
                v = stack.pop()
                affected.append(v)
                for c in children[v]:
                    affect[c] = 1
                    stack.append(c)
            for v in affected:
                dist[v] = INF
                parent[v] = -1
                children[v].clear()
            heap = []
            push = heapq.heappush
            pop = heapq.heappop
            for v in affected:
                best = INF
                best_parent = -1
                for w, u in adjacency[v]:
                    if not affect[u] and (full or settled[u]):
                        nd = dist[u] + w
                        if nd < best:
                            best = nd
                            best_parent = u
                if best_parent >= 0:
                    dist[v] = best
                    parent[v] = best_parent
                    push(heap, (best, v))
            while heap:
                d, v = pop(heap)
                if d > dist[v]:
                    continue
                for w, u in adjacency[v]:
                    if affect[u]:
                        nd = d + w
                        if nd < dist[u]:
                            dist[u] = nd
                            parent[u] = v
                            push(heap, (nd, u))
            for v in affected:
                p = parent[v]
                if p >= 0:
                    children[p].append(v)
            if not full:
                cutoff = row.cutoff
                for v in affected:
                    settled[v] = 1 if dist[v] <= cutoff else 0
    return True


class _PatchPlan:
    """Row-independent classification of one edge-cost change batch.

    The online workload (pure edge-cost churn) repairs every cached row
    per patch, and most of the *classification* work -- which changed
    pairs can be tree edges, and with which endpoint as the child -- does
    not depend on the row at all.  The plan hoists it:

    - ``increases`` / ``decreases``: the direction partition of the batch
      (shared verbatim with the legacy per-row repair).
    - ``classified`` (lazy -- only the planned repair branch pays for
      it): per increased pair ``(a, b, leaf)`` where ``leaf`` is the
      degree-1 endpoint id, or ``-1`` for a general pair.  A
      degree-1 node can only ever be the *child* of its single edge (no
      shortest path routes through it), and its detached "region" is the
      node itself, so every row repairs it with one relaxation instead of
      the full region machinery.  In the online simulator the per-request
      VM attachment edges are exactly such leaf edges, and they appear in
      every cached row's tree.

    The remaining per-row facts (is the pair a tree edge *in this row*)
    are answered either by the oracle's lazily-maintained inverted
    pair->rows tree-edge index or, on a first/one-shot patch, by a single
    scan pass -- see :meth:`FrozenOracle._patch_rows`.
    """

    __slots__ = ("increases", "decreases", "_adjacency", "_classified")

    def __init__(
        self,
        adjacency: List[Tuple[Tuple[float, int], ...]],
        changes: Iterable[Tuple[int, int, float, float]],
    ) -> None:
        self.increases: List[Tuple[int, int]] = []
        self.decreases: List[Tuple[int, int, float]] = []
        self._adjacency = adjacency
        self._classified: Optional[List[Tuple[int, int, int]]] = None
        for a, b, old, new in changes:
            if new > old:
                self.increases.append((a, b))
            elif new < old:
                self.decreases.append((a, b, new))

    @property
    def classified(self) -> List[Tuple[int, int, int]]:
        """Leaf-classified increases, built on first use.

        Deferred so the ``planner=False`` reference oracles and
        decrease-carrying batches -- which repair through the legacy
        per-row path and never read it -- skip the degree lookups.
        """
        if self._classified is None:
            adjacency = self._adjacency
            out = []
            for a, b in self.increases:
                if len(adjacency[b]) == 1:
                    leaf = b
                elif len(adjacency[a]) == 1:
                    leaf = a
                else:
                    leaf = -1
                out.append((a, b, leaf))
            self._classified = out
        return self._classified


def _index_add(
    index: Dict[Tuple[int, int], set], v: int, p: int, sid: int
) -> None:
    """Register tree edge ``{v, p}`` of row ``sid`` in the inverted index.

    The one place that fixes the index's key convention (the id pair in
    ascending order) -- shared by post-repair maintenance and wholesale
    row registration, which must stay in lockstep for the
    over-approximation invariant to hold.
    """
    key = (v, p) if v < p else (p, v)
    bucket = index.get(key)
    if bucket is None:
        index[key] = {sid}
    else:
        bucket.add(sid)


def _route_tree_edge(
    row: "_Row",
    sid: int,
    a: int,
    b: int,
    leaf: int,
    general_roots: Dict[int, List[int]],
    leaf_jobs: Dict[int, List[Tuple[int, int]]],
) -> bool:
    """Route one changed pair of ``row`` to its repair job, if a tree edge.

    The single dispatch both classification modes (index lookup and scan
    pass) of :meth:`FrozenOracle._patch_rows` share: verify the pair
    against ``row.parent``, then queue the detached child either as a
    ``(leaf, anchor)`` fast job (increased degree-1 edge of a full row)
    or as a general region root.  Returns whether the pair is currently a
    tree edge of the row.
    """
    parent = row.parent
    if parent[b] == a:
        child = b
    elif parent[a] == b:
        child = a
    else:
        return False
    if child == leaf and row.full:
        leaf_jobs.setdefault(sid, []).append((child, a if child == b else b))
    else:
        general_roots.setdefault(sid, []).append(child)
    return True


def _repair_row_planned(
    adjacency: List[Tuple[Tuple[float, int], ...]],
    row: "_Row",
    roots: Iterable[int],
    leafs: Iterable[Tuple[int, int]],
) -> List[int]:
    """Apply one plan's increase repairs to a single cached row.

    ``roots`` are the row's detached children of generally-classified
    increased pairs (already verified against ``row.parent``); ``leafs``
    holds ``(leaf, anchor)`` jobs for increased degree-1 edges of full
    rows.  Semantics are identical to the increase half of
    :func:`_repair_row`; the mechanics differ in two profiled ways:

    - The affected region is discovered by scanning ``adjacency`` for
      ``parent[u] == v`` children instead of building and maintaining
      per-row children lists (the lazily-built lists are ~40% of legacy
      repair time on the online trace, and the planner skips rows a patch
      cannot touch, so the lists would be built for nothing).
    - Leaf jobs whose anchor is outside every detached region bypass the
      region machinery entirely: the leaf's one edge is relaxed in place
      (``dist[leaf] = dist[anchor] + w``), its parent unchanged.  A leaf
      whose anchor *is* detached was already swept into that region by
      the child walk, and is repaired there.

    Returns the affected (region-repaired) node list, so the caller can
    refresh the inverted tree-edge index from the new parents.
    """
    dist = row.dist
    parent = row.parent
    settled = row.settled
    full = row.full
    # Planned repairs never maintain the legacy children lists; drop any
    # lists a previous mixed (decrease-carrying) patch built so the legacy
    # path cannot later reuse a tree this repair is about to move.
    row.children = None
    n = len(dist)
    if not full and row.cutoff is None:
        row.cutoff = max(
            (dist[v] for v in range(n) if settled[v]), default=0.0
        )
    affect = bytearray(n)
    affected: List[int] = []
    if roots:
        stack = []
        for r in roots:
            if not affect[r]:
                affect[r] = 1
                stack.append(r)
        while stack:
            v = stack.pop()
            affected.append(v)
            for w, u in adjacency[v]:
                if parent[u] == v and not affect[u]:
                    affect[u] = 1
                    stack.append(u)
    fast: List[Tuple[int, int]] = []
    for leaf, anchor in leafs:
        if not affect[leaf]:
            fast.append((leaf, anchor))
    if affected:
        for v in affected:
            dist[v] = INF
            parent[v] = -1
        heap: List[Tuple[float, int]] = []
        push = heapq.heappush
        pop = heapq.heappop
        if full:
            for v in affected:
                best = INF
                best_parent = -1
                for w, u in adjacency[v]:
                    if not affect[u]:
                        nd = dist[u] + w
                        if nd < best:
                            best = nd
                            best_parent = u
                if best_parent >= 0:
                    dist[v] = best
                    parent[v] = best_parent
                    push(heap, (best, v))
        else:
            for v in affected:
                best = INF
                best_parent = -1
                for w, u in adjacency[v]:
                    if not affect[u] and settled[u]:
                        nd = dist[u] + w
                        if nd < best:
                            best = nd
                            best_parent = u
                if best_parent >= 0:
                    dist[v] = best
                    parent[v] = best_parent
                    push(heap, (best, v))
        while heap:
            d, v = pop(heap)
            if d > dist[v]:
                continue
            for w, u in adjacency[v]:
                if affect[u]:
                    nd = d + w
                    if nd < dist[u]:
                        dist[u] = nd
                        parent[u] = v
                        push(heap, (nd, u))
        if not full:
            cutoff = row.cutoff
            for v in affected:
                # Demotion contract: a repaired label strictly above the
                # original settle frontier may route through never-settled
                # territory, so it is demoted; a label exactly *on* the
                # cutoff is still provably exact (any path through
                # never-settled territory costs at least the cutoff) and
                # stays settled.  Must match :func:`_repair_row` exactly.
                settled[v] = 1 if dist[v] <= cutoff else 0
    for leaf, anchor in fast:
        d = dist[anchor]
        if d == INF:
            # The anchor itself is unreachable; mirror the legacy seeding,
            # which finds no boundary parent and leaves the leaf detached.
            dist[leaf] = INF
            parent[leaf] = -1
        else:
            dist[leaf] = d + adjacency[leaf][0][0]
    return affected


class _SharedRegion:
    """One detached region -- a dense root's subtree -- shared across rows.

    Scoped to a single patch (the stored boundary/internal weights are
    only valid until the next weight change).  Built from the first
    member row's child walk; every later row *verifies* membership in
    O(region + boundary) -- strictly less than rediscovering the region
    from the adjacency -- and then reuses:

    - ``member``: node-membership bytearray, served read-only as the
      row's ``affect`` set when the row repairs nothing else;
    - ``nodes``: the region's node list (walk order; order is
      outcome-irrelevant, every consumer is value-ordered or idempotent);
    - ``seed_items``: the boundary nodes with their ``(weight,
      neighbor)`` pairs in adjacency order -- the re-dijkstra seed scan
      touches only these instead of every region node's full adjacency
      (a node with no boundary edge can never be seeded);
    - ``inner``: per region node, its region-internal ``(weight,
      neighbor)`` pairs, so the re-dijkstra inner loop skips the
      membership test per edge.

    A row's region equals this one iff every non-root member's parent is
    a member, the root's parent is not, and no boundary edge points
    *into* the region (``parent[outside] == inside``): the first two make
    the member set a subset of the root's subtree (parent chains cannot
    leave it except through the root), the last makes it a superset
    (a subtree node outside the member set would have to enter through a
    boundary edge).
    """

    __slots__ = ("root", "member", "nodes", "tail", "seed_items", "inner",
                 "_mask", "_reach_mask", "_arrays", "_solo")

    def __init__(
        self,
        adjacency: List[Tuple[Tuple[float, int], ...]],
        parent: List[int],
        root: int,
        n: int,
    ) -> None:
        member = bytearray(n)
        nodes: List[int] = [root]
        member[root] = 1
        stack = [root]
        while stack:
            v = stack.pop()
            for w, u in adjacency[v]:
                if parent[u] == v and not member[u]:
                    member[u] = 1
                    nodes.append(u)
                    stack.append(u)
        seed_items: List[Tuple[int, Tuple[Tuple[float, int], ...]]] = []
        inner: List[Optional[Tuple[Tuple[float, int], ...]]] = [None] * n
        for v in nodes:
            out_row = []
            in_row = []
            for pair in adjacency[v]:
                if member[pair[1]]:
                    in_row.append(pair)
                else:
                    out_row.append(pair)
            if out_row:
                seed_items.append((v, tuple(out_row)))
            inner[v] = tuple(in_row)
        self.root = root
        self.member = member
        self.nodes = nodes
        self.tail = nodes[1:]  # every member but the root
        self.seed_items = seed_items
        self.inner = inner
        self._mask = None
        self._reach_mask = None
        self._arrays = None
        self._solo = None

    def matches(self, parent: List[int]) -> bool:
        """Whether ``parent``'s subtree below ``root`` is exactly this region."""
        member = self.member
        p = parent[self.root]
        if p >= 0 and member[p]:
            return False
        if kernel.np is not None and isinstance(parent, array):
            # Vectorized-row fast path: same predicate, whole-array ops.
            # A ``-1`` parent wraps to the last member byte under numpy
            # fancy indexing, but its conjunct is already False, so the
            # wrapped read can never flip the outcome.
            np = kernel.np
            tail_np, member_view, seed_u, seed_v_rep = self.arrays()[:4]
            pview = kernel.i8_view(parent)
            tp = pview[tail_np]
            if not ((tp >= 0) & (member_view[tp] == 1)).all():
                return False
            if seed_u.size and (pview[seed_u] == seed_v_rep).any():
                return False
            return True
        for v in self.tail:
            p = parent[v]
            if p < 0 or not member[p]:
                return False
        for v, seed in self.seed_items:
            for _, u in seed:
                if parent[u] == v:
                    return False
        return True

    def arrays(self):
        """Numpy companions of the region structures (lazy, per patch).

        ``(tail_np, member_view, seed_u, seed_v_rep, nodes_np, seed_v,
        seed_w, seed_starts, seed_lens)`` -- the membership/boundary data
        re-expressed as flat arrays so :meth:`matches` and the
        re-dijkstra's reset/seed/settle scans run as whole-array ops on
        vectorized rows.  Only called when numpy is importable.
        """
        arrays = self._arrays
        if arrays is None:
            np = kernel.np
            nodes_np = np.fromiter(self.nodes, np.int64, len(self.nodes))
            tail_np = nodes_np[1:]
            member_view = kernel.u8_view(self.member)
            seed_v = [v for v, _ in self.seed_items]
            lens = np.fromiter(
                (len(seed) for _, seed in self.seed_items),
                np.int64, len(seed_v),
            )
            flat_u: List[int] = []
            flat_w: List[float] = []
            for _, seed in self.seed_items:
                for w, u in seed:
                    flat_u.append(u)
                    flat_w.append(w)
            seed_u = np.fromiter(flat_u, np.int64, len(flat_u))
            seed_w = np.fromiter(flat_w, np.float64, len(flat_w))
            starts = np.zeros(len(seed_v), dtype=np.int64)
            if len(seed_v) > 1:
                np.cumsum(lens[:-1], out=starts[1:])
            seed_v_rep = (
                np.repeat(np.fromiter(seed_v, np.int64, len(seed_v)), lens)
                if len(seed_v) else seed_u
            )
            arrays = self._arrays = (
                tail_np, member_view, seed_u, seed_v_rep, nodes_np,
                seed_v, seed_w, starts, lens,
            )
        return arrays

    def solo_solve(self):
        """The region solved once from its single boundary node (cached).

        Only meaningful for bridge-detached regions (exactly one boundary
        node ``v0``): a Dijkstra over :attr:`inner` from ``dist[v0] = 0``
        whose acceptance order, final tree and *separation margin* let
        :meth:`apply_offset` replay the identical float additions per
        member row from the row's own seed distance.  Returns ``(order,
        margin, maxd, depth)`` where ``order`` lists ``(node, parent,
        edge_weight)`` in a topological order of the final tree, or
        ``None`` when the region is not offset-eligible (several
        boundary nodes, or an exact tie makes the margin zero).

        The margin is the smallest nonzero gap between any two candidate
        labels the solve ever computed: every comparison the per-row
        re-dijkstra makes is between two such labels, so a margin wider
        than the accumulated-rounding drift bound guarantees no
        comparison outcome can flip when the whole solve is re-run from a
        nonzero base -- float addition is monotone, so strict orders can
        only collapse, never invert, and the margin rules collapses out.
        A zero margin (an exact tie between distinct labels) disables the
        offset: two different summation paths that tie at base zero may
        round apart at a nonzero base.
        """
        solo = self._solo
        if solo is None:
            if len(self.seed_items) != 1:
                solo = self._solo = (None,)
                return None
            v0 = self.seed_items[0][0]
            inner = self.inner
            dist: Dict[int, float] = {v0: 0.0}
            parent: Dict[int, int] = {}
            depth: Dict[int, int] = {v0: 0}
            labels: List[float] = [0.0]
            heap: List[Tuple[float, int]] = [(0.0, v0)]
            push = heapq.heappush
            pop = heapq.heappop
            order: List[Tuple[int, int, float]] = []
            while heap:
                d, v = pop(heap)
                if d > dist[v]:
                    continue
                for w, u in inner[v]:
                    nd = d + w
                    labels.append(nd)
                    known = dist.get(u)
                    if known is None or nd < known:
                        dist[u] = nd
                        parent[u] = v
                        depth[u] = depth[v] + 1
                        push(heap, (nd, u))
            labels.sort()
            margin = INF
            for a, b in zip(labels, labels[1:]):
                gap = b - a
                if gap < margin:
                    margin = gap
                    if margin == 0.0:
                        break
            if margin == 0.0:
                # An exact tie between two independently-summed labels:
                # they may round apart once re-based, so no margin bound
                # can clear the offset replay.
                solo = self._solo = (None,)
                return None
            # Topological application order: sort members by final label
            # (parents settle strictly before children -- weights with a
            # zero-weight inner edge would tie, but a tie already zeroed
            # the margin above), tie-impossible hence deterministic.
            ordered = sorted(
                ((d, u) for u, d in dist.items() if u != v0)
            )
            for d, u in ordered:
                p = parent[u]
                for w, x in inner[u]:
                    if x == p and dist[p] + w == d:
                        order.append((u, p, w))
                        break
                else:  # pragma: no cover - tree edge always present
                    solo = self._solo = (None,)
                    return None
            maxd = max(dist.values())
            max_depth = max(depth.values())
            solo = self._solo = (order, margin, maxd, max_depth)
        return None if solo[0] is None else solo

    def apply_offset(self, dist, parent, settled, full) -> bool:
        """Repair one row's copy of this region by per-row offsets.

        The row-side half of the single-boundary shared solve: scan the
        lone boundary node's seed candidates exactly as the heap path
        would (first strict minimum over intact, settled-or-full
        neighbors), then -- if the solo margin survives the drift bound
        at this base -- replay the solo tree's additions ``dist[child] =
        dist[parent] + w`` in topological order, which is literally the
        same float expression sequence the per-row re-dijkstra evaluates.
        Returns ``False`` when the caller must fall back to heap seeding
        for this region (margin too small for this row's base, or no
        cached solo); the region's labels are untouched in that case
        (still at the caller's INF/-1 reset).
        """
        solo = self.solo_solve()
        if solo is None:
            return False
        order, margin, maxd, depth = solo
        v0, seed = self.seed_items[0]
        best = INF
        best_parent = -1
        for w, u in seed:
            if full or settled[u]:
                nd = dist[u] + w
                if nd < best:
                    best = nd
                    best_parent = u
        if best_parent < 0:
            # No intact boundary neighbor: the heap path would push
            # nothing and the whole region stays at the INF/-1 reset.
            return True
        drift = (
            (best + maxd) * _EPS * (_OFFSET_ULPS_PER_LEVEL * (depth + 1)
                                    + _OFFSET_ULPS_BASE)
        )
        if margin <= drift:
            return False
        dist[v0] = best
        parent[v0] = best_parent
        for u, p, w in order:
            dist[u] = dist[p] + w
            parent[u] = p
        return True

    @property
    def mask(self) -> int:
        """The member set as a big int (one byte per node, 0/1 values)."""
        if self._mask is None:
            self._mask = int.from_bytes(self.member, "little")
        return self._mask

    @property
    def reach_mask(self) -> int:
        """``mask`` extended by the boundary targets (adjacency closure)."""
        if self._reach_mask is None:
            reach = bytearray(self.member)
            for _, seed in self.seed_items:
                for _, u in seed:
                    reach[u] = 1
            self._reach_mask = int.from_bytes(reach, "little")
        return self._reach_mask


def _combine_regions(
    regions: List[_SharedRegion], n: int
) -> Tuple[bytearray, Optional[List]]:
    """Merge several shared regions into one read-only repair context.

    Returns ``(member, inner)``: the union membership bytearray (valid
    for any region combination, including nested subtrees) and, when the
    regions are pairwise disjoint *and* non-adjacent -- so no repair path
    can cross between them directly -- the merged region-internal
    adjacency; ``inner`` is ``None`` otherwise and the caller's
    re-dijkstra falls back to membership-tested full-adjacency scans.
    The adjacency test is one-sided on purpose: an edge between two
    regions appears in both boundaries, so accumulating ``reach_mask``
    and testing each next region's ``mask`` against it sees every
    offending pair.
    """
    union = 0
    for region in regions:
        union |= region.mask
    member = bytearray(union.to_bytes(n, "little"))
    acc = 0
    mergeable = True
    for region in regions:
        if acc & region.mask:
            mergeable = False
            break
        acc |= region.reach_mask
    inner = None
    if mergeable:
        inner = [None] * n
        for region in regions:
            region_inner = region.inner
            for v in region.nodes:
                inner[v] = region_inner[v]
    return member, inner


def _repair_row_shared(
    adjacency: List[Tuple[Tuple[float, int], ...]],
    row: "_Row",
    hits: List[_SharedRegion],
    walk_roots: Iterable[int],
    leafs: Iterable[Tuple[int, int]],
    union_cache: Dict,
    offset_ok: bool = False,
) -> List[int]:
    """Apply one plan's increase repairs using shared region structures.

    Bit-identical to :func:`_repair_row_planned` over ``hits``'s roots
    plus ``walk_roots``: the affected set is the union of the shared
    regions (verified to equal this row's subtrees) and the per-row walk
    of any unshared roots; seeding and the re-dijkstra perform the same
    value-ordered relaxations, reading boundary candidates from the
    shared seed lists instead of full adjacency scans.  Overlapping
    (nested-subtree) hits may seed a node twice -- idempotent, the
    second pass recomputes the same minimum from the same intact
    neighbors.  The returned affected list is shared and must be treated
    as read-only by the caller.

    ``offset_ok`` (the kernel tier's ``vectorized`` flag) additionally
    lets bridge-detached regions -- exactly one boundary node -- repair
    through :meth:`_SharedRegion.apply_offset`: the region is solved once
    and each row replays the solve's additions from its own boundary seed
    distance, skipping the per-row heap.  Only engaged when ``inner`` is
    shared (regions are independent islands, so removing one from the
    merged heap cannot perturb another), and only when the region's
    separation margin provably survives the re-based rounding -- every
    other case falls back to the heap path, so results stay
    bit-identical.  The reset, boundary-seed and settle scans also run as
    whole-array numpy ops on vectorized rows (same values: the scans are
    pure gathers/constant stores and the seed scan keeps the
    first-strict-minimum selection rule).
    """
    dist = row.dist
    parent = row.parent
    settled = row.settled
    full = row.full
    row.children = None
    n = len(dist)
    if not full and row.cutoff is None:
        row.cutoff = max(
            (dist[v] for v in range(n) if settled[v]), default=0.0
        )

    inner = None
    walked: List[int] = []
    if not walk_roots:
        if len(hits) == 1:
            region = hits[0]
            affect = region.member  # read-only
            inner = region.inner
        else:
            # Hits follow the plan's classification order, which is the
            # same for every row, so a plain tuple key hits the cache.
            key = tuple(map(id, hits))
            cached = union_cache.get(key)
            if cached is None:
                cached = _combine_regions(hits, n)
                union_cache[key] = cached
            affect, inner = cached  # read-only
    else:
        mask = 0
        for region in hits:
            mask |= region.mask
        affect = bytearray(mask.to_bytes(n, "little"))
        stack = []
        for r in walk_roots:
            if not affect[r]:
                affect[r] = 1
                stack.append(r)
        while stack:
            v = stack.pop()
            walked.append(v)
            for w, u in adjacency[v]:
                if parent[u] == v and not affect[u]:
                    affect[u] = 1
                    stack.append(u)

    np = kernel.np
    use_np = np is not None and isinstance(dist, array)
    if use_np:
        dview = kernel.f8_view(dist)
        pview = kernel.i8_view(parent)
        for region in hits:
            nodes_np = region.arrays()[4]
            dview[nodes_np] = INF
            pview[nodes_np] = -1
    else:
        for region in hits:
            for v in region.nodes:
                dist[v] = INF
                parent[v] = -1
    for v in walked:
        dist[v] = INF
        parent[v] = -1

    heap: List[Tuple[float, int]] = []
    push = heapq.heappush
    pop = heapq.heappop
    heap_hits = hits
    if offset_ok and inner is not None:
        # Bridge-detached regions solve once and replay per row; a region
        # whose margin check fails stays at the INF/-1 reset and falls
        # back to the ordinary heap seeding below.  Island independence
        # (``inner is not None`` means pairwise disjoint, non-adjacent
        # regions) makes the partition exact: the merged heap's
        # relaxations never cross regions, so removing one region's
        # entries cannot change any other's repair.
        heap_hits = []
        for region in hits:
            if len(region.seed_items) == 1 and region.apply_offset(
                dist, parent, settled, full
            ):
                continue
            heap_hits.append(region)
    if use_np and inner is not None:
        # Whole-array boundary seeding.  ``inner is not None`` guarantees
        # every seed target lies outside all regions (``not affect[u]``
        # is vacuously true), so the scan reduces to a masked gather plus
        # a first-strict-minimum per boundary segment -- exactly the
        # selection the scalar loop makes.
        sview = None if full else kernel.u8_view(settled)
        for region in heap_hits:
            arrays = region.arrays()
            seed_u, seed_v, seed_w, starts, lens = (
                arrays[2], arrays[5], arrays[6], arrays[7], arrays[8]
            )
            if not seed_v:
                continue
            vals = dview[seed_u] + seed_w
            if sview is not None:
                vals = np.where(sview[seed_u] != 0, vals, INF)
            mins = np.minimum.reduceat(vals, starts)
            size = vals.size
            firsts = np.minimum.reduceat(
                np.where(
                    vals == np.repeat(mins, lens), np.arange(size), size
                ),
                starts,
            )
            for k, v in enumerate(seed_v):
                best = mins[k]
                if best < INF:
                    best = float(best)
                    dist[v] = best
                    parent[v] = int(seed_u[firsts[k]])
                    push(heap, (best, v))
    else:
        for region in heap_hits:
            for v, seed in region.seed_items:
                best = INF
                best_parent = -1
                for w, u in seed:
                    if not affect[u] and (full or settled[u]):
                        nd = dist[u] + w
                        if nd < best:
                            best = nd
                            best_parent = u
                if best_parent >= 0:
                    dist[v] = best
                    parent[v] = best_parent
                    push(heap, (best, v))
    for v in walked:
        best = INF
        best_parent = -1
        for w, u in adjacency[v]:
            if not affect[u] and (full or settled[u]):
                nd = dist[u] + w
                if nd < best:
                    best = nd
                    best_parent = u
        if best_parent >= 0:
            dist[v] = best
            parent[v] = best_parent
            push(heap, (best, v))

    if inner is not None:
        while heap:
            d, v = pop(heap)
            if d > dist[v]:
                continue
            for w, u in inner[v]:
                nd = d + w
                if nd < dist[u]:
                    dist[u] = nd
                    parent[u] = v
                    push(heap, (nd, u))
    else:
        while heap:
            d, v = pop(heap)
            if d > dist[v]:
                continue
            for w, u in adjacency[v]:
                if affect[u]:
                    nd = d + w
                    if nd < dist[u]:
                        dist[u] = nd
                        parent[u] = v
                        push(heap, (nd, u))

    if not full:
        cutoff = row.cutoff
        if use_np:
            sview = kernel.u8_view(settled)
            for region in hits:
                nodes_np = region.arrays()[4]
                sview[nodes_np] = dview[nodes_np] <= cutoff
        else:
            for region in hits:
                for v in region.nodes:
                    settled[v] = 1 if dist[v] <= cutoff else 0
        for v in walked:
            settled[v] = 1 if dist[v] <= cutoff else 0

    for leaf, anchor in leafs:
        if affect[leaf]:
            continue  # swept into a region; repaired there
        d = dist[anchor]
        if d == INF:
            dist[leaf] = INF
            parent[leaf] = -1
        else:
            dist[leaf] = d + adjacency[leaf][0][0]

    if not walked and len(hits) == 1:
        return hits[0].nodes  # shared: read-only for the caller
    out = list(walked)
    for region in hits:
        out.extend(region.nodes)
    return out


class _Row:
    """One cached single-source result inside :class:`FrozenOracle`.

    ``stale`` marks a row that survived (was repaired by) an edge-cost
    patch.  Its distances are exact and its parent tree is a valid
    shortest-path tree under the *current* costs -- repair rebuilds every
    region a change can reach -- so both distance and path queries serve
    from it directly; only equal-cost tie-breaks may differ from what a
    cold rebuild would pick.  A stale row that no longer covers a queried
    target (a repair demoted it below the settle cutoff) is recomputed
    like a cold miss instead of being upgraded to a full row.
    """

    __slots__ = ("dist", "parent", "settled", "full", "stale", "cutoff",
                 "children", "used")

    def __init__(
        self,
        dist: List[float],
        parent: List[int],
        settled: Optional[bytearray],
        full: bool,
    ) -> None:
        self.dist = dist
        self.parent = parent
        self.settled = settled
        self.full = full
        self.stale = False
        #: Original settle frontier (early-stopped rows), filled lazily by
        #: the first repair.
        self.cutoff = None
        #: Per-node child lists of the parent tree, built lazily by the
        #: first repair and maintained across repairs.
        self.children = None
        #: Served since the last patch?  Rows idle across a whole patch
        #: interval are dropped rather than repaired -- dead rows (e.g. a
        #: past request's terminals) would otherwise be repaired forever.
        self.used = True


class FrozenOracle:
    """Caching shortest-path oracle with an interned fast core.

    API-compatible with :class:`~repro.graph.shortest_paths.DistanceOracle`
    (``graph``, ``distance``, ``path``, ``distances_from``, ``invalidate``).
    On small graphs it returns bit-identical distances *and* paths, because
    the underlying array Dijkstra replicates the dict implementation's
    relaxation order; on large graphs (>= :data:`CONTRACT_MIN_INTERIOR`
    contractible relay nodes) it switches to the degree-2-contracted core,
    which keeps distances exact but may pick a different -- equally short
    -- path when several shortest paths tie.

    The ``hot`` set names the nodes a workload will query repeatedly (for a
    SOF instance: sources, VMs and destinations).  Hot nodes are never
    contracted away, and uncontracted rows are computed with early
    termination once every hot node is settled.

    Undirected symmetry contract: ``distance(u, v) == distance(v, u)``, and
    the oracle is free to answer either direction from whichever row is
    cheapest to obtain.
    """

    def __init__(
        self,
        graph: Graph,
        hot: Optional[Iterable[Node]] = None,
        patchable: bool = False,
        planner: bool = True,
        share_regions: bool = True,
        topology_patch: bool = True,
        parallel_rows: int = 0,
        vectorized: bool = False,
        row_budget_bytes: Optional[int] = None,
        metrics: Optional[object] = None,
    ) -> None:
        self._graph = graph
        self._hot: set = set(hot) if hot is not None else set()
        #: Patchable oracles expect edge-cost churn: rows run to exhaustion
        #: instead of early-stopping at the hot set, so repairs never meet
        #: the settle frontier (no demotions, no cold re-misses).  Served
        #: values are bit-identical either way -- exhaustion only extends
        #: the relaxation sequence beyond the early stop point.
        self._patchable = patchable
        #: ``planner=True`` (the default) drives row repairs from a shared
        #: per-patch :class:`_PatchPlan`; ``planner=False`` keeps the
        #: historical per-row rescan repair as the equivalence reference.
        #: Served results are bit-identical either way.
        self._planner = planner
        #: ``share_regions=True`` (the default) lets dense planned patches
        #: repair rows grouped by detached region through shared
        #: :class:`_SharedRegion` structures; ``share_regions=False``
        #: keeps the per-row region rediscovery as the equivalence
        #: reference.  Served results are bit-identical either way.
        self._share_regions = share_regions
        #: ``topology_patch=True`` (the default) lets
        #: :meth:`patch_topology` repair cached state through the CSR
        #: tombstone machinery; ``topology_patch=False`` keeps
        #: invalidate-and-rebuild as the equivalence reference.  Served
        #: results are identical either way.
        self._topology_patch = topology_patch
        #: Kernel tier, piece 1: ``parallel_rows=N`` farms batches of
        #: independent row builds (:meth:`prefetch_rows`) and per-patch
        #: row repairs to an ``N``-worker fork pool.  Workers inherit the
        #: frozen CSR arrays by memory copy and ship back compact label
        #: payloads, merged in deterministic row order -- bit-identical
        #: to serial.  Fork-inheritance invariant: the pool is only ever
        #: created while the oracle is *consistent* (before any install,
        #: or after a patch plan is fully resolved and before any row is
        #: written), so a worker can never observe a mid-patch oracle.
        #: ``0``/``1`` (the default) keeps everything in-process;
        #: platforms without fork fall back serially with a one-time
        #: warning (:func:`repro.graph.kernel.fork_map`).
        self._parallel_rows = max(int(parallel_rows), 0)
        #: Kernel tier, piece 2: ``vectorized=True`` stores row labels in
        #: ``array('d')``/``array('q')`` buffers (same values bit for
        #: bit; scalar reads still yield plain floats/ints) so batch
        #: queries (:meth:`distances_to`, :meth:`detour_distances`) and
        #: the repair machinery's membership/boundary/settle scans run as
        #: zero-copy numpy whole-array ops -- with a stdlib-``array``
        #: scalar fallback when numpy is missing.  Also enables the
        #: single-boundary shared-region offset solve (see
        #: :meth:`_SharedRegion.apply_offset`).  ``False`` (the default)
        #: keeps plain-list rows and per-query serving: the bit-identical
        #: equivalence/bench reference, exactly as ``planner=`` /
        #: ``share_regions=`` / ``topology_patch=`` gate their layers.
        self._vectorized = bool(vectorized)
        #: Observability (PR 10): ``metrics=`` carries a
        #: :class:`~repro.obs.recorder.Recorder` that the instrumented
        #: seams (cold builds, patch repairs, fork batches, cache
        #: snapshots, batch queries) report into.  ``None`` (the
        #: default) and the falsy :data:`~repro.obs.recorder.NULL_RECORDER`
        #: keep every hot path on a single truthiness check --
        #: zero-overhead and bit-identical, the same flag-gated-reference
        #: discipline as the other knobs.  Recording never feeds back
        #: into algorithm state, so served values are identical either
        #: way.
        self._metrics = metrics if metrics else None
        if self._metrics is not None and getattr(
            self._metrics, "registry", None
        ) is not None:
            # Region-share group sizes are row counts, not durations;
            # give their histogram size-flavoured buckets.
            self._metrics.registry.declare_histogram(
                "oracle.repair.share_group_rows",
                (1, 4, 16, 64, 256, 1024, 4096),
            )
        #: Canonical node pairs currently tombstoned in the built cores.
        #: A removed edge's CSR slots persist at weight ``inf``, so an
        #: edge may only be (re)inserted while its slots still exist --
        #: i.e. while its pair is recorded here.
        self._tombstones: set = set()
        self._core: Optional[IndexedGraph] = None
        self._contracted: Optional[_ContractedCore] = None
        self._built = False
        self._hot_ids: List[int] = []
        #: The row store (:class:`~repro.graph.rowcache.RowCache`): owns
        #: per-row byte accounting and every eviction policy -- the
        #: idle-at-patch drop, unbounded-repair drops and cost-aware
        #: budget eviction under ``row_budget_bytes``.  ``None`` (the
        #: default) keeps today's unbounded behavior bit-identically;
        #: with a budget, residency is enforced at the oracle's
        #: consistency boundaries (after each row install, at the end of
        #: each patch), so a budgeted oracle serves the same values and
        #: only residency/recompute work differ.
        self._rows: RowCache = RowCache(row_budget_bytes)
        self._rows.on_evict = self._deregister_row
        #: Inverted tree-edge index for the planner: canonical id pair ->
        #: set of cached-row sources whose parent tree (possibly) uses the
        #: pair as a tree edge.  Lazily maintained: built only once the
        #: workload proves sparse (see :data:`PLANNER_INDEX_MIN_ROWS`),
        #: dropped again when patches start touching most rows, and kept
        #: as an over-approximation in between -- entries are added
        #: eagerly when trees gain an edge and pruned opportunistically
        #: when a changed pair is looked up, so a stale entry costs one
        #: parent check, while a missing entry would skip a required
        #: repair and is never allowed.  Superset invariant: while the
        #: index is live, every tree edge of every cached row has an
        #: entry.  Three paths uphold it: in-place repairs register the
        #: affected nodes' new parents, every row-*replacing* recompute
        #: goes through :meth:`_install_row` (which registers the new
        #: tree immediately), and :meth:`_reconcile_tree_index` catches
        #: up wholesale at the start of each indexed patch.
        self._tree_index: Optional[Dict[Tuple[int, int], set]] = None
        #: Rows already registered in ``_tree_index``, by identity --
        #: a replaced ``_Row`` object is re-registered on reconcile.
        self._indexed: Dict[int, _Row] = {}
        #: Consecutive planned patches that repaired at most a quarter of
        #: the live rows -- the build trigger for the tree-edge index.
        self._index_low_hits = 0
        self._slow_rows: Dict[Node, Tuple[Dict[Node, float], Dict[Node, Node]]] = {}
        #: Per-node query counters.  A ``Counter`` rather than a plain
        #: dict so the batched entry points can bump a whole target list
        #: with one C-speed ``update`` -- reads stay dict-compatible.
        self._queries: Counter = Counter()
        self._paths: Dict[Tuple[Node, Node], List[Node]] = {}

    @property
    def graph(self) -> Graph:
        """The underlying graph (must not be mutated while cached)."""
        return self._graph

    @property
    def parallel_rows(self) -> int:
        """Worker count of the kernel tier's fork pool (0/1 = serial)."""
        return self._parallel_rows

    @property
    def vectorized(self) -> bool:
        """Whether rows use the kernel tier's array label buffers."""
        return self._vectorized

    @property
    def row_budget_bytes(self) -> Optional[int]:
        """Row-cache residency budget in bytes (``None`` = unbounded)."""
        return self._rows.budget_bytes

    @property
    def metrics(self):
        """The attached recorder, or ``None`` when observability is off."""
        return self._metrics

    def _tree_index_bytes(self) -> int:
        """Estimated residency of the inverted pair->rows tree-edge index."""
        index = self._tree_index
        if index is None:
            return 0
        return 64 * len(index) \
            + 8 * sum(len(bucket) for bucket in index.values())

    def cache_snapshot(self, scope: str = "oracle") -> Dict[str, Optional[int]]:
        """Unified cache snapshot (schema ``sof-cache-stats/1``).

        The :meth:`RowCache.stats` counters (rows resident, accounted
        bytes, peak, hits/misses, evictions by policy, budget
        overshoots) plus ``tree_index_bytes`` -- the inverted
        pair->rows tree-edge index, which the oracle owns outside the
        per-row budget because the adaptive index policy already builds
        and drops it wholesale by patch density -- tagged with the
        schema version and the reporting ``scope``.  The documented
        shape every layer shares: see :mod:`repro.obs` for the full key
        table.  When a recorder is attached, the same numbers are also
        folded into the registry as ``<scope>.cache.*`` gauges.
        """
        stats = self._rows.stats()
        stats["tree_index_bytes"] = self._tree_index_bytes()
        mx = self._metrics
        if mx:
            self._publish_cache(mx, scope)
        stats["schema"] = "sof-cache-stats/1"
        stats["scope"] = scope
        return stats

    def cache_stats(self) -> Dict[str, Optional[int]]:
        """Thin alias of :meth:`cache_snapshot` (the pre-PR-10 name)."""
        return self.cache_snapshot()

    def _publish_cache(self, mx, scope: str = "oracle") -> None:
        """Fold the cache counters into the registry as gauges."""
        self._rows.publish(mx, prefix=f"{scope}.cache")
        mx.gauge(f"{scope}.cache.tree_index_bytes", self._tree_index_bytes())

    def _deregister_row(self, source_id: int, row: _Row) -> None:
        """Shed an evicted row's tree-edge index registrations.

        The :class:`RowCache` eviction callback, shared by every drop
        policy: without it, buckets on never-re-patched pairs would
        accumulate dead sids for the lifetime of the index (long
        simulators evict thousands of per-request rows).  Entries from
        pre-repair trees of the row may survive this walk; they are
        pruned opportunistically at lookup.  No-op while the index is
        down (the common case).
        """
        if self._indexed.pop(source_id, None) is None:
            return
        index = self._tree_index
        if index is None:
            return
        for v, p in enumerate(row.parent):
            if p >= 0:
                bucket = index.get((v, p) if v < p else (p, v))
                if bucket is not None:
                    bucket.discard(source_id)

    def _freeze_row(self, dist, parent, settled, full) -> _Row:
        """Wrap freshly-computed labels in a row, in the configured store.

        The single chokepoint between the Dijkstra cores (which always
        produce plain lists) and the cache: ``vectorized`` oracles
        convert to ``array('d')``/``array('q')`` buffers here, so every
        cached row is uniformly typed and the repair/query layers can
        dispatch on one ``isinstance`` check.  Values are identical
        either way -- the buffers store the same 64-bit doubles/ints.
        """
        if self._vectorized and not isinstance(dist, array):
            dist = kernel.dist_buffer(dist)
            parent = kernel.parent_buffer(parent)
        return _Row(dist, parent, settled, full)

    def _build(self) -> None:
        if self._built:
            return
        mx = self._metrics
        t0 = mx.clock() if mx else 0.0
        if self._hot and _costs_mostly_distinct(self._graph):
            contracted = _ContractedCore(self._graph, self._hot)
            if len(contracted.interior) >= CONTRACT_MIN_INTERIOR:
                self._contracted = contracted
        if self._contracted is None:
            self._core = IndexedGraph.from_graph(self._graph)
            index = self._core.index
            self._hot_ids = [index[n] for n in self._hot if n in index]
        self._built = True
        if mx:
            mx.span(
                "oracle.build", t0,
                kind="contracted" if self._contracted is not None else "core",
            )

    @property
    def core(self) -> IndexedGraph:
        """The uncontracted interned core (built on demand)."""
        if self._core is None:
            self._core = IndexedGraph.from_graph(self._graph)
            if self._contracted is None:
                index = self._core.index
                self._hot_ids = [index[n] for n in self._hot if n in index]
            self._built = True
        return self._core

    @property
    def contracted(self) -> Optional[_ContractedCore]:
        """The contracted core, or ``None`` when contraction is inactive."""
        self._build()
        return self._contracted

    def warm(self, nodes: Iterable[Node]) -> None:
        """Precompute rows for ``nodes`` (one Dijkstra each, cached).

        Sweeps that will query *from or to* every node of a set should
        warm it first: afterwards any ``distance`` query touching the set
        is served from an existing row by undirected symmetry.
        """
        self.prefetch_rows(nodes)

    def prefetch_rows(self, nodes: Iterable[Node]) -> None:
        """Precompute rows for ``nodes``, farming cold builds when allowed.

        Identical contract and resulting cache state as :meth:`warm` --
        cached rows are touched (``used``), missing rows are built and
        installed in the callers' node order -- but with
        ``parallel_rows > 1`` a batch of at least
        :data:`PARALLEL_MIN_BATCH` cold rows is built on the fork pool:
        each row is an independent Dijkstra over the frozen (inherited)
        CSR arrays, so worker results are bit-identical to in-process
        builds and only the deterministic install order matters.  Callers
        that know their working set up front
        (:meth:`~repro.core.problem.SOFInstance.metric_block`, the online
        simulator's VM-pool warms) route here so cold batches are
        discoverable.  Safe by the fork-inheritance invariant: this
        method only runs between patches, never during one, so workers
        always inherit a consistent oracle.
        """
        self._build()
        if self._contracted is not None:
            index = self._contracted.index
            missing: List[int] = []
            seen: set = set()
            for node in nodes:
                cid = index.get(node)
                if cid is None:
                    continue
                row = self._rows.get(cid)
                if row is None:
                    if cid not in seen:
                        seen.add(cid)
                        missing.append(cid)
                else:
                    row.used = True
            if len(missing) >= PARALLEL_MIN_BATCH and self._parallel_rows > 1:
                mx = self._metrics
                t0 = mx.clock() if mx else 0.0
                payloads = kernel.fork_map(
                    self._cold_contracted_payload, missing,
                    self._parallel_rows, label="prefetch_rows",
                    metrics=mx,
                )
                for cid, payload in zip(missing, payloads):
                    row = self._freeze_row(*payload)
                    self._install_row(cid, row)
                    row.used = True
                if mx:
                    mx.inc("oracle.rows.cold", len(missing))
                    mx.span("oracle.prefetch", t0, mode="fork",
                            trace_args={"rows": len(missing)})
            else:
                for cid in missing:
                    self._contracted_row(cid)
            return
        index = self.core.index
        missing = []
        seen = set()
        for node in nodes:
            node_id = index.get(node)
            if node_id is None:
                continue
            row = self._rows.get(node_id)
            if row is None:
                if node_id not in seen:
                    seen.add(node_id)
                    missing.append(node_id)
            else:
                row.used = True
        if len(missing) >= PARALLEL_MIN_BATCH and self._parallel_rows > 1:
            mx = self._metrics
            t0 = mx.clock() if mx else 0.0
            payloads = kernel.fork_map(
                self._cold_row_payload, missing,
                self._parallel_rows, label="prefetch_rows",
                metrics=mx,
            )
            for node_id, payload in zip(missing, payloads):
                row = self._freeze_row(*payload)
                self._install_row(node_id, row)
            if mx:
                mx.inc("oracle.rows.cold", len(missing))
                mx.span("oracle.prefetch", t0, mode="fork",
                        trace_args={"rows": len(missing)})
        else:
            for node_id in missing:
                self._compute(node_id, None)

    def _cold_contracted_payload(self, cid: int):
        """One contracted cold row as a compact payload (pool worker)."""
        dist, parent = self._contracted.dijkstra(cid)
        if self._vectorized:
            dist = kernel.dist_buffer(dist)
            parent = kernel.parent_buffer(parent)
        return dist, parent, None, True

    def _cold_row_payload(self, source_id: int):
        """One uncontracted cold row as a compact payload (pool worker).

        Mirrors :meth:`_compute` with no target: early-stopped at the hot
        set on non-patchable oracles, exhaustive otherwise.  Buffers are
        converted worker-side so the pipe carries compact arrays.
        """
        core = self._core
        if self._hot_ids and not self._patchable:
            dist, parent, settled, exhausted = core.dijkstra(
                source_id, self._hot_ids
            )
            full = exhausted
        else:
            dist, parent, settled, _ = core.dijkstra(source_id)
            full = True
        if self._vectorized:
            dist = kernel.dist_buffer(dist)
            parent = kernel.parent_buffer(parent)
        return dist, parent, settled, full

    def extend_hot(self, nodes: Iterable[Node]) -> None:
        """Add nodes to the hot set (affects future row computations).

        If a newly hot node was contracted away, the core is rebuilt so
        the node becomes a first-class anchor again.
        """
        fresh = set(nodes) - self._hot
        if not fresh:
            return
        self._hot |= fresh
        if not self._built:
            return
        if self._contracted is not None:
            if any(n in self._contracted.interior for n in fresh):
                self.invalidate()
            return
        index = self._core.index
        # Sorted so the target list is hash-seed-independent; dijkstra
        # flattens targets into per-id flags, so order never reaches rows.
        self._hot_ids.extend(sorted(index[n] for n in fresh if n in index))

    def invalidate(self) -> None:
        """Drop all cached state (call after mutating the graph)."""
        self._core = None
        self._contracted = None
        self._built = False
        self._tombstones.clear()
        self._hot_ids = []
        self._rows.clear()
        self._tree_index = None
        self._indexed.clear()
        self._index_low_hits = 0
        self._slow_rows.clear()
        self._queries.clear()
        self._paths.clear()

    # ------------------------------------------------------------------
    # incremental edge-cost patching
    # ------------------------------------------------------------------
    def patch_edge_costs(
        self, changed: Mapping[Tuple[Node, Node], float]
    ) -> int:
        """Apply pure edge-*cost* updates without a full rebuild.

        ``changed`` maps ``(u, v)`` pairs to new costs.  Pairs are
        deduplicated by canonical edge key first: a batch naming the same
        edge twice (typically once per orientation) applies only the
        *last* mapping-order entry -- the same last-write-wins rule a
        caller looping ``graph.add_edge`` would get -- so the batch can
        never double-patch CSR weights or hand the repair plan two
        contradictory ``old`` costs for one edge.  Every pair must
        already be an edge: topology changes still require
        :meth:`invalidate`.  New costs are written into the underlying
        graph, the CSR weight arrays and contracted chain weights are
        patched in place, and cached rows are *repaired*
        (Ramalingam--Reps style: only the region below a changed tree
        edge or reachable from a decreased edge is recomputed) instead
        of recomputed from scratch; a row is evicted only when its repair
        cannot be bounded (an improving decrease against an early-stopped
        row).  With ``planner=True`` (the default) the changed batch is
        classified once per patch into a shared :class:`_PatchPlan` that
        drives every row's repair; ``planner=False`` keeps the historical
        per-row rescans, bit-identically.

        Returns the number of (deduplicated) edges whose cost actually
        changed.
        """
        graph = self._graph
        merged: Dict[Tuple[Node, Node], Tuple[Node, Node, float]] = {}
        for (u, v), cost in changed.items():
            merged[canonical_edge(u, v)] = (u, v, float(cost))
        # Validate the whole batch before writing anything: a missing edge
        # or an invalid cost must not leave the graph half-mutated with
        # the oracle unpatched.  ``not (cost >= 0.0)`` catches NaN too --
        # every comparison against NaN is False, so it would otherwise
        # slip through the ``cost != old`` gate and poison CSR weights.
        applied: List[Tuple[Node, Node, float, float]] = []
        for u, v, cost in merged.values():
            if not (cost >= 0.0) or math.isinf(cost):
                raise ValueError(
                    f"edge cost must be finite and non-negative, got "
                    f"{cost!r} for edge ({u!r}, {v!r})"
                )
            old = graph.cost(u, v)
            if cost != old:
                applied.append((u, v, old, cost))
        for u, v, _, cost in applied:
            graph.add_edge(u, v, cost)
        if not applied or not self._built:
            # Unbuilt oracles carry no interned core or rows yet: the
            # graph now holds the patched costs, and the eventual
            # ``_build`` (and its contraction/continuity probes) reads
            # them from there, exactly as if the oracle had been
            # constructed over the patched graph.
            return len(applied)
        # Exact-but-uncached side caches cannot be patched selectively, and
        # the row-root heuristic counts are reset exactly as a rebuild
        # would, so both paths grow the same row set afterwards.
        mx = self._metrics
        t0 = mx.clock() if mx else 0.0
        self._slow_rows.clear()
        self._paths.clear()
        self._queries.clear()
        if self._contracted is not None:
            pair_updates = self._contracted.patch_edges(
                (u, v, cost) for u, v, _, cost in applied
            )
            self._patch_rows(self._contracted.rows, pair_updates)
            if self._core is not None:
                index = self._core.index
                self._core.patch_edges(
                    (index[u], index[v], cost) for u, v, _, cost in applied
                )
        else:
            index = self._core.index
            id_changes = [
                (index[u], index[v], old, cost) for u, v, old, cost in applied
            ]
            self._core.patch_edges(
                (a, b, cost) for a, b, _, cost in id_changes
            )
            self._patch_rows(self._core._rows, id_changes)
        if mx:
            mx.inc("oracle.patch.edges", len(applied))
            mx.span("oracle.patch.costs", t0,
                    trace_args={"edges": len(applied)})
            self._publish_cache(mx)
        return len(applied)

    # ------------------------------------------------------------------
    # incremental edge-topology patching (link failure / recovery)
    # ------------------------------------------------------------------
    def insertable(self, u: Node, v: Node) -> bool:
        """Can ``patch_topology(inserted={(u, v): ...})`` apply in place?

        True while the oracle is unbuilt (the build reads the mutated
        graph) or in ``topology_patch=False`` reference mode (inserts
        invalidate anyway), and otherwise only when the edge holds a
        tombstoned CSR slot from an earlier removal -- the frozen core
        cannot grow slots for brand-new edges, so reviving an edge that
        died *before* the first build needs an :meth:`invalidate`.
        """
        if not self._built or not self._topology_patch:
            return True
        return canonical_edge(u, v) in self._tombstones

    def patch_topology(
        self,
        removed: Iterable[Tuple[Node, Node]] = (),
        inserted: Optional[Mapping[Tuple[Node, Node], float]] = None,
    ) -> int:
        """Remove and/or (re)insert edges without a full rebuild.

        ``removed`` names existing edges to delete; ``inserted`` maps
        ``(u, v)`` pairs to the cost of edges to (re)insert.  Both are
        canonicalised and deduplicated first (last write wins for
        ``inserted``, exactly as :meth:`patch_edge_costs`); a pair in
        both collections is rejected.  The whole batch is validated
        before anything mutates -- a bad entry leaves graph and oracle
        untouched.

        With ``topology_patch=True`` (the default) the built cores are
        edited through a *tombstone mask*: a removed edge's CSR slots
        persist at weight ``inf`` (node ids and row arrays stay stable)
        while the search-facing adjacency drops the entry, so cached rows
        repair through the ordinary increase machinery -- the detached
        region reconnects through surviving edges or legitimately ends
        *unreachable* (``dist=inf``, parent cleared).  Reinsertion is a
        decrease-from-infinity over the same slots, and therefore -- on a
        built oracle -- requires the pair to be a previously removed
        (tombstoned) edge: the frozen CSR cannot grow new slots.  In the
        contracted core a failed chain edge poisons its chain's prefix
        sums and kept candidate to ``inf`` locally; no global
        recontraction runs.  Removal-driven region repairs bypass the
        planner's degree-1 leaf fast path (an endpoint's *surviving*
        degree says nothing about the dead edge), always taking the
        general boundary re-seeding.

        With ``topology_patch=False`` the graph is mutated and every
        cache dropped (:meth:`invalidate`) -- the bit-identical
        equivalence reference, exactly as ``planner=`` /
        ``share_regions=`` gate their layers.

        Returns the number of applied topology changes.
        """
        graph = self._graph
        # (``insertable`` answers whether an insert can apply without a
        # rebuild -- callers that may revive edges removed before the
        # first build should check it and fall back to invalidate.)
        dead: Dict[Tuple[Node, Node], Tuple[Node, Node]] = {}
        for u, v in removed:
            dead.setdefault(canonical_edge(u, v), (u, v))
        born: Dict[Tuple[Node, Node], Tuple[Node, Node, float]] = {}
        if inserted:
            for (u, v), cost in inserted.items():
                born[canonical_edge(u, v)] = (u, v, float(cost))
        overlap = dead.keys() & born.keys()
        if overlap:
            raise ValueError(
                f"edges named as both removed and inserted: {sorted(overlap, key=repr)!r}"
            )
        # Validate the whole batch before writing anything.
        removals: List[Tuple[Node, Node, float]] = []
        for key, (u, v) in dead.items():
            removals.append((u, v, graph.cost(u, v)))  # KeyError if absent
        patch_live = self._built and self._topology_patch
        for key, (u, v, cost) in born.items():
            if not (cost >= 0.0) or math.isinf(cost):
                raise ValueError(
                    f"edge cost must be finite and non-negative, got "
                    f"{cost!r} for edge ({u!r}, {v!r})"
                )
            if graph.has_edge(u, v):
                raise ValueError(
                    f"({u!r}, {v!r}) is already an edge; use "
                    f"patch_edge_costs for cost changes"
                )
            if patch_live and key not in self._tombstones:
                raise ValueError(
                    f"({u!r}, {v!r}) was never removed from this oracle: "
                    f"the frozen CSR core cannot grow new edge slots "
                    f"(invalidate() to rebuild over new topology)"
                )
        if not removals and not born:
            return 0
        for u, v, _ in removals:
            graph.remove_edge(u, v)
        for u, v, cost in born.values():
            graph.add_edge(u, v, cost)
        count = len(removals) + len(born)
        if not self._built:
            # The eventual ``_build`` reads the mutated graph directly.
            return count
        if not self._topology_patch:
            self.invalidate()
            return count
        mx = self._metrics
        t0 = mx.clock() if mx else 0.0
        for key in dead:
            self._tombstones.add(key)
        for key in born:
            self._tombstones.discard(key)
        self._slow_rows.clear()
        self._paths.clear()
        self._queries.clear()
        if self._contracted is not None:
            pair_updates = self._contracted.patch_edges(
                [(u, v, INF) for u, v, _ in removals]
                + [(u, v, cost) for u, v, cost in born.values()]
            )
            plan = _PatchPlan(self._contracted.rows, pair_updates)
            # Force the general region repair: the leaf classification
            # reads *surviving* degrees, which misattribute a removed
            # pair's repair to the wrong (still-live) edge.
            plan._classified = [(a, b, -1) for a, b in plan.increases]
            self._patch_rows(self._contracted.rows, pair_updates, plan=plan)
            if self._core is not None:
                index = self._core.index
                self._core.remove_edges(
                    (index[u], index[v]) for u, v, _ in removals
                )
                self._core.restore_edges(
                    (index[u], index[v], cost)
                    for u, v, cost in born.values()
                )
        else:
            index = self._core.index
            self._core.remove_edges(
                (index[u], index[v]) for u, v, _ in removals
            )
            self._core.restore_edges(
                (index[u], index[v], cost) for u, v, cost in born.values()
            )
            id_changes = [
                (index[u], index[v], old, INF) for u, v, old in removals
            ] + [
                (index[u], index[v], INF, cost)
                for u, v, cost in born.values()
            ]
            plan = _PatchPlan(self._core._rows, id_changes)
            plan._classified = [(a, b, -1) for a, b in plan.increases]
            self._patch_rows(self._core._rows, id_changes, plan=plan)
        if mx:
            mx.inc("oracle.patch.topology_changes", count)
            mx.span("oracle.patch.topology", t0, trace_args={
                "removed": len(removals), "inserted": len(born),
            })
            self._publish_cache(mx)
        return count

    def _patch_rows(
        self,
        adjacency: List[Tuple[Tuple[float, int], ...]],
        changes: Iterable[Tuple[int, int, float, float]],
        plan: Optional[_PatchPlan] = None,
    ) -> None:
        """Repair (or evict) every cached row after a weight-change batch.

        ``changes`` holds ``(a, b, old_w, new_w)`` in the active core's id
        space; ``adjacency`` is that core's already-patched per-node rows.
        Rows whose repair cannot be bounded are dropped; every survivor is
        marked :attr:`_Row.stale`: its distances and tree are exact under
        the new costs, with tie-breaks possibly differing from a cold
        rebuild's.

        With the planner (the default), a pure-increase batch -- the whole
        online workload, where loads only grow -- is classified once into
        a shared :class:`_PatchPlan` and only rows that actually use a
        changed edge as a tree edge are repaired.  Those rows are found
        through the inverted tree-edge index while the workload is sparse
        (most patches miss most rows) and through one cheap scan pass
        otherwise -- see :data:`PLANNER_INDEX_MIN_ROWS` for the adaptive
        policy.  Batches carrying a decrease fall back to the per-row
        reference repair: a decrease moves parents mid-repair, so root
        classification stops being row-independent.  ``planner=False``
        always takes the per-row path.

        With ``share_regions=True`` (the default), detached roots dense
        enough to clear :data:`PLANNER_SHARE_MIN_ROWS` /
        :data:`PLANNER_SHARE_DENSITY` get per-patch shared-region groups:
        member rows verify against (instead of rediscovering) the
        detached region and repair through
        :func:`_repair_row_shared`, bit-identically to the per-row
        planned path.
        """
        if plan is None:
            plan = _PatchPlan(adjacency, changes)
        increases = plan.increases
        decreases = plan.decreases
        if not increases and not decreases:
            return
        mx = self._metrics
        t0 = mx.clock() if mx else 0.0
        rows = self._rows
        if not self._planner or decreases:
            if self._planner:
                # The per-row reference repair moves parents without
                # telling the index; drop it and require a fresh sparse
                # streak, or a workload alternating mixed and pure
                # -increase patches would pay a wholesale index rebuild
                # on every planned patch.
                self._tree_index = None
                self._indexed.clear()
                self._index_low_hits = 0
            for source_id, row in list(rows.items()):
                if not row.used:
                    # Idle for a whole patch interval: recompute on demand
                    # (exactly the rebuild path) instead of repairing
                    # forever.
                    rows.evict(source_id, "idle")
                elif _repair_row(adjacency, row, increases, decreases):
                    row.stale = True
                    row.used = False
                    if mx:
                        mx.inc("oracle.repair.rows", path="reference")
                else:
                    rows.evict(source_id, "repair")
            rows.enforce()
            if mx:
                mx.span("oracle.repair", t0, mode="reference")
            return

        # Planned pure-increase patch: classify once, then repair only the
        # rows the plan names.  The index engages only after a streak of
        # sparse patches (see the module constants): one-shot patches (a
        # ``rebased`` clone's) and dense workloads -- e.g. the online
        # simulator's VM attachment edges, which sit in every row's tree
        # -- classify with a single scan pass instead, which costs
        # O(rows x changes) against the index's O(rows x nodes) build.
        general_roots: Dict[int, List[int]] = {}
        leaf_jobs: Dict[int, List[Tuple[int, int]]] = {}
        index: Optional[Dict[Tuple[int, int], set]] = None
        if (
            self._tree_index is not None
            or self._index_low_hits >= PLANNER_INDEX_BUILD_STREAK
        ):
            index = self._reconcile_tree_index()
            indexed = self._indexed
            for a, b, leaf in plan.classified:
                key = (a, b) if a < b else (b, a)
                candidates = index.get(key)
                if not candidates:
                    continue
                verified = set()
                for sid in candidates:
                    row = rows.get(sid)
                    if row is None or indexed.get(sid) is not row:
                        continue  # stale entry for an evicted/replaced row
                    if not row.used:
                        continue  # evicted below, before any repair
                    if _route_tree_edge(
                        row, sid, a, b, leaf, general_roots, leaf_jobs
                    ):
                        verified.add(sid)
                # Write back the verified set: opportunistic pruning keeps
                # the over-approximation from accumulating dead entries on
                # the repeatedly-changed (hot) pairs.
                index[key] = verified
        else:
            classified = plan.classified
            for sid, row in rows.items():
                if not row.used:
                    continue
                for a, b, leaf in classified:
                    _route_tree_edge(
                        row, sid, a, b, leaf, general_roots, leaf_jobs
                    )

        # Dense-patch region sharing: a root detaching the same region in
        # many rows gets a per-patch group whose structures every member
        # row reuses.  Groups are scoped to this patch -- their cached
        # boundary/internal weights go stale at the next weight change.
        share_groups: Optional[Dict[int, List[_SharedRegion]]] = None
        union_cache: Optional[Dict] = None
        if self._share_regions and general_roots:
            live_rows = sum(1 for row in rows.values() if row.used)
            counts: Dict[int, int] = {}
            for roots in general_roots.values():
                # dict.fromkeys dedups a row's roots in first-appearance
                # order (set order would be hash-bucket order).
                for c in dict.fromkeys(roots):
                    counts[c] = counts.get(c, 0) + 1
            threshold = max(
                PLANNER_SHARE_MIN_ROWS, PLANNER_SHARE_DENSITY * live_rows
            )
            dense = [c for c, k in counts.items() if k >= threshold]
            if dense:
                share_groups = {c: [] for c in dense}
                union_cache = {}
                if mx:
                    # Region-share group sizes: rows per dense root.
                    for c in dense:
                        mx.observe("oracle.repair.share_group_rows", counts[c])

        live = 0
        repaired = 0
        offset_ok = self._vectorized

        jobs: Optional[List[Tuple]] = None
        if self._parallel_rows > 1:
            touched = set(general_roots) | set(leaf_jobs)
            candidates = sum(
                1 for sid in touched
                if sid in rows and rows[sid].used
            )
            if candidates >= PARALLEL_MIN_REPAIRS:
                jobs = []

        if jobs is not None:
            # Parallel repairs, two passes.  Pass 1 evicts idle rows and
            # resolves every row's shared-region hits *serially* (variant
            # founding is order-dependent and must match the serial
            # path's rows-iteration order); no row label is written yet.
            # The fork therefore happens with the oracle fully consistent
            # -- plan resolved, rows pristine -- upholding the
            # fork-inheritance invariant.  Pass 2 farms the independent
            # per-row repairs out, then merges the compact label payloads
            # back in deterministic job order, so the resulting rows are
            # bit-identical to the serial branch below.
            for sid, row in list(rows.items()):
                if not row.used:
                    rows.evict(sid, "idle")
                    continue
                live += 1
                roots = general_roots.get(sid)
                leafs = leaf_jobs.get(sid)
                if roots or leafs:
                    repaired += 1
                    hits: List[_SharedRegion] = []
                    walk_roots: List[int] = []
                    if share_groups is not None and roots:
                        hits, walk_roots = self._resolve_shared(
                            adjacency, row, roots, share_groups
                        )
                    jobs.append((sid, row, hits, walk_roots, roots, leafs))
                    if mx:
                        mx.inc("oracle.repair.rows",
                               path="shared" if hits else "planned",
                               dispatch="fork")
                else:
                    row.stale = True
                    row.used = False

            def _repair_job(j: int):
                sid, row, hits, walk_roots, roots, leafs = jobs[j]
                if hits:
                    affected = _repair_row_shared(
                        adjacency, row, hits, walk_roots, leafs or (),
                        union_cache, offset_ok=offset_ok,
                    )
                else:
                    affected = _repair_row_planned(
                        adjacency, row, roots or (), leafs or ()
                    )
                dist = row.dist
                parent = row.parent
                settled = row.settled
                n_affected = len(affected)
                ids = list(affected)
                svals = (
                    None if row.full or settled is None
                    else bytes(settled[v] for v in ids)
                )
                if leafs:
                    # Leaf fast jobs write labels outside the affected
                    # region list; ship them too (idempotent overlap).
                    ids.extend(leaf for leaf, _ in leafs)
                dvals = array("d", (dist[v] for v in ids))
                pvals = array("q", (parent[v] for v in ids))
                return n_affected, ids, dvals, pvals, svals, row.cutoff

            payloads = kernel.fork_map(
                _repair_job, range(len(jobs)), self._parallel_rows,
                label="patch_rows", metrics=mx,
            )
            t_merge = mx.clock() if mx else 0.0
            for job, payload in zip(jobs, payloads):
                sid, row = job[0], job[1]
                n_affected, ids, dvals, pvals, svals, cutoff = payload
                dist = row.dist
                parent = row.parent
                for i, v in enumerate(ids):
                    dist[v] = dvals[i]
                    parent[v] = pvals[i]
                if svals is not None:
                    settled = row.settled
                    for i in range(n_affected):
                        settled[ids[i]] = svals[i]
                row.cutoff = cutoff
                row.children = None
                if index is not None and n_affected:
                    for i in range(n_affected):
                        v = ids[i]
                        p = parent[v]
                        if p >= 0:
                            _index_add(index, v, p, sid)
                row.stale = True
                row.used = False
            if mx:
                mx.span("oracle.fork.merge", t_merge,
                        trace_args={"jobs": len(jobs)})
        else:
            for sid, row in list(rows.items()):
                if not row.used:
                    rows.evict(sid, "idle")
                    continue
                live += 1
                roots = general_roots.get(sid)
                leafs = leaf_jobs.get(sid)
                if roots or leafs:
                    repaired += 1
                    hits = []
                    walk_roots = []
                    if share_groups is not None and roots:
                        hits, walk_roots = self._resolve_shared(
                            adjacency, row, roots, share_groups
                        )
                    if hits:
                        affected = _repair_row_shared(
                            adjacency, row, hits, walk_roots, leafs or (),
                            union_cache, offset_ok=offset_ok,
                        )
                    else:
                        affected = _repair_row_planned(
                            adjacency, row, roots or (), leafs or ()
                        )
                    if mx:
                        mx.inc("oracle.repair.rows",
                               path="shared" if hits else "planned")
                    if index is not None and affected:
                        parent = row.parent
                        for v in affected:
                            p = parent[v]
                            if p >= 0:
                                _index_add(index, v, p, sid)
                row.stale = True
                row.used = False

        # Adaptive index policy: keep the index only while patches repair
        # a minority of the live rows; arm a build only after a streak of
        # sparse patches over a row set worth indexing.
        if index is not None:
            if repaired * 2 >= live:
                self._tree_index = None
                self._indexed.clear()
                self._index_low_hits = 0
        elif live >= PLANNER_INDEX_MIN_ROWS and repaired * 4 <= live:
            self._index_low_hits += 1
        else:
            self._index_low_hits = 0

        # Budgeted oracles settle residency at the patch boundary: the
        # accounting invariant is "never over budget *between* patches"
        # (repairs rewrite labels in place and cannot grow a row, so
        # this is a no-op unless the idle drop was outweighed by the
        # interval's installs).
        rows.enforce()
        if mx:
            mx.span("oracle.repair", t0, mode="planned",
                    trace_args={"live": live, "repaired": repaired})

    def _resolve_shared(
        self,
        adjacency: List[Tuple[Tuple[float, int], ...]],
        row: _Row,
        roots: List[int],
        groups: Dict[int, List[_SharedRegion]],
    ) -> Tuple[List[_SharedRegion], List[int]]:
        """Split a row's detached roots into shared-region hits and walks.

        A dense root joins the first group variant whose region matches
        the row's subtree; a non-matching row founds a new variant from
        its own walk (the "region signature" grouping: same detached
        child, same detached node set) until
        :data:`_PLANNER_SHARE_MAX_VARIANTS`, after which it falls back
        to the per-row walk.  Non-dense roots always walk.  Groups are
        keyed by the detached child alone -- a child's region is its
        subtree regardless of which changed pair detached it, so two
        changed pairs sharing a child pool their rows (and their density
        count) into one group.
        """
        hits: List[_SharedRegion] = []
        walk_roots: List[int] = []
        seen: set = set()
        parent = row.parent
        n = len(adjacency)
        for c in roots:
            if c in seen:
                continue  # duplicate root: one region either way
            seen.add(c)
            variants = groups.get(c)
            if variants is None:
                walk_roots.append(c)
                continue
            for region in variants:
                if region.matches(parent):
                    hits.append(region)
                    break
            else:
                if len(variants) < _PLANNER_SHARE_MAX_VARIANTS:
                    region = _SharedRegion(adjacency, parent, c, n)
                    variants.append(region)
                    hits.append(region)
                else:
                    walk_roots.append(c)
        return hits, walk_roots

    def _reconcile_tree_index(self) -> Dict[Tuple[int, int], set]:
        """Bring the inverted tree-edge index up to date with the rows.

        New or replaced ``_Row`` objects (cold misses, stale-row
        recomputes, ``distances_from`` upgrades) are registered wholesale;
        registrations of vanished rows are dropped.  Entries of a row that
        was *repaired* in place stay maintained incrementally by the
        caller, so reconciliation is O(tree) only per changed row.
        """
        index = self._tree_index
        if index is None:
            index = self._tree_index = {}
        indexed = self._indexed
        rows = self._rows
        for sid, row in rows.items():
            if not row.used:
                continue  # evicted by this patch before any lookup
            if indexed.get(sid) is not row:
                for v, p in enumerate(row.parent):
                    if p >= 0:
                        _index_add(index, v, p, sid)
                indexed[sid] = row
        for sid in [s for s in indexed if s not in rows]:
            del indexed[sid]
        return index

    def rebased(
        self, graph: Graph, changed: Mapping[Tuple[Node, Node], float]
    ) -> "FrozenOracle":
        """A new oracle over ``graph``, seeded from this oracle's caches.

        ``graph`` must be a copy of this oracle's graph -- identical nodes
        in the same enumeration order and identical edges, still carrying
        the *old* costs -- to which ``changed`` (the
        :meth:`patch_edge_costs` contract) is then applied.  The dynamic
        adjustments use this to reroute on updated costs while leaving the
        original instance and its oracle untouched.

        The clone inherits the repair modes (``planner`` and
        ``share_regions`` flags) but not the inverted tree-edge index:
        its immediate patch classifies with a scan pass, so one-shot
        clones never pay for an index build.

        A budgeted oracle's clone inherits ``row_budget_bytes`` and
        seeds through the same policy: rows are copied in retention
        order (the reverse of the eviction order) and only while they
        fit the clone's budget, so a dynamic-adjustment clone can never
        double peak residency.  Unbounded oracles copy every row in
        insertion order, exactly as before.
        """
        clone = FrozenOracle(
            graph, hot=self._hot, patchable=self._patchable,
            planner=self._planner, share_regions=self._share_regions,
            topology_patch=self._topology_patch,
            parallel_rows=self._parallel_rows, vectorized=self._vectorized,
            row_budget_bytes=self._rows.budget_bytes,
            metrics=self._metrics,
        )
        if self._built:
            clone._built = True
            clone._tombstones = set(self._tombstones)
            clone._hot_ids = list(self._hot_ids)
            if self._core is not None:
                clone._core = self._core.clone()
            if self._contracted is not None:
                clone._contracted = self._contracted.clone()
            if self._rows.budget_bytes is None:
                seed_ids = list(self._rows)
            else:
                seed_ids = self._rows.retention_order()
            for source_id in seed_ids:
                row = self._rows[source_id]
                if not clone._rows.would_fit(row):
                    continue  # seed only what fits the clone's budget
                # Deep copies: patching repairs row arrays in place, and
                # the original oracle must keep serving its own graph.
                # Full slices preserve the label store (list or kernel
                # array buffer) of the source row.
                dup = _Row(
                    row.dist[:],
                    row.parent[:],
                    None if row.settled is None else bytearray(row.settled),
                    row.full,
                )
                dup.stale = row.stale
                dup.cutoff = row.cutoff
                dup.used = row.used
                # children stays None: rebuilt lazily, never shared.
                clone._rows[source_id] = dup
        clone.patch_edge_costs(changed)
        return clone

    # ------------------------------------------------------------------
    # contracted-core machinery
    # ------------------------------------------------------------------
    def _slow_row(self, source: Node) -> Tuple[Dict[Node, float], Dict[Node, Node]]:
        """Exact dict-Dijkstra row on the original graph (rare queries)."""
        row = self._slow_rows.get(source)
        if row is None:
            row = _dict_dijkstra(self._graph, source)
            self._slow_rows[source] = row
        return row

    def _install_row(self, source_id: int, row: _Row) -> None:
        """Cache ``row`` (replacing any previous object) and register it.

        Every row-replacing recompute -- cold misses, stale-row
        recomputes, full-row upgrades -- must come through here: with the
        inverted tree-edge index live, the new tree's edges are
        registered immediately, so the index stays a superset of every
        cached row's tree edges without waiting for the next patch's
        reconcile pass.  A replaced row's old registrations linger as
        prunable over-approximation, exactly like a repaired row's.
        """
        self._rows[source_id] = row
        index = self._tree_index
        if index is not None:
            for v, p in enumerate(row.parent):
                if p >= 0:
                    _index_add(index, v, p, source_id)
            self._indexed[source_id] = row
        if self._rows.budget_bytes is not None:
            # Budgeted oracles enforce residency at every install (cold
            # misses, prefetch batches, stale recomputes, upgrades),
            # protecting the row the caller is about to serve from.
            self._rows.enforce(protect=(source_id,))

    def _contracted_row(self, cid: int) -> _Row:
        row = self._rows.get(cid)
        if row is None:
            mx = self._metrics
            t0 = mx.clock() if mx else 0.0
            dist, parent = self._contracted.dijkstra(cid)
            row = self._freeze_row(dist, parent, None, True)
            self._install_row(cid, row)
            if mx:
                mx.inc("oracle.rows.cold")
                mx.span("oracle.row_build", t0, kind="cold")
        row.used = True
        return row


    # ------------------------------------------------------------------
    # uncontracted-core machinery
    # ------------------------------------------------------------------
    def _compute(self, source_id: int, target_id: Optional[int]) -> _Row:
        """Compute and cache a row, early-stopped at the hot set if any."""
        core = self.core
        mx = self._metrics
        t0 = mx.clock() if mx else 0.0
        if self._hot_ids and not self._patchable:
            targets = (
                self._hot_ids if target_id is None
                else self._hot_ids + [target_id]
            )
            dist, parent, settled, exhausted = core.dijkstra(source_id, targets)
            row = self._freeze_row(dist, parent, settled, exhausted)
        else:
            dist, parent, settled, _ = core.dijkstra(source_id)
            row = self._freeze_row(dist, parent, settled, True)
        self._install_row(source_id, row)
        if mx:
            mx.inc("oracle.rows.cold")
            mx.span("oracle.row_build", t0, kind="cold")
        return row

    def _row_serving(self, source_id: int, target_id: int) -> _Row:
        """A row from ``source_id`` whose entry for ``target_id`` is final."""
        row = self._rows.get(source_id)
        if row is not None and (row.full or row.settled[target_id]):
            row.used = True
            return row
        if row is not None:
            if row.stale:
                # A patch demoted the target below the settle cutoff:
                # recompute exactly as a cold miss would (early-stopped at
                # the hot set), which keeps the row bit-compatible with
                # the full-rebuild path.
                return self._compute(source_id, target_id)
            # Cached but early-stopped short of the target: upgrade in full
            # so repeated cold queries never re-run the search.
            mx = self._metrics
            t0 = mx.clock() if mx else 0.0
            dist, parent, settled, _ = self.core.dijkstra(source_id)
            row = self._freeze_row(dist, parent, settled, True)
            self._install_row(source_id, row)
            if mx:
                mx.span("oracle.row_build", t0, kind="upgrade")
            return row
        return self._compute(source_id, target_id)

    # ------------------------------------------------------------------
    def distance(self, source: Node, target: Node) -> float:
        """Shortest-path cost; ``inf`` if unreachable.

        The graph is undirected, so ``distance(u, v) == distance(v, u)``
        and the answer may be served from a row rooted at either endpoint;
        when neither endpoint has a cached row, the row is computed from
        the endpoint more likely to be reused (hot beats cold, then the
        historically more-queried endpoint).
        """
        self._build()
        contracted = self._contracted
        if contracted is not None:
            index = contracted.index
            source_id = index.get(source)
            tid = index.get(target)
            if source_id is None or tid is None:
                if source not in self._graph:
                    raise KeyError(f"source {source!r} not in graph")
                if target not in self._graph:
                    return INF
                # An endpoint was contracted away (or sits on an isolated
                # relay cycle): exact but uncached-core slow path.
                dist, _ = self._slow_row(source)
                return dist.get(target, INF)
            row = self._rows.get(source_id)
            if row is None:
                row = self._rows.get(tid)
                if row is not None:
                    row.used = True
                    return row.dist[source_id]
                row = self._contracted_row(source_id)
            row.used = True
            return row.dist[tid]

        core = self.core
        index = core.index
        source_id = index[source]
        tid = index.get(target)
        if tid is None:
            return INF
        queries = self._queries
        queries[source_id] = queries.get(source_id, 0) + 1
        queries[tid] = queries.get(tid, 0) + 1
        rows = self._rows
        row = rows.get(source_id)
        if row is not None and (row.full or row.settled[tid]):
            row.used = True
            return row.dist[tid]
        rev = rows.get(tid)
        if rev is not None and (rev.full or rev.settled[source_id]):
            rev.used = True
            return rev.dist[source_id]
        if row is None and rev is None:
            # Pick the root more likely to serve future queries.
            hot = self._hot
            su, sv = source in hot, target in hot
            if sv and not su:
                source_id, tid = tid, source_id
            elif su == sv and queries.get(tid, 0) > queries.get(source_id, 0):
                source_id, tid = tid, source_id
            return self._compute(source_id, tid).dist[tid]
        return self._row_serving(source_id, tid).dist[tid]

    def distances_to(self, source: Node, targets: Sequence[Node]) -> List[float]:
        """Shortest-path costs from ``source`` to each of ``targets``.

        Semantically ``[self.distance(source, t) for t in targets]`` --
        and literally that on non-vectorized oracles, so the serial path
        stays bit-identical to per-query serving.  Vectorized oracles
        whose cached ``source`` row already serves every target (full, or
        early-stopped with all targets settled) answer with one zero-copy
        numpy gather instead of ``len(targets)`` dict/attribute walks,
        replicating the per-query side effects exactly: the same query
        counters, the same ``used`` mark, ``inf`` (and no counters) for
        targets absent from the graph.  Any other cache state falls back
        to the per-query loop, so no code path ever computes or serves a
        row the scalar calls would not have.
        """
        mx = self._metrics
        if not mx:
            return self._distances_to_impl(source, targets)
        t0 = mx.clock()
        out = self._distances_to_impl(source, targets)
        mx.span("oracle.query", t0, op="distances_to",
                trace_args={"targets": len(out)})
        return out

    def _distances_to_impl(
        self, source: Node, targets: Sequence[Node]
    ) -> List[float]:
        targets = list(targets)
        np = kernel.np
        if not self._vectorized or np is None or not targets:
            return [self.distance(source, t) for t in targets]
        self._build()
        contracted = self._contracted
        if contracted is not None:
            index = contracted.index
            source_id = index.get(source)
            row = self._rows.get(source_id) if source_id is not None else None
            dview = kernel.f8_view(row.dist) if row is not None else None
            if dview is None:
                return [self.distance(source, t) for t in targets]
            tids = _target_ids(index, targets)
            if tids is None:
                # A contracted-away target takes the exact slow path;
                # keep the whole batch on per-query serving.
                return [self.distance(source, t) for t in targets]
            row.used = True
            return dview[np.fromiter(tids, np.int64, len(tids))].tolist()
        core = self.core
        index = core.index
        source_id = index[source]
        row = self._rows.get(source_id)
        dview = kernel.f8_view(row.dist) if row is not None else None
        if dview is None:
            return [self.distance(source, t) for t in targets]
        tids = _target_ids(index, targets)
        if tids is None:
            tids = [index.get(t) for t in targets]
            present = [tid for tid in tids if tid is not None]
        else:
            present = tids
        if not present:
            return [INF] * len(targets)
        tid_arr = np.fromiter(present, np.int64, len(present))
        if not row.full:
            sview = kernel.u8_view(row.settled)
            if sview is None or not (sview[tid_arr] != 0).all():
                return [self.distance(source, t) for t in targets]
        queries = self._queries
        queries[source_id] = queries.get(source_id, 0) + len(present)
        queries.update(present)
        row.used = True
        vals = dview[tid_arr].tolist()
        if len(present) == len(tids):
            return vals
        out: List[float] = []
        k = 0
        for tid in tids:
            if tid is None:
                out.append(INF)
            else:
                out.append(vals[k])
                k += 1
        return out

    def detour_distances(
        self, a: Node, b: Node, targets: Sequence[Node]
    ) -> Optional[Tuple[List[float], List[float]]]:
        """Batched ``d(a, m)`` and ``d(b, m)`` for corridor-detour scans.

        The kernel tier's entry point for Procedure 2's pool-cap filter,
        which scores every candidate VM against both corridor endpoints.
        Returns ``(da, db)`` aligned with ``targets`` when the two cached
        endpoint rows can serve every target as-is, replicating exactly
        the side effects ``2 * len(targets)`` scalar ``distance`` calls
        would have (counters: +1 per endpoint per served target, +2 per
        target; ``used`` marks; ``inf`` and no counters for targets
        absent from the graph).  Returns ``None`` -- with **no** side
        effects -- whenever any scalar call would have computed, upgraded
        or rev-served a row, so callers fall back to the legacy loop and
        the oracle's cache evolves identically either way.
        """
        mx = self._metrics
        if not mx:
            return self._detour_distances_impl(a, b, targets)
        t0 = mx.clock()
        out = self._detour_distances_impl(a, b, targets)
        if out is not None:
            mx.span("oracle.query", t0, op="detour_distances",
                    trace_args={"targets": len(out[0])})
        return out

    def _detour_distances_impl(
        self, a: Node, b: Node, targets: Sequence[Node]
    ) -> Optional[Tuple[List[float], List[float]]]:
        np = kernel.np
        if not self._vectorized or np is None:
            return None
        targets = list(targets)
        if not targets:
            return [], []
        self._build()
        contracted = self._contracted
        if contracted is not None:
            index = contracted.index
            aid = index.get(a)
            bid = index.get(b)
            if aid is None or bid is None:
                return None
            arow = self._rows.get(aid)
            brow = self._rows.get(bid)
            if arow is None or brow is None:
                return None
            da_view = kernel.f8_view(arow.dist)
            db_view = kernel.f8_view(brow.dist)
            if da_view is None or db_view is None:
                return None
            tids = _target_ids(index, targets)
            if tids is None:
                return None
            arow.used = True
            brow.used = True
            tid_arr = np.fromiter(tids, np.int64, len(tids))
            return da_view[tid_arr].tolist(), db_view[tid_arr].tolist()
        core = self.core
        index = core.index
        if a not in index or b not in index:
            return None
        aid = index[a]
        bid = index[b]
        arow = self._rows.get(aid)
        brow = self._rows.get(bid)
        if arow is None or brow is None:
            return None
        da_view = kernel.f8_view(arow.dist)
        db_view = kernel.f8_view(brow.dist)
        if da_view is None or db_view is None:
            return None
        tids = _target_ids(index, targets)
        if tids is None:
            tids = [index.get(t) for t in targets]
            present = [tid for tid in tids if tid is not None]
        else:
            present = tids
        tid_arr = np.fromiter(present, np.int64, len(present))
        if present:
            if not arow.full:
                sview = kernel.u8_view(arow.settled)
                if sview is None or not (sview[tid_arr] != 0).all():
                    return None
            if not brow.full:
                sview = kernel.u8_view(brow.settled)
                if sview is None or not (sview[tid_arr] != 0).all():
                    return None
        queries = self._queries
        npres = len(present)
        queries[aid] = queries.get(aid, 0) + npres
        queries[bid] = queries.get(bid, 0) + npres
        queries.update(present)
        queries.update(present)
        arow.used = True
        brow.used = True
        da = da_view[tid_arr].tolist()
        db = db_view[tid_arr].tolist()
        if npres != len(tids):
            fa: List[float] = []
            fb: List[float] = []
            k = 0
            for tid in tids:
                if tid is None:
                    fa.append(INF)
                    fb.append(INF)
                else:
                    fa.append(da[k])
                    fb.append(db[k])
                    k += 1
            da, db = fa, fb
        return da, db

    def path(self, source: Node, target: Node) -> List[Node]:
        """A shortest path as a node list; raises if unreachable."""
        self._build()
        contracted = self._contracted
        if contracted is not None:
            # Stroll expansions re-request the same few anchor pairs many
            # times, so reconstructed paths are memoised.  Callers receive
            # a fresh copy: walks get extended in place downstream.
            cached = self._paths.get((source, target))
            if cached is not None:
                return list(cached)
            index = contracted.index
            source_id = index.get(source)
            tid = index.get(target)
            if source_id is None or tid is None:
                return self._slow_path(source, target)
            if tid == source_id:
                return [source]
            row = self._rows.get(source_id)
            if row is not None:
                row.used = True
                if row.dist[tid] == INF:
                    raise ValueError(f"no path from {source!r} to {target!r}")
                out = contracted.expand(
                    self._core_chain(row.parent, source_id, tid)
                )
            else:
                rev = self._rows.get(tid)
                if rev is not None:
                    # Serve the reverse row's tree and flip it (symmetry).
                    rev.used = True
                    if rev.dist[source_id] == INF:
                        raise ValueError(
                            f"no path from {source!r} to {target!r}"
                        )
                    chain = self._core_chain(rev.parent, tid, source_id)
                    chain.reverse()
                    out = contracted.expand(chain)
                else:
                    row = self._contracted_row(source_id)
                    if row.dist[tid] == INF:
                        raise ValueError(
                            f"no path from {source!r} to {target!r}"
                        )
                    out = contracted.expand(
                        self._core_chain(row.parent, source_id, tid)
                    )
            self._paths[(source, target)] = out
            return list(out)

        core = self.core
        index = core.index
        source_id = index[source]
        tid = index.get(target)
        if tid is None:
            raise ValueError(f"no path from {source!r} to {target!r}")
        if tid == source_id:
            return [source]
        row = self._row_serving(source_id, tid)
        if row.dist[tid] == INF:
            raise ValueError(f"no path from {source!r} to {target!r}")
        nodes = core.nodes
        parent = row.parent
        out = [nodes[tid]]
        cursor = tid
        while cursor != source_id:
            cursor = parent[cursor]
            out.append(nodes[cursor])
        out.reverse()
        return out

    @staticmethod
    def _core_chain(parent: List[int], source_id: int, tid: int) -> List[int]:
        """Core-id path ``source_id -> tid`` from a parent array."""
        chain = [tid]
        cursor = tid
        while cursor != source_id:
            cursor = parent[cursor]
            chain.append(cursor)
        chain.reverse()
        return chain

    def _slow_path(self, source: Node, target: Node) -> List[Node]:
        if target not in self._graph:
            raise ValueError(f"no path from {source!r} to {target!r}")
        if source == target:
            return [source]
        dist, parent = self._slow_row(source)
        if target not in dist:
            raise ValueError(f"no path from {source!r} to {target!r}")
        out = [target]
        while out[-1] != source:
            out.append(parent[out[-1]])
        out.reverse()
        return out

    def distances_from(self, source: Node) -> Dict[Node, float]:
        """All shortest-path costs from ``source`` (a full row, cached)."""
        mx = self._metrics
        if not mx:
            return self._distances_from_impl(source)
        t0 = mx.clock()
        out = self._distances_from_impl(source)
        mx.span("oracle.query", t0, op="distances_from",
                trace_args={"targets": len(out)})
        return out

    def _distances_from_impl(self, source: Node) -> Dict[Node, float]:
        self._build()
        contracted = self._contracted
        if contracted is not None:
            source_id = contracted.index.get(source)
            if source_id is None:
                if source not in self._graph:
                    raise KeyError(f"source {source!r} not in graph")
                dist, _ = self._slow_row(source)
                return dict(dist)
            row = self._contracted_row(source_id)
            dist = row.dist
            out = {
                node: d
                for node, d in zip(contracted.nodes, dist)
                if d != INF
            }
            # Expand the chain interiors: an interior is reached through
            # whichever chain endpoint is closer along the chain.
            for ci, (a, b, interiors, prefix, total) in enumerate(
                contracted.chains
            ):
                da, db = dist[a], dist[b]
                if total == INF:
                    # A tombstoned (failed) edge sits on this chain:
                    # ``total - pref`` would be ``inf - inf = nan`` for
                    # interiors beyond it, silently dropping nodes still
                    # reachable from the ``b`` side.  Walk explicit
                    # suffix sums instead; ``inf`` weights propagate so
                    # each side sees exactly its reachable stretch.
                    weights = contracted.chain_weights[ci]
                    acc = 0.0
                    suffix = [0.0] * len(interiors)
                    for i in range(len(interiors) - 1, -1, -1):
                        acc += weights[i + 1]
                        suffix[i] = acc
                    for node, pref, suf in zip(interiors, prefix, suffix):
                        d = min(da + pref, db + suf)
                        if d != INF:
                            known = out.get(node)
                            if known is None or d < known:
                                out[node] = d
                    continue
                for node, pref in zip(interiors, prefix):
                    d = min(da + pref, db + (total - pref))
                    if d != INF:
                        known = out.get(node)
                        if known is None or d < known:
                            out[node] = d
            return out

        core = self.core
        source_id = core.index[source]
        row = self._rows.get(source_id)
        if row is None or not row.full:
            dist, parent, settled, _ = core.dijkstra(source_id)
            row = self._freeze_row(dist, parent, settled, True)
            self._install_row(source_id, row)
        row.used = True
        nodes = core.nodes
        return {
            nodes[i]: d for i, d in enumerate(row.dist) if d != INF
        }
