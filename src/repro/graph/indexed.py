"""Indexed graph core: node interning, CSR adjacency and array Dijkstra.

The dict-of-dicts :class:`~repro.graph.graph.Graph` is convenient for
construction and small instances, but every Dijkstra relaxation pays a hash
of an arbitrary node key and every heap entry carries a Python object.  The
paper-scale sweeps (Table I: |V| up to 5000, |S| up to 26) run dozens of
single-source searches per SOFDA call, so this module provides a compact
core the hot paths share:

- :class:`IndexedGraph` -- interns nodes into dense int ids and stores the
  adjacency as CSR-style flat arrays (``indptr``/``indices``/``weights``)
  plus per-node ``(weight, neighbor_id)`` rows for the Dijkstra inner loop.
- :meth:`IndexedGraph.dijkstra` -- array-based Dijkstra whose ``dist`` and
  ``parent`` are flat lists indexed by int id and whose heap entries are
  ``(float, int, int)`` tuples, so no node ``repr`` tie-breaking ever runs.
  The relaxation order (including the push-counter tie-break) replicates
  :func:`repro.graph.shortest_paths.dijkstra` exactly, so the two return
  identical distances *and* identical shortest-path trees.
- :class:`FrozenOracle` -- a drop-in replacement for
  :class:`~repro.graph.shortest_paths.DistanceOracle` over a graph that is
  not mutated while cached.  Rows are computed lazily into flat arrays; a
  ``hot`` node set names the nodes the workload queries repeatedly.

On large instances the oracle additionally *contracts* the search graph:
ISP-style topologies (Euclidean MST plus shortest extra links, Inet
preferential attachment) are dominated by degree-2 relay nodes, so every
maximal chain of non-hot degree-2 nodes is spliced into a single weighted
edge before Dijkstra runs.  On the Table-I instances this halves the node
count and removes a third of the edges while distances stay exact; paths
are re-expanded through the stored chain interiors on reconstruction.
Contraction only engages above :data:`CONTRACT_MIN_INTERIOR` interior
nodes -- small (typically integer-weighted, tie-heavy) graphs keep the
exact dict-Dijkstra relaxation order, bit for bit.

One FrozenOracle per :class:`~repro.core.problem.SOFInstance` is shared by
the whole SOFDA pipeline (Procedure 1 sweeps, conflict repairs, Steiner
closures, the baselines and the online simulator) -- the single-oracle
invariant documented in ROADMAP.md.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.graph.graph import Graph
from repro.graph.shortest_paths import dijkstra as _dict_dijkstra

Node = Hashable
INF = float("inf")

#: Minimum number of contractible (non-hot, degree-2) nodes before the
#: oracle switches to the contracted search core.  Below this the exact
#: dict-Dijkstra relaxation order is replicated instead, which keeps
#: tie-breaking on small integer-weighted graphs byte-compatible.
CONTRACT_MIN_INTERIOR = 64

#: Minimum fraction of distinct edge costs for contraction to engage.
#: Continuous (randomly drawn) costs make equal-cost shortest-path ties
#: measure-zero, so the contracted core's different -- but equally valid --
#: tie choices can never change a result.  Repeated-cost graphs (e.g. the
#: online simulator's uniform floor costs) keep the replicated relaxation
#: order instead.
CONTRACT_MIN_DISTINCT_COSTS = 0.5


#: How many edges the continuity probe inspects (deterministic prefix of
#: the enumeration order) -- plenty to separate drawn-cost graphs from
#: uniform/integer-cost ones without an O(E) scan per oracle build.
_DISTINCT_COST_SAMPLE = 2048


def _costs_mostly_distinct(graph: Graph) -> bool:
    """Whether the graph's edge costs look continuously distributed."""
    seen = set()
    count = 0
    for _, _, cost in graph.edges():
        seen.add(cost)
        count += 1
        if count >= _DISTINCT_COST_SAMPLE:
            break
    return count > 0 and len(seen) >= CONTRACT_MIN_DISTINCT_COSTS * count


class IndexedGraph:
    """A frozen, int-indexed view of an undirected weighted graph.

    Attributes:
        nodes: intern table; ``nodes[i]`` is the original node of id ``i``.
        index: reverse mapping ``node -> id``.
        indptr, indices, weights: CSR adjacency -- the neighbors of node
            ``i`` are ``indices[indptr[i]:indptr[i+1]]`` with edge costs in
            the matching slice of ``weights``.
    """

    __slots__ = ("nodes", "index", "indptr", "indices", "weights", "_rows")

    def __init__(
        self,
        nodes: List[Node],
        indptr: List[int],
        indices: List[int],
        weights: List[float],
    ) -> None:
        self.nodes = nodes
        self.index = {node: i for i, node in enumerate(nodes)}
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        # Per-node (weight, neighbor) tuples: the CSR slices pre-zipped for
        # the Dijkstra inner loop, where tuple unpacking beats two indexed
        # loads per edge in CPython.
        self._rows: List[Tuple[Tuple[float, int], ...]] = [
            tuple(zip(weights[indptr[i]:indptr[i + 1]],
                      indices[indptr[i]:indptr[i + 1]]))
            for i in range(len(nodes))
        ]

    @classmethod
    def from_graph(cls, graph: Graph) -> "IndexedGraph":
        """Intern ``graph`` preserving node and per-node neighbor order."""
        nodes = list(graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        indptr = [0]
        indices: List[int] = []
        weights: List[float] = []
        for node in nodes:
            for neighbor, cost in graph.neighbor_items(node):
                indices.append(index[neighbor])
                weights.append(cost)
            indptr.append(len(indices))
        return cls(nodes, indptr, indices, weights)

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node: Node) -> bool:
        return node in self.index

    def num_edges(self) -> int:
        """Number of undirected edges."""
        return len(self.indices) // 2

    def id_of(self, node: Node) -> int:
        """Int id of ``node``; raises ``KeyError`` if absent."""
        return self.index[node]

    def node_of(self, node_id: int) -> Node:
        """Original node of int id ``node_id``."""
        return self.nodes[node_id]

    def neighbor_items(self, node_id: int) -> Tuple[Tuple[float, int], ...]:
        """``(edge_cost, neighbor_id)`` pairs of ``node_id``."""
        return self._rows[node_id]

    # ------------------------------------------------------------------
    def dijkstra(
        self,
        source: int,
        targets: Optional[Iterable[int]] = None,
    ) -> Tuple[List[float], List[int], bytearray, bool]:
        """Single-source Dijkstra over int ids.

        Args:
            source: start node id.
            targets: optional ids; the search stops once all are settled.

        Returns:
            ``(dist, parent, settled, exhausted)`` -- flat lists indexed by
            node id (``parent[i] == -1`` for the source and unreached
            nodes), the settled flags, and whether the search ran to
            exhaustion (i.e. the row is valid for *every* node, not just
            the settled ones).
        """
        n = len(self.nodes)
        dist = [INF] * n
        parent = [-1] * n
        settled = bytearray(n)
        dist[source] = 0.0

        is_target = None
        remaining = 0
        if targets is not None:
            is_target = bytearray(n)
            for t in targets:
                if t != source and not is_target[t]:
                    is_target[t] = 1
                    remaining += 1

        rows = self._rows
        heap: List[Tuple[float, int, int]] = [(0.0, 0, source)]
        counter = 1
        push = heapq.heappush
        pop = heapq.heappop
        exhausted = True
        while heap:
            d, _, u = pop(heap)
            if settled[u]:
                continue
            settled[u] = 1
            if is_target is not None:
                if is_target[u]:
                    remaining -= 1
                if remaining <= 0:
                    # Stopped early: the last settled node's out-edges were
                    # never relaxed, so the row is NOT valid beyond the
                    # settled set even if the heap happens to be empty.
                    exhausted = False
                    break
            for w, v in rows[u]:
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    parent[v] = u
                    push(heap, (nd, counter, v))
                    counter += 1
        return dist, parent, settled, exhausted


class _ContractedCore:
    """The degree-2-contracted search graph behind a :class:`FrozenOracle`.

    Attributes:
        nodes / index: intern table over the *core* nodes (hot nodes and
            every node of degree != 2).
        rows: per-core-node ``(weight, neighbor_cid)`` adjacency; parallel
            candidates (an original edge and/or several spliced chains
            between the same core pair) are reduced to the cheapest one.
        meta: ``(a_cid, b_cid) -> interior node tuple`` for every kept
            spliced edge, in a->b order (both orientations stored), used to
            re-expand reconstructed paths.
        chains: every discovered chain (kept or not, including self-loop
            chains) as ``(a_cid, b_cid, interiors, prefix, total)`` where
            ``prefix[i]`` is the along-chain distance from ``a`` to
            ``interiors[i]`` -- enough to serve ``distances_from`` for the
            contracted interiors exactly.
    """

    __slots__ = ("nodes", "index", "rows", "meta", "chains", "interior")

    def __init__(self, graph: Graph, protected: set) -> None:
        # The raw adjacency dicts: this is a sibling module of Graph inside
        # the graph package, and dropping the per-edge method dispatch
        # matters at 10k+ edges.
        adj = graph._adj
        is_core = {
            node for node, neighbors in adj.items()
            if len(neighbors) != 2 or node in protected
        }
        self.nodes: List[Node] = [n for n in adj if n in is_core]
        self.index: Dict[Node, int] = {n: i for i, n in enumerate(self.nodes)}
        self.interior: set = set()

        # Candidate core-core connections: original edges first (in
        # enumeration order), then spliced chains -- the min per pair wins,
        # first encountered on ties, which keeps construction deterministic.
        candidates: Dict[Tuple[int, int], Tuple[float, Tuple[Node, ...]]] = {}

        def offer(a: int, b: int, weight: float, interiors: Tuple[Node, ...]) -> None:
            key = (a, b) if a <= b else (b, a)
            kept = candidates.get(key)
            if kept is None or weight < kept[0]:
                candidates[key] = (
                    weight, interiors if key == (a, b) else tuple(reversed(interiors))
                )

        index = self.index
        for u in self.nodes:
            ui = index[u]
            for v, cost in adj[u].items():
                vi = index.get(v)
                if vi is not None and ui < vi:
                    offer(ui, vi, cost, ())

        self.chains: List[
            Tuple[int, int, Tuple[Node, ...], Tuple[float, ...], float]
        ] = []
        visited: set = set()
        for a in self.nodes:
            for first, w0 in adj[a].items():
                if first in is_core or first in visited:
                    continue
                # Walk the chain of degree-2 interiors until a core node.
                interiors = [first]
                weights = [w0]
                prev, cur = a, first
                while True:
                    visited.add(cur)
                    n1, n2 = adj[cur]
                    nxt = n2 if n1 == prev else n1
                    weights.append(adj[cur][nxt])
                    if nxt in is_core:
                        b = nxt
                        break
                    interiors.append(nxt)
                    prev, cur = cur, nxt
                prefix: List[float] = []
                acc = 0.0
                for w in weights[:-1]:
                    acc += w
                    prefix.append(acc)
                total = acc + weights[-1]
                a_cid, b_cid = index[a], index[b]
                self.chains.append(
                    (a_cid, b_cid, tuple(interiors), tuple(prefix), total)
                )
                self.interior.update(interiors)
                if a_cid != b_cid:  # self-loop chains never shorten paths
                    offer(a_cid, b_cid, total, tuple(interiors))
        # Interior cycles with no core anchor stay out of the core; slow
        # queries about them fall back to the dict Dijkstra.
        for node in adj:
            if node not in is_core and node not in visited:
                self.interior.add(node)

        adjacency: List[List[Tuple[float, int]]] = [[] for _ in self.nodes]
        self.meta: Dict[Tuple[int, int], Tuple[Node, ...]] = {}
        for (a, b), (weight, interiors) in candidates.items():
            adjacency[a].append((weight, b))
            adjacency[b].append((weight, a))
            if interiors:
                self.meta[(a, b)] = interiors
                self.meta[(b, a)] = tuple(reversed(interiors))
        self.rows: List[Tuple[Tuple[float, int], ...]] = [
            tuple(row) for row in adjacency
        ]

    def __len__(self) -> int:
        return len(self.nodes)

    def dijkstra(self, source: int) -> Tuple[List[float], List[int]]:
        """Full single-source Dijkstra over the contracted core.

        Heap entries are plain ``(dist, id)`` pairs: the contracted core
        only engages on continuous-cost instances, where exact distance
        ties are measure-zero, so no insertion-counter tie-break is kept.
        """
        n = len(self.nodes)
        dist = [INF] * n
        parent = [-1] * n
        dist[source] = 0.0
        rows = self.rows
        heap: List[Tuple[float, int]] = [(0.0, source)]
        push = heapq.heappush
        pop = heapq.heappop
        while heap:
            d, u = pop(heap)
            if d > dist[u]:  # stale entry: u was settled at a lower cost
                continue
            for w, v in rows[u]:
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    parent[v] = u
                    push(heap, (nd, v))
        return dist, parent

    def expand(self, core_path: List[int]) -> List[Node]:
        """Re-insert chain interiors into a path of core ids."""
        nodes = self.nodes
        meta = self.meta
        out: List[Node] = [nodes[core_path[0]]]
        for a, b in zip(core_path, core_path[1:]):
            interiors = meta.get((a, b))
            if interiors is not None:
                out.extend(interiors)
            out.append(nodes[b])
        return out


class _Row:
    """One cached single-source result inside :class:`FrozenOracle`."""

    __slots__ = ("dist", "parent", "settled", "full")

    def __init__(
        self,
        dist: List[float],
        parent: List[int],
        settled: Optional[bytearray],
        full: bool,
    ) -> None:
        self.dist = dist
        self.parent = parent
        self.settled = settled
        self.full = full


class FrozenOracle:
    """Caching shortest-path oracle with an interned fast core.

    API-compatible with :class:`~repro.graph.shortest_paths.DistanceOracle`
    (``graph``, ``distance``, ``path``, ``distances_from``, ``invalidate``).
    On small graphs it returns bit-identical distances *and* paths, because
    the underlying array Dijkstra replicates the dict implementation's
    relaxation order; on large graphs (>= :data:`CONTRACT_MIN_INTERIOR`
    contractible relay nodes) it switches to the degree-2-contracted core,
    which keeps distances exact but may pick a different -- equally short
    -- path when several shortest paths tie.

    The ``hot`` set names the nodes a workload will query repeatedly (for a
    SOF instance: sources, VMs and destinations).  Hot nodes are never
    contracted away, and uncontracted rows are computed with early
    termination once every hot node is settled.

    Undirected symmetry contract: ``distance(u, v) == distance(v, u)``, and
    the oracle is free to answer either direction from whichever row is
    cheapest to obtain.
    """

    def __init__(self, graph: Graph, hot: Optional[Iterable[Node]] = None) -> None:
        self._graph = graph
        self._hot: set = set(hot) if hot is not None else set()
        self._core: Optional[IndexedGraph] = None
        self._contracted: Optional[_ContractedCore] = None
        self._built = False
        self._hot_ids: List[int] = []
        self._rows: Dict[int, _Row] = {}
        self._slow_rows: Dict[Node, Tuple[Dict[Node, float], Dict[Node, Node]]] = {}
        self._queries: Dict[int, int] = {}
        self._paths: Dict[Tuple[Node, Node], List[Node]] = {}

    @property
    def graph(self) -> Graph:
        """The underlying graph (must not be mutated while cached)."""
        return self._graph

    def _build(self) -> None:
        if self._built:
            return
        if self._hot and _costs_mostly_distinct(self._graph):
            contracted = _ContractedCore(self._graph, self._hot)
            if len(contracted.interior) >= CONTRACT_MIN_INTERIOR:
                self._contracted = contracted
        if self._contracted is None:
            self._core = IndexedGraph.from_graph(self._graph)
            index = self._core.index
            self._hot_ids = [index[n] for n in self._hot if n in index]
        self._built = True

    @property
    def core(self) -> IndexedGraph:
        """The uncontracted interned core (built on demand)."""
        if self._core is None:
            self._core = IndexedGraph.from_graph(self._graph)
            if self._contracted is None:
                index = self._core.index
                self._hot_ids = [index[n] for n in self._hot if n in index]
            self._built = True
        return self._core

    @property
    def contracted(self) -> Optional[_ContractedCore]:
        """The contracted core, or ``None`` when contraction is inactive."""
        self._build()
        return self._contracted

    def warm(self, nodes: Iterable[Node]) -> None:
        """Precompute rows for ``nodes`` (one Dijkstra each, cached).

        Sweeps that will query *from or to* every node of a set should
        warm it first: afterwards any ``distance`` query touching the set
        is served from an existing row by undirected symmetry.
        """
        self._build()
        if self._contracted is not None:
            index = self._contracted.index
            for node in nodes:
                cid = index.get(node)
                if cid is not None:
                    self._contracted_row(cid)
            return
        index = self.core.index
        for node in nodes:
            node_id = index.get(node)
            if node_id is not None and node_id not in self._rows:
                self._compute(node_id, None)

    def extend_hot(self, nodes: Iterable[Node]) -> None:
        """Add nodes to the hot set (affects future row computations).

        If a newly hot node was contracted away, the core is rebuilt so
        the node becomes a first-class anchor again.
        """
        fresh = set(nodes) - self._hot
        if not fresh:
            return
        self._hot |= fresh
        if not self._built:
            return
        if self._contracted is not None:
            if any(n in self._contracted.interior for n in fresh):
                self.invalidate()
            return
        index = self._core.index
        self._hot_ids.extend(index[n] for n in fresh if n in index)

    def invalidate(self) -> None:
        """Drop all cached state (call after mutating the graph)."""
        self._core = None
        self._contracted = None
        self._built = False
        self._hot_ids = []
        self._rows.clear()
        self._slow_rows.clear()
        self._queries.clear()
        self._paths.clear()

    # ------------------------------------------------------------------
    # contracted-core machinery
    # ------------------------------------------------------------------
    def _slow_row(self, source: Node) -> Tuple[Dict[Node, float], Dict[Node, Node]]:
        """Exact dict-Dijkstra row on the original graph (rare queries)."""
        row = self._slow_rows.get(source)
        if row is None:
            row = _dict_dijkstra(self._graph, source)
            self._slow_rows[source] = row
        return row

    def _contracted_row(self, cid: int) -> _Row:
        row = self._rows.get(cid)
        if row is None:
            dist, parent = self._contracted.dijkstra(cid)
            row = _Row(dist, parent, None, True)
            self._rows[cid] = row
        return row

    # ------------------------------------------------------------------
    # uncontracted-core machinery
    # ------------------------------------------------------------------
    def _compute(self, source_id: int, target_id: Optional[int]) -> _Row:
        """Compute and cache a row, early-stopped at the hot set if any."""
        core = self.core
        if self._hot_ids:
            targets = (
                self._hot_ids if target_id is None
                else self._hot_ids + [target_id]
            )
            dist, parent, settled, exhausted = core.dijkstra(source_id, targets)
            row = _Row(dist, parent, settled, exhausted)
        else:
            dist, parent, settled, _ = core.dijkstra(source_id)
            row = _Row(dist, parent, settled, True)
        self._rows[source_id] = row
        return row

    def _row_serving(self, source_id: int, target_id: int) -> _Row:
        """A row from ``source_id`` whose entry for ``target_id`` is final."""
        row = self._rows.get(source_id)
        if row is not None and (row.full or row.settled[target_id]):
            return row
        if row is not None:
            # Cached but early-stopped short of the target: upgrade in full
            # so repeated cold queries never re-run the search.
            dist, parent, settled, _ = self.core.dijkstra(source_id)
            row = _Row(dist, parent, settled, True)
            self._rows[source_id] = row
            return row
        return self._compute(source_id, target_id)

    # ------------------------------------------------------------------
    def distance(self, source: Node, target: Node) -> float:
        """Shortest-path cost; ``inf`` if unreachable.

        The graph is undirected, so ``distance(u, v) == distance(v, u)``
        and the answer may be served from a row rooted at either endpoint;
        when neither endpoint has a cached row, the row is computed from
        the endpoint more likely to be reused (hot beats cold, then the
        historically more-queried endpoint).
        """
        self._build()
        contracted = self._contracted
        if contracted is not None:
            index = contracted.index
            source_id = index.get(source)
            tid = index.get(target)
            if source_id is None or tid is None:
                if source not in self._graph:
                    raise KeyError(f"source {source!r} not in graph")
                if target not in self._graph:
                    return INF
                # An endpoint was contracted away (or sits on an isolated
                # relay cycle): exact but uncached-core slow path.
                dist, _ = self._slow_row(source)
                return dist.get(target, INF)
            row = self._rows.get(source_id)
            if row is None:
                row = self._rows.get(tid)
                if row is not None:
                    return row.dist[source_id]
                row = self._contracted_row(source_id)
            return row.dist[tid]

        core = self.core
        index = core.index
        source_id = index[source]
        tid = index.get(target)
        if tid is None:
            return INF
        queries = self._queries
        queries[source_id] = queries.get(source_id, 0) + 1
        queries[tid] = queries.get(tid, 0) + 1
        rows = self._rows
        row = rows.get(source_id)
        if row is not None and (row.full or row.settled[tid]):
            return row.dist[tid]
        rev = rows.get(tid)
        if rev is not None and (rev.full or rev.settled[source_id]):
            return rev.dist[source_id]
        if row is None and rev is None:
            # Pick the root more likely to serve future queries.
            hot = self._hot
            su, sv = source in hot, target in hot
            if sv and not su:
                source_id, tid = tid, source_id
            elif su == sv and queries.get(tid, 0) > queries.get(source_id, 0):
                source_id, tid = tid, source_id
            return self._compute(source_id, tid).dist[tid]
        return self._row_serving(source_id, tid).dist[tid]

    def path(self, source: Node, target: Node) -> List[Node]:
        """A shortest path as a node list; raises if unreachable."""
        self._build()
        contracted = self._contracted
        if contracted is not None:
            # Stroll expansions re-request the same few anchor pairs many
            # times, so reconstructed paths are memoised.  Callers receive
            # a fresh copy: walks get extended in place downstream.
            cached = self._paths.get((source, target))
            if cached is not None:
                return list(cached)
            index = contracted.index
            source_id = index.get(source)
            tid = index.get(target)
            if source_id is None or tid is None:
                return self._slow_path(source, target)
            if tid == source_id:
                return [source]
            row = self._rows.get(source_id)
            if row is not None:
                if row.dist[tid] == INF:
                    raise ValueError(f"no path from {source!r} to {target!r}")
                out = contracted.expand(
                    self._core_chain(row.parent, source_id, tid)
                )
            else:
                rev = self._rows.get(tid)
                if rev is not None:
                    # Serve the reverse row's tree and flip it (symmetry).
                    if rev.dist[source_id] == INF:
                        raise ValueError(
                            f"no path from {source!r} to {target!r}"
                        )
                    chain = self._core_chain(rev.parent, tid, source_id)
                    chain.reverse()
                    out = contracted.expand(chain)
                else:
                    row = self._contracted_row(source_id)
                    if row.dist[tid] == INF:
                        raise ValueError(
                            f"no path from {source!r} to {target!r}"
                        )
                    out = contracted.expand(
                        self._core_chain(row.parent, source_id, tid)
                    )
            self._paths[(source, target)] = out
            return list(out)

        core = self.core
        index = core.index
        source_id = index[source]
        tid = index.get(target)
        if tid is None:
            raise ValueError(f"no path from {source!r} to {target!r}")
        if tid == source_id:
            return [source]
        row = self._row_serving(source_id, tid)
        if row.dist[tid] == INF:
            raise ValueError(f"no path from {source!r} to {target!r}")
        nodes = core.nodes
        parent = row.parent
        out = [nodes[tid]]
        cursor = tid
        while cursor != source_id:
            cursor = parent[cursor]
            out.append(nodes[cursor])
        out.reverse()
        return out

    @staticmethod
    def _core_chain(parent: List[int], source_id: int, tid: int) -> List[int]:
        """Core-id path ``source_id -> tid`` from a parent array."""
        chain = [tid]
        cursor = tid
        while cursor != source_id:
            cursor = parent[cursor]
            chain.append(cursor)
        chain.reverse()
        return chain

    def _slow_path(self, source: Node, target: Node) -> List[Node]:
        if target not in self._graph:
            raise ValueError(f"no path from {source!r} to {target!r}")
        if source == target:
            return [source]
        dist, parent = self._slow_row(source)
        if target not in dist:
            raise ValueError(f"no path from {source!r} to {target!r}")
        out = [target]
        while out[-1] != source:
            out.append(parent[out[-1]])
        out.reverse()
        return out

    def distances_from(self, source: Node) -> Dict[Node, float]:
        """All shortest-path costs from ``source`` (a full row, cached)."""
        self._build()
        contracted = self._contracted
        if contracted is not None:
            source_id = contracted.index.get(source)
            if source_id is None:
                if source not in self._graph:
                    raise KeyError(f"source {source!r} not in graph")
                dist, _ = self._slow_row(source)
                return dict(dist)
            row = self._contracted_row(source_id)
            dist = row.dist
            out = {
                node: d
                for node, d in zip(contracted.nodes, dist)
                if d != INF
            }
            # Expand the chain interiors: an interior is reached through
            # whichever chain endpoint is closer along the chain.
            for a, b, interiors, prefix, total in contracted.chains:
                da, db = dist[a], dist[b]
                for node, pref in zip(interiors, prefix):
                    d = min(da + pref, db + (total - pref))
                    if d != INF:
                        known = out.get(node)
                        if known is None or d < known:
                            out[node] = d
            return out

        core = self.core
        source_id = core.index[source]
        row = self._rows.get(source_id)
        if row is None or not row.full:
            dist, parent, settled, _ = core.dijkstra(source_id)
            row = _Row(dist, parent, settled, True)
            self._rows[source_id] = row
        nodes = core.nodes
        return {
            nodes[i]: d for i, d in enumerate(row.dist) if d != INF
        }
