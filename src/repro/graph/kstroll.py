"""k-stroll solvers over metric instances.

Definition 2 of the paper: given a weighted graph and two nodes ``s`` and
``u``, find the shortest walk from ``s`` to ``u`` visiting at least ``k``
distinct nodes (including ``s`` and ``u``).  SOFDA only ever solves k-stroll
on the *metric* instances produced by Procedure 1 (complete graphs whose
edge costs satisfy the triangle inequality, Lemma 1), where the optimal
walk can be taken to be a simple path with exactly ``k`` nodes.

The paper cites the Chaudhuri--Godfrey--Rao--Talwar (FOCS'03)
2-approximation as a black box.  Per DESIGN.md we substitute:

- :func:`solve_kstroll_exact` -- Held--Karp style subset DP, optimal, used
  whenever the candidate pool is small (the common case: ``|M|+1 <= 15``).
- :func:`solve_kstroll_insertion` -- cheapest-insertion heuristic (the
  classic metric path-TSP relaxation).
- :func:`solve_kstroll_greedy` -- nearest-extension heuristic, used as a
  second candidate; the dispatcher keeps the better of the two heuristics.

All solvers return a simple path ``s = v1, v2, ..., vk = u`` over distinct
nodes; by the triangle inequality its cost lower-bounds any longer walk that
visits the same node set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

Node = Hashable
INF = float("inf")

#: Largest candidate-pool size for which the exact DP is attempted by the
#: ``auto`` dispatcher.  2^15 * 15^2 ~ 7.4M relaxations is still snappy.
EXACT_DP_NODE_LIMIT = 15


@dataclass
class KStrollInstance:
    """A metric k-stroll instance: endpoints plus a complete cost matrix.

    Attributes:
        nodes: all candidate nodes (must include ``source`` and ``target``).
        source: the walk's start node (the chain's source in SOF).
        target: the walk's end node (the chain's last VM in SOF).
        cost: either a symmetric nested-dict lookup ``cost[u][v]`` or a
            callable ``cost(u, v)`` evaluated lazily -- large SOF sweeps use
            the callable form to avoid materialising |M|^2 matrices per
            (source, last-VM) pair.
    """

    nodes: List[Node]
    source: Node
    target: Node
    cost: object

    def __post_init__(self) -> None:
        if self.source not in self.nodes:
            raise ValueError("source must be among the instance nodes")
        if self.target not in self.nodes:
            raise ValueError("target must be among the instance nodes")

    def edge(self, u: Node, v: Node) -> float:
        """Cost of the (complete-graph) edge between ``u`` and ``v``."""
        if callable(self.cost):
            return self.cost(u, v)
        return self.cost[u][v]

    def path_cost(self, path: Sequence[Node]) -> float:
        """Total cost of a path in the instance."""
        return sum(self.edge(a, b) for a, b in zip(path, path[1:]))


def _validate_k(instance: KStrollInstance, k: int) -> List[Node]:
    """Common argument checks; returns the intermediate candidate pool."""
    if k < 2:
        raise ValueError(f"k must be >= 2 (got {k})")
    if instance.source == instance.target and k > 1:
        raise ValueError("source and target must differ for k >= 2")
    pool = [n for n in instance.nodes if n not in (instance.source, instance.target)]
    if k - 2 > len(pool):
        raise ValueError(
            f"cannot visit {k} distinct nodes: only {len(pool) + 2} available"
        )
    return pool


def solve_kstroll_exact(instance: KStrollInstance, k: int) -> Tuple[List[Node], float]:
    """Optimal k-stroll path via Held--Karp subset DP.

    ``dp[S][v]`` is the cheapest simple path from the source through the
    intermediate subset ``S`` ending at ``v`` (``v`` in ``S``); the answer
    appends the final hop to the target and minimises over ``|S| = k - 2``.
    Exponential in the candidate-pool size -- guard with
    :data:`EXACT_DP_NODE_LIMIT`.
    """
    pool = _validate_k(instance, k)
    s, t = instance.source, instance.target
    need = k - 2
    if need == 0:
        return [s, t], instance.edge(s, t)

    n = len(pool)
    index = {node: i for i, node in enumerate(pool)}
    # dp maps (mask, last_index) -> cost; parent for reconstruction.
    dp: List[List[float]] = [[INF] * n for _ in range(1 << n)]
    parent: Dict[Tuple[int, int], int] = {}
    for i, node in enumerate(pool):
        dp[1 << i][i] = instance.edge(s, node)

    best_cost = INF
    best_state: Optional[Tuple[int, int]] = None
    for mask in range(1, 1 << n):
        count = mask.bit_count()
        if count > need:
            continue
        row = dp[mask]
        for last in range(n):
            cost = row[last]
            if cost == INF or not (mask >> last) & 1:
                continue
            if count == need:
                total = cost + instance.edge(pool[last], t)
                if total < best_cost:
                    best_cost = total
                    best_state = (mask, last)
                continue
            for nxt in range(n):
                if (mask >> nxt) & 1:
                    continue
                ncost = cost + instance.edge(pool[last], pool[nxt])
                nmask = mask | (1 << nxt)
                if ncost < dp[nmask][nxt]:
                    dp[nmask][nxt] = ncost
                    parent[(nmask, nxt)] = last

    if best_state is None:
        raise ValueError("no feasible k-stroll found")
    mask, last = best_state
    order = [pool[last]]
    while mask.bit_count() > 1:
        prev = parent[(mask, last)]
        mask ^= 1 << last
        last = prev
        order.append(pool[last])
    order.reverse()
    path = [s] + order + [t]
    return path, best_cost


def solve_kstroll_insertion(instance: KStrollInstance, k: int) -> Tuple[List[Node], float]:
    """Cheapest-insertion heuristic.

    Starts from the direct ``s -> t`` edge and repeatedly inserts the
    candidate node whose best insertion position increases the path cost
    least, until ``k`` distinct nodes are on the path.  This is the standard
    metric path-TSP construction; on triangle-inequality instances it is the
    practical stand-in for the cited 2-approximation.
    """
    pool = _validate_k(instance, k)
    s, t = instance.source, instance.target
    path = [s, t]
    # Keep the pool's (deterministic) order: a set here would break
    # equal-delta ties in hash-salted iteration order.
    remaining = list(pool)
    cost = instance.cost
    matrix = None if callable(cost) else cost
    edge = instance.edge
    while len(path) < k:
        best_delta = INF
        best_node: Optional[Node] = None
        best_pos = -1
        # Hoist the per-position hop costs and cost rows: they are
        # identical for every candidate node of this round.
        positions = range(len(path) - 1)
        hop = [edge(path[pos], path[pos + 1]) for pos in positions]
        if matrix is not None:
            rows = [matrix[path[pos]] for pos in positions]
            for node in remaining:
                row_n = matrix[node]
                for pos in positions:
                    delta = rows[pos][node] + row_n[path[pos + 1]] - hop[pos]
                    if delta < best_delta:
                        best_delta, best_node, best_pos = delta, node, pos
        else:
            for node in remaining:
                for pos in positions:
                    delta = edge(path[pos], node) + edge(node, path[pos + 1]) - hop[pos]
                    if delta < best_delta:
                        best_delta, best_node, best_pos = delta, node, pos
        assert best_node is not None
        path.insert(best_pos + 1, best_node)
        remaining.remove(best_node)
    return path, instance.path_cost(path)


def solve_kstroll_greedy(instance: KStrollInstance, k: int) -> Tuple[List[Node], float]:
    """Nearest-extension heuristic.

    Grows the path from the source, always stepping to the cheapest unused
    candidate, then closes to the target.  Cheap and occasionally better
    than insertion on strongly clustered instances; the ``auto`` dispatcher
    keeps the better of the two.
    """
    pool = _validate_k(instance, k)
    s, t = instance.source, instance.target
    path = [s]
    # Keep the pool's (deterministic) order: ``min`` over a set breaks
    # equal-cost ties in hash-salted iteration order.
    remaining = list(pool)
    cost = instance.cost
    matrix = None if callable(cost) else cost
    while len(path) < k - 1:
        current = path[-1]
        if matrix is not None:
            nxt = min(remaining, key=matrix[current].__getitem__)
        else:
            nxt = min(remaining, key=lambda node: instance.edge(current, node))
        path.append(nxt)
        remaining.remove(nxt)
    path.append(t)
    return path, instance.path_cost(path)


def solve_kstroll(
    instance: KStrollInstance,
    k: int,
    method: str = "auto",
) -> Tuple[List[Node], float]:
    """Solve a metric k-stroll instance.

    Args:
        instance: the metric instance (Procedure 1 output).
        k: minimum number of distinct nodes to visit, including endpoints.
        method: ``exact``, ``insertion``, ``greedy``, or ``auto`` (exact when
            the pool is small, otherwise the better of the two heuristics).

    Returns:
        ``(path, cost)`` -- a simple path with exactly ``k`` distinct nodes.
    """
    if method == "exact":
        return solve_kstroll_exact(instance, k)
    if method == "insertion":
        return solve_kstroll_insertion(instance, k)
    if method == "greedy":
        return solve_kstroll_greedy(instance, k)
    if method != "auto":
        raise ValueError(f"unknown k-stroll method {method!r}")
    if len(instance.nodes) <= EXACT_DP_NODE_LIMIT:
        return solve_kstroll_exact(instance, k)
    insertion = solve_kstroll_insertion(instance, k)
    greedy = solve_kstroll_greedy(instance, k)
    return insertion if insertion[1] <= greedy[1] else greedy
