"""Disjoint-set union (union-find) with path compression and union by rank."""

from __future__ import annotations

from typing import Dict, Hashable, Iterable


class DisjointSetUnion:
    """Classic union-find over arbitrary hashable elements.

    Elements are added lazily on first use, or eagerly via the constructor.
    """

    def __init__(self, elements: Iterable[Hashable] = ()) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._rank: Dict[Hashable, int] = {}
        self._num_sets = 0
        for element in elements:
            self.add(element)

    def add(self, element: Hashable) -> None:
        """Register ``element`` as a singleton set (no-op if present)."""
        if element not in self._parent:
            self._parent[element] = element
            self._rank[element] = 0
            self._num_sets += 1

    def find(self, element: Hashable) -> Hashable:
        """Return the canonical representative of ``element``'s set."""
        self.add(element)
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge the sets of ``a`` and ``b``; return True if they were disjoint."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        self._num_sets -= 1
        return True

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """Whether ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    @property
    def num_sets(self) -> int:
        """Number of disjoint sets currently tracked."""
        return self._num_sets

    def __len__(self) -> int:
        return len(self._parent)
