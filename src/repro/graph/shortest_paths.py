"""Shortest-path primitives: Dijkstra, path reconstruction, distance oracle.

Every SOF algorithm in the paper is built on repeated shortest-path queries
(Procedure 1 computes a metric closure over the VM set; the baselines attach
chains and destinations via shortest paths).  :class:`DistanceOracle` caches
single-source Dijkstra runs so sweeps over many candidate last-VMs reuse
work.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.graph.graph import Graph

Node = Hashable
INF = float("inf")


def dijkstra(
    graph: Graph,
    source: Node,
    targets: Optional[Iterable[Node]] = None,
) -> Tuple[Dict[Node, float], Dict[Node, Node]]:
    """Single-source Dijkstra.

    Args:
        graph: the graph to search.
        source: start node.
        targets: optional set of nodes; the search stops early once all of
            them are settled.

    Returns:
        ``(dist, parent)`` where ``dist[v]`` is the shortest-path cost from
        ``source`` to ``v`` and ``parent`` maps each reached node (except the
        source) to its predecessor on a shortest path.
    """
    if source not in graph:
        raise KeyError(f"source {source!r} not in graph")
    pending = set(targets) if targets is not None else None
    if pending is not None:
        pending.discard(source)

    dist: Dict[Node, float] = {source: 0.0}
    parent: Dict[Node, Node] = {}
    settled = set()
    heap: List[Tuple[float, int, Node]] = [(0.0, 0, source)]
    counter = 1  # tie-breaker so heterogeneous node ids never get compared
    while heap:
        d, _, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        if pending is not None:
            pending.discard(node)
            if not pending:
                break
        for neighbor, cost in graph.neighbor_items(node):
            nd = d + cost
            if nd < dist.get(neighbor, INF):
                dist[neighbor] = nd
                parent[neighbor] = node
                heapq.heappush(heap, (nd, counter, neighbor))
                counter += 1
    return dist, parent


def reconstruct_path(parent: Dict[Node, Node], source: Node, target: Node) -> List[Node]:
    """Rebuild the node sequence from a Dijkstra ``parent`` map."""
    if target == source:
        return [source]
    if target not in parent:
        raise ValueError(f"no path from {source!r} to {target!r}")
    path = [target]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def shortest_path(graph: Graph, source: Node, target: Node) -> Tuple[List[Node], float]:
    """Return ``(path, cost)`` of a shortest path between two nodes."""
    dist, parent = dijkstra(graph, source, targets={target})
    if target not in dist:
        raise ValueError(f"no path from {source!r} to {target!r}")
    return reconstruct_path(parent, source, target), dist[target]


def walk_cost(graph: Graph, walk: Sequence[Node]) -> float:
    """Total edge cost of a walk, paying every traversal (clone semantics).

    This matches the paper's accounting: "the cost of a link in G is counted
    twice if the link is duplicated because its terminal nodes are cloned".
    """
    total = 0.0
    for u, v in zip(walk, walk[1:]):
        total += graph.cost(u, v)
    return total


class DistanceOracle:
    """Caching all-pairs shortest-path oracle over a fixed graph.

    Single-source Dijkstra results are computed lazily and memoised, so a
    sweep that queries distances from the same source to many targets costs
    one Dijkstra run.  Paths are reconstructed from the cached parent maps.
    """

    def __init__(self, graph: Graph) -> None:
        self._graph = graph
        self._dist: Dict[Node, Dict[Node, float]] = {}
        self._parent: Dict[Node, Dict[Node, Node]] = {}
        self._queries: Dict[Node, int] = {}

    @property
    def graph(self) -> Graph:
        """The underlying graph (must not be mutated while cached)."""
        return self._graph

    def _ensure(self, source: Node) -> None:
        if source not in self._dist:
            dist, parent = dijkstra(self._graph, source)
            self._dist[source] = dist
            self._parent[source] = parent

    def distance(self, source: Node, target: Node) -> float:
        """Shortest-path cost; ``inf`` if unreachable.

        Undirected symmetry contract: ``distance(u, v) == distance(v, u)``,
        so the oracle may answer from a row rooted at either endpoint.  A
        cached row always wins; when *neither* endpoint is cached, the row
        is computed from the endpoint more likely to be reused -- the one
        that has appeared in more ``distance`` queries so far (ties keep
        ``source``, the historical behaviour).
        """
        queries = self._queries
        queries[source] = queries.get(source, 0) + 1
        queries[target] = queries.get(target, 0) + 1
        cached = source in self._dist
        # Serve from the reverse direction if already cached (undirected).
        if target in self._dist and not cached:
            return self._dist[target].get(source, INF)
        if (
            not cached
            and queries[target] > queries[source]
            and target in self._graph
        ):
            self._ensure(target)
            return self._dist[target].get(source, INF)
        self._ensure(source)
        return self._dist[source].get(target, INF)

    def path(self, source: Node, target: Node) -> List[Node]:
        """A shortest path as a node list; raises if unreachable."""
        self._ensure(source)
        if target not in self._dist[source]:
            raise ValueError(f"no path from {source!r} to {target!r}")
        return reconstruct_path(self._parent[source], source, target)

    def distances_from(self, source: Node) -> Dict[Node, float]:
        """All shortest-path costs from ``source`` (cached)."""
        self._ensure(source)
        return self._dist[source]

    def invalidate(self) -> None:
        """Drop all cached results (call after mutating the graph)."""
        self._dist.clear()
        self._parent.clear()
