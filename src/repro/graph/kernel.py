"""Raw-speed kernel utilities: array label buffers and a fork worker pool.

The oracle's algorithmic layers (CSR core, Ramalingam--Reps repair, the
patch planner, shared regions, topology tombstones) left pure interpreter
overhead as the dominant cost of the online traces.  This module holds the
two primitives the kernel tier is built from:

- **Label buffers** -- cached rows store ``dist``/``parent`` as
  ``array('d')``/``array('q')`` buffers instead of Python lists when the
  oracle runs with ``vectorized=True``.  Scalar indexing still returns
  plain Python floats/ints (unlike raw numpy arrays, whose scalar reads
  box ``np.float64`` -- slower *and* repr-visible), while the buffer
  protocol lets batch operations wrap the same memory zero-copy with
  :func:`numpy.frombuffer` when numpy is importable.  Without numpy the
  stdlib buffers still work; batch consumers fall back to tight scalar
  loops over them.
- **Fork pool** -- :func:`fork_map` generalises the ``run_sweep`` pattern
  (module-global state populated before a ``fork``-context pool is
  created, so workers inherit arbitrary unpicklable state by memory copy;
  ordered results; serial fallback with a one-time ``RuntimeWarning`` on
  platforms without fork).  Both the oracle's ``prefetch_rows``/patch
  repairs and the sweep harness's per-algorithm dispatch run on it.

Fork-inheritance invariant: a worker sees the parent's memory exactly as
it was at pool creation, so callers must only fork while their shared
structures are *consistent* -- the oracle never forks mid-patch (rows are
farmed either before any mutation or after the patch plan is fully
resolved and before any row is written).
"""

from __future__ import annotations

import multiprocessing
import warnings
from array import array
from typing import Callable, List, Optional, Sequence, TypeVar

try:  # pragma: no cover - exercised implicitly by every vectorized test
    import numpy as _np
except ImportError:  # pragma: no cover - the stdlib-array fallback tier
    _np = None

np = _np
HAVE_NUMPY = _np is not None

T = TypeVar("T")
R = TypeVar("R")

#: Storage typecodes of the vectorized label buffers.  ``'d'`` is the C
#: double every distance already is; ``'q'`` is a signed 64-bit int --
#: platform-independent, and exactly what ``numpy.frombuffer`` maps to
#: ``int64`` so parent gathers need no casting.
DIST_TYPECODE = "d"
PARENT_TYPECODE = "q"


def dist_buffer(values) -> array:
    """Distance labels as an ``array('d')`` buffer (copies ``values``)."""
    return array(DIST_TYPECODE, values)


def parent_buffer(values) -> array:
    """Parent labels as an ``array('q')`` buffer (copies ``values``)."""
    return array(PARENT_TYPECODE, values)


def f8_view(buf):
    """Zero-copy ``float64`` numpy view of a ``dist`` buffer, or ``None``.

    Writes through the view mutate the buffer in place (the buffers are
    never resized, so views stay valid for the row's lifetime).
    """
    if _np is None or not isinstance(buf, array):
        return None
    return _np.frombuffer(buf, dtype=_np.float64)


def i8_view(buf):
    """Zero-copy ``int64`` numpy view of a ``parent`` buffer, or ``None``."""
    if _np is None or not isinstance(buf, array):
        return None
    return _np.frombuffer(buf, dtype=_np.int64)


def u8_view(buf):
    """Zero-copy ``uint8`` numpy view of a bytearray mask, or ``None``."""
    if _np is None:
        return None
    return _np.frombuffer(buf, dtype=_np.uint8)


# ----------------------------------------------------------------------
# fork-based worker pool
# ----------------------------------------------------------------------

#: The function the pool workers run, installed by :func:`fork_map` right
#: before the fork so workers inherit it (and everything it closes over)
#: by memory copy -- closures and bound methods are not picklable, which
#: is the whole reason the sweep harness pioneered this pattern.
_WORKER_FN: Optional[Callable] = None

#: Whether the missing-fork serial fallback has been reported -- once per
#: process, matching ``experiments.harness._warned_no_fork``.
_warned_no_fork = False


def _run_worker(item):
    """Module-level pool target: applies the inherited worker function."""
    return _WORKER_FN(item)


def fork_available() -> bool:
    """Whether this platform supports the ``fork`` start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def fork_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: int,
    label: str = "fork_map",
    chunksize: Optional[int] = None,
    metrics=None,
) -> List[R]:
    """Map ``fn`` over ``items`` on a fork pool; results stay in order.

    ``fn`` may be any callable (bound method, closure): it is installed in
    a module global before the pool forks, so workers inherit it by memory
    copy and only ``items`` and results cross the pipe.  Serial fallbacks
    -- ``workers <= 1``, a single item, a daemonic caller (a pool worker
    cannot have children), or a platform without fork (reported once with
    a ``RuntimeWarning`` naming ``label``) -- run ``fn`` in-process, so
    results are identical either way for pure functions.

    ``metrics`` (an optional :class:`~repro.obs.recorder.Recorder`)
    records one ``kernel.fork`` span per dispatched batch plus
    batch/item counters, on the *parent* side only -- anything a worker
    would record dies with its copy-on-write memory, so workers stay
    uninstrumented and the pipe payloads unchanged.
    """
    global _WORKER_FN, _warned_no_fork
    items = list(items)
    mx = metrics if metrics else None
    t0 = mx.clock() if mx else 0.0

    def _record(mode: str, out: List[R]) -> List[R]:
        if mx:
            mx.inc("kernel.fork.batches", pool=label, mode=mode)
            mx.inc("kernel.fork.items", len(items), pool=label, mode=mode)
            mx.span("kernel.fork", t0, pool=label, mode=mode,
                    trace_args={"items": len(items)})
        return out

    if workers <= 1 or len(items) <= 1:
        return _record("serial", [fn(item) for item in items])
    if multiprocessing.current_process().daemon:
        # Nested inside another pool's worker: silently serial (expected
        # composition, e.g. per-algorithm dispatch inside a sweep cell).
        return _record("serial", [fn(item) for item in items])
    if not fork_available():
        if not _warned_no_fork:
            _warned_no_fork = True
            warnings.warn(
                f"{label}: the 'fork' start method is unavailable on this "
                "platform; running serially instead",
                RuntimeWarning,
                stacklevel=3,
            )
        return _record("serial", [fn(item) for item in items])
    context = multiprocessing.get_context("fork")
    _WORKER_FN = fn
    try:
        with context.Pool(processes=min(workers, len(items))) as pool:
            if chunksize is None:
                chunksize = max(1, len(items) // (workers * 4))
            return _record(
                "fork", pool.map(_run_worker, items, chunksize=chunksize)
            )
    finally:
        _WORKER_FN = None


def warm_fork(workers: int = 2) -> None:
    """Pay the one-time fork/pool spawn cost outside any timed window.

    The first pool a process creates faults in the multiprocessing
    machinery and copy-on-write page tables; benches call this before
    starting their timers so parallel runs are not charged for it
    (exactly as topology generation is excluded from timed windows).
    """
    if workers > 1 and fork_available() and not multiprocessing.current_process().daemon:
        context = multiprocessing.get_context("fork")
        with context.Pool(processes=workers) as pool:
            pool.map(_noop, range(workers))


def _noop(_):
    return None
