"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the evaluation artefacts:

- ``solve``     -- embed one sampled instance with every algorithm.
- ``fig7/8/9/10/11/12`` -- regenerate a figure's data series.
- ``table1/table2``     -- regenerate a table.
- ``workload``  -- run a tenant-churn workload (arrivals, holding-time
  departures, optional background churn) through the online simulator,
  with JSONL trace record/replay.
- ``analysis``  -- run the AST-based invariant linter
  (:mod:`repro.analysis`) over the source tree.
- ``obs``       -- inspect/convert/validate span traces emitted by the
  ``--trace-out`` flags (Chrome trace-event JSONL, :mod:`repro.obs`).

All output is plain text in the paper's row/series format, so results can
be diffed across runs.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.problem import ServiceChain
from repro.core.sofda import sofda
from repro.experiments import (
    fig7_cost_function,
    fig8_softlayer,
    fig9_cogent,
    fig10_inet,
    fig11_setup_cost,
    fig12_online,
    render_series,
    table1_runtime,
    table2_qoe,
)
from repro.topology import cogent_network, inet_network, softlayer_network

_NETWORKS = {
    "softlayer": softlayer_network,
    "cogent": cogent_network,
    "inet": lambda seed=0: inet_network(
        num_nodes=500, num_links=1000, num_datacenters=200, seed=seed
    ),
}


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro.baselines import enemp_baseline, est_baseline, st_baseline

    network = _NETWORKS[args.topology](seed=args.topology_seed)
    instance = network.make_instance(
        num_sources=args.sources,
        num_destinations=args.destinations,
        num_vms=args.vms,
        chain=ServiceChain.of_length(args.chain),
        seed=args.seed,
    )
    print(f"instance: {instance}")
    result = sofda(instance)
    print(f"{'SOFDA':10s} cost={result.cost:12.3f} "
          f"trees={result.forest.num_trees()} "
          f"vms={len(result.forest.used_vms())} "
          f"conflicts={result.stats.total_conflicted()}")
    for name, fn in (("eNEMP", enemp_baseline), ("eST", est_baseline),
                     ("ST", st_baseline)):
        forest = fn(instance)
        print(f"{name:10s} cost={forest.total_cost():12.3f} "
              f"trees={forest.num_trees()} vms={len(forest.used_vms())}")
    if args.ilp:
        from repro.ilp import solve_sof_ilp

        solution = solve_sof_ilp(instance, time_limit=args.ilp_time_limit)
        print(f"{'CPLEX':10s} cost={solution.objective:12.3f} "
              f"optimal={solution.optimal}")
    if args.verbose:
        print()
        print(result.forest.describe())
    return 0


def _make_recorder(trace_out: Optional[str]):
    """A live recorder when ``--trace-out`` was given, else ``None``.

    ``None`` keeps every instrumented seam on its zero-overhead default
    path, so untraced CLI runs stay bit-identical to pre-observability
    behaviour.
    """
    if trace_out is None:
        return None
    from repro.obs import MetricsRegistry, Recorder, SpanTracer

    return Recorder(registry=MetricsRegistry(), tracer=SpanTracer())


def _finish_trace(recorder, trace_out: str) -> None:
    """Write the span trace JSONL and print the per-phase breakdown."""
    from repro.obs import phase_breakdown, write_trace_events

    write_trace_events(recorder.tracer.events, trace_out)
    print(f"\nwrote {len(recorder.tracer.events)} spans to {trace_out} "
          "(repro obs convert -> chrome://tracing)")
    breakdown = phase_breakdown(recorder.snapshot())
    if any(breakdown.values()):
        print("per-phase time (attribution views; fork time also nests "
              "inside its dispatching phase):")
        for phase, seconds in breakdown.items():
            print(f"  {phase:8s} {seconds:10.4f}s")


def _cmd_fig7(args: argparse.Namespace) -> int:
    for load, cost in fig7_cost_function(samples=args.samples):
        print(f"{load:8.4f} {cost:12.4f}")
    return 0


def _print_panels(panels) -> None:
    for parameter, result in panels.items():
        print(render_series(result, title=f"--- {parameter} ---"))
        print()


def _cmd_fig8(args: argparse.Namespace) -> int:
    recorder = _make_recorder(args.trace_out)
    _print_panels(fig8_softlayer(
        seeds=args.seeds, include_ilp=args.ilp, metrics=recorder,
    ))
    if recorder:
        _finish_trace(recorder, args.trace_out)
    return 0


def _cmd_fig9(args: argparse.Namespace) -> int:
    recorder = _make_recorder(args.trace_out)
    _print_panels(fig9_cogent(seeds=args.seeds, metrics=recorder))
    if recorder:
        _finish_trace(recorder, args.trace_out)
    return 0


def _cmd_fig10(args: argparse.Namespace) -> int:
    recorder = _make_recorder(args.trace_out)
    _print_panels(fig10_inet(
        seeds=args.seeds, num_nodes=args.nodes,
        num_links=2 * args.nodes, num_datacenters=args.nodes // 3,
        metrics=recorder,
    ))
    if recorder:
        _finish_trace(recorder, args.trace_out)
    return 0


def _cmd_fig11(args: argparse.Namespace) -> int:
    recorder = _make_recorder(args.trace_out)
    data = fig11_setup_cost(seeds=args.seeds, metrics=recorder)
    print("cost (rows: |C|, cols: multiples 1,3,5,7,9)")
    for length, series in data["cost"].items():
        print(f"  |C|={length}: " + "  ".join(f"{v:9.2f}" for v in series))
    print("used VMs")
    for length, series in data["vms"].items():
        print(f"  |C|={length}: " + "  ".join(f"{v:9.2f}" for v in series))
    if recorder:
        _finish_trace(recorder, args.trace_out)
    return 0


def _cmd_fig12(args: argparse.Namespace) -> int:
    recorder = _make_recorder(args.trace_out)
    series = fig12_online(
        topology=args.topology, num_requests=args.requests, metrics=recorder,
    )
    for name, acc in series.items():
        print(f"{name:8s} " + " ".join(f"{v:10.1f}" for v in acc))
    if recorder:
        _finish_trace(recorder, args.trace_out)
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    from repro.experiments import run_churn_comparison
    from repro.online import RequestGenerator
    from repro.workload import (
        DiurnalArrivals,
        ExponentialHolding,
        FixedHolding,
        FlashCrowdArrivals,
        LinkFailureProcess,
        PoissonArrivals,
        build_schedule,
        read_trace,
        read_trace_metadata,
        write_trace,
    )

    topology, topology_seed = args.topology, args.topology_seed
    if args.replay:
        # A trace's node identities only make sense on the topology it
        # was recorded against; recorded provenance wins over the flags.
        meta = read_trace_metadata(args.replay)
        topology = meta.get("topology", topology)
        topology_seed = meta.get("topology_seed", topology_seed)
        if topology not in _NETWORKS:
            raise SystemExit(
                f"trace {args.replay} was recorded on topology "
                f"{topology!r}, which this build does not provide "
                f"(choose from {sorted(_NETWORKS)})"
            )
        schedule = read_trace(args.replay)
        print(f"replaying {len(schedule)} events from {args.replay} "
              f"(topology {topology}, seed {topology_seed})")
    else:
        network = _NETWORKS[topology](seed=topology_seed)
        generator = RequestGenerator(network, seed=args.seed)
        if args.process == "poisson":
            process = PoissonArrivals(
                generator, rate=args.rate, seed=args.seed + 1
            )
        elif args.process == "diurnal":
            process = DiurnalArrivals(
                generator, base_rate=args.rate, amplitude=args.amplitude,
                period=args.period, seed=args.seed + 1,
            )
        else:
            process = FlashCrowdArrivals(
                generator, base_rate=args.rate, burst_start=args.burst_start,
                burst_duration=args.burst_duration,
                burst_factor=args.burst_factor, seed=args.seed + 1,
            )
        if args.hold_fixed is not None:
            holding = FixedHolding(args.hold_fixed)
        elif args.no_departures:
            holding = None
        else:
            holding = ExponentialHolding(args.hold_mean, seed=args.seed + 2)
        failures = None
        if args.fail_links > 0:
            # Deterministic failure-prone subset of the physical links:
            # seeded sample over the repr-sorted edge list.
            import random as _random

            links = sorted(
                ((u, v) for u, v, _ in network.graph.edges()), key=repr
            )
            picked = _random.Random(args.failure_seed).sample(
                links, min(args.fail_links, len(links))
            )
            failures = LinkFailureProcess(
                picked, mtbf=args.mtbf, mttr=args.mttr,
                seed=args.failure_seed,
            )
        schedule = build_schedule(process, horizon=args.horizon,
                                  holding=holding, failures=failures)
        print(f"built {len(schedule)} events "
              f"({args.process} arrivals over horizon {args.horizon})")
    if args.record:
        write_trace(schedule, args.record,
                    meta={"topology": topology, "topology_seed": topology_seed})
        print(f"recorded trace to {args.record}")

    factory = lambda: _NETWORKS[topology](seed=topology_seed)  # noqa: E731
    embedders = {"SOFDA": lambda inst: sofda(inst).forest}
    if args.baselines:
        from repro.baselines import enemp_baseline, est_baseline, st_baseline

        embedders.update(
            {"eNEMP": enemp_baseline, "eST": est_baseline, "ST": st_baseline}
        )
    simulator_kwargs = {}
    if args.row_budget_mb is not None:
        simulator_kwargs["row_budget_bytes"] = int(
            args.row_budget_mb * 2 ** 20
        )
    recorder = _make_recorder(args.trace_out)
    if recorder:
        simulator_kwargs["metrics"] = recorder
    results = run_churn_comparison(
        factory, embedders, schedule, **simulator_kwargs
    )
    with_failures = any(r.failures for r in results.values())
    header = (f"\n{'algo':8s} {'arrive':>6s} {'accept':>6s} {'reject':>6s} "
              f"{'rate':>6s} {'depart':>6s} {'peak':>5s} {'active':>6s} "
              f"{'total cost':>12s}")
    if with_failures:
        header += (f" {'fails':>5s} {'rerte':>5s} {'disrp':>5s} "
                   f"{'d-rate':>6s} {'mttr':>6s}")
    print(header)
    for name, result in results.items():
        arrivals = result.accepted + result.rejected
        row = (f"{name:8s} {arrivals:6d} {result.accepted:6d} "
               f"{result.rejected:6d} {result.acceptance_rate:5.1%} "
               f"{result.departures:6d} {result.peak_active:5d} "
               f"{result.final_active:6d} {result.total_cost:12.2f}")
        if with_failures:
            row += (f" {result.failures:5d} {result.rerouted:5d} "
                    f"{result.disrupted:5d} {result.disruption_rate:5.1%} "
                    f"{result.mean_recovery_latency:6.2f}")
        print(row)
    if args.row_budget_mb is not None:
        print(f"\nrow-cache residency (budget {args.row_budget_mb:g} MB):")
        for name, result in results.items():
            stats = result.cache_stats or {}
            print(f"{name:8s} rows={stats.get('rows', 0):5d} "
                  f"bytes={stats.get('total_bytes', 0):>10d} "
                  f"peak={stats.get('peak_bytes', 0):>10d} "
                  f"evictions={stats.get('evictions', 0):6d} "
                  f"overshoots={stats.get('overshoots', 0):3d}")
    if recorder:
        _finish_trace(recorder, args.trace_out)
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    results = table1_runtime(
        node_counts=tuple(args.nodes), source_counts=tuple(args.sources)
    )
    header = "|V|      " + "  ".join(f"|S|={s:>3d}" for s in args.sources)
    print(header)
    for n in args.nodes:
        print(f"{n:<8d} " + "  ".join(
            f"{results[(n, s)]:7.2f}" for s in args.sources
        ))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    rows = table2_qoe(trials=args.trials)
    print(f"{'algo':8s} {'startup(s)':>11s} {'rebuffer(s)':>12s}")
    for name, row in rows.items():
        print(f"{name:8s} {row['startup_latency_s']:11.2f} "
              f"{row['rebuffering_s']:12.2f}")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs import (
        PHASE_GROUPS,
        read_trace_events,
        span_totals,
        to_chrome_json,
    )

    try:
        events = read_trace_events(args.trace)
    except (OSError, ValueError) as exc:
        print(f"{args.trace}: INVALID: {exc}", file=sys.stderr)
        return 1
    if args.action == "validate":
        print(f"{args.trace}: valid ({len(events)} spans)")
        return 0
    if args.action == "convert":
        payload = to_chrome_json(events)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            print(f"wrote {args.output} ({len(events)} spans); open it in "
                  "chrome://tracing or https://ui.perfetto.dev")
        else:
            print(payload)
        return 0
    # summary: per-name totals, then the per-phase attribution views.
    totals = span_totals(events)
    print(f"{args.trace}: {len(events)} spans, {len(totals)} span names")
    print(f"{'span':32s} {'total':>12s}")
    for name, seconds in sorted(
        totals.items(), key=lambda kv: (-kv[1], kv[0])
    ):
        print(f"{name:32s} {seconds:11.4f}s")
    print("\nper-phase (attribution views; fork time also nests inside "
          "its dispatching phase):")
    for phase, names in PHASE_GROUPS.items():
        seconds = sum(totals.get(n, 0.0) for n in names)
        print(f"  {phase:8s} {seconds:10.4f}s")
    return 0


def _cmd_analysis(args: argparse.Namespace) -> int:
    from repro.analysis.cli import main as analysis_main

    argv: List[str] = list(args.paths)
    if args.strict:
        argv.append("--strict")
    if args.as_json:
        argv.append("--json")
    if args.no_baseline:
        argv.append("--no-baseline")
    if args.baseline_file is not None:
        argv.extend(["--baseline-file", args.baseline_file])
    if args.list_rules:
        argv.append("--list-rules")
    return analysis_main(argv)


def _add_trace_out(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="enable observability and write a Chrome trace-event JSONL "
             "span trace to PATH (default: observability off, "
             "zero-overhead)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Service Overlay Forest embedding (ICDCS'17 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="embed one instance with every algorithm")
    solve.add_argument("--topology", choices=sorted(_NETWORKS), default="softlayer")
    solve.add_argument("--topology-seed", type=int, default=1)
    solve.add_argument("--sources", type=int, default=14)
    solve.add_argument("--destinations", type=int, default=6)
    solve.add_argument("--vms", type=int, default=25)
    solve.add_argument("--chain", type=int, default=3)
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument("--ilp", action="store_true", help="also solve the exact IP")
    solve.add_argument("--ilp-time-limit", type=float, default=120.0)
    solve.add_argument("--verbose", action="store_true")
    solve.set_defaults(func=_cmd_solve)

    fig7 = sub.add_parser("fig7", help="Fortz-Thorup cost curve")
    fig7.add_argument("--samples", type=int, default=25)
    fig7.set_defaults(func=_cmd_fig7)

    for name, fn, extra in (
        ("fig8", _cmd_fig8, True),
        ("fig9", _cmd_fig9, False),
    ):
        p = sub.add_parser(name, help=f"{name} sweeps")
        p.add_argument("--seeds", type=int, default=3)
        if extra:
            p.add_argument("--ilp", action="store_true")
        _add_trace_out(p)
        p.set_defaults(func=fn)

    fig10 = sub.add_parser("fig10", help="Inet synthetic sweeps")
    fig10.add_argument("--seeds", type=int, default=2)
    fig10.add_argument("--nodes", type=int, default=500)
    _add_trace_out(fig10)
    fig10.set_defaults(func=_cmd_fig10)

    fig11 = sub.add_parser("fig11", help="setup-cost sweeps")
    fig11.add_argument("--seeds", type=int, default=3)
    _add_trace_out(fig11)
    fig11.set_defaults(func=_cmd_fig11)

    fig12 = sub.add_parser("fig12", help="online accumulative cost")
    fig12.add_argument("--topology", choices=["softlayer", "cogent"],
                       default="softlayer")
    fig12.add_argument("--requests", type=int, default=12)
    _add_trace_out(fig12)
    fig12.set_defaults(func=_cmd_fig12)

    workload = sub.add_parser(
        "workload", help="tenant-churn workload (arrivals + departures)"
    )
    workload.add_argument("--topology", choices=sorted(_NETWORKS),
                          default="softlayer")
    workload.add_argument("--topology-seed", type=int, default=1)
    workload.add_argument("--process",
                          choices=["poisson", "diurnal", "flash"],
                          default="diurnal")
    workload.add_argument("--rate", type=float, default=1.0,
                          help="(base) arrivals per time unit")
    workload.add_argument("--horizon", type=float, default=24.0,
                          help="trace length in time units")
    workload.add_argument("--amplitude", type=float, default=0.8,
                          help="diurnal rate modulation in [0, 1]")
    workload.add_argument("--period", type=float, default=24.0,
                          help="diurnal period in time units")
    workload.add_argument("--burst-start", type=float, default=8.0)
    workload.add_argument("--burst-duration", type=float, default=4.0)
    workload.add_argument("--burst-factor", type=float, default=5.0)
    workload.add_argument("--hold-mean", type=float, default=6.0,
                          help="mean exponential holding time")
    holding = workload.add_mutually_exclusive_group()
    holding.add_argument("--hold-fixed", type=float, default=None,
                         help="fixed holding time (overrides --hold-mean)")
    holding.add_argument("--no-departures", action="store_true",
                         help="tenants never depart (the paper's model)")
    workload.add_argument("--seed", type=int, default=0)
    workload.add_argument("--fail-links", type=int, default=0,
                          help="number of failure-prone links (0 = no "
                               "failure injection)")
    workload.add_argument("--mtbf", type=float, default=50.0,
                          help="mean time between failures per link")
    workload.add_argument("--mttr", type=float, default=2.0,
                          help="mean time to recovery per failure")
    workload.add_argument("--failure-seed", type=int, default=0,
                          help="seed for link sampling and the MTBF/MTTR "
                               "renewal draws")
    workload.add_argument("--baselines", action="store_true",
                          help="also run eNEMP/eST/ST")
    workload.add_argument("--record", metavar="PATH",
                          help="record the schedule to a JSONL trace")
    workload.add_argument("--replay", metavar="PATH",
                          help="replay a recorded JSONL trace instead")
    workload.add_argument("--row-budget-mb", type=float, default=None,
                          metavar="MB",
                          help="bound oracle row-cache residency to MB "
                               "megabytes (cost-aware eviction; default "
                               "unbounded)")
    _add_trace_out(workload)
    workload.set_defaults(func=_cmd_workload)

    table1 = sub.add_parser("table1", help="SOFDA runtime grid")
    table1.add_argument("--nodes", type=int, nargs="+",
                        default=[1000, 3000, 5000])
    table1.add_argument("--sources", type=int, nargs="+", default=[2, 14, 26])
    table1.set_defaults(func=_cmd_table1)

    table2 = sub.add_parser("table2", help="testbed QoE")
    table2.add_argument("--trials", type=int, default=20)
    table2.set_defaults(func=_cmd_table2)

    analysis = sub.add_parser(
        "analysis",
        help="AST invariant linter (determinism/oracle/flag/fork rules)",
    )
    analysis.add_argument("paths", nargs="*", default=[],
                          help="files or directories (default: src tests)")
    analysis.add_argument("--strict", action="store_true",
                          help="exit non-zero on any non-baselined finding")
    analysis.add_argument("--json", action="store_true", dest="as_json",
                          help="machine-readable JSON output")
    analysis.add_argument("--no-baseline", action="store_true",
                          help="ignore the committed baseline")
    analysis.add_argument("--baseline-file", default=None, metavar="PATH",
                          help="alternate baseline JSON")
    analysis.add_argument("--list-rules", action="store_true",
                          help="list every rule id and exit")
    analysis.set_defaults(func=_cmd_analysis)

    obs = sub.add_parser(
        "obs", help="inspect span traces written by --trace-out"
    )
    obs.add_argument("action", choices=["summary", "convert", "validate"],
                     help="summary: per-span totals and phase breakdown; "
                          "convert: JSONL -> chrome://tracing JSON; "
                          "validate: schema-check the trace")
    obs.add_argument("trace", metavar="TRACE",
                     help="trace-event JSONL file (from --trace-out)")
    obs.add_argument("-o", "--output", default=None, metavar="PATH",
                     help="convert: write the Chrome JSON here instead of "
                          "stdout")
    obs.set_defaults(func=_cmd_obs)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
