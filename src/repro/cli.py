"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the evaluation artefacts:

- ``solve``     -- embed one sampled instance with every algorithm.
- ``fig7/8/9/10/11/12`` -- regenerate a figure's data series.
- ``table1/table2``     -- regenerate a table.

All output is plain text in the paper's row/series format, so results can
be diffed across runs.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.problem import ServiceChain
from repro.core.sofda import sofda
from repro.experiments import (
    fig7_cost_function,
    fig8_softlayer,
    fig9_cogent,
    fig10_inet,
    fig11_setup_cost,
    fig12_online,
    render_series,
    table1_runtime,
    table2_qoe,
)
from repro.topology import cogent_network, inet_network, softlayer_network

_NETWORKS = {
    "softlayer": softlayer_network,
    "cogent": cogent_network,
    "inet": lambda seed=0: inet_network(
        num_nodes=500, num_links=1000, num_datacenters=200, seed=seed
    ),
}


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro.baselines import enemp_baseline, est_baseline, st_baseline

    network = _NETWORKS[args.topology](seed=args.topology_seed)
    instance = network.make_instance(
        num_sources=args.sources,
        num_destinations=args.destinations,
        num_vms=args.vms,
        chain=ServiceChain.of_length(args.chain),
        seed=args.seed,
    )
    print(f"instance: {instance}")
    result = sofda(instance)
    print(f"{'SOFDA':10s} cost={result.cost:12.3f} "
          f"trees={result.forest.num_trees()} "
          f"vms={len(result.forest.used_vms())} "
          f"conflicts={result.stats.total_conflicted()}")
    for name, fn in (("eNEMP", enemp_baseline), ("eST", est_baseline),
                     ("ST", st_baseline)):
        forest = fn(instance)
        print(f"{name:10s} cost={forest.total_cost():12.3f} "
              f"trees={forest.num_trees()} vms={len(forest.used_vms())}")
    if args.ilp:
        from repro.ilp import solve_sof_ilp

        solution = solve_sof_ilp(instance, time_limit=args.ilp_time_limit)
        print(f"{'CPLEX':10s} cost={solution.objective:12.3f} "
              f"optimal={solution.optimal}")
    if args.verbose:
        print()
        print(result.forest.describe())
    return 0


def _cmd_fig7(args: argparse.Namespace) -> int:
    for load, cost in fig7_cost_function(samples=args.samples):
        print(f"{load:8.4f} {cost:12.4f}")
    return 0


def _print_panels(panels) -> None:
    for parameter, result in panels.items():
        print(render_series(result, title=f"--- {parameter} ---"))
        print()


def _cmd_fig8(args: argparse.Namespace) -> int:
    _print_panels(fig8_softlayer(seeds=args.seeds, include_ilp=args.ilp))
    return 0


def _cmd_fig9(args: argparse.Namespace) -> int:
    _print_panels(fig9_cogent(seeds=args.seeds))
    return 0


def _cmd_fig10(args: argparse.Namespace) -> int:
    _print_panels(fig10_inet(
        seeds=args.seeds, num_nodes=args.nodes,
        num_links=2 * args.nodes, num_datacenters=args.nodes // 3,
    ))
    return 0


def _cmd_fig11(args: argparse.Namespace) -> int:
    data = fig11_setup_cost(seeds=args.seeds)
    print("cost (rows: |C|, cols: multiples 1,3,5,7,9)")
    for length, series in data["cost"].items():
        print(f"  |C|={length}: " + "  ".join(f"{v:9.2f}" for v in series))
    print("used VMs")
    for length, series in data["vms"].items():
        print(f"  |C|={length}: " + "  ".join(f"{v:9.2f}" for v in series))
    return 0


def _cmd_fig12(args: argparse.Namespace) -> int:
    series = fig12_online(topology=args.topology, num_requests=args.requests)
    for name, acc in series.items():
        print(f"{name:8s} " + " ".join(f"{v:10.1f}" for v in acc))
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    results = table1_runtime(
        node_counts=tuple(args.nodes), source_counts=tuple(args.sources)
    )
    header = "|V|      " + "  ".join(f"|S|={s:>3d}" for s in args.sources)
    print(header)
    for n in args.nodes:
        print(f"{n:<8d} " + "  ".join(
            f"{results[(n, s)]:7.2f}" for s in args.sources
        ))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    rows = table2_qoe(trials=args.trials)
    print(f"{'algo':8s} {'startup(s)':>11s} {'rebuffer(s)':>12s}")
    for name, row in rows.items():
        print(f"{name:8s} {row['startup_latency_s']:11.2f} "
              f"{row['rebuffering_s']:12.2f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Service Overlay Forest embedding (ICDCS'17 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="embed one instance with every algorithm")
    solve.add_argument("--topology", choices=sorted(_NETWORKS), default="softlayer")
    solve.add_argument("--topology-seed", type=int, default=1)
    solve.add_argument("--sources", type=int, default=14)
    solve.add_argument("--destinations", type=int, default=6)
    solve.add_argument("--vms", type=int, default=25)
    solve.add_argument("--chain", type=int, default=3)
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument("--ilp", action="store_true", help="also solve the exact IP")
    solve.add_argument("--ilp-time-limit", type=float, default=120.0)
    solve.add_argument("--verbose", action="store_true")
    solve.set_defaults(func=_cmd_solve)

    fig7 = sub.add_parser("fig7", help="Fortz-Thorup cost curve")
    fig7.add_argument("--samples", type=int, default=25)
    fig7.set_defaults(func=_cmd_fig7)

    for name, fn, extra in (
        ("fig8", _cmd_fig8, True),
        ("fig9", _cmd_fig9, False),
    ):
        p = sub.add_parser(name, help=f"{name} sweeps")
        p.add_argument("--seeds", type=int, default=3)
        if extra:
            p.add_argument("--ilp", action="store_true")
        p.set_defaults(func=fn)

    fig10 = sub.add_parser("fig10", help="Inet synthetic sweeps")
    fig10.add_argument("--seeds", type=int, default=2)
    fig10.add_argument("--nodes", type=int, default=500)
    fig10.set_defaults(func=_cmd_fig10)

    fig11 = sub.add_parser("fig11", help="setup-cost sweeps")
    fig11.add_argument("--seeds", type=int, default=3)
    fig11.set_defaults(func=_cmd_fig11)

    fig12 = sub.add_parser("fig12", help="online accumulative cost")
    fig12.add_argument("--topology", choices=["softlayer", "cogent"],
                       default="softlayer")
    fig12.add_argument("--requests", type=int, default=12)
    fig12.set_defaults(func=_cmd_fig12)

    table1 = sub.add_parser("table1", help="SOFDA runtime grid")
    table1.add_argument("--nodes", type=int, nargs="+",
                        default=[1000, 3000, 5000])
    table1.add_argument("--sources", type=int, nargs="+", default=[2, 14, 26])
    table1.set_defaults(func=_cmd_table1)

    table2 = sub.add_parser("table2", help="testbed QoE")
    table2.add_argument("--trials", type=int, default=20)
    table2.set_defaults(func=_cmd_table2)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
