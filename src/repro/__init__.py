"""repro -- Service Overlay Forest embedding for software-defined cloud networks.

A full reproduction of Kuo et al., "Service Overlay Forest Embedding for
Software-Defined Cloud Networks" (ICDCS 2017): the SOF problem model, the
SOFDA-SS and SOFDA approximation algorithms, the exact IP formulation, the
paper's baselines (ST / eST / eNEMP), topology generators, the online and
distributed variants, a tenant-churn workload engine (seeded arrival
processes, holding-time departures, JSONL trace replay), a flow-level QoE
testbed simulator and the complete experiment harness regenerating every
table and figure of the evaluation.

Quickstart::

    from repro import SOFInstance, ServiceChain, sofda
    from repro.topology import softlayer_network

    net = softlayer_network(seed=1)
    instance = net.make_instance(
        num_sources=3, num_destinations=4, num_vms=10,
        chain=ServiceChain.of_length(3), seed=1,
    )
    result = sofda(instance)
    print(result.forest.describe())
"""

from repro.core import (
    ChainWalk,
    DeployedChain,
    ForestInfeasible,
    ServiceChain,
    ServiceOverlayForest,
    SOFInstance,
    check_forest,
    sofda,
    sofda_ss,
)
from repro.graph import Graph

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "ServiceChain",
    "SOFInstance",
    "DeployedChain",
    "ServiceOverlayForest",
    "ChainWalk",
    "sofda",
    "sofda_ss",
    "check_forest",
    "ForestInfeasible",
    "__version__",
]
