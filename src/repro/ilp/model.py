"""MILP compilation of the SOF Integer Program.

Variable semantics (Section III-A), with ``L = |C|`` and 0-based function
indices; the pseudo-functions are ``f_S = -1`` (the source stage) and
``f_D = L`` (the destination, a constant, never a variable):

- ``γ[d, f, u]``: node ``u`` is the enabled VM for function ``f`` on the
  walk to destination ``d`` (``f = -1``: ``u`` ranges over sources).
- ``π[d, f, (u, v)]``: directed arc ``(u, v)`` lies on the stage-``f``
  sub-walk of ``d`` (from the VM of ``f`` to the VM of the next function).
- ``τ[f, (u, v)]``: arc ``(u, v)`` is in the stage-``f`` part of the forest.
- ``σ[f, u]``: VM ``u`` is enabled with function ``f`` forest-wide.

Constraints (1)-(8) are reproduced one-to-one; see the builder's inline
comments.  One deliberate correction: the printed objective sums ``τ`` over
``f ∈ C`` only, which would make every source→f1 edge free and degenerate
the problem -- we sum over ``f ∈ C ∪ {f_S}``, which is clearly the intent
(the IP's own constraint (7)/(8) define those arcs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.core.problem import SOFInstance

Node = Hashable
Arc = Tuple[Node, Node]


@dataclass
class SOFModel:
    """A compiled MILP: ``min c·x  s.t.  lb <= A x <= ub,  x binary``."""

    instance: SOFInstance
    objective: np.ndarray
    matrix: sparse.csr_matrix
    lower: np.ndarray
    upper: np.ndarray
    gamma_index: Dict[Tuple[Node, int, Node], int]
    pi_index: Dict[Tuple[Node, int, Arc], int]
    tau_index: Dict[Tuple[int, Arc], int]
    sigma_index: Dict[Tuple[int, Node], int]

    @property
    def num_variables(self) -> int:
        """Number of binary variables in the compiled program."""
        return self.objective.shape[0]

    @property
    def num_constraints(self) -> int:
        """Number of constraint rows in the compiled program."""
        return self.matrix.shape[0]


def _arcs_of(instance: SOFInstance) -> List[Arc]:
    arcs: List[Arc] = []
    for u, v, _ in instance.graph.edges():
        arcs.append((u, v))
        arcs.append((v, u))
    return arcs


def build_model(instance: SOFInstance) -> SOFModel:
    """Compile ``instance`` into a sparse binary program."""
    L = len(instance.chain)
    destinations = sorted(instance.destinations, key=repr)
    sources = sorted(instance.sources, key=repr)
    vms = sorted(instance.vms, key=repr)
    nodes = sorted(instance.graph.nodes(), key=repr)
    arcs = _arcs_of(instance)
    out_arcs: Dict[Node, List[Arc]] = {n: [] for n in nodes}
    in_arcs: Dict[Node, List[Arc]] = {n: [] for n in nodes}
    for arc in arcs:
        out_arcs[arc[0]].append(arc)
        in_arcs[arc[1]].append(arc)
    stages = [-1] + list(range(L))  # f_S plus f1..fL

    # ------------------------------------------------------------------
    # variable indexing
    # ------------------------------------------------------------------
    gamma_index: Dict[Tuple[Node, int, Node], int] = {}
    pi_index: Dict[Tuple[Node, int, Arc], int] = {}
    tau_index: Dict[Tuple[int, Arc], int] = {}
    sigma_index: Dict[Tuple[int, Node], int] = {}
    counter = 0

    def new_var() -> int:
        """Allocate the next variable index."""
        nonlocal counter
        counter += 1
        return counter - 1

    for d in destinations:
        for s in sources:
            gamma_index[(d, -1, s)] = new_var()
        for f in range(L):
            for u in vms:
                gamma_index[(d, f, u)] = new_var()
    for d in destinations:
        for f in stages:
            for arc in arcs:
                pi_index[(d, f, arc)] = new_var()
    for f in stages:
        for arc in arcs:
            tau_index[(f, arc)] = new_var()
    for f in range(L):
        for u in vms:
            sigma_index[(f, u)] = new_var()

    num_vars = counter
    objective = np.zeros(num_vars)
    for (f, arc), idx in tau_index.items():
        objective[idx] = instance.graph.cost(*arc)
    for (f, u), idx in sigma_index.items():
        objective[idx] = instance.setup_cost(u)

    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    lower: List[float] = []
    upper: List[float] = []
    row = 0

    def add_row(entries: Sequence[Tuple[int, float]], lb: float, ub: float) -> None:
        """Append one constraint row (sparse entries, lb <= row <= ub)."""
        nonlocal row
        for col, val in entries:
            rows.append(row)
            cols.append(col)
            vals.append(val)
        lower.append(lb)
        upper.append(ub)
        row += 1

    INF = np.inf

    # (1) each destination picks exactly one source.
    for d in destinations:
        add_row([(gamma_index[(d, -1, s)], 1.0) for s in sources], 1.0, 1.0)
    # (2) each destination picks exactly one VM per function.
    for d in destinations:
        for f in range(L):
            add_row([(gamma_index[(d, f, u)], 1.0) for u in vms], 1.0, 1.0)
    # (3)/(4) are constants: γ[d, f_D, u] = [u == d]; folded into (7).

    # (5) a VM picked by any destination is enabled forest-wide.
    for d in destinations:
        for f in range(L):
            for u in vms:
                add_row(
                    [(gamma_index[(d, f, u)], 1.0), (sigma_index[(f, u)], -1.0)],
                    -INF, 0.0,
                )
    # (6) at most one VNF per VM.
    for u in vms:
        add_row([(sigma_index[(f, u)], 1.0) for f in range(L)], -INF, 1.0)

    # (7) stage-wise walk construction:
    #     Σ_out π - Σ_in π >= γ[d,f,u] - γ[d,fN,u]   for all d, f, u.
    for d in destinations:
        for f in stages:
            next_f = f + 1  # -1 -> f1, ..., L-1 -> f_D
            for u in nodes:
                entries: List[Tuple[int, float]] = []
                for arc in out_arcs[u]:
                    entries.append((pi_index[(d, f, arc)], 1.0))
                for arc in in_arcs[u]:
                    entries.append((pi_index[(d, f, arc)], -1.0))
                lb = 0.0
                key_f = (d, f, u)
                if key_f in gamma_index:
                    entries.append((gamma_index[key_f], -1.0))
                if next_f == L:
                    # γ[d, f_D, u] is the constant [u == d].
                    if u == d:
                        lb = -1.0
                else:
                    key_n = (d, next_f, u)
                    if key_n in gamma_index:
                        entries.append((gamma_index[key_n], 1.0))
                add_row(entries, lb, INF)

    # (8) per-destination arcs imply forest arcs.
    for d in destinations:
        for f in stages:
            for arc in arcs:
                add_row(
                    [(pi_index[(d, f, arc)], 1.0), (tau_index[(f, arc)], -1.0)],
                    -INF, 0.0,
                )

    matrix = sparse.csr_matrix(
        (vals, (rows, cols)), shape=(row, num_vars)
    )
    return SOFModel(
        instance=instance,
        objective=objective,
        matrix=matrix,
        lower=np.array(lower),
        upper=np.array(upper),
        gamma_index=gamma_index,
        pi_index=pi_index,
        tau_index=tau_index,
        sigma_index=sigma_index,
    )
