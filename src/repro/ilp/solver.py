"""Solve the compiled SOF MILP with HiGHS and extract a forest.

:func:`solve_sof_ilp` returns both the raw optimum objective (directly
comparable with the paper's CPLEX rows) and a decoded
:class:`~repro.core.forest.ServiceOverlayForest`, so the optimum can be
validated with the same feasibility checker and cost evaluator as every
heuristic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.core.forest import DeployedChain, ServiceOverlayForest
from repro.core.problem import SOFInstance
from repro.core.validation import check_forest
from repro.ilp.model import SOFModel, build_model

Node = Hashable
Arc = Tuple[Node, Node]


@dataclass
class ILPSolution:
    """Result of an exact solve.

    Attributes:
        objective: the IP optimum (the paper's "CPLEX" value).
        forest: the decoded forest (validated), or ``None`` when decoding
            was skipped.
        status: HiGHS status string.
        optimal: whether the solver proved optimality.
    """

    objective: float
    forest: Optional[ServiceOverlayForest]
    status: str
    optimal: bool


def _trace_stage_path(
    selected: Dict[Node, List[Node]], start: Node, goal: Node
) -> List[Node]:
    """BFS over selected stage arcs from ``start`` to ``goal``."""
    if start == goal:
        return [start]
    parent: Dict[Node, Node] = {}
    queue = deque([start])
    seen = {start}
    while queue:
        node = queue.popleft()
        for nxt in selected.get(node, ()):
            if nxt in seen:
                continue
            seen.add(nxt)
            parent[nxt] = node
            if nxt == goal:
                path = [goal]
                while path[-1] != start:
                    path.append(parent[path[-1]])
                path.reverse()
                return path
            queue.append(nxt)
    raise ValueError(f"IP solution has no stage path {start!r} -> {goal!r}")


def extract_forest(model: SOFModel, x: np.ndarray) -> ServiceOverlayForest:
    """Decode a binary solution vector into a service overlay forest.

    Per destination: read the source and VM assignments from ``γ``, then
    trace each stage's sub-walk through the selected ``π`` arcs.  The
    forest has one chain per destination; the stage-keyed cost accounting
    of :class:`ServiceOverlayForest` then reproduces the IP's ``τ``
    objective (shared stage arcs paid once).
    """
    instance = model.instance
    L = len(instance.chain)
    forest = ServiceOverlayForest(instance=instance)

    # Group the selected π arcs by (destination, stage) in one pass.
    selected_arcs: Dict[Tuple[Node, int], Dict[Node, List[Node]]] = {}
    for (d, f, arc), idx in model.pi_index.items():
        if x[idx] > 0.5:
            selected_arcs.setdefault((d, f), {}).setdefault(arc[0], []).append(arc[1])

    for d in sorted(instance.destinations, key=repr):
        source = next(
            s for s in sorted(instance.sources, key=repr)
            if x[model.gamma_index[(d, -1, s)]] > 0.5
        )
        vm_of: Dict[int, Node] = {
            f: next(
                u for u in sorted(instance.vms, key=repr)
                if x[model.gamma_index[(d, f, u)]] > 0.5
            )
            for f in range(L)
        }
        # Waypoints: source, VM of f1, ..., VM of fL, destination.  Stage f
        # runs from waypoints[f+1] to waypoints[f+2]; function f+1 (0-based)
        # is placed at the node where stage f's segment ends.
        waypoints = [source] + [vm_of[f] for f in range(L)] + [d]
        walk: List[Node] = [source]
        placements: Dict[int, int] = {}
        for f in range(-1, L):
            segment = _trace_stage_path(
                selected_arcs.get((d, f), {}), waypoints[f + 1], waypoints[f + 2]
            )
            walk.extend(segment[1:])
            if f + 1 < L:
                # Stage f ends at the VM running function f+1 (0-based).
                placements[len(walk) - 1] = f + 1
        forest.chains.append(DeployedChain(walk=walk, placements=placements))
    # Rebuild the enabled map from the per-destination placements.
    enabled: Dict[Node, int] = {}
    for chain in forest.chains:
        for pos, vnf in chain.placements.items():
            enabled[chain.walk[pos]] = vnf
    forest.enabled = enabled
    return forest


def solve_sof_ilp(
    instance: SOFInstance,
    time_limit: Optional[float] = None,
    decode: bool = True,
    validate: bool = True,
) -> ILPSolution:
    """Solve the SOF IP exactly (the paper's CPLEX column).

    Args:
        instance: the SOF instance.
        time_limit: optional solver wall-clock limit in seconds.
        decode: also reconstruct the forest from the solution vector.
        validate: feasibility-check the decoded forest.
    """
    model = build_model(instance)
    options: Dict[str, float] = {}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    result = milp(
        c=model.objective,
        constraints=LinearConstraint(model.matrix, model.lower, model.upper),
        integrality=np.ones_like(model.objective),
        bounds=Bounds(0.0, 1.0),
        options=options or None,
    )
    if result.x is None:
        raise RuntimeError(f"ILP solve failed: {result.message}")
    forest = None
    if decode:
        forest = extract_forest(model, result.x)
        if validate:
            check_forest(instance, forest)
    return ILPSolution(
        objective=float(result.fun),
        forest=forest,
        status=str(result.message),
        optimal=bool(result.status == 0),
    )


def sof_lp_bound(instance: SOFInstance) -> float:
    """LP-relaxation lower bound (useful on instances too big for the IP)."""
    model = build_model(instance)
    result = milp(
        c=model.objective,
        constraints=LinearConstraint(model.matrix, model.lower, model.upper),
        integrality=np.zeros_like(model.objective),
        bounds=Bounds(0.0, 1.0),
    )
    if result.x is None:
        raise RuntimeError(f"LP solve failed: {result.message}")
    return float(result.fun)
