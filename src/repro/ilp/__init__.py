"""Exact Integer Programming formulation of SOF (Section III-A).

The paper solves its IP with CPLEX; this reproduction compiles the same
formulation -- variables ``γ`` (per-destination VM assignment), ``π``
(per-destination per-stage arc selection), ``τ`` (per-stage forest arcs)
and ``σ`` (enabled VMs) with constraints (1)-(8) -- into a sparse MILP and
solves it with ``scipy.optimize.milp`` (HiGHS), which is exact.

Use :func:`solve_sof_ilp` for the optimum (small/medium instances) and
:func:`sof_lp_bound` for the LP-relaxation lower bound on larger ones.
"""

from repro.ilp.model import SOFModel, build_model
from repro.ilp.solver import ILPSolution, solve_sof_ilp, sof_lp_bound

__all__ = [
    "SOFModel",
    "build_model",
    "ILPSolution",
    "solve_sof_ilp",
    "sof_lp_bound",
]
