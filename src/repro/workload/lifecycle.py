"""Tenant lifecycle engine: arrivals, holds, departures, background churn.

The paper's online scenario (Section VIII-A) only ever *adds* load: each
embedded request charges its demand to every link and VM it uses and the
Fortz--Thorup costs ratchet upward forever.  Real tenants leave.  This
module closes the loop: every arrival that embeds successfully holds its
resources for a (seeded) holding time and then departs, releasing exactly
the loads its :class:`~repro.online.simulator.Lease` recorded.  Released
links re-price *downward*, so departures reach the oracle as
decrease-carrying batches of
:meth:`~repro.graph.indexed.FrozenOracle.patch_edge_costs` -- the repair
path that routes through the per-row reference (a decrease moves parents
mid-repair, so the cross-row plan does not apply) and that no
arrivals-only workload ever exercises.

A *schedule* is an embedder-independent list of :class:`WorkloadEvent`\\ s
(arrivals with pre-drawn holding times, plus background-load ticks), so
competing embedders and simulator configurations replay the identical
event sequence; :class:`WorkloadEngine` interleaves the schedule with the
departures it spawns in deterministic timestamp order.
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.forest import ServiceOverlayForest
from repro.core.problem import SOFInstance
from repro.online.requests import Request
from repro.online.simulator import OnlineSimulator
from repro.workload.processes import ArrivalProcess

Embedder = Callable[[SOFInstance], ServiceOverlayForest]

#: Same-time tie-break: departures free capacity first, recoveries bring
#: links back before new failures hit (a same-instant recover+fail of one
#: link is a flap, not a double-fail), background ticks re-price next,
#: and arrivals see the settled state last.
_PRIORITY = {"depart": 0, "recover": 1, "fail": 2, "background": 3, "arrive": 4}


# ----------------------------------------------------------------------
# holding-time policies
# ----------------------------------------------------------------------
class FixedHolding:
    """Every tenant holds for the same ``duration`` (``inf`` = forever)."""

    def __init__(self, duration: float) -> None:
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration!r}")
        self._duration = duration

    def draw(self) -> float:
        return self._duration


class ExponentialHolding:
    """Memoryless holding times with the given ``mean``.

    Draws are seeded and happen once per arrival at *schedule build*
    time, so the holding-time stream never depends on which requests an
    embedder accepts -- a prerequisite for replaying one schedule through
    several algorithms.
    """

    def __init__(self, mean: float, seed: int = 0) -> None:
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean!r}")
        self._mean = mean
        self._rng = random.Random(seed)

    def draw(self) -> float:
        return self._rng.expovariate(1.0 / self._mean)


# ----------------------------------------------------------------------
# schedules
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadEvent:
    """One embedder-independent schedule entry.

    ``kind`` is ``"arrive"`` (carries ``request`` and the pre-drawn
    ``hold``; ``hold=None`` or ``inf`` means the tenant never departs),
    ``"background"`` (carries ``links`` and ``demand_mbps`` for an
    :meth:`OnlineSimulator.apply_background_load` tick), or ``"fail"`` /
    ``"recover"`` (carry ``link``, the physical link that dies or comes
    back -- :meth:`OnlineSimulator.fail_link` /
    :meth:`OnlineSimulator.recover_link`).
    """

    time: float
    kind: str
    request: Optional[Request] = None
    hold: Optional[float] = None
    links: Tuple[Tuple[object, object], ...] = ()
    demand_mbps: float = 0.0
    link: Optional[Tuple[object, object]] = None


@dataclass(frozen=True)
class BackgroundChurn:
    """Periodic cross-tenant load ticks cycling through link batches."""

    period: float
    link_batches: Tuple[Tuple[Tuple[object, object], ...], ...]
    demand_mbps: float

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period!r}")
        if not self.link_batches:
            raise ValueError("link_batches must contain at least one batch")
        if self.demand_mbps < 0:
            raise ValueError(
                f"demand_mbps must be >= 0, got {self.demand_mbps!r}"
            )

    def events(self, horizon: float) -> List[WorkloadEvent]:
        out = []
        tick = 0
        while (tick + 1) * self.period <= horizon:
            batch = self.link_batches[tick % len(self.link_batches)]
            out.append(WorkloadEvent(
                time=(tick + 1) * self.period, kind="background",
                links=tuple(batch), demand_mbps=self.demand_mbps,
            ))
            tick += 1
        return out


def build_schedule(
    process: ArrivalProcess,
    horizon: float,
    holding,
    background: Optional[BackgroundChurn] = None,
    failures=None,
) -> List[WorkloadEvent]:
    """Materialise one embedder-independent schedule up to ``horizon``.

    Holding times are drawn from ``holding`` (an object with ``draw()``,
    or ``None`` for tenants that never depart) at build time, one per
    arrival, so the schedule is a pure function of its seeds.
    ``failures`` (a :class:`~repro.workload.processes.LinkFailureProcess`,
    or any object with ``events(horizon)`` yielding timestamped
    fail/recover link events) interleaves link failures and recoveries
    with the churn; recoveries scheduled past the horizon are kept so no
    trace ends with a permanently dead link.
    """
    events = [
        WorkloadEvent(
            time=arrival.time, kind="arrive", request=arrival.request,
            hold=holding.draw() if holding is not None else None,
        )
        for arrival in process.arrivals(horizon)
    ]
    if background is not None:
        events.extend(background.events(horizon))
    if failures is not None:
        events.extend(
            WorkloadEvent(time=e.time, kind=e.kind, link=tuple(e.link))
            for e in failures.events(horizon)
        )
    events.sort(key=lambda e: (e.time, _PRIORITY[e.kind]))
    return events


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
@dataclass
class ChurnResult:
    """Outcome of one schedule replayed through one embedder."""

    name: str = ""
    #: Embedding-time cost per arrival, in arrival order; ``None`` marks
    #: a rejected request.
    per_request_cost: List[Optional[float]] = field(default_factory=list)
    request_indices: List[int] = field(default_factory=list)
    arrival_times: List[float] = field(default_factory=list)
    accepted: int = 0
    rejected: int = 0
    departures: int = 0
    peak_active: int = 0
    final_active: int = 0
    #: Availability accounting (link-failure events).  ``rerouted`` and
    #: ``disrupted`` count lease outcomes across all failures: a tenant
    #: moved to surviving paths versus released mid-lease.
    failures: int = 0
    recoveries: int = 0
    rerouted: int = 0
    disrupted: int = 0
    #: Per-recovery downtime (recover time minus fail time), in trace
    #: time units, in recovery order.
    recovery_latencies: List[float] = field(default_factory=list)
    #: Oracle row-cache counters captured at end of run (rows resident,
    #: bytes, hits/misses, evictions); ``None`` when the simulator does
    #: not expose :meth:`~repro.online.simulator.OnlineSimulator.cache_stats`.
    cache_stats: Optional[dict] = None

    @property
    def acceptance_rate(self) -> float:
        """Accepted arrivals over all arrivals (1.0 on an empty run)."""
        total = self.accepted + self.rejected
        return self.accepted / total if total else 1.0

    @property
    def disruption_rate(self) -> float:
        """Disrupted tenants over all accepted tenants (0.0 on empty)."""
        return self.disrupted / self.accepted if self.accepted else 0.0

    @property
    def mean_recovery_latency(self) -> float:
        """Mean link downtime per recovery (0.0 with no recoveries)."""
        if not self.recovery_latencies:
            return 0.0
        return sum(self.recovery_latencies) / len(self.recovery_latencies)

    @property
    def total_cost(self) -> float:
        """Sum of embedding-time costs over accepted requests."""
        return sum(c for c in self.per_request_cost if c is not None)


class WorkloadEngine:
    """Replay one schedule through one simulator, spawning departures.

    The event loop pops ``(time, kind-priority, sequence)``-ordered
    events from a heap: schedule entries enter with their build order as
    the sequence, accepted arrivals push a departure event at
    ``time + hold``, and every pop is therefore deterministic for a given
    schedule and embedder.  Departures release the arrival's
    :class:`~repro.online.simulator.Lease`, which flows back to the
    oracle as a decrease patch at the next cost sync.

    ``fail`` / ``recover`` schedule entries call
    :meth:`OnlineSimulator.fail_link` / :meth:`recover_link` and fold the
    returned :class:`~repro.online.simulator.FailureImpact` into the
    availability counters (``rerouted``, ``disrupted``,
    ``recovery_latencies``).  A tenant disrupted by a failure is released
    at failure time; its scheduled departure becomes a no-op (the engine
    checks :attr:`Lease.released` before releasing again).
    """

    def __init__(
        self,
        simulator: OnlineSimulator,
        embedder: Embedder,
        name: str = "",
        metrics: Optional[object] = None,
    ) -> None:
        self._simulator = simulator
        self._embedder = embedder
        self._name = name
        # ``metrics=None`` inherits the simulator's recorder, so one
        # ``OnlineSimulator(metrics=...)`` instruments the whole stack;
        # the engine stays zero-overhead when neither carries one.
        mx = metrics if metrics is not None else getattr(
            simulator, "metrics", None
        )
        self._metrics = mx if mx else None

    def run(self, schedule: Sequence[WorkloadEvent]) -> ChurnResult:
        result = ChurnResult(name=self._name)
        mx = self._metrics
        heap: List[Tuple[float, int, int, WorkloadEvent, object]] = []
        sequence = 0
        for event in schedule:
            heapq.heappush(
                heap, (event.time, _PRIORITY[event.kind], sequence, event, None)
            )
            sequence += 1
        active = 0
        fail_times: dict = {}
        while heap:
            time, _, _, event, lease = heapq.heappop(heap)
            t0 = mx.clock() if mx else 0.0
            if event.kind == "depart":
                if lease.released:
                    # A link failure already disrupted this tenant; its
                    # loads went back at release time, so the scheduled
                    # departure is a no-op.
                    pass
                else:
                    self._simulator.release(lease)
                    result.departures += 1
                    active -= 1
            elif event.kind == "fail":
                impact = self._simulator.fail_link(*event.link)
                result.failures += 1
                result.rerouted += len(impact.rerouted)
                result.disrupted += len(impact.disrupted)
                active -= len(impact.disrupted)
                fail_times[tuple(event.link)] = time
            elif event.kind == "recover":
                self._simulator.recover_link(*event.link)
                result.recoveries += 1
                failed_at = fail_times.pop(tuple(event.link), None)
                if failed_at is not None:
                    result.recovery_latencies.append(time - failed_at)
            elif event.kind == "background":
                self._simulator.apply_background_load(
                    event.links, event.demand_mbps
                )
            elif event.kind == "arrive":
                cost = self._arrive(event, heap, sequence)
                sequence += 1
                result.per_request_cost.append(cost)
                result.request_indices.append(event.request.index)
                result.arrival_times.append(time)
                if cost is None:
                    result.rejected += 1
                    if mx:
                        mx.inc("workload.rejected", algo=self._name)
                else:
                    result.accepted += 1
                    active += 1
                    result.peak_active = max(result.peak_active, active)
                    if mx:
                        mx.inc("workload.accepted", algo=self._name)
            else:
                raise ValueError(f"unknown event kind {event.kind!r}")
            if mx:
                mx.span("workload.event", t0, kind=event.kind)
        result.final_active = active
        stats_fn = getattr(self._simulator, "cache_stats", None)
        if callable(stats_fn):
            result.cache_stats = stats_fn()
        return result

    def _arrive(self, event, heap, sequence) -> Optional[float]:
        """Embed one arrival; schedule its departure on acceptance."""
        cost, lease = self._simulator.embed_leased(
            event.request, self._embedder
        )
        if cost is None:
            return None
        if event.hold is not None and math.isfinite(event.hold):
            departure = WorkloadEvent(
                time=event.time + event.hold, kind="depart",
                request=event.request,
            )
            heapq.heappush(
                heap,
                (departure.time, _PRIORITY["depart"], sequence, departure,
                 lease),
            )
        return cost
