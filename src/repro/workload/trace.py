"""JSONL record/replay for workload schedules.

A recorded trace pins the *entire* event sequence -- arrival timestamps,
request contents (the Section VIII-A mix: source/destination sets, the
service chain, the 5 Mbps demand), pre-drawn holding times, and
background-load ticks -- so competing embedders and simulator
configurations (``incremental`` on/off, ``planner`` on/off) replay
bit-identical workloads from a file instead of re-deriving them from
seeds.  Replaying a recorded schedule through the same engine and
embedder yields identical per-request costs and acceptance decisions.

Format: one JSON object per line.  The first line is a header
(``{"record": "sof-workload-trace", "version": 2}``); every other line is
one :class:`~repro.workload.lifecycle.WorkloadEvent`.  Nodes may be ints,
strings, or (nested) tuples -- tuples are encoded as JSON arrays, which
is unambiguous because lists are unhashable and can never be graph
nodes.

Version history: version 1 traces are churn-only (``arrive`` /
``background``); version 2 adds ``fail`` / ``recover`` link events (each
carrying a ``link`` pair).  Readers accept both; :func:`dump_trace`
writes the oldest version that can represent the events, so churn-only
traces remain version 1 and replay under old readers.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Union

from repro.core.problem import ServiceChain
from repro.online.requests import Request
from repro.workload.lifecycle import WorkloadEvent

TRACE_RECORD = "sof-workload-trace"
TRACE_VERSION = 2
#: Versions this reader can replay (1 = churn-only, 2 = + fail/recover).
SUPPORTED_TRACE_VERSIONS = (1, 2)


def _encode_node(node):
    """Tuples (the only non-scalar node shape) become JSON arrays."""
    if isinstance(node, tuple):
        return [_encode_node(item) for item in node]
    return node


def _decode_node(value):
    if isinstance(value, list):
        return tuple(_decode_node(item) for item in value)
    return value


def _encode_event(event: WorkloadEvent) -> dict:
    record = {"time": event.time, "kind": event.kind}
    if event.kind == "arrive":
        request = event.request
        # A non-finite hold ("never departs") is encoded as null: the
        # engine treats the two identically, and ``Infinity`` is not
        # valid JSON for strict parsers outside Python.
        hold = event.hold
        record["hold"] = (
            hold if hold is not None and math.isfinite(hold) else None
        )
        record["request"] = {
            "index": request.index,
            "sources": [_encode_node(n) for n in request.sources],
            "destinations": [_encode_node(n) for n in request.destinations],
            "chain": list(request.chain),
            "demand_mbps": request.demand_mbps,
        }
    elif event.kind == "background":
        record["links"] = [
            [_encode_node(u), _encode_node(v)] for u, v in event.links
        ]
        record["demand_mbps"] = event.demand_mbps
    elif event.kind in ("fail", "recover"):
        u, v = event.link
        record["link"] = [_encode_node(u), _encode_node(v)]
    else:
        raise ValueError(
            f"only schedule events (arrive/background/fail/recover) are "
            f"recordable, got kind {event.kind!r}"
        )
    return record


def _decode_event(record: dict) -> WorkloadEvent:
    kind = record["kind"]
    if kind == "arrive":
        payload = record["request"]
        request = Request(
            index=payload["index"],
            sources=tuple(_decode_node(n) for n in payload["sources"]),
            destinations=tuple(
                _decode_node(n) for n in payload["destinations"]
            ),
            chain=ServiceChain(payload["chain"]),
            demand_mbps=payload["demand_mbps"],
        )
        return WorkloadEvent(
            time=record["time"], kind="arrive", request=request,
            hold=record["hold"],
        )
    if kind == "background":
        links = tuple(
            (_decode_node(u), _decode_node(v)) for u, v in record["links"]
        )
        return WorkloadEvent(
            time=record["time"], kind="background", links=links,
            demand_mbps=record["demand_mbps"],
        )
    if kind in ("fail", "recover"):
        u, v = record["link"]
        return WorkloadEvent(
            time=record["time"], kind=kind,
            link=(_decode_node(u), _decode_node(v)),
        )
    raise ValueError(f"unknown event kind {kind!r} in trace")


def dump_trace(
    events: Iterable[WorkloadEvent], meta: Optional[Dict] = None
) -> Iterator[str]:
    """Yield the JSONL lines of a trace (header first).

    ``meta`` is free-form JSON-serialisable provenance stored in the
    header (e.g. the topology name and seed the trace was generated
    against), so a replay can detect -- or reconstruct -- the
    environment the events assume.

    The header carries the oldest version that can represent the
    events: churn-only traces stay version 1 (replayable by pre-failure
    readers); any ``fail``/``recover`` event promotes the trace to
    version 2.
    """
    materialised = list(events)
    version = 2 if any(
        e.kind in ("fail", "recover") for e in materialised
    ) else 1
    header = {"record": TRACE_RECORD, "version": version}
    if meta:
        header["meta"] = meta
    yield json.dumps(header, sort_keys=True)
    for event in materialised:
        yield json.dumps(_encode_event(event), sort_keys=True)


def _parse_header(line: str) -> dict:
    header = json.loads(line)
    if not isinstance(header, dict) or header.get("record") != TRACE_RECORD:
        raise ValueError(f"not a workload trace: header {header!r}")
    if header.get("version") not in SUPPORTED_TRACE_VERSIONS:
        raise ValueError(
            f"unsupported trace version {header.get('version')!r} "
            f"(supported: {SUPPORTED_TRACE_VERSIONS})"
        )
    return header


def load_trace(lines: Iterable[str]) -> List[WorkloadEvent]:
    """Parse JSONL lines back into a schedule (header validated)."""
    iterator = iter(lines)
    try:
        _parse_header(next(iterator))
    except StopIteration:
        raise ValueError("empty trace: missing header line") from None
    return [
        _decode_event(json.loads(line))
        for line in iterator
        if line.strip()
    ]


def load_trace_metadata(lines: Iterable[str]) -> Dict:
    """The ``meta`` provenance recorded in a trace's header line."""
    try:
        header = _parse_header(next(iter(lines)))
    except StopIteration:
        raise ValueError("empty trace: missing header line") from None
    return header.get("meta", {})


def write_trace(
    events: Iterable[WorkloadEvent],
    path: Union[str, Path],
    meta: Optional[Dict] = None,
) -> None:
    """Record a schedule to a JSONL file."""
    Path(path).write_text("\n".join(dump_trace(events, meta=meta)) + "\n")


def read_trace(path: Union[str, Path]) -> List[WorkloadEvent]:
    """Replay a schedule from a JSONL file."""
    return load_trace(Path(path).read_text().splitlines())


def read_trace_metadata(path: Union[str, Path]) -> Dict:
    """The ``meta`` provenance of a recorded trace file."""
    return load_trace_metadata(Path(path).read_text().splitlines())
