"""Tenant-churn workload engine (arrivals, departures, trace replay).

The paper's online evaluation (Section VIII-A, Fig. 12) replays a flat
request *list*; this package upgrades that to full tenant lifecycles:

- :mod:`~repro.workload.processes` -- seeded Poisson / diurnal /
  flash-crowd arrival processes yielding timestamped requests, plus the
  MTBF/MTTR :class:`LinkFailureProcess` emitting fail/recover link
  events.
- :mod:`~repro.workload.lifecycle` -- the :class:`WorkloadEngine` event
  loop interleaving arrivals, holding-time departures (released leases
  flow back to the oracle as decrease patches), and background-load
  ticks in deterministic timestamp order.
- :mod:`~repro.workload.trace` -- JSONL record/replay so different
  embedders and simulator configurations see bit-identical workloads.
"""

from repro.workload.lifecycle import (
    BackgroundChurn,
    ChurnResult,
    ExponentialHolding,
    FixedHolding,
    WorkloadEngine,
    WorkloadEvent,
    build_schedule,
)
from repro.workload.processes import (
    Arrival,
    ArrivalProcess,
    DiurnalArrivals,
    FlashCrowdArrivals,
    LinkEvent,
    LinkFailureProcess,
    PoissonArrivals,
)
from repro.workload.trace import (
    dump_trace,
    load_trace,
    load_trace_metadata,
    read_trace,
    read_trace_metadata,
    write_trace,
)

__all__ = [
    "Arrival",
    "ArrivalProcess",
    "BackgroundChurn",
    "ChurnResult",
    "DiurnalArrivals",
    "ExponentialHolding",
    "FixedHolding",
    "FlashCrowdArrivals",
    "LinkEvent",
    "LinkFailureProcess",
    "PoissonArrivals",
    "WorkloadEngine",
    "WorkloadEvent",
    "build_schedule",
    "dump_trace",
    "load_trace",
    "load_trace_metadata",
    "read_trace",
    "read_trace_metadata",
    "write_trace",
]
