"""Seeded arrival processes for the tenant-churn workload engine.

Section VIII-A's online scenario fixes the *content* of each request
(source/destination counts, 3 services, 5 Mbps) but treats arrivals as a
plain sequence.  Production traffic is not: tenants arrive at a rate that
varies over the day and occasionally spikes.  This module provides three
seeded arrival-time processes -- all thinning-based, so the same seed
always reproduces the same timestamps -- and pairs each accepted arrival
time with the next :class:`~repro.online.requests.Request` from the
existing :class:`~repro.online.requests.RequestGenerator` (which keeps
the paper's per-topology request mix intact):

- :class:`PoissonArrivals`: constant rate (memoryless inter-arrivals),
  the paper-faithful steady stream.
- :class:`DiurnalArrivals`: sinusoidal day/night modulation of the rate.
- :class:`FlashCrowdArrivals`: a constant base rate with one burst
  window at a multiplied rate (a flash crowd / launch event).

Arrival *times* and request *contents* come from independent seeded
streams, so two processes over the same generator seed draw identical
request sequences even when their timestamps differ.

:class:`LinkFailureProcess` is the availability-side counterpart: a
seeded MTBF/MTTR alternating renewal process emitting ``fail`` /
``recover`` :class:`LinkEvent`\\ s over a fixed link set, feeding the
workload engine's link-failure events.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.online.requests import Request, RequestGenerator


@dataclass(frozen=True)
class Arrival:
    """One timestamped tenant arrival."""

    time: float
    request: Request


@dataclass(frozen=True)
class LinkEvent:
    """One timestamped link transition (``kind`` is ``fail``/``recover``)."""

    time: float
    kind: str
    link: Tuple[object, object]


class ArrivalProcess:
    """Base: an inhomogeneous Poisson process realised by thinning.

    Subclasses define ``rate(t)`` (instantaneous arrivals per unit time)
    and ``peak_rate`` (an upper bound on ``rate``).  Candidate points are
    drawn at ``peak_rate`` and accepted with probability
    ``rate(t) / peak_rate`` (Lewis--Shedler thinning), so the realised
    process is exact for any bounded rate function and fully determined
    by the seed.
    """

    def __init__(self, generator: RequestGenerator, seed: int = 0) -> None:
        self._generator = generator
        self._rng = random.Random(seed)

    # -- subclass surface ------------------------------------------------
    def rate(self, t: float) -> float:
        """Instantaneous arrival rate at time ``t``."""
        raise NotImplementedError

    @property
    def peak_rate(self) -> float:
        """An upper bound on :meth:`rate` over the whole horizon."""
        raise NotImplementedError

    # --------------------------------------------------------------------
    def arrivals(self, horizon: float) -> Iterator[Arrival]:
        """Yield :class:`Arrival`\\ s with ``0 < time <= horizon``."""
        peak = self.peak_rate
        if peak <= 0:
            raise ValueError(f"peak_rate must be positive, got {peak!r}")
        rng = self._rng
        t = 0.0
        while True:
            t += rng.expovariate(peak)
            if t > horizon:
                return
            if rng.random() * peak <= self.rate(t):
                yield Arrival(time=t, request=self._generator.next_request())

    def take(self, horizon: float) -> List[Arrival]:
        """Materialise every arrival up to ``horizon``."""
        return list(self.arrivals(horizon))


class PoissonArrivals(ArrivalProcess):
    """Constant-rate arrivals: exponential inter-arrival times."""

    def __init__(
        self, generator: RequestGenerator, rate: float, seed: int = 0
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        super().__init__(generator, seed=seed)
        self._rate = rate

    def rate(self, t: float) -> float:
        return self._rate

    @property
    def peak_rate(self) -> float:
        return self._rate


class DiurnalArrivals(ArrivalProcess):
    """Day/night rate modulation: ``base * (1 + amplitude * sin(...))``.

    ``period`` is the length of one "day" in trace time units; the rate
    peaks a quarter-period in (``t = period/4`` with ``phase=0``) and
    bottoms out three quarters in.  ``amplitude`` in ``[0, 1]`` keeps the
    rate non-negative.
    """

    def __init__(
        self,
        generator: RequestGenerator,
        base_rate: float,
        amplitude: float = 0.8,
        period: float = 24.0,
        phase: float = 0.0,
        seed: int = 0,
    ) -> None:
        if base_rate <= 0:
            raise ValueError(f"base_rate must be positive, got {base_rate!r}")
        if not 0.0 <= amplitude <= 1.0:
            raise ValueError(f"amplitude must be in [0, 1], got {amplitude!r}")
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        super().__init__(generator, seed=seed)
        self._base = base_rate
        self._amplitude = amplitude
        self._period = period
        self._phase = phase

    def rate(self, t: float) -> float:
        angle = 2.0 * math.pi * (t + self._phase) / self._period
        return self._base * (1.0 + self._amplitude * math.sin(angle))

    @property
    def peak_rate(self) -> float:
        return self._base * (1.0 + self._amplitude)


class FlashCrowdArrivals(ArrivalProcess):
    """Base-rate arrivals with one burst window at a multiplied rate."""

    def __init__(
        self,
        generator: RequestGenerator,
        base_rate: float,
        burst_start: float,
        burst_duration: float,
        burst_factor: float = 5.0,
        seed: int = 0,
    ) -> None:
        if base_rate <= 0:
            raise ValueError(f"base_rate must be positive, got {base_rate!r}")
        if burst_duration < 0:
            raise ValueError(
                f"burst_duration must be >= 0, got {burst_duration!r}"
            )
        if burst_factor < 1.0:
            raise ValueError(
                f"burst_factor must be >= 1, got {burst_factor!r}"
            )
        super().__init__(generator, seed=seed)
        self._base = base_rate
        self._burst_start = burst_start
        self._burst_end = burst_start + burst_duration
        self._factor = burst_factor

    def rate(self, t: float) -> float:
        if self._burst_start <= t < self._burst_end:
            return self._base * self._factor
        return self._base

    @property
    def peak_rate(self) -> float:
        return self._base * self._factor


class LinkFailureProcess:
    """Seeded MTBF/MTTR renewal process over a fixed set of links.

    Each link alternates exponentially-distributed up-times (mean
    ``mtbf``) and down-times (mean ``mttr``), the classic alternating
    renewal availability model.  All draws come from one
    ``random.Random(seed)`` consumed link-by-link in the order the links
    were given -- the same Lewis--Shedler-style seeding discipline as the
    arrival processes, so the failure timeline is a pure function of
    ``(links, mtbf, mttr, seed)`` and replays identically against every
    embedder and simulator configuration.

    ``events(horizon)`` emits a ``fail`` event for every failure that
    starts within the horizon and *always* emits its matching
    ``recover`` event, even past the horizon: a failure must never leak
    a permanently dead link into a finite trace.
    """

    def __init__(
        self,
        links: Sequence[Tuple[object, object]],
        mtbf: float,
        mttr: float,
        seed: int = 0,
    ) -> None:
        if mtbf <= 0:
            raise ValueError(f"mtbf must be positive, got {mtbf!r}")
        if mttr <= 0:
            raise ValueError(f"mttr must be positive, got {mttr!r}")
        if not links:
            raise ValueError("links must contain at least one link")
        self._links = [tuple(link) for link in links]
        self._mtbf = mtbf
        self._mttr = mttr
        self._seed = seed

    def events(self, horizon: float) -> List[LinkEvent]:
        """Materialise the fail/recover timeline up to ``horizon``."""
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon!r}")
        rng = random.Random(self._seed)
        out: List[LinkEvent] = []
        for link in self._links:
            t = 0.0
            while True:
                t += rng.expovariate(1.0 / self._mtbf)
                if t > horizon:
                    break
                down = rng.expovariate(1.0 / self._mttr)
                out.append(LinkEvent(time=t, kind="fail", link=link))
                out.append(LinkEvent(time=t + down, kind="recover", link=link))
                t += down
        out.sort(key=lambda e: (e.time, e.kind, repr(e.link)))
        return out
