"""VNF conflict resolution (Procedure 4 and Fig. 5 of the paper).

When SOFDA deploys the walks corresponding to the virtual edges of its
Steiner tree, two walks may compete for the same VM with *different* VNFs
-- a **VNF conflict**.  Procedure 4 resolves a conflict between the
incoming walk ``W`` (wanting ``f_j`` at VM ``u``) and the resident walk
``Wk`` (running ``f_i`` at ``u``) without adding links or enabling new
VMs:

1. **Case 1** (``j <= i``): attach ``W`` to ``Wk`` through ``u`` -- ``W``'s
   new prefix is ``Wk``'s walk up to ``u`` (reusing ``Wk``'s enabled VMs for
   ``f_1..f_i``); ``W`` keeps its own placements for ``f_{i+1}..f_{|C|}``.
2. **Case 2** (there is another conflict VM ``w`` where ``Wk`` runs ``f_h``
   with ``h >= j``): attach ``W`` to ``Wk`` through ``w`` and keep ``W``'s
   placements for ``f_{h+1}..f_{|C|}``.
3. **Case 3** (otherwise): attach ``Wk`` to ``W`` through ``u`` -- ``Wk``'s
   new prefix is ``W``'s walk up to ``u``, and ``Wk`` keeps its own
   placements for ``f_{j+1}..f_{|C|}``.

Conflicts are processed "by backtracking ``W``" (from the last VM towards
the source), which guarantees the kept suffix placements are conflict-free.
Because case 3 mutates an already-deployed walk, the resolution loop is
bounded and falls back to two always-feasible repairs (documented in
DESIGN.md and counted in :class:`ResolutionStats`):

- **repair**: recompute the chain over *unenabled* VMs only, ending at a
  fresh last VM, then run pass-through to the original hand-off node;
- **graft**: serve the hand-off node directly from an existing complete
  chain's delivery point via shortest-path tree edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.forest import DeployedChain, ServiceOverlayForest
from repro.core.problem import SOFInstance
from repro.core.transform import ChainWalk, chain_walk

Node = Hashable

#: Upper bound on resolution iterations before falling back to repairs.
MAX_RESOLUTION_ROUNDS = 12


@dataclass
class ResolutionStats:
    """Counters describing how chains were deployed (for experiments/tests)."""

    clean: int = 0
    case1: int = 0
    case2: int = 0
    case3: int = 0
    repairs: int = 0
    grafts: int = 0

    def total_conflicted(self) -> int:
        """Chains that hit at least one conflict."""
        return self.case1 + self.case2 + self.case3 + self.repairs + self.grafts

    def as_dict(self) -> Dict[str, int]:
        """Counters as a plain dict (stable keys for reports)."""
        return {
            "clean": self.clean,
            "case1": self.case1,
            "case2": self.case2,
            "case3": self.case3,
            "repairs": self.repairs,
            "grafts": self.grafts,
        }


def _rebuild_enabled(forest: ServiceOverlayForest) -> None:
    """Recompute the enabled map from chain placements (after rewiring)."""
    enabled: Dict[Node, int] = {}
    for chain in forest.chains:
        for pos, vnf in chain.placements.items():
            node = chain.walk[pos]
            existing = enabled.get(node)
            if existing is not None and existing != vnf:
                raise AssertionError(
                    f"internal error: rebuild found conflict at {node!r}"
                )
            enabled[node] = vnf
    forest.enabled = enabled


def _owner_of(forest: ServiceOverlayForest, node: Node) -> Optional[int]:
    """Index of a chain that places a VNF on ``node`` (None if unused)."""
    for idx, chain in enumerate(forest.chains):
        for pos, _ in chain.placements.items():
            if chain.walk[pos] == node:
                return idx
    return None


def _conflicts(
    forest: ServiceOverlayForest, chain: DeployedChain
) -> List[Tuple[int, Node, int, int]]:
    """All conflicts of ``chain`` against the forest.

    Returns ``(position, node, wanted_vnf, resident_vnf)`` sorted by
    position (so the *last* element is the first conflict by backtracking).
    """
    out = []
    for pos, vnf in sorted(chain.placements.items()):
        node = chain.walk[pos]
        resident = forest.enabled.get(node)
        if resident is not None and resident != vnf:
            out.append((pos, node, vnf, resident))
    return out


def _compress_segment(
    instance: SOFInstance, walk: List[Node], start: int, end: int
) -> List[Node]:
    """Replace ``walk[start:end+1]`` by a shortest path (cost never rises)."""
    if end <= start + 1:
        return walk
    path = instance.oracle.path(walk[start], walk[end])
    return walk[: start + 1] + path[1:] + walk[end + 1:]


def _splice(
    instance: SOFInstance,
    prefix_chain: DeployedChain,
    prefix_cut_pos: int,
    prefix_functions_through: int,
    suffix_chain: DeployedChain,
    suffix_from_pos: int,
    suffix_functions_from: int,
    attached_to: Optional[int],
) -> DeployedChain:
    """Build the attached chain: ``prefix_chain[:cut]`` + ``suffix_chain[from:]``.

    The merged chain carries the prefix chain's placements for VNFs
    ``0..prefix_functions_through`` and the suffix chain's placements for
    VNFs ``suffix_functions_from..|C|-1``; intermediate pass-through is
    compressed via a shortest path between the junction anchors.
    """
    new_walk = list(prefix_chain.walk[: prefix_cut_pos + 1])
    offset = len(new_walk) - 1 - suffix_from_pos
    new_placements: Dict[int, int] = {}
    for pos, vnf in prefix_chain.placements.items():
        if pos <= prefix_cut_pos and vnf <= prefix_functions_through:
            new_placements[pos] = vnf
    for pos, vnf in sorted(suffix_chain.placements.items()):
        if pos > suffix_from_pos and vnf >= suffix_functions_from:
            new_placements[pos + offset] = vnf
    new_walk.extend(suffix_chain.walk[suffix_from_pos + 1:])

    merged = DeployedChain(
        walk=new_walk,
        placements=new_placements,
        paid_from_edge=prefix_cut_pos,
        attached_to=attached_to,
    )
    # Compress the pass-through between the junction and the first suffix
    # placement (Example 7's (5,3,2,4,7) -> (5,7) shortening).  Only the
    # paid region may be rerouted; the borrowed prefix must stay identical.
    suffix_positions = [
        pos for pos, vnf in sorted(merged.placements.items())
        if vnf >= suffix_functions_from and pos > prefix_cut_pos
    ]
    if suffix_positions:
        first_anchor = suffix_positions[0]
        before = len(merged.walk)
        merged.walk = _compress_segment(
            instance, merged.walk, prefix_cut_pos, first_anchor
        )
        shift = len(merged.walk) - before
        if shift:
            merged.placements = {
                (pos + shift if pos >= first_anchor else pos): vnf
                for pos, vnf in merged.placements.items()
            }
    return merged


def resolve_and_add_chain(
    forest: ServiceOverlayForest,
    candidate: ChainWalk,
    stats: Optional[ResolutionStats] = None,
) -> int:
    """Deploy ``candidate`` into ``forest``, resolving VNF conflicts.

    Implements Procedure 4 (cases 1-3) with the bounded loop + repair
    fallbacks described in the module docstring.  Returns the index of the
    chain that ultimately provides the candidate's hand-off point.
    """
    instance = forest.instance
    stats = stats if stats is not None else ResolutionStats()
    num_functions = len(instance.chain)
    current = candidate.to_deployed_chain()

    for _ in range(MAX_RESOLUTION_ROUNDS):
        conflicts = _conflicts(forest, current)
        if not conflicts:
            idx = forest.add_chain(current)
            if current.attached_to is None:
                stats.clean += 1
            return idx

        pos_u, u, wanted, resident = conflicts[-1]  # first by backtracking
        wk_idx = _owner_of(forest, u)
        assert wk_idx is not None
        wk = forest.chains[wk_idx]
        wk_pos_u = next(
            pos for pos, vnf in wk.placements.items()
            if wk.walk[pos] == u and vnf == resident
        )

        if wanted <= resident:
            # Case 1: attach W to Wk through u.
            current = _splice(
                instance,
                prefix_chain=wk,
                prefix_cut_pos=wk_pos_u,
                prefix_functions_through=resident,
                suffix_chain=current,
                suffix_from_pos=pos_u,
                suffix_functions_from=resident + 1,
                attached_to=wk_idx,
            )
            if num_functions - 1 <= resident:
                # Wk already provides the whole chain; current degenerates
                # to Wk's prefix -- it still ends at the candidate's last VM
                # via pass-through, which is all the hand-off needs.
                pass
            stats.case1 += 1
            continue

        # Case 2: another conflict VM w (earlier on W) where Wk runs f_h,
        # h >= wanted.
        case2 = None
        for pos_w, w, _, resident_w in conflicts[:-1]:
            if _owner_of(forest, w) == wk_idx and resident_w >= wanted:
                case2 = (pos_w, w, resident_w)
                break
        if case2 is not None:
            pos_w, w, h = case2
            wk_pos_w = next(
                pos for pos, vnf in wk.placements.items()
                if wk.walk[pos] == w and vnf == h
            )
            current = _splice(
                instance,
                prefix_chain=wk,
                prefix_cut_pos=wk_pos_w,
                prefix_functions_through=h,
                suffix_chain=current,
                suffix_from_pos=pos_w,
                suffix_functions_from=h + 1,
                attached_to=wk_idx,
            )
            stats.case2 += 1
            continue

        # Case 3: attach Wk to W through u.  W's prefix is not yet deployed,
        # so Wk is rewired onto it and the loop re-examines W.
        rewired = _splice(
            instance,
            prefix_chain=current,
            prefix_cut_pos=pos_u,
            prefix_functions_through=wanted,
            suffix_chain=wk,
            suffix_from_pos=wk_pos_u,
            suffix_functions_from=wanted + 1,
            attached_to=None,  # becomes a root sharing W's physical prefix
        )
        # Guard: the rewired Wk must itself be conflict-free against the
        # *other* chains; otherwise give up on case 3 and repair.
        probe = forest.copy()
        del probe.chains[wk_idx]
        _rebuild_enabled(probe)
        if _conflicts(probe, rewired):
            break
        forest.chains[wk_idx] = rewired
        _rebuild_enabled(forest)
        stats.case3 += 1
        # u now runs `wanted`; the loop re-checks W's remaining conflicts.

    return repair_chain(forest, candidate, stats)


def repair_chain(
    forest: ServiceOverlayForest,
    candidate: ChainWalk,
    stats: ResolutionStats,
) -> int:
    """Fallback deployments guaranteeing feasibility (see module docstring).

    Public entry point: SOFDA's no-resolution ablation and the dynamic-case
    handlers route conflicted chains straight here.
    """
    instance = forest.instance
    source = candidate.source
    handoff = candidate.last_vm
    num_functions = len(instance.chain)
    free_vms = {vm for vm in instance.vms if vm not in forest.enabled}
    # Allow the hand-off VM itself when it is free or already runs f_|C|.
    allowed_last: List[Node] = []
    if handoff in free_vms or forest.enabled.get(handoff) == num_functions - 1:
        allowed_last.append(handoff)
    allowed_last.extend(sorted(free_vms - {handoff}, key=repr))

    if len(free_vms) + 1 >= num_functions:
        best: Optional[Tuple[float, ChainWalk, Node]] = None
        for last in allowed_last:
            pool = set(free_vms)
            pool.add(last)
            cw = chain_walk(instance, source, last, candidate_vms=pool)
            if cw is None:
                continue
            tail = (
                0.0 if last == handoff
                else instance.oracle.distance(last, handoff)
            )
            total = cw.total_cost + tail
            if best is None or total < best[0]:
                best = (total, cw, last)
            if last == handoff and best[2] == handoff:
                # A conflict-free chain straight to the hand-off point is
                # already ideal; no need to scan every free VM.
                break
        if best is not None:
            _, cw, last = best
            chain = cw.to_deployed_chain()
            if last != handoff:
                path = instance.oracle.path(last, handoff)
                chain.walk.extend(path[1:])
            if not _conflicts(forest, chain):
                stats.repairs += 1
                return forest.add_chain(chain)

    # Last resort: graft the hand-off point onto an existing complete chain.
    best_graft: Optional[Tuple[float, Node]] = None
    for chain in forest.chains:
        if not chain.placements:
            continue
        point = chain.last_vm
        d = instance.oracle.distance(point, handoff)
        if best_graft is None or d < best_graft[0]:
            best_graft = (d, point)
    if best_graft is None:
        raise RuntimeError(
            "cannot deploy chain: no free VMs and no existing chain to graft onto"
        )
    _, point = best_graft
    path = instance.oracle.path(point, handoff)
    for a, b in zip(path, path[1:]):
        forest.add_tree_edge(a, b)
    stats.grafts += 1
    # The serving chain is the grafted one; find its index.
    for idx, chain in enumerate(forest.chains):
        if chain.placements and chain.last_vm == point:
            return idx
    raise AssertionError("graft target vanished")


#: Backwards-compatible alias; external callers should use :func:`repair_chain`.
_repair_chain = repair_chain
