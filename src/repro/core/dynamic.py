"""Dynamic-case adjustments (Section VII-C).

After a session starts, the forest must adapt without re-running SOFDA from
scratch.  The paper lists six events; each is implemented as a function
taking the current :class:`~repro.core.forest.ServiceOverlayForest` and
returning an updated forest (the input is never mutated):

1. :func:`destination_leave` -- drop a leaf destination and its dangling
   path up to the nearest branch node.
2. :func:`destination_join` -- connect a new destination to the cheapest
   point of the forest, installing the missing VNF suffix via k-stroll on
   the transformed graph when the join point sits mid-chain.
3. :func:`vnf_deletion` -- remove a VNF from the chain, short-circuiting
   each affected VM via the minimum-cost path between its neighbours.
4. :func:`vnf_insertion` -- insert a VNF, choosing for each affected
   chain the VM minimising (path + setup + path) between the adjacent VNFs.
5. :func:`reroute_congested_link` -- update costs and re-connect the two
   endpoints of a congested link via the cheapest alternative path.
6. :func:`relocate_overloaded_vm` -- move a VNF off an overloaded VM to
   the best alternative and re-connect its neighbours.

These operations favour locality over global optimality, exactly as the
paper argues (re-running SOFDA per membership change would swamp the
controller).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.core.forest import DeployedChain, ServiceOverlayForest
from repro.core.problem import ServiceChain, SOFInstance
from repro.core.transform import chain_walk
from repro.core.validation import check_forest
from repro.graph.graph import canonical_edge

Node = Hashable


class DynamicError(Exception):
    """Raised when a dynamic adjustment cannot be applied."""


def _forest_with(instance: SOFInstance, base: ServiceOverlayForest) -> ServiceOverlayForest:
    out = ServiceOverlayForest(instance=instance)
    out.chains = [c.copy() for c in base.chains]
    out.tree_edges = set(base.tree_edges)
    out.enabled = dict(base.enabled)
    return out


def _rebuild_chain(
    instance: SOFInstance,
    old_chain: DeployedChain,
    anchors: List[Tuple[Node, int]],
) -> DeployedChain:
    """Rebuild a chain walk through a new anchor (VM, vnf) sequence.

    Consecutive anchors are connected by fresh shortest paths; the original
    walk's *delivery tail* (everything after its last placement, which may
    pass through several destinations) is preserved verbatim, re-connected
    from the new final anchor if needed.
    """
    oracle = instance.oracle
    anchors = sorted(anchors, key=lambda a: a[1])
    walk: List[Node] = [old_chain.walk[0]]
    placements: Dict[int, int] = {}
    for node, vnf in anchors:
        segment = oracle.path(walk[-1], node)
        walk.extend(segment[1:])
        placements[len(walk) - 1] = vnf
    if old_chain.placements:
        orig_last_pos = max(old_chain.placements)
        tail = old_chain.walk[orig_last_pos:]
        if walk[-1] != tail[0]:
            walk.extend(oracle.path(walk[-1], tail[0])[1:])
        walk.extend(tail[1:])
    return DeployedChain(walk=walk, placements=placements)


# ----------------------------------------------------------------------
# 1. destination leave
# ----------------------------------------------------------------------
def destination_leave(
    forest: ServiceOverlayForest, destination: Node
) -> Tuple[SOFInstance, ServiceOverlayForest]:
    """Remove ``destination``; prune its dangling distribution path.

    Returns the updated ``(instance, forest)`` pair (the instance shrinks
    its destination set).  If the destination is an interior node of the
    distribution tree, only membership changes -- the paper forbids
    removing paths that other users sit behind.
    """
    instance = forest.instance
    if destination not in instance.destinations:
        raise DynamicError(f"{destination!r} is not a current destination")
    new_instance = SOFInstance(
        graph=instance.graph,
        vms=instance.vms,
        sources=instance.sources,
        destinations=instance.destinations - {destination},
        chain=instance.chain,
        node_costs=instance.node_costs,
        source_costs=instance.source_costs,
    )
    new_instance._oracle = instance._oracle
    out = _forest_with(new_instance, forest)
    # prune_tree_edges recomputes exactly the per-destination needed paths,
    # which implements "remove v and all intermediate nodes and links up to
    # the closest upstream branch node" for leaf destinations and is a
    # no-op for interior ones.
    out.prune_tree_edges()
    return new_instance, out


# ----------------------------------------------------------------------
# 2. destination join
# ----------------------------------------------------------------------
def _vnf_progress(forest: ServiceOverlayForest) -> Dict[Node, int]:
    """Map every forest node to f(u): VNFs applied when content passes it.

    Walk nodes get the placement count up to their position; distribution
    tree nodes inherit the full chain (they only carry final content).
    """
    progress: Dict[Node, int] = {}
    L = len(forest.instance.chain)
    for chain in forest.chains:
        applied = 0
        for i, node in enumerate(chain.walk):
            if i in chain.placements:
                applied = chain.placements[i] + 1
            progress[node] = max(progress.get(node, -1), applied)
    for u, v in forest.tree_edges:
        progress[u] = max(progress.get(u, -1), L)
        progress[v] = max(progress.get(v, -1), L)
    return progress


def destination_join(
    forest: ServiceOverlayForest, destination: Node
) -> Tuple[SOFInstance, ServiceOverlayForest]:
    """Attach a new destination at the minimum-increase point of the forest.

    For every candidate branch node ``u`` already in the forest, the cost
    of joining through ``u`` is the cost of a walk from ``u`` to the new
    destination that installs the ``|C| - f(u)`` missing VNFs (k-stroll on
    the transformed graph, Section VII-C.2); the cheapest candidate wins.
    """
    instance = forest.instance
    if destination in instance.destinations:
        raise DynamicError(f"{destination!r} already joined")
    if destination not in instance.graph:
        raise DynamicError(f"{destination!r} is not in the network")
    oracle = instance.oracle
    L = len(instance.chain)
    progress = _vnf_progress(forest)
    free_vms = sorted(
        (vm for vm in instance.vms if vm not in forest.enabled), key=repr
    )

    best: Optional[Tuple[float, Node, Optional[DeployedChain], List[Node]]] = None
    for u, applied in sorted(progress.items(), key=lambda kv: repr(kv[0])):
        missing = L - applied
        if missing == 0:
            d = oracle.distance(u, destination)
            if d == float("inf"):
                continue
            candidate = (d, u, None, oracle.path(u, destination))
        else:
            if len(free_vms) < missing:
                continue
            # Walk from u to the destination through `missing` fresh VMs.
            # chain_walk targets a VM, so pick the best last VM and append
            # the final hop to the destination.
            sub_best = None
            for last in free_vms:
                cw = chain_walk(
                    instance, u, last,
                    candidate_vms=free_vms, num_vms=missing,
                )
                if cw is None:
                    continue
                tail = oracle.distance(last, destination)
                if tail == float("inf"):
                    continue
                total = cw.total_cost + tail
                if sub_best is None or total < sub_best[0]:
                    sub_best = (total, cw, last)
            if sub_best is None:
                continue
            total, cw, last = sub_best
            walk = list(cw.walk) + oracle.path(last, destination)[1:]
            placements = {
                cw.positions[i + 1]: applied + i for i in range(missing)
            }
            candidate = (
                total, u,
                DeployedChain(walk=walk, placements=placements),
                [],
            )
        if best is None or candidate[0] < best[0]:
            best = candidate
    if best is None:
        raise DynamicError(f"no feasible join point for {destination!r}")

    _, join_node, suffix_chain, path = best
    new_instance = SOFInstance(
        graph=instance.graph,
        vms=instance.vms,
        sources=instance.sources,
        destinations=instance.destinations | {destination},
        chain=instance.chain,
        node_costs=instance.node_costs,
        source_costs=instance.source_costs,
    )
    new_instance._oracle = instance._oracle
    out = _forest_with(new_instance, forest)
    if suffix_chain is None:
        for a, b in zip(path, path[1:]):
            out.add_tree_edge(a, b)
    else:
        # The suffix walk extends the serving chain: find the chain whose
        # walk contains the join node with full progress and splice.
        host_idx = None
        host_pos = None
        for idx, chain in enumerate(out.chains):
            applied = 0
            for i, node in enumerate(chain.walk):
                if i in chain.placements:
                    applied = chain.placements[i] + 1
                if node == join_node and applied == L - len(suffix_chain.placements):
                    host_idx, host_pos = idx, i
                    break
            if host_idx is not None:
                break
        if host_idx is None:
            raise DynamicError(
                f"join point {join_node!r} not found on any chain walk"
            )
        host = out.chains[host_idx]
        merged_walk = host.walk[: host_pos + 1] + suffix_chain.walk[1:]
        offset = host_pos
        merged_placements = {
            pos: vnf for pos, vnf in host.placements.items() if pos <= host_pos
        }
        for pos, vnf in suffix_chain.placements.items():
            merged_placements[pos + offset] = vnf
        new_chain = DeployedChain(
            walk=merged_walk,
            placements=merged_placements,
            paid_from_edge=host_pos,
            attached_to=host_idx,
        )
        for pos, vnf in new_chain.placements.items():
            out.enabled.setdefault(new_chain.walk[pos], vnf)
        out.chains.append(new_chain)
    check_forest(new_instance, out)
    return new_instance, out


# ----------------------------------------------------------------------
# 3./4. VNF deletion and insertion
# ----------------------------------------------------------------------
def vnf_deletion(
    forest: ServiceOverlayForest, vnf_index: int
) -> Tuple[SOFInstance, ServiceOverlayForest]:
    """Remove function ``vnf_index`` (0-based) from the chain and forest.

    Each affected chain short-circuits the deleted VM: the walk is rerouted
    along the minimum-cost path between the VMs of the adjacent VNFs (the
    source / tail standing in at the ends), per Section VII-C.3.
    """
    instance = forest.instance
    L = len(instance.chain)
    if not 0 <= vnf_index < L:
        raise DynamicError(f"no VNF with index {vnf_index}")
    if L == 1:
        raise DynamicError("cannot delete the only VNF in the chain")
    oracle = instance.oracle
    new_chain_spec = ServiceChain(
        f for i, f in enumerate(instance.chain) if i != vnf_index
    )
    new_instance = instance.with_chain(new_chain_spec)

    out = ServiceOverlayForest(instance=new_instance)
    for chain in forest.chains:
        anchors: List[Tuple[Node, int]] = []
        for pos, vnf in chain.vnf_positions():
            if vnf == vnf_index:
                continue
            new_vnf = vnf if vnf < vnf_index else vnf - 1
            anchors.append((chain.walk[pos], new_vnf))
        out.add_chain(_rebuild_chain(new_instance, chain, anchors))
    out.tree_edges = set(forest.tree_edges)
    check_forest(new_instance, out)
    return new_instance, out


def vnf_insertion(
    forest: ServiceOverlayForest,
    vnf_index: int,
    function_name: str,
) -> Tuple[SOFInstance, ServiceOverlayForest]:
    """Insert ``function_name`` at chain position ``vnf_index`` (0-based).

    For each chain, every available VM ``v`` is scored by (path from the
    upstream VNF's VM) + setup + (path to the downstream VNF's VM); the
    minimiser hosts the new function (Section VII-C.4).  When two chains
    pick the same VM, the second reuses the first's enabling.
    """
    instance = forest.instance
    L = len(instance.chain)
    if not 0 <= vnf_index <= L:
        raise DynamicError(f"insertion index {vnf_index} out of range")
    oracle = instance.oracle
    functions = list(instance.chain)
    functions.insert(vnf_index, function_name)
    new_instance = instance.with_chain(ServiceChain(functions))

    out = ServiceOverlayForest(instance=new_instance)
    chosen_vms: Dict[Node, int] = {}
    for chain in forest.chains:
        upstream = chain.walk[0]
        for pos, vnf in chain.vnf_positions():
            if vnf == vnf_index - 1:
                upstream = chain.walk[pos]
        downstream = chain.walk[-1]
        down_is_dest_side = True
        for pos, vnf in chain.vnf_positions():
            if vnf == vnf_index:
                downstream = chain.walk[pos]
                down_is_dest_side = False
                break
        used_here = {chain.walk[pos] for pos in chain.placements}
        best_vm: Optional[Node] = None
        best_cost = float("inf")
        for vm in sorted(instance.vms, key=repr):
            if vm in used_here:
                continue
            already = forest.enabled.get(vm)
            if already is not None:
                continue
            if vm in chosen_vms and chosen_vms[vm] != vnf_index:
                continue
            setup = 0.0 if vm in chosen_vms else instance.setup_cost(vm)
            c = oracle.distance(upstream, vm) + setup + oracle.distance(vm, downstream)
            if c < best_cost:
                best_vm, best_cost = vm, c
        if best_vm is None:
            raise DynamicError("no available VM for the inserted VNF")
        chosen_vms[best_vm] = vnf_index

        # Rebuild the chain walk with the new anchor sequence.
        anchors: List[Tuple[Node, int]] = []
        for pos, vnf in chain.vnf_positions():
            new_vnf = vnf if vnf < vnf_index else vnf + 1
            anchors.append((chain.walk[pos], new_vnf))
        anchors.append((best_vm, vnf_index))
        out.add_chain(_rebuild_chain(new_instance, chain, anchors))
    out.tree_edges = set(forest.tree_edges)
    check_forest(new_instance, out)
    return new_instance, out


# ----------------------------------------------------------------------
# 5./6. congestion handling
# ----------------------------------------------------------------------
def reroute_congested_link(
    forest: ServiceOverlayForest,
    link: Tuple[Node, Node],
    new_cost: float,
) -> Tuple[SOFInstance, ServiceOverlayForest]:
    """Raise a congested link's cost and reroute everything crossing it.

    The updated cost (from the Fortz--Thorup model) makes the embedder
    avoid the link; every chain segment and distribution path using it is
    re-connected via the now-cheapest alternative (Section VII-C.5).
    """
    instance = forest.instance
    u, v = link
    if not instance.graph.has_edge(u, v):
        raise DynamicError(f"({u!r}, {v!r}) is not a link")
    graph = instance.graph.copy()
    if instance._oracle is not None:
        # Only the one link's cost changes, so the new instance's oracle
        # is the old one rebased onto the copy (patched weights + every
        # cached row the change cannot affect) instead of a cold rebuild.
        # The clone keeps the parent oracle's repair mode (patch planner
        # vs per-row reference) and classifies this one-shot patch with a
        # scan pass -- no tree-edge index is ever built for it.
        new_oracle = instance._oracle.rebased(graph, {(u, v): new_cost})
    else:
        graph.add_edge(u, v, new_cost)
        new_oracle = None
    new_instance = SOFInstance(
        graph=graph,
        vms=instance.vms,
        sources=instance.sources,
        destinations=instance.destinations,
        chain=instance.chain,
        node_costs=instance.node_costs,
        source_costs=instance.source_costs,
    )
    new_instance._oracle = new_oracle
    oracle = new_instance.oracle
    bad = canonical_edge(u, v)

    out = ServiceOverlayForest(instance=new_instance)
    for chain in forest.chains:
        uses = any(
            canonical_edge(a, b) == bad for a, b in chain.all_edges()
        )
        if not uses:
            out.add_chain(chain.copy())
            continue
        # Re-connect between consecutive anchors with fresh shortest paths
        # (the delivery tail is preserved; its congested hops, if any, are
        # reflected in the updated cost).
        anchors = [(chain.walk[pos], vnf) for pos, vnf in chain.vnf_positions()]
        out.add_chain(_rebuild_chain(new_instance, chain, anchors))

    # Distribution edges: rebuild destination paths avoiding the bad link
    # when they crossed it.
    out.tree_edges = {
        e for e in forest.tree_edges if e != bad
    }
    if bad in forest.tree_edges:
        out.prune_tree_edges()
        # Destinations that lost connectivity re-join through shortest paths.
        from repro.core.validation import is_feasible

        if not is_feasible(new_instance, out):
            points: Set[Node] = set()
            for chain in out.chains:
                if chain.placements:
                    points.update(chain.walk[max(chain.placements):])
            points |= {a for e in out.tree_edges for a in e}
            # Sorted scans: ``min`` over the salted set (and the salted
            # destination order) would break equal-distance tie-breaks
            # differently per process.
            for dest in sorted(new_instance.destinations, key=repr):
                best_pt = min(
                    sorted(points, key=repr),
                    key=lambda p: oracle.distance(p, dest),
                )
                for a, b in zip(
                    oracle.path(best_pt, dest), oracle.path(best_pt, dest)[1:]
                ):
                    out.add_tree_edge(a, b)
    check_forest(new_instance, out)
    return new_instance, out


def reroute_failed_link(
    forest: ServiceOverlayForest, link: Tuple[Node, Node]
) -> ServiceOverlayForest:
    """Re-stitch a forest after its instance lost ``link`` entirely.

    The failure variant of :func:`reroute_congested_link`: the topology
    change has *already* been applied to the forest's live instance (the
    link is gone from the graph and the oracle repaired or invalidated),
    so no graph copy or rebased oracle is built -- every fresh path is
    asked of the shared post-failure oracle.  Each chain crossing the
    dead link is rebuilt between its surviving anchors; a delivery tail
    crossing it is re-issued as fresh shortest paths through the
    destinations it used to pass (a congested link merely got expensive,
    but a dead one cannot be walked at any price).  Distribution edges
    drop the dead link and re-join any disconnected destinations.

    Raises :class:`DynamicError` when no surviving path exists for some
    required connection -- the caller should treat the tenant as
    disrupted (release and count) rather than keep an unservable forest.
    """
    instance = forest.instance
    u, v = link
    if instance.graph.has_edge(u, v):
        raise DynamicError(f"({u!r}, {v!r}) is still a live link")
    oracle = instance.oracle
    bad = canonical_edge(u, v)

    out = ServiceOverlayForest(instance=instance)
    try:
        for chain in forest.chains:
            uses = any(
                canonical_edge(a, b) == bad for a, b in chain.all_edges()
            )
            if not uses:
                out.add_chain(chain.copy())
                continue
            anchors = sorted(
                ((chain.walk[pos], vnf) for pos, vnf in chain.vnf_positions()),
                key=lambda a: a[1],
            )
            walk: List[Node] = [chain.walk[0]]
            placements: Dict[int, int] = {}
            for node, vnf in anchors:
                walk.extend(oracle.path(walk[-1], node)[1:])
                placements[len(walk) - 1] = vnf
            if chain.placements:
                tail = chain.walk[max(chain.placements):]
                if any(
                    canonical_edge(a, b) == bad
                    for a, b in zip(tail, tail[1:])
                ):
                    # The preserved-verbatim tail walks the dead link:
                    # re-deliver to the destinations it passed, in order,
                    # over surviving shortest paths.
                    for stop in tail[1:]:
                        if stop in instance.destinations and stop != walk[-1]:
                            walk.extend(oracle.path(walk[-1], stop)[1:])
                else:
                    if walk[-1] != tail[0]:
                        walk.extend(oracle.path(walk[-1], tail[0])[1:])
                    walk.extend(tail[1:])
            out.add_chain(DeployedChain(walk=walk, placements=placements))

        out.tree_edges = {e for e in forest.tree_edges if e != bad}
        if bad in forest.tree_edges:
            out.prune_tree_edges()
            from repro.core.validation import is_feasible

            if not is_feasible(instance, out):
                points: Set[Node] = set()
                for chain in out.chains:
                    if chain.placements:
                        points.update(chain.walk[max(chain.placements):])
                points |= {a for e in out.tree_edges for a in e}
                for dest in sorted(instance.destinations, key=repr):
                    best_pt: Optional[Node] = None
                    best_d = float("inf")
                    for p in sorted(points, key=repr):
                        d = oracle.distance(p, dest)
                        if d < best_d:
                            best_d, best_pt = d, p
                    if best_pt is None:
                        raise DynamicError(
                            f"destination {dest!r} unreachable after "
                            f"failure of {bad!r}"
                        )
                    path = oracle.path(best_pt, dest)
                    for a, b in zip(path, path[1:]):
                        out.add_tree_edge(a, b)
        check_forest(instance, out)
    except ValueError as exc:
        # ``oracle.path`` (no surviving path) or a VNF conflict while
        # re-adding chains: the forest cannot be repaired in place.
        raise DynamicError(
            f"cannot reroute around failed link {bad!r}: {exc}"
        ) from exc
    return out


def relocate_overloaded_vm(
    forest: ServiceOverlayForest,
    vm: Node,
    new_setup_cost: float,
) -> Tuple[SOFInstance, ServiceOverlayForest]:
    """Move the VNF off an overloaded VM (Section VII-C.6).

    The VM's setup cost is raised to its congested value; the cheapest
    alternative VM (path + setup + path between the neighbouring VNFs)
    takes over, and the affected chains are re-stitched.
    """
    instance = forest.instance
    if vm not in forest.enabled:
        raise DynamicError(f"{vm!r} runs no VNF")
    vnf = forest.enabled[vm]
    node_costs = dict(instance.node_costs)
    node_costs[vm] = new_setup_cost
    new_instance = SOFInstance(
        graph=instance.graph,
        vms=instance.vms,
        sources=instance.sources,
        destinations=instance.destinations,
        chain=instance.chain,
        node_costs=node_costs,
        source_costs=instance.source_costs,
    )
    new_instance._oracle = instance._oracle
    oracle = new_instance.oracle

    replacement: Optional[Node] = None
    best_cost = float("inf")
    for candidate in sorted(instance.vms, key=repr):
        if candidate == vm or candidate in forest.enabled:
            continue
        cost = new_instance.setup_cost(candidate)
        for chain in forest.chains:
            positions = {v: p for p, v in chain.placements.items()}
            if vnf not in positions:
                continue
            pos = positions[vnf]
            if chain.walk[pos] != vm:
                continue
            upstream = chain.walk[0]
            downstream = chain.walk[-1]
            for p, f in chain.vnf_positions():
                if f == vnf - 1:
                    upstream = chain.walk[p]
                if f == vnf + 1:
                    downstream = chain.walk[p]
                    break
            cost += oracle.distance(upstream, candidate)
            cost += oracle.distance(candidate, downstream)
        if cost < best_cost:
            replacement, best_cost = candidate, cost
    if replacement is None:
        raise DynamicError("no alternative VM available")

    out = ServiceOverlayForest(instance=new_instance)
    for chain in forest.chains:
        anchors = []
        for pos, f in chain.vnf_positions():
            node = chain.walk[pos]
            anchors.append((replacement if node == vm and f == vnf else node, f))
        out.add_chain(_rebuild_chain(new_instance, chain, anchors))
    out.tree_edges = set(forest.tree_edges)
    check_forest(new_instance, out)
    return new_instance, out
