"""Core SOF problem model and the paper's algorithms.

Public surface:

- :class:`~repro.core.problem.SOFInstance` / :class:`~repro.core.problem.ServiceChain`
  -- the problem input (Section III).
- :class:`~repro.core.forest.ServiceOverlayForest` -- the solution object,
  with clone-aware cost accounting and feasibility validation.
- :func:`~repro.core.sofda_ss.sofda_ss` -- the single-source
  ``(2+ρST)``-approximation (Section IV, Algorithm 1).
- :func:`~repro.core.sofda.sofda` -- the general ``3ρST``-approximation
  (Section V, Algorithm 2), including VNF-conflict resolution.
- :mod:`~repro.core.dynamic` -- the six dynamic adjustments of Section VII-C.
"""

from repro.core.problem import ServiceChain, SOFInstance
from repro.core.forest import DeployedChain, ServiceOverlayForest
from repro.core.transform import (
    build_kstroll_instance,
    chain_walk,
    ChainWalk,
)
from repro.core.sofda_ss import sofda_ss
from repro.core.sofda import sofda
from repro.core.validation import check_forest, ForestInfeasible

__all__ = [
    "ServiceChain",
    "SOFInstance",
    "DeployedChain",
    "ServiceOverlayForest",
    "build_kstroll_instance",
    "chain_walk",
    "ChainWalk",
    "sofda_ss",
    "sofda",
    "check_forest",
    "ForestInfeasible",
]
