"""The Service Overlay Forest problem input (Section III of the paper).

An instance bundles the network ``G = {V = M ∪ U, E}``, the VM setup costs,
the source and destination sets and the demanded VNF chain
``C = (f1, ..., f|C|)``.  Switches carry cost 0; every VM may run at most
one VNF (the paper handles multi-VNF hosts by replicating the VM node,
see :meth:`SOFInstance.replicate_vms`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, Optional, Tuple

from repro.graph import FrozenOracle, Graph, kernel

Node = Hashable


@dataclass(frozen=True)
class ServiceChain:
    """An ordered chain of VNF names, e.g. ``("transcoder", "watermarker")``.

    Functions are identified by *position*: the i-th entry is the paper's
    ``f_{i+1}``.  Names need not be unique -- a chain may legitimately
    demand the same function type twice -- so algorithms always reference
    functions by index.
    """

    functions: Tuple[str, ...]

    def __init__(self, functions: Iterable[str]) -> None:
        object.__setattr__(self, "functions", tuple(functions))
        if not self.functions:
            raise ValueError("a service chain must contain at least one VNF")

    def __len__(self) -> int:
        return len(self.functions)

    def __iter__(self):
        return iter(self.functions)

    def __getitem__(self, index: int) -> str:
        return self.functions[index]

    @classmethod
    def of_length(cls, length: int, prefix: str = "f") -> "ServiceChain":
        """Build a generic chain ``(f1, ..., f_length)``."""
        if length < 1:
            raise ValueError("chain length must be >= 1")
        return cls(f"{prefix}{i + 1}" for i in range(length))


@dataclass
class SOFInstance:
    """A complete SOF problem instance.

    Attributes:
        graph: the network ``G``; edge costs are the connection costs.
        vms: the VM node set ``M`` (must be a subset of the graph nodes).
        sources: candidate sources ``S``.
        destinations: destinations ``D``.
        chain: the demanded VNF chain ``C``.
        node_costs: setup cost of each VM; nodes absent from the mapping
            (switches, sources, destinations) cost 0.
        source_costs: optional per-source setup cost (Appendix D); the main
            body of the paper assumes these are 0.
    """

    graph: Graph
    vms: FrozenSet[Node]
    sources: FrozenSet[Node]
    destinations: FrozenSet[Node]
    chain: ServiceChain
    node_costs: Dict[Node, float] = field(default_factory=dict)
    source_costs: Dict[Node, float] = field(default_factory=dict)
    _oracle: Optional[FrozenOracle] = field(default=None, repr=False, compare=False)

    def __init__(
        self,
        graph: Graph,
        vms: Iterable[Node],
        sources: Iterable[Node],
        destinations: Iterable[Node],
        chain: ServiceChain,
        node_costs: Optional[Dict[Node, float]] = None,
        source_costs: Optional[Dict[Node, float]] = None,
    ) -> None:
        self.graph = graph
        self.vms = frozenset(vms)
        self.sources = frozenset(sources)
        self.destinations = frozenset(destinations)
        self.chain = chain
        self.node_costs = dict(node_costs or {})
        self.source_costs = dict(source_costs or {})
        self._oracle = None
        self._metric_block = None
        self._source_vm_rows = {}
        self._procedure1_rows = {}
        self._sorted_vms = None
        self.validate()

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural well-formedness; raises ``ValueError`` on error."""
        for name, nodes in (("VM", self.vms), ("source", self.sources),
                            ("destination", self.destinations)):
            for node in nodes:
                if node not in self.graph:
                    raise ValueError(f"{name} node {node!r} is not in the graph")
        if not self.sources:
            raise ValueError("at least one source is required")
        if not self.destinations:
            raise ValueError("at least one destination is required")
        for node, cost in self.node_costs.items():
            if cost < 0:
                raise ValueError(f"negative setup cost on {node!r}")
        if len(self.vms) < len(self.chain):
            raise ValueError(
                f"chain of length {len(self.chain)} cannot be embedded with "
                f"only {len(self.vms)} VMs (one VNF per VM)"
            )

    # ------------------------------------------------------------------
    @property
    def oracle(self) -> FrozenOracle:
        """Shared shortest-path oracle over the instance graph (lazy).

        One oracle serves the whole pipeline (Procedure 1 sweeps, conflict
        repairs, Steiner closures, baselines).  The hot set -- sources, VMs
        and destinations -- lets it early-terminate each single-source
        search once every node the sweeps can query is settled.
        """
        if self._oracle is None:
            self._oracle = FrozenOracle(
                self.graph, hot=self.vms | self.sources | self.destinations
            )
        return self._oracle

    def invalidate_oracle(self) -> None:
        """Drop cached shortest paths (after graph/cost mutation)."""
        self._oracle = None
        self._metric_block = None
        self._source_vm_rows = {}
        self._procedure1_rows = {}

    def sorted_vms(self) -> list:
        """The VM set in canonical (repr) order, cached."""
        if self._sorted_vms is None:
            self._sorted_vms = sorted(self.vms, key=repr)
        return self._sorted_vms

    def procedure1_rows(self, source: Node) -> Dict[Node, Dict[Node, float]]:
        """Mutable per-source copies of :meth:`metric_block` rows.

        ``build_kstroll_instance`` stamps the Procedure-1 source column
        into these rows in place, one ``last_vm`` at a time -- the sweep
        consumes each instance before requesting the next, so a single
        copy per source replaces one copy per (source, last_vm) pair.
        """
        rows = self._procedure1_rows.get(source)
        if rows is None:
            block = self.metric_block()
            rows = {v: dict(r) for v, r in block.items() if v != source}
            self._procedure1_rows[source] = rows
        return rows

    def source_vm_distances(self, source: Node) -> Dict[Node, float]:
        """Base-graph distances from ``source`` to every VM (cached).

        One row per source serves the whole |S| x |M| Procedure-1 sweep:
        the distances are pure graph distances (no setup terms), so they
        are shared by every ``last_vm`` choice.
        """
        row = self._source_vm_rows.get(source)
        if row is None:
            vms = self.sorted_vms()
            row = dict(zip(vms, self.oracle.distances_to(source, vms)))
            self._source_vm_rows[source] = row
        return row

    def metric_block(self) -> Dict[Node, Dict[Node, float]]:
        """The source-independent Procedure-1 cost block over the VM set.

        ``block[v1][v2]`` is ``d(v1, v2) + (setup(v1) + setup(v2)) / 2`` --
        the Procedure-1 edge cost of every VM pair that involves neither
        the chain's source nor a setup-cost override.  Those entries do not
        depend on the ``(source, last_vm)`` pair, so one block is shared by
        the entire |S| x |M| auxiliary-graph sweep instead of being
        re-derived per pair.  Invalidated together with the oracle.
        """
        if self._metric_block is None:
            oracle = self.oracle
            setup = self.setup_cost
            vms = self.sorted_vms()
            # One row per VM up front: every later distance query that
            # touches a VM is then served by undirected symmetry.  The
            # prefetch farms cold rows to the worker pool when the oracle
            # runs with ``parallel_rows``; per-pair reads then batch into
            # one gather per row on the vectorized tier.
            oracle.prefetch_rows(vms)
            np = kernel.np
            use_np = np is not None and oracle.vectorized
            setups = [setup(v) for v in vms] if use_np else None
            block: Dict[Node, Dict[Node, float]] = {v: {} for v in vms}
            for i, v1 in enumerate(vms):
                row1 = block[v1]
                s1 = setup(v1)
                rest = vms[i + 1:]
                ds = oracle.distances_to(v1, rest)
                if use_np and len(rest) > 16:
                    # Elementwise IEEE doubles in the scalar branch's
                    # association, ``base + ((s1 + s2) / 2.0)``, with
                    # ``inf`` rows passed through verbatim -- the costs
                    # are bit-identical to the loop below.
                    base = np.asarray(ds)
                    costs = np.where(
                        np.isinf(base), base,
                        base + (s1 + np.asarray(setups[i + 1:])) / 2.0,
                    ).tolist()
                else:
                    costs = [
                        base if base == float("inf")
                        else base + (s1 + setup(v2)) / 2.0
                        for v2, base in zip(rest, ds)
                    ]
                for v2, cost in zip(rest, costs):
                    row1[v2] = cost
                    block[v2][v1] = cost
            self._metric_block = block
        return self._metric_block

    def setup_cost(self, node: Node) -> float:
        """Setup cost of ``node`` (0 for switches/non-VMs)."""
        return self.node_costs.get(node, 0.0)

    def source_setup_cost(self, node: Node) -> float:
        """Setup cost of enabling ``node`` as a source (Appendix D; default 0)."""
        return self.source_costs.get(node, 0.0)

    def switches(self) -> FrozenSet[Node]:
        """The switch set ``U = V \\ M``."""
        return frozenset(self.graph.nodes()) - self.vms

    # ------------------------------------------------------------------
    def replicate_vms(self, copies: int, attach_cost: float = 0.0) -> "SOFInstance":
        """Return a new instance where each VM is replicated ``copies`` times.

        Implements the paper's remark that a host able to run multiple VNFs
        is modelled "by first replicating the VM multiple times in the input
        graph".  Each replica ``(vm, i)`` is attached to the original VM
        node with an ``attach_cost`` edge and inherits its setup cost.
        """
        if copies < 1:
            raise ValueError("copies must be >= 1")
        graph = self.graph.copy()
        new_vms = set(self.vms)
        node_costs = dict(self.node_costs)
        # Sorted so replica nodes enter the graph (and its adjacency
        # order) deterministically rather than in salted set order.
        for vm in sorted(self.vms, key=repr):
            for i in range(1, copies):
                replica = (vm, f"replica{i}")
                graph.add_node(replica)
                graph.add_edge(vm, replica, attach_cost)
                new_vms.add(replica)
                node_costs[replica] = self.setup_cost(vm)
        return SOFInstance(
            graph=graph,
            vms=new_vms,
            sources=self.sources,
            destinations=self.destinations,
            chain=self.chain,
            node_costs=node_costs,
            source_costs=self.source_costs,
        )

    def with_chain(self, chain: ServiceChain) -> "SOFInstance":
        """Return a copy of the instance demanding a different chain."""
        clone = SOFInstance(
            graph=self.graph,
            vms=self.vms,
            sources=self.sources,
            destinations=self.destinations,
            chain=chain,
            node_costs=self.node_costs,
            source_costs=self.source_costs,
        )
        clone._oracle = self._oracle  # shortest paths do not depend on the chain
        clone._metric_block = self._metric_block
        clone._source_vm_rows = self._source_vm_rows
        clone._procedure1_rows = self._procedure1_rows
        return clone

    def restrict_sources(self, sources: Iterable[Node]) -> "SOFInstance":
        """Return a copy restricted to a subset of the sources."""
        clone = SOFInstance(
            graph=self.graph,
            vms=self.vms,
            sources=sources,
            destinations=self.destinations,
            chain=self.chain,
            node_costs=self.node_costs,
            source_costs=self.source_costs,
        )
        clone._oracle = self._oracle
        clone._metric_block = self._metric_block
        clone._source_vm_rows = self._source_vm_rows
        clone._procedure1_rows = self._procedure1_rows
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SOFInstance(|V|={len(self.graph)}, |E|={self.graph.num_edges()}, "
            f"|M|={len(self.vms)}, |S|={len(self.sources)}, "
            f"|D|={len(self.destinations)}, |C|={len(self.chain)})"
        )
