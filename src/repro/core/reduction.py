"""The NP-hardness reduction of Theorem 1 (Appendix A).

The paper proves SOF NP-hard by reducing the (metric) Steiner Tree problem
to it: given a Steiner instance ``(G, r, U)``, build an SOF instance by
making ``r`` the single VM, the nodes of ``U`` the destinations, a fresh
source ``s`` attached to ``r`` by an edge of weight ``w > 0``, and a chain
of length one.  Then ``OPT_SOF = OPT_Steiner + w``.

:func:`steiner_to_sof` constructs the reduction;
:func:`verify_reduction` checks the optimum identity with the exact
solvers on a given instance (used by the test suite -- an executable proof
sketch of Theorem 1).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Tuple

from repro.core.problem import ServiceChain, SOFInstance
from repro.graph import Graph

Node = Hashable

#: The fresh source node added by the reduction.
REDUCTION_SOURCE = "__reduction_source__"


def steiner_to_sof(
    graph: Graph,
    root: Node,
    terminals: Iterable[Node],
    edge_weight: float = 1.0,
) -> SOFInstance:
    """Build the Theorem-1 SOF instance from a Steiner Tree instance.

    Args:
        graph: the Steiner instance's weighted graph.
        root: the Steiner root ``r`` (becomes the only VM).
        terminals: the node set ``U`` to span (become the destinations).
        edge_weight: the weight ``w > 0`` of the new source--root edge.

    Returns:
        The SOF instance whose optimum is ``OPT_Steiner + w``.
    """
    if edge_weight <= 0:
        raise ValueError("the reduction requires w > 0")
    terminal_set = set(terminals)
    if root in terminal_set:
        raise ValueError("the root must not be a terminal")
    if REDUCTION_SOURCE in graph:
        raise ValueError("graph already contains the reduction source node")
    work = graph.copy()
    work.add_edge(REDUCTION_SOURCE, root, edge_weight)
    return SOFInstance(
        graph=work,
        vms={root},
        sources={REDUCTION_SOURCE},
        destinations=terminal_set,
        chain=ServiceChain(["f1"]),
        node_costs={root: 0.0},
    )


def verify_reduction(
    graph: Graph,
    root: Node,
    terminals: Iterable[Node],
    edge_weight: float = 1.0,
) -> Tuple[float, float]:
    """Solve both sides of the reduction exactly and return the optima.

    Returns ``(opt_steiner, opt_sof)``; Theorem 1 asserts
    ``opt_sof == opt_steiner + edge_weight``.  Uses the exact
    Dreyfus--Wagner Steiner solver and the exact IP, so it is only
    practical on small instances.
    """
    from repro.graph import steiner_tree
    from repro.ilp import solve_sof_ilp

    terminal_list = sorted(set(terminals), key=repr)
    opt_steiner = steiner_tree(
        graph, [root] + terminal_list, method="exact"
    ).cost
    instance = steiner_to_sof(graph, root, terminal_list, edge_weight)
    opt_sof = solve_sof_ilp(instance, decode=False).objective
    return opt_steiner, opt_sof
