"""SOFDA-SS: the single-source ``(2+ρST)``-approximation (Section IV).

Algorithm 1 of the paper: for every candidate last VM ``u``, find a
minimum-cost service chain from the source to ``u`` (Procedure 2 /
k-stroll on the Procedure-1 instance), then span ``u`` and all destinations
with a Steiner tree; keep the cheapest assembled forest.

The selection of the last VM is the crux: a VM close to the source gives a
short chain but possibly a large tree, and a cheap VM may sit far from the
destinations.  Examining every candidate yields the approximation bound
(Theorem 2).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional

from repro.graph import steiner_tree
from repro.core.forest import ServiceOverlayForest
from repro.core.problem import SOFInstance
from repro.core.transform import chain_walk
from repro.core.validation import check_forest

Node = Hashable


def sofda_ss(
    instance: SOFInstance,
    source: Optional[Node] = None,
    steiner_method: str = "kmb",
    kstroll_method: str = "auto",
    candidate_last_vms: Optional[Iterable[Node]] = None,
    validate: bool = True,
) -> ServiceOverlayForest:
    """Run SOFDA-SS and return the best single-tree forest.

    Args:
        instance: the SOF instance.
        source: the tree's source.  When ``None`` and the instance has
            several candidate sources, every source is tried and the overall
            cheapest forest returned (the natural single-tree baseline).
        steiner_method: Steiner solver (``kmb``/``mehlhorn``/``exact``).
        kstroll_method: k-stroll solver (``auto``/``exact``/``insertion``/``greedy``).
        candidate_last_vms: restrict the last-VM sweep (used by tests and
            the online simulator); defaults to all VMs.
        validate: run the feasibility checker on the result.

    Returns:
        The minimum-cost forest over all examined last VMs.

    Raises:
        RuntimeError: if no candidate last VM yields a feasible embedding.
    """
    if source is None:
        sources = sorted(instance.sources, key=repr)
    else:
        if source not in instance.sources:
            raise ValueError(f"{source!r} is not a source of the instance")
        sources = [source]

    candidates = list(candidate_last_vms) if candidate_last_vms is not None \
        else sorted(instance.vms, key=repr)
    terminals_base = sorted(instance.destinations, key=repr)

    best: Optional[ServiceOverlayForest] = None
    best_cost = float("inf")
    for s in sources:
        for u in candidates:
            if u == s:
                continue
            cw = chain_walk(
                instance, s, u, kstroll_method=kstroll_method
            )
            if cw is None:
                continue
            try:
                tree = steiner_tree(
                    instance.graph,
                    [u] + terminals_base,
                    method=steiner_method,
                    oracle=instance.oracle,
                )
            except ValueError:
                continue  # destinations unreachable from this VM
            forest = ServiceOverlayForest(instance=instance)
            forest.add_chain(cw.to_deployed_chain())
            forest.add_tree(tree.tree)
            cost = forest.total_cost()
            if cost < best_cost:
                best, best_cost = forest, cost

    if best is None:
        raise RuntimeError("SOFDA-SS found no feasible embedding")
    if validate:
        check_forest(instance, best)
    return best
