"""Graph transformations: Procedures 1 and 2 of the paper.

Procedure 1 turns the network ``G`` into a complete metric instance ``G``
(script-G in the paper) over ``M ∪ {s}`` whose edge costs fold the VM setup
costs in half onto incident edges, so that a path with ``|C|+1`` nodes in
the instance costs exactly (connection cost of the underlying shortest
paths) + (setup costs of the ``|C|`` visited VMs).  Lemma 1 shows the
instance is metric, which the k-stroll heuristics rely on.

Procedure 2 solves k-stroll on that instance (``k = |C|+1``) and expands the
resulting node sequence back into a walk in ``G`` by concatenating shortest
paths, yielding a candidate service chain from ``s`` to the designated last
VM ``u``.

The Appendix-D variant (nonzero source setup cost) is supported through the
``source_cost`` argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional

from repro.graph import KStrollInstance, kernel, solve_kstroll
from repro.core.forest import DeployedChain
from repro.core.problem import SOFInstance

Node = Hashable
INF = float("inf")


def build_kstroll_instance(
    instance: SOFInstance,
    source: Node,
    last_vm: Node,
    candidate_vms: Optional[Iterable[Node]] = None,
    setup_costs: Optional[Dict[Node, float]] = None,
    source_cost: float = 0.0,
) -> KStrollInstance:
    """Procedure 1: construct the metric k-stroll instance.

    Args:
        instance: the SOF instance (provides graph, VM set, setup costs).
        source: the chain's source ``s``.
        last_vm: the designated last VM ``u``.
        candidate_vms: VM pool to draw intermediate VMs from; defaults to
            ``instance.vms``.  ``last_vm`` is always included.
        setup_costs: optional override of per-VM setup costs (used by the
            dynamic-case repairs, where already-enabled VMs cost 0).
        source_cost: the source's own setup cost (Appendix D; default 0).

    Returns:
        The complete metric instance over the candidate pool plus ``s``.

    Lifetime contract: when no per-call overrides are given, the returned
    instance's cost matrix references per-source rows cached on
    ``instance`` (one copy per source instead of one per ``(source,
    last_vm)`` pair), and a later call with the same ``source`` re-stamps
    the source column in place.  Consume each instance before requesting
    the next one for that source -- every in-repo caller does.
    """
    oracle = instance.oracle
    pool = set(candidate_vms) if candidate_vms is not None else set(instance.vms)
    pool.add(last_vm)
    pool.discard(source)

    if setup_costs is None and source_cost == 0.0 and pool <= instance.vms:
        # Fast path for the |S| x |M| sweep: every edge cost that involves
        # neither the source nor an override is shared across all
        # (source, last_vm) pairs, so reference the per-source copies of
        # the instance-wide metric block and only stamp the source column
        # per call.  The arithmetic mirrors ``edge_cost`` below term for
        # term; VM-pair entries are symmetrised from one Dijkstra
        # direction (the oracle's documented symmetry contract), so a
        # reversed lazy query may disagree in the last ulp.
        sorted_vms = instance.sorted_vms()
        if len(pool) == len(sorted_vms) - (source in instance.vms):
            ordered = [v for v in sorted_vms if v != source]
        else:
            ordered = sorted(pool, key=repr)
        nodes: List[Node] = [source] + ordered
        rows = instance.procedure1_rows(source)
        base_row = instance.source_vm_distances(source)
        cu = instance.setup_cost(last_vm)
        setup_of = instance.setup_cost
        source_row: Dict[Node, float] = {}
        matrix: Dict[Node, Dict[Node, float]] = {source: source_row}
        for v in ordered:
            base = base_row[v]
            cost = INF if base == INF else base + (cu + setup_of(v)) / 2.0
            source_row[v] = cost
            row = rows[v]
            row[source] = cost
            matrix[v] = row
        return KStrollInstance(
            nodes=nodes, source=source, target=last_vm, cost=matrix
        )

    nodes = [source] + sorted(pool, key=repr)

    def setup(node: Node) -> float:
        """Effective setup cost of a VM (honouring overrides)."""
        if setup_costs is not None and node in setup_costs:
            return setup_costs[node]
        return instance.setup_cost(node)

    s, u = source, last_vm
    cu = setup(u)

    def edge_cost(v1: Node, v2: Node) -> float:
        """Lazy Procedure-1 edge cost (shortest path + shared setups)."""
        base = oracle.distance(v1, v2)
        if base == INF:
            return INF
        if source_cost == 0.0:
            # Main-body cost sharing (Section IV).
            if v1 == s:
                return base + (cu + setup(v2)) / 2.0
            if v2 == s:
                return base + (setup(v1) + cu) / 2.0
            return base + (setup(v1) + setup(v2)) / 2.0
        # Appendix-D sharing with a source setup cost.
        pair = {v1, v2}
        if pair == {s, u}:
            return base + source_cost + cu
        if s in pair:
            other = v2 if v1 == s else v1
            return base + (source_cost + cu + setup(other)) / 2.0
        if u in pair:
            other = v2 if v1 == u else v1
            return base + (setup(other) + source_cost + cu) / 2.0
        return base + (setup(v1) + setup(v2)) / 2.0

    return KStrollInstance(nodes=nodes, source=s, target=u, cost=edge_cost)


@dataclass
class ChainWalk:
    """Procedure 2 output: a candidate service chain from ``s`` to ``u``.

    Attributes:
        walk: the full walk in ``G`` (shortest-path expansion of the stroll).
        stroll: the stroll node sequence ``(s, m1, ..., m|C|)`` -- the VMs
            that will run ``f1..f|C|`` in order (``m|C|`` is the last VM).
        positions: walk index of each stroll node, aligned with ``stroll``.
        connection_cost: total edge cost of the walk (per traversal).
        setup_cost: total setup cost of the ``|C|`` VMs on the stroll.
    """

    walk: List[Node]
    stroll: List[Node]
    positions: List[int]
    connection_cost: float
    setup_cost: float

    @property
    def total_cost(self) -> float:
        """Connection + setup cost of the candidate chain."""
        return self.connection_cost + self.setup_cost

    @property
    def source(self) -> Node:
        """The chain's source node."""
        return self.stroll[0]

    @property
    def last_vm(self) -> Node:
        """The chain's last VM (runs f_|C|)."""
        return self.stroll[-1]

    def to_deployed_chain(self) -> DeployedChain:
        """Convert to a :class:`DeployedChain` (VNF ``i`` on stroll node ``i+1``)."""
        placements = {self.positions[i + 1]: i for i in range(len(self.stroll) - 1)}
        return DeployedChain(walk=list(self.walk), placements=placements)


#: Above this pool size, chain_walk keeps only the lowest-detour VMs.
POOL_CAP = 24


def chain_walk(
    instance: SOFInstance,
    source: Node,
    last_vm: Node,
    candidate_vms: Optional[Iterable[Node]] = None,
    setup_costs: Optional[Dict[Node, float]] = None,
    kstroll_method: str = "auto",
    num_vms: Optional[int] = None,
    pool_cap: int = POOL_CAP,
) -> Optional[ChainWalk]:
    """Procedure 2: find a walk from ``source`` through ``num_vms`` VMs to ``last_vm``.

    ``num_vms`` defaults to ``|C|``.  Returns ``None`` when the pool is too
    small or endpoints are unreachable (callers treat the candidate as
    unavailable rather than failing the whole embedding).

    When the VM pool exceeds ``pool_cap``, only the ``pool_cap`` candidates
    with the lowest detour ``d(s, m) + setup(m) + d(m, u)`` are kept: a
    cheap walk never strays far from the source--last-VM corridor, so the
    restriction is empirically lossless while bounding the k-stroll cost
    independently of ``|M|``.
    """
    chain_len = num_vms if num_vms is not None else len(instance.chain)
    if chain_len < 1:
        raise ValueError("chain length must be >= 1")
    if last_vm == source:
        return None
    pool = set(candidate_vms) if candidate_vms is not None else set(instance.vms)
    pool.discard(source)
    pool.discard(last_vm)
    if pool_cap and len(pool) > pool_cap:
        oracle = instance.oracle
        # Deterministic sweep order: a bare ``list(pool)`` follows the
        # set's hash-salted iteration order, which leaks PYTHONHASHSEED
        # into oracle query order (hence row-install order and equal-score
        # tie-breaks) and makes runs irreproducible across processes.
        pool_list = sorted(pool, key=repr)
        # Kernel tier: one gather per endpoint row instead of 2|pool|
        # scalar reads.  ``detour_distances`` only answers when both rows
        # are cached and already serve every candidate (returning None --
        # side-effect free -- otherwise), so cache evolution and scores
        # are identical to the scalar loop below.
        batch = oracle.detour_distances(source, last_vm, pool_list)
        if batch is not None:
            np = kernel.np
            da, db = batch
            # ``setup_cost`` is exactly ``node_costs.get(node, 0.0)``;
            # binding the dict lookup keeps the per-candidate method-call
            # overhead out of this |pool|-sized comprehension.
            ncg = instance.node_costs.get
            setups = (
                [setup_costs.get(m, ncg(m, 0.0)) for m in pool_list]
                if setup_costs is not None
                else [ncg(m, 0.0) for m in pool_list]
            )
            # Elementwise IEEE doubles in the scalar loop's association,
            # ``(d1 + setup) + d2``, so scores are bit-identical; the
            # stable argsort reproduces ``sorted``'s tie-breaks (list
            # order) exactly.
            scores = (np.asarray(da) + np.asarray(setups)) + np.asarray(db)
            keep = np.argsort(scores, kind="stable")[:pool_cap]
            pool = {pool_list[i] for i in keep}
        else:
            def detour(m: Node) -> float:
                """Corridor detour score of a candidate intermediate VM."""
                setup = (
                    setup_costs.get(m, instance.setup_cost(m))
                    if setup_costs is not None else instance.setup_cost(m)
                )
                # Query from the endpoints so only two Dijkstras are cached.
                return oracle.distance(source, m) + setup + oracle.distance(last_vm, m)

            pool = set(sorted(pool_list, key=detour)[:pool_cap])
    kinst = build_kstroll_instance(
        instance,
        source,
        last_vm,
        candidate_vms=pool,
        setup_costs=setup_costs,
        source_cost=instance.source_setup_cost(source),
    )
    k = chain_len + 1  # |C| VMs plus the source itself
    if k > len(kinst.nodes):
        return None
    if kinst.edge(source, last_vm) == INF:
        return None
    try:
        stroll, stroll_cost = solve_kstroll(kinst, k, method=kstroll_method)
    except ValueError:
        return None
    if stroll_cost == INF:
        return None

    oracle = instance.oracle
    walk: List[Node] = [source]
    positions: List[int] = [0]
    for a, b in zip(stroll, stroll[1:]):
        segment = oracle.path(a, b)
        walk.extend(segment[1:])
        positions.append(len(walk) - 1)
    connection = sum(
        instance.graph.cost(u, v) for u, v in zip(walk, walk[1:])
    )
    if setup_costs is not None:
        setup = sum(
            setup_costs.get(node, instance.setup_cost(node))
            for node in stroll[1:]
        )
    else:
        setup = sum(instance.setup_cost(node) for node in stroll[1:])
    return ChainWalk(
        walk=walk,
        stroll=list(stroll),
        positions=positions,
        connection_cost=connection,
        setup_cost=setup,
    )
