"""SOFDA: the general multi-source ``3ρST``-approximation (Section V).

Algorithm 2 of the paper:

1. **Procedure 3** -- build the auxiliary Steiner instance ``Ĝ``:
   duplicate every source ``v`` as ``v̂`` and every VM ``u`` as ``û``; add a
   virtual super-source ``ŝ``; connect ``ŝ -- v̂`` and ``u -- û`` with
   zero-cost edges and ``v̂ -- û`` with a *virtual edge* whose cost is the
   best candidate service chain from ``v`` to ``u`` (Procedure 2 k-stroll,
   setup costs included).
2. Find a Steiner tree ``T`` in ``Ĝ`` spanning ``{ŝ} ∪ D``.  Lemma 2 bounds
   its cost by ``3·c(F_OPT)``; the ρST-approximate tree by ``3ρST·c(F_OPT)``.
3. Deploy the walk behind every selected virtual edge into the forest,
   resolving VNF conflicts with Procedure 4 (:mod:`repro.core.conflict`).
4. Add every real edge of ``T ∩ G`` as distribution (tree) edges.

The returned forest is feasibility-checked and lightly pruned (distribution
edges that serve no destination are dropped -- a pure improvement).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Tuple

from repro.graph import Graph, steiner_tree
from repro.core.conflict import ResolutionStats, resolve_and_add_chain
from repro.core.forest import ServiceOverlayForest
from repro.core.problem import SOFInstance
from repro.core.transform import ChainWalk, chain_walk
from repro.core.validation import check_forest

Node = Hashable

_VSRC = "__sof_virtual_source__"


def _src_dup(v: Node) -> Tuple[str, Node]:
    return ("src^", v)


def _vm_dup(u: Node) -> Tuple[str, Node]:
    return ("vm^", u)


@dataclass
class AuxiliaryGraph:
    """Procedure 3 output: the Steiner instance plus the walk behind each
    virtual edge."""

    graph: Graph
    virtual_source: Node
    walks: Dict[Tuple[Node, Node], ChainWalk] = field(default_factory=dict)

    def walk_for(self, source: Node, last_vm: Node) -> ChainWalk:
        """The candidate chain represented by virtual edge ``(v̂, û)``."""
        return self.walks[(source, last_vm)]


def build_auxiliary_graph(
    instance: SOFInstance,
    kstroll_method: str = "auto",
) -> AuxiliaryGraph:
    """Procedure 3: construct the auxiliary Steiner-tree instance ``Ĝ``."""
    aux = Graph()
    for u, v, cost in instance.graph.edges():
        aux.add_edge(u, v, cost)
    for node in instance.graph.nodes():
        aux.add_node(node)

    aux.add_node(_VSRC)
    walks: Dict[Tuple[Node, Node], ChainWalk] = {}
    for v in sorted(instance.sources, key=repr):
        aux.add_edge(_VSRC, _src_dup(v), 0.0)
    for u in sorted(instance.vms, key=repr):
        aux.add_edge(u, _vm_dup(u), 0.0)
    for v in sorted(instance.sources, key=repr):
        for u in sorted(instance.vms, key=repr):
            if u == v:
                continue
            cw = chain_walk(instance, v, u, kstroll_method=kstroll_method)
            if cw is None:
                continue
            key = (_src_dup(v), _vm_dup(u))
            existing = walks.get((v, u))
            if existing is None or cw.total_cost < existing.total_cost:
                walks[(v, u)] = cw
                aux.add_edge(key[0], key[1], cw.total_cost)
    if not walks:
        raise RuntimeError("no candidate service chain exists for any (source, VM) pair")
    return AuxiliaryGraph(graph=aux, virtual_source=_VSRC, walks=walks)


def _selected_virtual_edges(
    tree: Graph, instance: SOFInstance
) -> List[Tuple[Node, Node]]:
    """Extract the ``(source, last_vm)`` pairs of virtual edges used by ``T``."""
    pairs = []
    for a, b, _ in tree.edges():
        for x, y in ((a, b), (b, a)):
            if (
                isinstance(x, tuple) and len(x) == 2 and x[0] == "src^"
                and isinstance(y, tuple) and len(y) == 2 and y[0] == "vm^"
            ):
                pairs.append((x[1], y[1]))
    return sorted(pairs, key=repr)


@dataclass
class SOFDAResult:
    """SOFDA output: the forest plus diagnostics used by experiments."""

    forest: ServiceOverlayForest
    stats: ResolutionStats
    num_virtual_edges: int

    @property
    def cost(self) -> float:
        """Total cost of the embedded forest."""
        return self.forest.total_cost()


def sofda(
    instance: SOFInstance,
    steiner_method: str = "kmb",
    kstroll_method: str = "auto",
    resolve_conflicts: bool = True,
    prune: bool = True,
    validate: bool = True,
) -> SOFDAResult:
    """Run SOFDA (Algorithm 2) and return the embedded forest.

    Args:
        instance: the SOF instance.
        steiner_method: Steiner solver for the auxiliary instance.
        kstroll_method: k-stroll solver for candidate chains.
        resolve_conflicts: when ``False``, conflicting chains go straight to
            the repair path (the ablation in DESIGN.md §5.3).
        prune: drop distribution edges that serve no destination.
        validate: run the feasibility checker on the result.
    """
    aux = build_auxiliary_graph(instance, kstroll_method=kstroll_method)
    terminals = [aux.virtual_source] + sorted(instance.destinations, key=repr)
    tree = steiner_tree(aux.graph, terminals, method=steiner_method).tree

    forest = ServiceOverlayForest(instance=instance)
    stats = ResolutionStats()

    # Deploy the chain behind every selected virtual edge.  Cheaper chains
    # first: they seed the forest that later chains attach to.
    pairs = _selected_virtual_edges(tree, instance)
    pairs.sort(key=lambda p: aux.walks[p].total_cost)
    for v, u in pairs:
        candidate = aux.walks[(v, u)]
        if resolve_conflicts:
            resolve_and_add_chain(forest, candidate, stats)
        else:
            chain = candidate.to_deployed_chain()
            conflicted = any(
                forest.enabled.get(chain.walk[pos]) not in (None, vnf)
                for pos, vnf in chain.placements.items()
            )
            if conflicted:
                from repro.core.conflict import _repair_chain

                _repair_chain(forest, candidate, stats)
            else:
                forest.add_chain(chain)
                stats.clean += 1

    # Real edges of T ∩ G become distribution edges.
    real_nodes = set(instance.graph.nodes())
    for a, b, _ in tree.edges():
        if a in real_nodes and b in real_nodes:
            forest.add_tree_edge(a, b)

    if prune:
        forest.prune_tree_edges()
    if validate:
        check_forest(instance, forest)
    return SOFDAResult(
        forest=forest, stats=stats, num_virtual_edges=len(pairs)
    )
