"""SOFDA: the general multi-source ``3ρST``-approximation (Section V).

Algorithm 2 of the paper:

1. **Procedure 3** -- build the auxiliary Steiner instance ``Ĝ``:
   duplicate every source ``v`` as ``v̂`` and every VM ``u`` as ``û``; add a
   virtual super-source ``ŝ``; connect ``ŝ -- v̂`` and ``u -- û`` with
   zero-cost edges and ``v̂ -- û`` with a *virtual edge* whose cost is the
   best candidate service chain from ``v`` to ``u`` (Procedure 2 k-stroll,
   setup costs included).
2. Find a Steiner tree ``T`` in ``Ĝ`` spanning ``{ŝ} ∪ D``.  Lemma 2 bounds
   its cost by ``3·c(F_OPT)``; the ρST-approximate tree by ``3ρST·c(F_OPT)``.
3. Deploy the walk behind every selected virtual edge into the forest,
   resolving VNF conflicts with Procedure 4 (:mod:`repro.core.conflict`).
4. Add every real edge of ``T ∩ G`` as distribution (tree) edges.

The returned forest is feasibility-checked and lightly pruned (distribution
edges that serve no destination are dropped -- a pure improvement).

Performance: the whole pipeline shares the instance's single
:class:`~repro.graph.indexed.FrozenOracle`.  Procedure 3 batches the
|S| x |M| sweep through the instance-wide Procedure-1 metric block, and the
Steiner step never runs Dijkstra on ``Ĝ`` itself -- an
:class:`AuxiliaryOracle` answers terminal distance/path queries on ``Ĝ``
from base-graph oracle rows over a condensed graph of the virtual part
(see "Performance architecture" in ROADMAP.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.graph import FrozenOracle, Graph, steiner_tree
from repro.graph.shortest_paths import dijkstra, reconstruct_path
from repro.graph.steiner import resolve_steiner_method
from repro.core.conflict import (
    ResolutionStats,
    repair_chain,
    resolve_and_add_chain,
)
from repro.core.forest import ServiceOverlayForest
from repro.core.problem import SOFInstance
from repro.core.transform import ChainWalk, chain_walk
from repro.core.validation import check_forest

Node = Hashable
INF = float("inf")

_VSRC = "__sof_virtual_source__"


def _src_dup(v: Node) -> Tuple[str, Node]:
    return ("src^", v)


def _vm_dup(u: Node) -> Tuple[str, Node]:
    return ("vm^", u)


class AuxiliaryOracle:
    """Distance/path oracle for ``Ĝ`` served from base-graph oracle rows.

    Every ``Ĝ`` shortest path between real nodes (or ``ŝ``) decomposes into
    real segments whose endpoints are VMs or query terminals, joined by
    hops through the virtual part (``ŝ``, source duplicates, VM
    duplicates).  A condensed graph over those ~|S| + |M| anchor nodes --
    with real segments replaced by base-graph shortest-path distances --
    therefore has *exactly* the ``Ĝ`` distances, and a Dijkstra on it costs
    microseconds instead of a full sweep of the 5000-node auxiliary graph.

    Queries whose endpoints are not registered terminals (e.g. the exact
    Dreyfus--Wagner solver probing interior nodes) fall back to a
    :class:`FrozenOracle` over ``Ĝ`` itself, which is always exact.
    """

    def __init__(
        self,
        instance: SOFInstance,
        aux_graph: Graph,
        virtual_source: Node,
        terminals: List[Node],
    ) -> None:
        self._instance = instance
        self._aux_graph = aux_graph
        self._virtual_source = virtual_source
        self._terminals = set(terminals)
        self._condensed: Optional[Graph] = None
        self._rows: Dict[Node, Tuple[Dict[Node, float], Dict[Node, Node]]] = {}
        self._fallback: Optional[FrozenOracle] = None

    @property
    def graph(self) -> Graph:
        """The auxiliary graph this oracle answers queries about."""
        return self._aux_graph

    # ------------------------------------------------------------------
    def _build_condensed(self) -> Graph:
        """The anchor graph: virtual part verbatim + metric real segments."""
        if self._condensed is not None:
            return self._condensed
        instance = self._instance
        base = instance.oracle
        aux = self._aux_graph
        vsrc = self._virtual_source
        condensed = Graph()
        condensed.add_node(vsrc)
        # Virtual part verbatim: s^ -- v^ -- u^ -- u edges.
        for nbr, cost in aux.neighbor_items(vsrc):
            condensed.add_edge(vsrc, nbr, cost)
        for v in sorted(instance.sources, key=repr):
            vdup = _src_dup(v)
            if vdup not in aux:
                continue
            for nbr, cost in aux.neighbor_items(vdup):
                if nbr != vsrc:
                    condensed.add_edge(vdup, nbr, cost)
        anchors: List[Node] = []
        for u in sorted(instance.vms, key=repr):
            udup = _vm_dup(u)
            if udup not in aux:
                continue
            condensed.add_edge(udup, u, aux.cost(udup, u))
            anchors.append(u)
        # Real segments between anchors (VM attachment points and query
        # terminals) become metric edges from the shared base oracle.
        reals = anchors + sorted(
            (t for t in self._terminals if t != vsrc and t not in anchors),
            key=repr,
        )
        for node in reals:
            condensed.add_node(node)  # keep unreachable terminals queryable
        for i, a in enumerate(reals):
            rest = reals[i + 1:]
            for b, d in zip(rest, base.distances_to(a, rest)):
                if d < INF and a != b:
                    condensed.add_edge(a, b, d)
        self._condensed = condensed
        return condensed

    def _condensed_row(
        self, source: Node
    ) -> Tuple[Dict[Node, float], Dict[Node, Node]]:
        row = self._rows.get(source)
        if row is None:
            row = dijkstra(self._build_condensed(), source)
            self._rows[source] = row
        return row

    def _serves(self, node: Node) -> bool:
        return node == self._virtual_source or node in self._terminals

    def _ensure_fallback(self) -> FrozenOracle:
        if self._fallback is None:
            base = self._instance.oracle
            self._fallback = FrozenOracle(
                self._aux_graph,
                parallel_rows=base.parallel_rows,
                vectorized=base.vectorized,
                row_budget_bytes=base.row_budget_bytes,
                metrics=base.metrics,
            )
        return self._fallback

    # ------------------------------------------------------------------
    def distance(self, source: Node, target: Node) -> float:
        """Shortest-path cost in ``Ĝ``; ``inf`` if unreachable."""
        if not (self._serves(source) and self._serves(target)):
            return self._ensure_fallback().distance(source, target)
        dist, _ = self._condensed_row(source)
        return dist.get(target, INF)

    def path(self, source: Node, target: Node) -> List[Node]:
        """A shortest ``Ĝ`` path, with real segments expanded through the
        base oracle."""
        if not (self._serves(source) and self._serves(target)):
            return self._ensure_fallback().path(source, target)
        dist, parent = self._condensed_row(source)
        if target not in dist:
            raise ValueError(f"no path from {source!r} to {target!r}")
        condensed_path = reconstruct_path(parent, source, target)
        aux = self._aux_graph
        base = self._instance.oracle
        out: List[Node] = [condensed_path[0]]
        for a, b in zip(condensed_path, condensed_path[1:]):
            if aux.has_edge(a, b) and aux.cost(a, b) == self._condensed.cost(a, b):
                out.append(b)
            else:
                out.extend(base.path(a, b)[1:])
        return out

    def distances_from(self, source: Node) -> Dict[Node, float]:
        """All ``Ĝ`` shortest-path costs from ``source``."""
        return self._ensure_fallback().distances_from(source)

    def invalidate(self) -> None:
        """Drop all cached state."""
        self._condensed = None
        self._rows.clear()
        self._fallback = None


@dataclass
class AuxiliaryGraph:
    """Procedure 3 output: the Steiner instance plus the walk behind each
    virtual edge and the condensed oracle that answers ``Ĝ`` queries."""

    graph: Graph
    virtual_source: Node
    walks: Dict[Tuple[Node, Node], ChainWalk] = field(default_factory=dict)
    oracle: Optional[AuxiliaryOracle] = None

    def walk_for(self, source: Node, last_vm: Node) -> ChainWalk:
        """The candidate chain represented by virtual edge ``(v̂, û)``."""
        return self.walks[(source, last_vm)]


def build_auxiliary_graph(
    instance: SOFInstance,
    kstroll_method: str = "auto",
) -> AuxiliaryGraph:
    """Procedure 3: construct the auxiliary Steiner-tree instance ``Ĝ``.

    The |S| x |M| candidate-chain sweep runs on the instance's shared
    oracle: each source and VM costs one (early-terminated) Dijkstra in
    total, and the VM-pair block of every Procedure-1 instance is reused
    across all pairs (:meth:`SOFInstance.metric_block`).
    """
    if instance.oracle.contracted is not None:
        # Continuous-cost instance: shortest-path ties are measure-zero,
        # so the bulk copy's different adjacency order cannot change any
        # downstream tie-break.
        aux = instance.graph.copy()
    else:
        # Tie-heavy instance: rebuild edge by edge so the auxiliary
        # graph's enumeration order -- and with it every equal-cost
        # tie-break downstream -- matches the historical construction.
        aux = Graph()
        for u, v, cost in instance.graph.edges():
            aux.add_edge(u, v, cost)
        for node in instance.graph.nodes():
            aux.add_node(node)

    aux.add_node(_VSRC)
    walks: Dict[Tuple[Node, Node], ChainWalk] = {}
    for v in sorted(instance.sources, key=repr):
        aux.add_edge(_VSRC, _src_dup(v), 0.0)
    for u in sorted(instance.vms, key=repr):
        aux.add_edge(u, _vm_dup(u), 0.0)
    for v in sorted(instance.sources, key=repr):
        for u in sorted(instance.vms, key=repr):
            if u == v:
                continue
            cw = chain_walk(instance, v, u, kstroll_method=kstroll_method)
            if cw is None:
                continue
            key = (_src_dup(v), _vm_dup(u))
            existing = walks.get((v, u))
            if existing is None or cw.total_cost < existing.total_cost:
                walks[(v, u)] = cw
                aux.add_edge(key[0], key[1], cw.total_cost)
    if not walks:
        raise RuntimeError("no candidate service chain exists for any (source, VM) pair")
    terminals = [_VSRC] + sorted(instance.destinations, key=repr)
    oracle = AuxiliaryOracle(instance, aux, _VSRC, terminals)
    return AuxiliaryGraph(
        graph=aux, virtual_source=_VSRC, walks=walks, oracle=oracle
    )


def _selected_virtual_edges(
    tree: Graph, instance: SOFInstance
) -> List[Tuple[Node, Node]]:
    """Extract the ``(source, last_vm)`` pairs of virtual edges used by ``T``."""
    pairs = []
    for a, b, _ in tree.edges():
        for x, y in ((a, b), (b, a)):
            if (
                isinstance(x, tuple) and len(x) == 2 and x[0] == "src^"
                and isinstance(y, tuple) and len(y) == 2 and y[0] == "vm^"
            ):
                pairs.append((x[1], y[1]))
    return sorted(pairs, key=repr)


@dataclass
class SOFDAResult:
    """SOFDA output: the forest plus diagnostics used by experiments."""

    forest: ServiceOverlayForest
    stats: ResolutionStats
    num_virtual_edges: int

    @property
    def cost(self) -> float:
        """Total cost of the embedded forest."""
        return self.forest.total_cost()


def sofda(
    instance: SOFInstance,
    steiner_method: str = "kmb",
    kstroll_method: str = "auto",
    resolve_conflicts: bool = True,
    prune: bool = True,
    validate: bool = True,
) -> SOFDAResult:
    """Run SOFDA (Algorithm 2) and return the embedded forest.

    Args:
        instance: the SOF instance.
        steiner_method: Steiner solver for the auxiliary instance.
        kstroll_method: k-stroll solver for candidate chains.
        resolve_conflicts: when ``False``, conflicting chains go straight to
            the repair path (the ablation in DESIGN.md §5.3).
        prune: drop distribution edges that serve no destination.
        validate: run the feasibility checker on the result.
    """
    aux = build_auxiliary_graph(instance, kstroll_method=kstroll_method)
    terminals = [aux.virtual_source] + sorted(instance.destinations, key=repr)
    # The condensed oracle serves KMB's terminal-only queries; the exact DP
    # probes interior nodes pair-by-pair, where per-solver caching wins.
    # It may pick a different (equally short) Ĝ path when shortest paths
    # tie, so it engages only alongside the contracted instance oracle --
    # i.e. on large continuous-cost graphs where ties are measure-zero.
    resolved = resolve_steiner_method(aux.graph, terminals, steiner_method)
    aux_oracle = (
        aux.oracle
        if resolved == "kmb" and instance.oracle.contracted is not None
        else None
    )
    tree = steiner_tree(
        aux.graph, terminals, method=steiner_method, oracle=aux_oracle
    ).tree

    forest = ServiceOverlayForest(instance=instance)
    stats = ResolutionStats()

    # Deploy the chain behind every selected virtual edge.  Cheaper chains
    # first: they seed the forest that later chains attach to.
    pairs = _selected_virtual_edges(tree, instance)
    pairs.sort(key=lambda p: aux.walks[p].total_cost)
    for v, u in pairs:
        candidate = aux.walks[(v, u)]
        if resolve_conflicts:
            resolve_and_add_chain(forest, candidate, stats)
        else:
            chain = candidate.to_deployed_chain()
            conflicted = any(
                forest.enabled.get(chain.walk[pos]) not in (None, vnf)
                for pos, vnf in chain.placements.items()
            )
            if conflicted:
                repair_chain(forest, candidate, stats)
            else:
                forest.add_chain(chain)
                stats.clean += 1

    # Real edges of T ∩ G become distribution edges.
    real_nodes = set(instance.graph.nodes())
    real_nodes.discard(_VSRC)
    for a, b, _ in tree.edges():
        if a in real_nodes and b in real_nodes:
            forest.add_tree_edge(a, b)

    if prune:
        forest.prune_tree_edges()
    if validate:
        check_forest(instance, forest)
    return SOFDAResult(
        forest=forest, stats=stats, num_virtual_edges=len(pairs)
    )
