"""Feasibility validation for service overlay forests (Section III).

A forest is feasible iff:

1. Every chain walk is a real walk in ``G`` (consecutive nodes adjacent).
2. Every chain places ``f1..f|C|`` in order on VM nodes along its walk.
3. No VM runs more than one VNF across the whole forest, and every
   placement agrees with the forest's ``enabled`` map.
4. Every chain starts at a source (or is attached to a chain that does).
5. Every destination is connected -- through the distribution (tree) edges
   and/or by lying directly on a chain walk *after* its last VNF -- to the
   hand-off point of a complete chain.

``check_forest`` raises :class:`ForestInfeasible` with a precise message on
the first violated condition.
"""

from __future__ import annotations

from typing import Dict, Hashable, Set

from repro.graph.graph import Graph
from repro.core.forest import DeployedChain, ServiceOverlayForest
from repro.core.problem import SOFInstance

Node = Hashable


class ForestInfeasible(Exception):
    """Raised when a service overlay forest violates the SOF constraints."""


def _check_chain(instance: SOFInstance, chain: DeployedChain, index: int) -> None:
    graph = instance.graph
    walk = chain.walk
    if not walk:
        raise ForestInfeasible(f"chain {index}: empty walk")
    for u, v in zip(walk, walk[1:]):
        if not graph.has_edge(u, v):
            raise ForestInfeasible(
                f"chain {index}: walk step {u!r} -> {v!r} is not an edge of G"
            )
    expected = list(range(len(instance.chain)))
    placed = chain.vnf_positions()
    if [vnf for _, vnf in placed] != expected:
        raise ForestInfeasible(
            f"chain {index}: placements {placed} do not cover "
            f"f1..f{len(instance.chain)} in order"
        )
    positions = [pos for pos, _ in placed]
    if positions != sorted(set(positions)):
        raise ForestInfeasible(f"chain {index}: placement positions not increasing")
    for pos, vnf in placed:
        if pos < 0 or pos >= len(walk):
            raise ForestInfeasible(f"chain {index}: placement position {pos} out of range")
        node = walk[pos]
        if node not in instance.vms:
            raise ForestInfeasible(
                f"chain {index}: VNF f{vnf + 1} placed on non-VM node {node!r}"
            )
    if chain.paid_from_edge < 0 or chain.paid_from_edge > max(0, len(walk) - 1):
        raise ForestInfeasible(
            f"chain {index}: paid_from_edge {chain.paid_from_edge} out of range"
        )


def _check_enabled(instance: SOFInstance, forest: ServiceOverlayForest) -> None:
    seen: Dict[Node, int] = {}
    for i, chain in enumerate(forest.chains):
        for pos, vnf in chain.placements.items():
            node = chain.walk[pos]
            if node in seen and seen[node] != vnf:
                raise ForestInfeasible(
                    f"VNF conflict: node {node!r} runs f{seen[node] + 1} and "
                    f"f{vnf + 1} (chain {i})"
                )
            seen[node] = vnf
            if forest.enabled.get(node) != vnf:
                raise ForestInfeasible(
                    f"enabled map out of sync at {node!r}: map says "
                    f"{forest.enabled.get(node)}, chain {i} places f{vnf + 1}"
                )
    for node, vnf in forest.enabled.items():
        if node not in instance.vms:
            raise ForestInfeasible(f"non-VM node {node!r} marked enabled")
        if node not in seen:
            raise ForestInfeasible(
                f"enabled map lists {node!r} (f{vnf + 1}) but no chain uses it"
            )


def _check_sources(instance: SOFInstance, forest: ServiceOverlayForest) -> None:
    for i, chain in enumerate(forest.chains):
        if chain.source not in instance.sources:
            raise ForestInfeasible(
                f"chain {i} starts at {chain.source!r}, which is not a source"
            )


def _delivery_points(forest: ServiceOverlayForest) -> Set[Node]:
    """Nodes from which fully-processed content is available.

    These are each complete chain's last VM plus every walk node *after*
    the last VNF placement (data past the last VM is fully processed).
    """
    points: Set[Node] = set()
    for chain in forest.chains:
        if not chain.placements:
            continue
        last_pos = max(chain.placements)
        points.update(chain.walk[last_pos:])
    return points


def _check_destinations(instance: SOFInstance, forest: ServiceOverlayForest) -> None:
    points = _delivery_points(forest)
    if not points:
        raise ForestInfeasible("forest has no complete chain")
    # Connectivity through tree edges only.
    tree = Graph()
    for u, v in forest.tree_edges:
        if not instance.graph.has_edge(u, v):
            raise ForestInfeasible(f"tree edge ({u!r}, {v!r}) is not an edge of G")
        tree.add_edge(u, v, instance.graph.cost(u, v))
    for dest in instance.destinations:
        if dest in points:
            continue
        if dest not in tree:
            raise ForestInfeasible(
                f"destination {dest!r} is neither on a processed walk segment "
                f"nor touched by any tree edge"
            )
        # BFS within tree edges looking for a delivery point.
        stack = [dest]
        component = {dest}
        served = False
        while stack and not served:
            node = stack.pop()
            if node in points:
                served = True
                break
            for neighbor in tree.neighbors(node):
                if neighbor not in component:
                    component.add(neighbor)
                    stack.append(neighbor)
        if not served:
            raise ForestInfeasible(
                f"destination {dest!r} is not connected to any complete chain"
            )


def check_forest(instance: SOFInstance, forest: ServiceOverlayForest) -> None:
    """Validate ``forest`` against ``instance``; raise :class:`ForestInfeasible`."""
    for i, chain in enumerate(forest.chains):
        _check_chain(instance, chain, i)
    _check_enabled(instance, forest)
    _check_sources(instance, forest)
    _check_destinations(instance, forest)


def is_feasible(instance: SOFInstance, forest: ServiceOverlayForest) -> bool:
    """Boolean wrapper around :func:`check_forest`."""
    try:
        check_forest(instance, forest)
    except ForestInfeasible:
        return False
    return True
