"""Service overlay forest representation and clone-aware cost accounting.

A solution is a set of *deployed chains* plus a set of *distribution-tree*
edges:

- A :class:`DeployedChain` is a walk in ``G`` from a source to the chain's
  last VM, together with the walk positions where the VNFs ``f1..f|C|`` run.
  Walks may revisit nodes (the paper's clones); every traversal of an edge
  is paid.  When a chain has been *attached* to another chain during VNF
  conflict resolution (Procedure 4), its leading edges are physically the
  other chain's edges and are not paid again -- ``paid_from_edge`` marks
  where this chain's own payment starts.
- The forest's ``tree_edges`` are the multicast distribution part (the
  Steiner tree(s) connecting last VMs to destinations); each is paid once.

Total cost = VM setup of enabled VMs (once each) + per-traversal walk edge
cost + tree edge cost, exactly matching Section III.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.graph.graph import Graph, canonical_edge
from repro.core.problem import SOFInstance

Node = Hashable
Edge = Tuple[Node, Node]


@dataclass
class DeployedChain:
    """A deployed service chain: a walk plus VNF placements along it.

    Attributes:
        walk: node sequence in ``G``; consecutive nodes must be adjacent.
        placements: mapping from walk position to VNF index (0-based).
            Positions are strictly increasing with the VNF index and cover
            ``0..|C|-1`` exactly once for a complete chain.
        paid_from_edge: index of the first walk edge this chain pays for.
            0 for a standalone chain; >0 when the prefix is borrowed from
            another chain after conflict resolution.
        attached_to: index of the parent chain in the forest when the prefix
            is borrowed (informational; used by validation and pruning).
    """

    walk: List[Node]
    placements: Dict[int, int]
    paid_from_edge: int = 0
    attached_to: Optional[int] = None

    @property
    def source(self) -> Node:
        """The walk's origin."""
        return self.walk[0]

    @property
    def last_vm(self) -> Node:
        """The node running the final VNF (the chain's hand-off point)."""
        if not self.placements:
            raise ValueError("chain has no placements")
        last_pos = max(self.placements)
        return self.walk[last_pos]

    def vnf_positions(self) -> List[Tuple[int, int]]:
        """Placements as ``(position, vnf_index)`` sorted by position."""
        return sorted(self.placements.items())

    def vm_of_vnf(self, vnf_index: int) -> Node:
        """The node running VNF ``vnf_index``; raises if not placed."""
        for pos, idx in self.placements.items():
            if idx == vnf_index:
                return self.walk[pos]
        raise KeyError(f"VNF {vnf_index} is not placed on this chain")

    def paid_edges(self) -> Iterable[Tuple[Node, Node]]:
        """Edges this chain pays for, one item per traversal."""
        for i in range(self.paid_from_edge, len(self.walk) - 1):
            yield self.walk[i], self.walk[i + 1]

    def all_edges(self) -> Iterable[Tuple[Node, Node]]:
        """All walk edges (including any borrowed prefix)."""
        for i in range(len(self.walk) - 1):
            yield self.walk[i], self.walk[i + 1]

    def copy(self) -> "DeployedChain":
        """Deep copy."""
        return DeployedChain(
            walk=list(self.walk),
            placements=dict(self.placements),
            paid_from_edge=self.paid_from_edge,
            attached_to=self.attached_to,
        )


@dataclass
class ServiceOverlayForest:
    """A candidate SOF solution over a given instance."""

    instance: SOFInstance
    chains: List[DeployedChain] = field(default_factory=list)
    tree_edges: Set[Edge] = field(default_factory=set)
    enabled: Dict[Node, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def add_chain(self, chain: DeployedChain) -> int:
        """Append a deployed chain, registering its VNF enablings.

        Raises ``ValueError`` on a VNF conflict (a placement on a VM already
        enabled with a different VNF) -- conflict *resolution* happens in
        :mod:`repro.core.conflict` before chains are added.
        """
        for pos, vnf in chain.placements.items():
            node = chain.walk[pos]
            current = self.enabled.get(node)
            if current is not None and current != vnf:
                raise ValueError(
                    f"VNF conflict at {node!r}: enabled f{current + 1}, "
                    f"requested f{vnf + 1}"
                )
        for pos, vnf in chain.placements.items():
            self.enabled[chain.walk[pos]] = vnf
        self.chains.append(chain)
        return len(self.chains) - 1

    def add_tree(self, tree: Graph) -> None:
        """Merge a distribution tree's edges into the forest (paid once)."""
        for u, v, _ in tree.edges():
            self.tree_edges.add(canonical_edge(u, v))

    def add_tree_edge(self, u: Node, v: Node) -> None:
        """Add one distribution edge."""
        self.tree_edges.add(canonical_edge(u, v))

    # ------------------------------------------------------------------
    # cost accounting (Section III objective)
    # ------------------------------------------------------------------
    def setup_cost(self) -> float:
        """Total setup cost of enabled VMs plus any source setup costs."""
        cost = sum(self.instance.setup_cost(node) for node in self.enabled)
        # Sorted so the float accumulation order (hence the last-ulp
        # rounding) does not follow the set's hash-salted iteration.
        cost += sum(
            self.instance.source_setup_cost(s)
            for s in sorted(self.used_sources(), key=repr)
        )
        return cost

    def connection_cost(self) -> float:
        """Stage-keyed connection cost, matching the paper's IP accounting.

        All destinations request the *same* demand, so the content carried
        over an edge is fully determined by the processing stage: how many
        of ``f1..f|C|`` have been applied so far.  The paper's IP therefore
        pays each ``(stage f, arc)`` once (variable ``τ_{f,u,v}``), and a
        clone pass of the same physical edge at a *different* stage pays
        again (Fig. 1(b)).  We reproduce exactly that: every walk-edge
        traversal is annotated with its stage (number of VNFs applied at or
        before the tail position) and paid once per distinct
        ``(stage, directed edge)``; distribution-tree edges carry
        final-stage content and dedup against final-stage walk tails.
        """
        graph = self.instance.graph
        num_functions = len(self.instance.chain)
        paid: Set[Tuple[int, Node, Node]] = set()
        cost = 0.0
        for chain in self.chains:
            stage = 0
            for i in range(len(chain.walk) - 1):
                if i in chain.placements:
                    stage = chain.placements[i] + 1
                u, v = chain.walk[i], chain.walk[i + 1]
                key = (stage, u, v)
                if key not in paid:
                    paid.add(key)
                    cost += graph.cost(u, v)
        # Sorted so the float accumulation order (hence the last-ulp
        # rounding) does not follow the set's hash-salted iteration.
        for u, v in sorted(self.tree_edges, key=repr):
            if (num_functions, u, v) in paid or (num_functions, v, u) in paid:
                continue
            paid.add((num_functions, u, v))
            cost += graph.cost(u, v)
        return cost

    def total_cost(self) -> float:
        """The SOF objective: setup cost + connection cost."""
        return self.setup_cost() + self.connection_cost()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def used_sources(self) -> Set[Node]:
        """Sources actually rooting a chain (after attachments)."""
        return {chain.walk[0] for chain in self.chains}

    def used_vms(self) -> Set[Node]:
        """VMs enabled with some VNF."""
        return set(self.enabled)

    def num_trees(self) -> int:
        """Number of distinct used sources (= service trees in the forest)."""
        return len(self.used_sources())

    def distribution_graph(self) -> Graph:
        """The tree-edge part as a :class:`Graph` (costs from the instance)."""
        graph = Graph()
        for u, v in self.tree_edges:
            graph.add_edge(u, v, self.instance.graph.cost(u, v))
        return graph

    def copy(self) -> "ServiceOverlayForest":
        """Deep copy (shares the instance)."""
        return ServiceOverlayForest(
            instance=self.instance,
            chains=[c.copy() for c in self.chains],
            tree_edges=set(self.tree_edges),
            enabled=dict(self.enabled),
        )

    # ------------------------------------------------------------------
    def prune_tree_edges(self) -> None:
        """Remove distribution edges not needed to reach any destination.

        Keeps, for every destination, the edges on its path to the closest
        complete-chain hand-off point inside the tree-edge subgraph.  A pure
        cost improvement; never changes feasibility.
        """
        if not self.tree_edges:
            return
        graph = self.distribution_graph()
        # Anchors: every node holding fully-processed content -- the last VM
        # and any pass-through walk tail after it (same definition as the
        # validator's delivery points).
        anchors: Set[Node] = set()
        for chain in self.chains:
            if chain.placements:
                anchors.update(chain.walk[max(chain.placements):])
        needed: Set[Edge] = set()
        import heapq

        for dest in self.instance.destinations:
            if dest in anchors:
                continue
            if dest not in graph:
                continue
            # Dijkstra from dest until an anchor is reached.
            dist = {dest: 0.0}
            parent: Dict[Node, Node] = {}
            heap: List[Tuple[float, int, Node]] = [(0.0, 0, dest)]
            counter = 1
            found = None
            settled = set()
            while heap:
                d, _, node = heapq.heappop(heap)
                if node in settled:
                    continue
                settled.add(node)
                if node in anchors:
                    found = node
                    break
                for neighbor, cost in graph.neighbor_items(node):
                    nd = d + cost
                    if nd < dist.get(neighbor, float("inf")):
                        dist[neighbor] = nd
                        parent[neighbor] = node
                        heapq.heappush(heap, (nd, counter, neighbor))
                        counter += 1
            if found is None:
                # Destination not served through tree edges (may sit on a
                # walk); keep everything touching it untouched.
                continue
            node = found
            while node != dest:
                prev = parent[node]
                needed.add(canonical_edge(node, prev))
                node = prev
        self.tree_edges = needed

    def describe(self) -> str:
        """Human-readable multi-line summary of the forest."""
        lines = [
            f"ServiceOverlayForest: {len(self.chains)} chain(s), "
            f"{len(self.tree_edges)} tree edge(s), "
            f"cost={self.total_cost():.3f} "
            f"(setup={self.setup_cost():.3f}, "
            f"connection={self.connection_cost():.3f})"
        ]
        for i, chain in enumerate(self.chains):
            placement_str = ", ".join(
                f"f{vnf + 1}@{chain.walk[pos]!r}" for pos, vnf in chain.vnf_positions()
            )
            lines.append(
                f"  chain {i}: source={chain.source!r} walk={chain.walk} "
                f"[{placement_str}] paid_from_edge={chain.paid_from_edge}"
            )
        if self.tree_edges:
            lines.append(f"  tree edges: {sorted(map(str, self.tree_edges))}")
        return "\n".join(lines)
