"""The experimental-SDN topology (Fig. 13): 14 nodes, 20 links.

The figure's exact adjacency is not recoverable from the paper text, so
this is a deterministic reconstruction with the published counts and the
figure's general shape (a meshy core with peripheral access nodes).  Every
node can host one VNF, matching "each node can support one VNF".
"""

from __future__ import annotations

from repro.graph import Graph
from repro.topology.network import CloudNetwork

#: The reconstructed 20-link adjacency of the 14-node testbed.
FIG13_EDGES = [
    (0, 1), (0, 2), (1, 2), (1, 3), (2, 4),
    (3, 4), (3, 5), (4, 6), (5, 6), (5, 7),
    (6, 8), (7, 8), (7, 9), (8, 10), (9, 10),
    (9, 11), (10, 12), (11, 12), (11, 13), (12, 13),
]


def fig13_topology() -> CloudNetwork:
    """Build the 14-node / 20-link experimental network.

    Edge costs default to 1 (the QoE experiment overwrites them from the
    congestion state).  All nodes are data centers: any node may host a
    VNF, as in the testbed.
    """
    graph = Graph()
    for u, v in FIG13_EDGES:
        graph.add_edge(u, v, 1.0)
    assert len(graph) == 14 and graph.num_edges() == 20
    return CloudNetwork(
        name="fig13-testbed", graph=graph, datacenters=list(range(14))
    )
