"""Experimental-SDN testbed simulator (Section VIII-D, Fig. 13, Table II).

The paper's physical testbed (HP OpenFlow switches, OpenDaylight,
FFmpeg transcoder + watermarker VNFs, VLC playback of a 137 s / 8 Mbps
YouTube stream over links with 4.5--9 Mbps available bandwidth) is
replaced by a flow-level simulation -- see DESIGN.md's substitution table:

- :func:`~repro.testbed.topology.fig13_topology` -- a 14-node / 20-link
  topology with the paper's shape.
- :class:`~repro.testbed.flowsim.FlowSimulator` -- per-second available
  bandwidth per link; multicast streams consume one share per distinct
  (stage, link) use; a destination's goodput is the min along its path.
- :class:`~repro.testbed.video.VideoSession` -- leaky-bucket playback
  buffer producing the two QoE metrics: startup latency and total
  re-buffering time.
- :func:`~repro.testbed.experiment.run_qoe_experiment` -- embeds the
  video service with each algorithm and simulates playback (Table II).
"""

from repro.testbed.topology import fig13_topology
from repro.testbed.flowsim import FlowSimulator, destination_paths
from repro.testbed.video import VideoSession, VideoSpec
from repro.testbed.experiment import QoEReport, run_qoe_experiment

__all__ = [
    "fig13_topology",
    "FlowSimulator",
    "destination_paths",
    "VideoSession",
    "VideoSpec",
    "QoEReport",
    "run_qoe_experiment",
]
