"""The Table II experiment: QoE of SOFDA vs eNEMP vs eST on the testbed.

Per trial: draw per-link congestion (available bandwidth 4.5--9 Mbps),
derive congestion-aware costs, embed the video service (2 random sources,
4 random destinations, the transcoder+watermarker chain) with each
algorithm, then simulate 137 s of 8 Mbps playback at every destination
and average startup latency and re-buffering time.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from repro.core.forest import ServiceOverlayForest
from repro.core.problem import ServiceChain, SOFInstance
from repro.costmodel import fortz_thorup_cost
from repro.testbed.flowsim import FlowSimulator
from repro.testbed.topology import fig13_topology
from repro.testbed.video import VideoSession, VideoSpec

Node = Hashable
Embedder = Callable[[SOFInstance], ServiceOverlayForest]

#: The testbed's VNF chain: FFmpeg transcoder + watermarker.
VIDEO_CHAIN = ServiceChain(["transcoder", "watermarker"])


@dataclass
class QoEReport:
    """Aggregated QoE numbers for one algorithm (one Table II row)."""

    name: str
    startup_latencies: List[float] = field(default_factory=list)
    rebuffering_times: List[float] = field(default_factory=list)

    @property
    def mean_startup_latency(self) -> float:
        """Mean startup latency across all sessions (seconds)."""
        return statistics.mean(self.startup_latencies)

    @property
    def mean_rebuffering(self) -> float:
        """Mean total re-buffering time across all sessions (seconds)."""
        return statistics.mean(self.rebuffering_times)


def _testbed_instance(
    seed: int,
    link_capacity: float = 50.0,
    bandwidth_range: Tuple[float, float] = (4.5, 9.0),
    congestion_probability: float = 0.5,
    clear_range: Tuple[float, float] = (20.0, 40.0),
) -> Tuple[SOFInstance, Dict]:
    """Draw one testbed scenario: congestion state + instance.

    Congestion is bimodal, as on the physical testbed: a congested link
    has only 4.5--9 Mbps available (below the 8 Mbps video bitrate), a
    clear link 20--40 Mbps.  A link's embedding cost is the Fortz--Thorup
    cost of pushing the 8 Mbps stream through its *available* bandwidth
    (Section VII-B with the request's demand as the load): a link that
    cannot carry the stream (utilisation > 1) is astronomically expensive,
    so cost-optimising embedders route around congestion -- the mechanism
    behind Table II ("SOFDA routes traffic to less congested links ... and
    fewer packets thereby are lost").
    """
    rng = random.Random(seed)
    network = fig13_topology()
    graph = network.graph.copy()
    lo, hi = bandwidth_range
    demand = 8.0  # the video bitrate
    congestion_seeds = {}
    for u, v, _ in list(graph.edges()):
        if rng.random() < congestion_probability:
            available = rng.uniform(lo, hi)
        else:
            available = rng.uniform(*clear_range)
        graph.add_edge(u, v, fortz_thorup_cost(demand, available))
        congestion_seeds[(u, v)] = available

    nodes = list(range(14))
    picks = rng.sample(nodes, 6)
    sources = picks[:2]
    destinations = picks[2:]
    # Every node can host one VNF; the remaining nodes form the VM pool.
    vms = [n for n in nodes if n not in sources and n not in destinations]
    node_costs = {
        vm: fortz_thorup_cost(rng.uniform(0.0, 0.8), 1.0) for vm in vms
    }
    instance = SOFInstance(
        graph=graph,
        vms=vms,
        sources=sources,
        destinations=destinations,
        chain=VIDEO_CHAIN,
        node_costs=node_costs,
    )
    return instance, congestion_seeds


def run_qoe_experiment(
    embedders: Dict[str, Embedder],
    trials: int = 10,
    seed: int = 0,
    spec: Optional[VideoSpec] = None,
    bandwidth_range: Tuple[float, float] = (4.5, 9.0),
) -> Dict[str, QoEReport]:
    """Run the Table II comparison and return per-algorithm reports."""
    spec = spec or VideoSpec()
    reports = {name: QoEReport(name=name) for name in embedders}
    for trial in range(trials):
        instance, congestion = _testbed_instance(seed * 10007 + trial)
        for name, embedder in embedders.items():
            forest = embedder(instance)
            simulator = FlowSimulator(
                forest,
                bandwidth_range=bandwidth_range,
                base_bandwidth=congestion,
                seed=seed * 31 + trial,
            )
            sessions = {
                dest: VideoSession(spec=spec) for dest in instance.destinations
            }
            for _ in range(100000):
                if all(s.finished for s in sessions.values()):
                    break
                goodput = simulator.step_goodput()
                for dest, session in sessions.items():
                    session.advance(goodput[dest])
            for session in sessions.values():
                reports[name].startup_latencies.append(
                    session.startup_latency
                    if session.startup_latency is not None
                    else session.clock_s
                )
                reports[name].rebuffering_times.append(session.rebuffering_s)
    return reports
