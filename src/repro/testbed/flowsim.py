"""Flow-level bandwidth simulation over an embedded forest.

Each physical link has a time-varying *available bandwidth* (the paper
emulates congestion by capping links at 4.5--9 Mbps).  A multicast forest
consumes one stream share per distinct ``(stage, link)`` use -- a walk
that crosses the same physical link at two processing stages (a clone
pass) carries two copies and halves the per-copy bandwidth.  A
destination's instantaneous goodput is the minimum share along its
delivery path.
"""

from __future__ import annotations

import random
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.forest import ServiceOverlayForest
from repro.graph.graph import canonical_edge

Node = Hashable
Edge = Tuple[Node, Node]


def destination_paths(forest: ServiceOverlayForest) -> Dict[Node, List[Edge]]:
    """Physical delivery path (edge list) of every destination.

    The path is the serving chain's walk plus the distribution-tree hops
    from the chain's delivery segment to the destination (shortest in hop
    count within the tree edges, mirroring how rules are installed).
    """
    instance = forest.instance
    paths: Dict[Node, List[Edge]] = {}

    # Delivery points and the chain serving each.
    point_chain: Dict[Node, int] = {}
    for idx, chain in enumerate(forest.chains):
        if not chain.placements:
            continue
        for node in chain.walk[max(chain.placements):]:
            point_chain.setdefault(node, idx)

    tree_adj: Dict[Node, List[Node]] = {}
    for u, v in forest.tree_edges:
        tree_adj.setdefault(u, []).append(v)
        tree_adj.setdefault(v, []).append(u)

    for dest in sorted(instance.destinations, key=repr):
        if dest in point_chain:
            chain = forest.chains[point_chain[dest]]
            cut = chain.walk.index(dest)
            paths[dest] = [
                (chain.walk[i], chain.walk[i + 1]) for i in range(cut)
            ]
            continue
        # BFS through tree edges from the destination to a delivery point.
        parent: Dict[Node, Node] = {}
        queue = deque([dest])
        seen = {dest}
        hit: Optional[Node] = None
        while queue and hit is None:
            node = queue.popleft()
            for nxt in tree_adj.get(node, ()):
                if nxt in seen:
                    continue
                seen.add(nxt)
                parent[nxt] = node
                if nxt in point_chain:
                    hit = nxt
                    break
                queue.append(nxt)
        if hit is None:
            raise ValueError(f"destination {dest!r} is not served by the forest")
        tail: List[Edge] = []
        node = hit
        while node != dest:
            tail.append((node, parent[node]))
            node = parent[node]
        chain = forest.chains[point_chain[hit]]
        cut = chain.walk.index(hit)
        paths[dest] = [
            (chain.walk[i], chain.walk[i + 1]) for i in range(cut)
        ] + tail
    return paths


def stream_multiplicity(forest: ServiceOverlayForest) -> Dict[Edge, int]:
    """Distinct stream copies per physical link (stage-keyed, Section III)."""
    uses = set()
    for chain in forest.chains:
        stage = 0
        for i in range(len(chain.walk) - 1):
            if i in chain.placements:
                stage = chain.placements[i] + 1
            uses.add((stage, canonical_edge(chain.walk[i], chain.walk[i + 1])))
    L = len(forest.instance.chain)
    for u, v in forest.tree_edges:
        uses.add((L, canonical_edge(u, v)))
    counts: Counter = Counter(edge for _, edge in uses)
    return dict(counts)


@dataclass
class FlowSimulator:
    """Per-second link bandwidth draws plus per-destination goodput.

    Attributes:
        forest: the embedded forest to simulate.
        bandwidth_range: clamp range of per-link available bandwidth
            (Mbps) -- the paper's 4.5--9 Mbps congestion emulation.
        base_bandwidth: the congestion state each link was in when the
            forest was embedded (canonical edge -> Mbps).  Per-second
            bandwidth jitters around this base, so congestion-aware
            embeddings (which avoided low-bandwidth links via their costs)
            genuinely see better links -- the effect Table II measures.
            Links absent from the map draw uniformly from the range.
        jitter_mbps: amplitude of the per-second uniform jitter.
        seed: RNG seed for the bandwidth process.
    """

    forest: ServiceOverlayForest
    bandwidth_range: Tuple[float, float] = (4.5, 9.0)
    base_bandwidth: Optional[Dict[Edge, float]] = None
    jitter_mbps: float = 1.0
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)
    _paths: Dict[Node, List[Edge]] = field(init=False, repr=False)
    _multiplicity: Dict[Edge, int] = field(init=False, repr=False)
    _base: Dict[Edge, float] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._paths = destination_paths(self.forest)
        self._multiplicity = stream_multiplicity(self.forest)
        self._base = {}
        if self.base_bandwidth:
            for (u, v), bw in self.base_bandwidth.items():
                self._base[canonical_edge(u, v)] = bw

    @property
    def paths(self) -> Dict[Node, List[Edge]]:
        """Per-destination delivery paths (edge lists)."""
        return self._paths

    def path_length(self, destination: Node) -> int:
        """Hop count of a destination's delivery path."""
        return len(self._paths[destination])

    def step_goodput(self) -> Dict[Node, float]:
        """Draw one second of link bandwidths; return per-destination goodput.

        All destinations observe the *same* bandwidth draw within a step
        (they share the physical links); the per-destination goodput is the
        bottleneck share along the delivery path.
        """
        lo, hi = self.bandwidth_range
        link_bw: Dict[Edge, float] = {}
        goodput: Dict[Node, float] = {}
        for dest, path in self._paths.items():
            rate = float("inf")
            for u, v in path:
                edge = canonical_edge(u, v)
                if edge not in link_bw:
                    base = self._base.get(edge)
                    if base is None:
                        link_bw[edge] = self._rng.uniform(lo, hi)
                    else:
                        jitter = self._rng.uniform(
                            -self.jitter_mbps, self.jitter_mbps
                        )
                        link_bw[edge] = max(0.1, base + jitter)
                share = link_bw[edge] / max(1, self._multiplicity.get(edge, 1))
                rate = min(rate, share)
            goodput[dest] = hi if rate == float("inf") else max(0.0, rate)
        return goodput
