"""Video playback buffer model producing the Table II QoE metrics.

The paper streams a 137-second full-HD H.264 video at an average 8 Mbps
through the embedded VNFs and measures, with VLC at each destination:

- **startup latency** -- time until playback first starts;
- **re-buffering time** -- total time playback is stalled waiting for data.

The standard leaky-bucket model reproduces both: downloaded seconds of
content accumulate at ``goodput / bitrate`` per wall-clock second;
playback starts once ``startup_buffer`` seconds are buffered and consumes
one content-second per second; an empty buffer stalls playback until it
refills to ``rebuffer_threshold``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class VideoSpec:
    """The test stream's parameters (paper defaults)."""

    duration_s: float = 137.0
    bitrate_mbps: float = 8.0
    startup_buffer_s: float = 2.0
    rebuffer_threshold_s: float = 1.0


@dataclass
class VideoSession:
    """One destination's playback state machine."""

    spec: VideoSpec = VideoSpec()

    def __post_init__(self) -> None:
        self.buffered_s = 0.0      # seconds of content downloaded, unplayed
        self.downloaded_s = 0.0    # total content seconds downloaded
        self.played_s = 0.0        # content seconds played out
        self.clock_s = 0.0         # wall-clock time
        self.startup_latency: Optional[float] = None
        self.rebuffering_s = 0.0
        self._stalled = False

    @property
    def finished(self) -> bool:
        """Whether the full video has been played out."""
        return self.played_s >= self.spec.duration_s - 1e-9

    def advance(self, goodput_mbps: float, dt: float = 1.0) -> None:
        """Advance the session ``dt`` wall-clock seconds at ``goodput_mbps``."""
        if self.finished:
            return
        spec = self.spec
        self.clock_s += dt
        # Download.
        if self.downloaded_s < spec.duration_s:
            gained = goodput_mbps / spec.bitrate_mbps * dt
            gained = min(gained, spec.duration_s - self.downloaded_s)
            self.downloaded_s += gained
            self.buffered_s += gained

        if self.startup_latency is None:
            # Pre-startup: waiting for the initial buffer.
            if (
                self.buffered_s >= spec.startup_buffer_s
                or self.downloaded_s >= spec.duration_s
            ):
                self.startup_latency = self.clock_s
            return

        if self._stalled:
            self.rebuffering_s += dt
            if (
                self.buffered_s >= spec.rebuffer_threshold_s
                or self.downloaded_s >= spec.duration_s
            ):
                self._stalled = False
            return

        # Playing: consume up to dt seconds of content.
        play = min(dt, self.buffered_s, spec.duration_s - self.played_s)
        self.played_s += play
        self.buffered_s -= play
        if play < dt - 1e-12 and not self.finished:
            # Ran dry mid-step: the remainder of the step is a stall.
            stall = dt - play
            self.rebuffering_s += stall
            self._stalled = self.downloaded_s < self.spec.duration_s

    def run_to_completion(self, goodput_iter, max_steps: int = 100000) -> None:
        """Drive the session with per-second goodput values until done."""
        for _ in range(max_steps):
            if self.finished:
                return
            self.advance(next(goodput_iter))
        raise RuntimeError("video session did not finish within max_steps")
