"""CI smoke check: traced churn run, schema-valid trace, stable snapshot.

``python -m repro.obs.smoke`` runs a small tenant-churn workload (with a
link-failure window, so the fail/recover/reroute seams all fire) through
an :class:`~repro.online.simulator.OnlineSimulator` carrying a live
:class:`~repro.obs.recorder.Recorder`, then:

1. serialises the span trace to JSONL and re-loads it through the
   validating codec (``--trace-out`` keeps the file);
2. asserts the trace's per-name span totals reconcile with the
   registry's histogram sums (the acceptance invariant);
3. prints the canonical metrics snapshot (sorted-keys JSON) to stdout.

The recorder uses a :class:`~repro.obs.recorder.FakeClock`, so the
snapshot -- durations included -- must be **byte-identical** across
``PYTHONHASHSEED`` values; CI runs this module twice under different
seeds and compares the outputs with ``cmp``.  Diagnostics go to stderr
so stdout is exactly the snapshot.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from typing import List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import FakeClock, Recorder
from repro.obs.tracer import SpanTracer, read_trace_events, span_totals, \
    write_trace_events


def run_smoke(trace_out: Optional[str] = None) -> str:
    """Run the traced workload; returns the canonical snapshot JSON."""
    from repro.core.sofda import sofda
    from repro.online import RequestGenerator
    from repro.online.simulator import OnlineSimulator
    from repro.topology import softlayer_network
    from repro.workload import (
        ExponentialHolding,
        LinkFailureProcess,
        PoissonArrivals,
        WorkloadEngine,
        build_schedule,
    )

    recorder = Recorder(
        registry=MetricsRegistry(),
        tracer=SpanTracer(),
        clock=FakeClock(step=0.001),
    )

    network = softlayer_network(seed=1)
    generator = RequestGenerator(network, seed=0)
    process = PoissonArrivals(generator, rate=1.0, seed=1)
    links = sorted(((u, v) for u, v, _ in network.graph.edges()), key=repr)
    failures = LinkFailureProcess(
        links[:2], mtbf=4.0, mttr=1.0, seed=0
    )
    schedule = build_schedule(
        process, horizon=8.0,
        holding=ExponentialHolding(4.0, seed=2),
        failures=failures,
    )
    simulator = OnlineSimulator(network, metrics=recorder)
    engine = WorkloadEngine(
        simulator, lambda inst: sofda(inst).forest, name="SOFDA"
    )
    result = engine.run(schedule)
    print(
        f"smoke: {len(schedule)} events, accepted={result.accepted} "
        f"rejected={result.rejected} failures={result.failures}",
        file=sys.stderr,
    )

    # Round-trip the trace through the validating codec.
    if trace_out is None:
        with tempfile.NamedTemporaryFile(
            mode="w", suffix=".jsonl", delete=False
        ) as handle:
            trace_out = handle.name
    write_trace_events(recorder.tracer.events, trace_out)
    events = read_trace_events(trace_out)
    if len(events) != len(recorder.tracer.events):
        raise SystemExit("smoke: trace round-trip lost events")
    print(f"smoke: trace valid ({len(events)} spans, {trace_out})",
          file=sys.stderr)

    # Span totals must reconcile with the per-phase histogram sums.
    registry = recorder.registry
    for name, total in span_totals(events).items():
        hist_sum = registry.histogram_sum(name)
        if abs(total - hist_sum) > 1e-9 * max(1.0, abs(hist_sum)):
            raise SystemExit(
                f"smoke: span total for {name!r} ({total}) does not "
                f"reconcile with histogram sum ({hist_sum})"
            )
    print("smoke: span totals reconcile with histogram sums",
          file=sys.stderr)
    return json.dumps(recorder.snapshot(), sort_keys=True, indent=2)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.smoke", description=__doc__.split("\n")[0]
    )
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="keep the emitted trace JSONL at PATH")
    args = parser.parse_args(argv)
    print(run_smoke(trace_out=args.trace_out))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
