"""Span tracer with a Chrome trace-event JSONL codec.

Spans are recorded as **complete** events (``ph="X"``) in the Chrome
trace-event format: each line of the JSONL file is one JSON object with
``name``/``cat``/``ph``/``ts``/``dur``/``pid``/``tid`` (timestamps in
microseconds).  Nesting is inferred by trace viewers from time
containment on the same pid/tid, so instrumented code never has to emit
matched begin/end pairs -- it snapshots a start time and records the
finished span in one call (see :meth:`~repro.obs.recorder.Recorder.span`).

The file layout mirrors :mod:`repro.workload.trace`: line 1 is a
metadata record (itself a valid trace event, ``ph="M"``) carrying the
schema name and version, followed by one sorted-keys JSON event per
line.  ``repro obs convert`` wraps the events in the JSON-array form
(``{"traceEvents": [...]}``) that ``chrome://tracing`` / Perfetto load
directly.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Iterator, List, Optional

TRACE_RECORD = "sof-obs-trace"
TRACE_VERSION = 1
SUPPORTED_TRACE_VERSIONS = (1,)

_REQUIRED_KEYS = ("name", "ph", "ts", "dur", "pid", "tid")


class SpanTracer:
    """Collects completed spans as Chrome trace events."""

    def __init__(self, pid: int = 0) -> None:
        self.pid = pid
        self._events: List[Dict[str, object]] = []

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> List[Dict[str, object]]:
        return self._events

    def complete(
        self,
        name: str,
        ts_us: float,
        dur_us: float,
        tid: int = 0,
        cat: str = "repro",
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        """Record one finished span (timestamps in microseconds)."""
        event: Dict[str, object] = {
            "name": name, "cat": cat, "ph": "X",
            "ts": ts_us, "dur": dur_us,
            "pid": self.pid, "tid": tid,
        }
        if args:
            event["args"] = dict(args)
        self._events.append(event)


# ----------------------------------------------------------------------
# JSONL codec
# ----------------------------------------------------------------------

def metadata_event(pid: int = 0) -> Dict[str, object]:
    """The schema-bearing first line (a legal ``ph="M"`` trace event)."""
    return {
        "name": "trace_metadata", "cat": "__metadata", "ph": "M",
        "ts": 0, "dur": 0, "pid": pid, "tid": 0,
        "args": {"record": TRACE_RECORD, "version": TRACE_VERSION},
    }


def dump_trace_events(
    events: Iterable[Dict[str, object]], pid: int = 0
) -> Iterator[str]:
    """Serialise ``events`` to JSONL lines (metadata line first)."""
    yield json.dumps(metadata_event(pid), sort_keys=True)
    for event in events:
        yield json.dumps(event, sort_keys=True)


def write_trace_events(
    events: Iterable[Dict[str, object]], path: str, pid: int = 0
) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        for line in dump_trace_events(events, pid=pid):
            handle.write(line + "\n")


def load_trace_events(lines: Iterable[str]) -> List[Dict[str, object]]:
    """Parse and validate JSONL ``lines``; returns the span events.

    The metadata line is checked (record name + supported version) and
    stripped from the result.  Raises :class:`ValueError` on any schema
    violation so callers (CI's obs-smoke step, ``repro obs validate``)
    fail loudly on malformed traces.
    """
    events: List[Dict[str, object]] = []
    meta: Optional[Dict[str, object]] = None
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"trace line {i + 1} is not JSON: {exc}") from exc
        if meta is None:
            meta = event
            args = event.get("args") if isinstance(event, dict) else None
            if (
                not isinstance(args, dict)
                or args.get("record") != TRACE_RECORD
            ):
                raise ValueError(
                    "trace line 1 is not a "
                    f"{TRACE_RECORD!r} metadata event"
                )
            if args.get("version") not in SUPPORTED_TRACE_VERSIONS:
                raise ValueError(
                    f"unsupported trace version {args.get('version')!r} "
                    f"(supported: {SUPPORTED_TRACE_VERSIONS})"
                )
            continue
        events.append(event)
    if meta is None:
        raise ValueError("empty trace: missing metadata line")
    validate_trace_events(events)
    return events


def read_trace_events(path: str) -> List[Dict[str, object]]:
    with open(path, "r", encoding="utf-8") as handle:
        return load_trace_events(handle)


def validate_trace_events(events: Iterable[Dict[str, object]]) -> None:
    """Raise :class:`ValueError` unless every event is a valid span."""
    for i, event in enumerate(events):
        where = f"trace event {i + 1}"
        if not isinstance(event, dict):
            raise ValueError(f"{where}: not a JSON object")
        for key in _REQUIRED_KEYS:
            if key not in event:
                raise ValueError(f"{where}: missing required key {key!r}")
        if not isinstance(event["name"], str) or not event["name"]:
            raise ValueError(f"{where}: 'name' must be a non-empty string")
        if event["ph"] not in ("X", "M"):
            raise ValueError(
                f"{where}: 'ph' must be 'X' (complete) or 'M' (metadata), "
                f"got {event['ph']!r}"
            )
        for key in ("ts", "dur"):
            value = event[key]
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(f"{where}: {key!r} must be a number")
            if value < 0:
                raise ValueError(f"{where}: {key!r} must be >= 0")
        for key in ("pid", "tid"):
            if not isinstance(event[key], int):
                raise ValueError(f"{where}: {key!r} must be an integer")
        if "args" in event and not isinstance(event["args"], dict):
            raise ValueError(f"{where}: 'args' must be an object")


def to_chrome_json(events: Iterable[Dict[str, object]]) -> str:
    """The JSON-array form ``chrome://tracing`` / Perfetto load directly."""
    return json.dumps(
        {"traceEvents": list(events)}, sort_keys=True, indent=None
    )


def span_totals(events: Iterable[Dict[str, object]]) -> Dict[str, float]:
    """Per-name summed span durations in **seconds** (from µs ``dur``).

    Used to reconcile the trace timeline against the registry's
    per-phase histogram sums.
    """
    totals: Dict[str, float] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        name = str(event["name"])
        totals[name] = totals.get(name, 0.0) + float(event["dur"]) / 1e6
    return {name: totals[name] for name in sorted(totals)}
