"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is the aggregation half of the observability layer (the
:mod:`~repro.obs.tracer` is the timeline half).  Three series kinds:

- **counters** -- monotone totals (``inc``), e.g. repaired rows by path.
- **gauges** -- last-write-wins levels (``gauge``), e.g. row-cache
  residency folded in from :meth:`RowCache.stats`.
- **histograms** -- fixed-bucket duration/size distributions
  (``observe``) that also track ``count`` and ``sum`` so span totals can
  be reconciled exactly against the trace timeline.

Determinism contract: series are keyed by ``name{label=value,...}`` with
labels sorted by label name, and :meth:`MetricsRegistry.snapshot` sorts
every mapping, so for a fixed observation sequence the snapshot is
byte-stable across processes and ``PYTHONHASHSEED`` values (float sums
accumulate in observation order, which the solver pipeline already pins).
No dependencies beyond the stdlib.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Tuple

#: Default histogram buckets: duration-flavoured decades in seconds.
#: Upper bounds are inclusive (``value <= le`` lands in the bucket);
#: values above the last bound count in ``overflow``.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0,
)


def series_key(name: str, labels: Dict[str, object]) -> str:
    """Deterministic series key: ``name`` or ``name{k=v,...}`` sorted by k."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class _Histogram:
    __slots__ = ("buckets", "counts", "overflow", "count", "total")

    def __init__(self, buckets: Tuple[float, ...]) -> None:
        self.buckets = buckets
        self.counts = [0] * len(buckets)
        self.overflow = 0
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        i = bisect_left(self.buckets, value)
        if i < len(self.buckets):
            self.counts[i] += 1
        else:
            self.overflow += 1

    def to_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.total,
            "buckets": [[le, c] for le, c in zip(self.buckets, self.counts)],
            "overflow": self.overflow,
        }


class MetricsRegistry:
    """In-process metrics store with a stable :meth:`snapshot` shape."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, _Histogram] = {}
        #: per-metric-name bucket overrides (``declare_histogram``).
        self._buckets: Dict[str, Tuple[float, ...]] = {}

    # ------------------------------------------------------------------
    def declare_histogram(
        self, name: str, buckets: Iterable[float]
    ) -> None:
        """Override the bucket bounds for histograms named ``name``."""
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self._buckets[name] = bounds

    def inc(self, name: str, value: float = 1, **labels: object) -> None:
        key = series_key(name, labels)
        self._counters[key] = self._counters.get(key, 0) + value

    def gauge(self, name: str, value: float, **labels: object) -> None:
        self._gauges[series_key(name, labels)] = value

    def observe(self, name: str, value: float, **labels: object) -> None:
        key = series_key(name, labels)
        hist = self._histograms.get(key)
        if hist is None:
            hist = self._histograms[key] = _Histogram(
                self._buckets.get(name, DEFAULT_BUCKETS)
            )
        hist.observe(value)

    # ------------------------------------------------------------------
    def counter_total(self, name: str) -> float:
        """Sum of every counter series named ``name`` (any labels)."""
        return sum(
            v for k, v in self._counters.items()
            if k == name or k.startswith(name + "{")
        )

    def histogram_sum(self, name: str) -> float:
        """Summed ``sum`` across every histogram series named ``name``."""
        return sum(
            h.total for k, h in self._histograms.items()
            if k == name or k.startswith(name + "{")
        )

    def histogram_count(self, name: str) -> int:
        return sum(
            h.count for k, h in self._histograms.items()
            if k == name or k.startswith(name + "{")
        )

    def snapshot(self) -> Dict[str, object]:
        """Deterministic nested-dict snapshot (all mappings key-sorted)."""
        return {
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
            "histograms": {
                k: self._histograms[k].to_dict()
                for k in sorted(self._histograms)
            },
        }


# ----------------------------------------------------------------------
# per-phase attribution
# ----------------------------------------------------------------------

#: Histogram-name prefixes grouped into the four phases the bench
#: breakdown reports.  ``fork`` time is *also* contained in whichever
#: build/repair span dispatched the batch (spans nest), so the groups
#: are attribution views, not a partition of wall time.
PHASE_GROUPS: Dict[str, Tuple[str, ...]] = {
    "build": ("oracle.build", "oracle.row_build", "oracle.prefetch"),
    "repair": ("oracle.patch.costs", "oracle.patch.topology"),
    "query": ("oracle.query",),
    "fork": ("kernel.fork",),
}


def phase_breakdown(
    snapshot: Dict[str, object],
    groups: Optional[Dict[str, Tuple[str, ...]]] = None,
) -> Dict[str, float]:
    """Fold a registry snapshot's histogram sums into per-phase seconds.

    Returns ``{phase: seconds}`` for every phase in ``groups`` (default
    :data:`PHASE_GROUPS`), summing all histogram series whose metric
    name matches a group member exactly or with a ``{label}`` suffix.
    """
    groups = groups or PHASE_GROUPS
    hists = snapshot.get("histograms", {})
    out: Dict[str, float] = {}
    for phase, names in groups.items():
        total = 0.0
        for key in sorted(hists):
            base = key.split("{", 1)[0]
            if base in names:
                total += hists[key]["sum"]
        out[phase] = total
    return out
