"""Runtime observability: metrics registry, span tracing, profiling.

Dependency-free instrumentation for the oracle/simulator/workload stack
(PR 10).  Three pieces:

- :class:`MetricsRegistry` -- counters, gauges, fixed-bucket histograms
  with deterministic label ordering and a stable ``snapshot()`` dict.
- :class:`SpanTracer` -- nested spans exported as Chrome trace-event
  JSONL (``repro obs`` subcommand, ``--trace-out`` flags).
- :class:`Recorder` / :data:`NULL_RECORDER` -- the object threaded
  through the ``metrics=`` knob on :class:`~repro.graph.indexed.FrozenOracle`
  and everything above it.  ``None`` (the default) keeps every
  instrumented hot path zero-overhead and bit-identical -- the same
  flag-gated-reference discipline as ``planner=`` / ``vectorized=`` /
  ``row_budget_bytes=``.

Unified cache-snapshot schema (``sof-cache-stats/1``)
-----------------------------------------------------

``FrozenOracle.cache_snapshot()`` / ``OnlineSimulator.cache_snapshot()``
/ ``Controller.cache_snapshot()`` all return one dict shape (the legacy
``cache_stats()`` methods are thin aliases of it):

====================  ====================================================
key                   meaning
====================  ====================================================
``schema``            literal ``"sof-cache-stats/1"``
``scope``             ``"oracle"`` | ``"simulator"`` | ``"controller"``
``rows``              resident row count
``budget_bytes``      configured budget (``None`` = unbounded)
``total_bytes``       current estimated payload residency
``peak_bytes``        high-water residency mark
``hits``/``misses``   row-cache lookup outcomes
``evictions``         total evictions (= idle + budget + repair)
``idle_evictions``    evicted as idle during repair triage
``budget_evictions``  evicted by the cost-aware budget sweep
``repair_evictions``  evicted because repair was costlier than rebuild
``overshoots``        enforce() passes that could not reach the budget
``tree_index_bytes``  SPT child-index overhead (oracle-owned, not
                      budgeted)
====================  ====================================================

Controller snapshots additionally carry ``domain`` (the controller id).
When a recorder is attached, taking a snapshot also folds the same
numbers into the registry as ``<scope>.cache.*`` gauges.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    PHASE_GROUPS,
    phase_breakdown,
    series_key,
)
from repro.obs.recorder import FakeClock, NullRecorder, NULL_RECORDER, Recorder
from repro.obs.tracer import (
    SpanTracer,
    TRACE_RECORD,
    TRACE_VERSION,
    dump_trace_events,
    load_trace_events,
    metadata_event,
    read_trace_events,
    span_totals,
    to_chrome_json,
    validate_trace_events,
    write_trace_events,
)

#: Version tag carried by every unified cache snapshot.
CACHE_SNAPSHOT_SCHEMA = "sof-cache-stats/1"

__all__ = [
    "CACHE_SNAPSHOT_SCHEMA",
    "DEFAULT_BUCKETS",
    "FakeClock",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "PHASE_GROUPS",
    "Recorder",
    "SpanTracer",
    "TRACE_RECORD",
    "TRACE_VERSION",
    "dump_trace_events",
    "load_trace_events",
    "metadata_event",
    "phase_breakdown",
    "read_trace_events",
    "series_key",
    "span_totals",
    "to_chrome_json",
    "validate_trace_events",
    "write_trace_events",
]
