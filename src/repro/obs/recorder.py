"""Recorder: the single object threaded through the ``metrics=`` knob.

A :class:`Recorder` bundles a :class:`~repro.obs.metrics.MetricsRegistry`
with an optional :class:`~repro.obs.tracer.SpanTracer` and an injectable
clock.  Instrumented code holds at most one reference to it and follows
the flag-gated-reference discipline every other oracle knob uses:

    mx = self._metrics
    t0 = mx.clock() if mx else 0.0
    ...hot work, untouched...
    if mx:
        mx.span("oracle.repair", t0, rows=len(batch))

``None`` (the default everywhere) and :data:`NULL_RECORDER` are falsy,
so the disabled path costs one truthiness check and is bit-identical to
uninstrumented code -- no time is read, nothing is allocated, and no
no-op method is even dispatched.

The clock is injectable (default :func:`time.perf_counter`) so CI can
substitute a :class:`FakeClock` and assert the *entire* snapshot --
durations included -- is byte-stable across ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import SpanTracer


class NullRecorder:
    """Canonical disabled recorder: falsy, every method a no-op."""

    __slots__ = ()
    registry = None
    tracer = None

    def __bool__(self) -> bool:
        return False

    def clock(self) -> float:
        return 0.0

    def inc(self, name: str, value: float = 1, **labels: object) -> None:
        pass

    def gauge(self, name: str, value: float, **labels: object) -> None:
        pass

    def observe(self, name: str, value: float, **labels: object) -> None:
        pass

    def span(
        self, name: str, start: float, end: Optional[float] = None,
        trace_args: Optional[Dict[str, object]] = None, **labels: object,
    ) -> float:
        return 0.0

    def snapshot(self) -> Dict[str, object]:
        return {}


#: Shared no-op instance; ``metrics=NULL_RECORDER`` behaves like ``None``.
NULL_RECORDER = NullRecorder()


class FakeClock:
    """Deterministic monotone clock for byte-stable snapshots in tests/CI."""

    __slots__ = ("_now", "_step")

    def __init__(self, start: float = 0.0, step: float = 0.001) -> None:
        self._now = float(start)
        self._step = float(step)

    def __call__(self) -> float:
        now = self._now
        self._now += self._step
        return now


class Recorder:
    """Live recorder: registry + optional tracer + injectable clock."""

    __slots__ = ("registry", "tracer", "clock", "_epoch")

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanTracer] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer
        self.clock: Callable[[], float] = (
            clock if clock is not None else time.perf_counter
        )
        #: Trace epoch: span timestamps are reported relative to recorder
        #: construction so the timeline starts near zero.
        self._epoch = self.clock()

    def __bool__(self) -> bool:
        return True

    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1, **labels: object) -> None:
        self.registry.inc(name, value, **labels)

    def gauge(self, name: str, value: float, **labels: object) -> None:
        self.registry.gauge(name, value, **labels)

    def observe(self, name: str, value: float, **labels: object) -> None:
        self.registry.observe(name, value, **labels)

    def span(
        self, name: str, start: float, end: Optional[float] = None,
        trace_args: Optional[Dict[str, object]] = None, **labels: object,
    ) -> float:
        """Record a finished span that began at clock value ``start``.

        Observes the duration into histogram ``name`` (labelled) and,
        when tracing, appends the matching complete event -- so span
        totals and histogram sums reconcile by construction.
        ``trace_args`` attaches high-cardinality detail (counts, ids) to
        the trace event only, keeping the histogram series space small.
        Returns the duration in seconds.
        """
        if end is None:
            end = self.clock()
        dur = end - start
        self.registry.observe(name, dur, **labels)
        if self.tracer is not None:
            args: Optional[Dict[str, object]] = (
                dict(labels) if labels else None
            )
            if trace_args:
                args = dict(args or {})
                args.update(trace_args)
            self.tracer.complete(
                name, (start - self._epoch) * 1e6, dur * 1e6, args=args
            )
        return dur

    def snapshot(self) -> Dict[str, object]:
        return self.registry.snapshot()
