"""The online embedding loop (Fig. 12) with tenant lifecycles.

Each algorithm runs in its own :class:`OnlineSimulator`, which owns a
topology copy with 5 VMs per data center (the paper's Section VIII-A
online setup), a :class:`~repro.costmodel.LoadTracker`, and the
accumulative cost series.  Replaying the same
:class:`~repro.online.requests.Request` list into several simulators
compares algorithms on identical workloads.

Beyond the paper's arrivals-only model, committed forests are leased,
not permanent: :meth:`OnlineSimulator.commit` returns a :class:`Lease`
recording exactly the link/node loads it accounted, and
:meth:`OnlineSimulator.release` hands them back when the tenant departs.
Released links re-price downward at the next cost sync, reaching the
shared oracle as *decrease*-carrying
:meth:`~repro.graph.indexed.FrozenOracle.patch_edge_costs` batches (the
per-row reference repair path -- a decrease moves parents mid-repair, so
the cross-row plan does not apply).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.forest import ServiceOverlayForest
from repro.core.problem import SOFInstance
from repro.costmodel import LoadTracker
from repro.graph import FrozenOracle
from repro.graph.graph import canonical_edge
from repro.online.requests import Request
from repro.topology.network import CloudNetwork

Node = Hashable
Edge = Tuple[Node, Node]

#: An embedding algorithm: SOFInstance -> ServiceOverlayForest.
Embedder = Callable[[SOFInstance], ServiceOverlayForest]


@dataclass
class Lease:
    """The exact loads one committed forest holds until it departs.

    ``link_loads`` maps canonical edges to the *total* demand
    :meth:`OnlineSimulator.commit` accounted on them (an edge reused by
    several chain stages is charged once per stage, and the lease records
    the sum); ``node_loads`` records the slot demand per enabled VM.
    :meth:`OnlineSimulator.release` reverses precisely these amounts, so
    arrive/depart cycles are lossless.
    """

    request_index: int
    link_loads: Tuple[Tuple[Edge, float], ...]
    node_loads: Tuple[Tuple[Node, float], ...]
    released: bool = False
    #: The committed request and its embedded forest, kept so link
    #: failures can identify and reroute the tenants crossing a dead
    #: link (:meth:`OnlineSimulator.fail_link`).
    request: Optional[Request] = None
    forest: Optional[ServiceOverlayForest] = None


@dataclass(frozen=True)
class FailureImpact:
    """What one :meth:`OnlineSimulator.fail_link` did to active tenants.

    ``rerouted`` and ``disrupted`` hold the request indices of the
    crossing leases that were moved onto surviving paths versus released
    (the tenant dropped); ``crossing = len(rerouted) + len(disrupted)``.
    """

    link: Edge
    rerouted: Tuple[int, ...] = ()
    disrupted: Tuple[int, ...] = ()

    @property
    def crossing(self) -> int:
        """Number of active leases whose forests used the dead link."""
        return len(self.rerouted) + len(self.disrupted)


@dataclass
class OnlineResult:
    """Per-algorithm outcome of an online run."""

    name: str
    per_request_cost: List[float] = field(default_factory=list)
    accumulative_cost: List[float] = field(default_factory=list)
    rejected: int = 0

    @property
    def total_cost(self) -> float:
        """Final accumulative cost of the run."""
        return self.accumulative_cost[-1] if self.accumulative_cost else 0.0


class OnlineSimulator:
    """Stateful online embedder for one algorithm over one topology."""

    def __init__(
        self,
        network: CloudNetwork,
        vms_per_datacenter: int = 5,
        link_capacity: float = 100.0,
        vm_capacity: float = 5.0,
        cost_floor: float = 0.01,
        incremental: bool = True,
        planner: bool = True,
        share_regions: bool = True,
        topology_patch: bool = True,
        parallel_rows: int = 0,
        vectorized: bool = False,
        row_budget_bytes: Optional[int] = None,
        metrics: Optional[object] = None,
    ) -> None:
        self._network = network
        self._tracker = LoadTracker(
            link_capacity=link_capacity, node_capacity=vm_capacity
        )
        self._cost_floor = cost_floor
        # ``incremental=False`` falls back to a full oracle rebuild per
        # cost change -- the pre-patch behaviour, kept as the benchmark
        # and equivalence-test reference.  ``planner=False`` keeps
        # incremental patching but repairs rows with the historical
        # per-row rescans instead of the shared per-patch plan (the
        # planner-vs-per-row benchmark and equivalence reference).
        # ``share_regions=False`` keeps the planned path but repairs
        # dense patches without cross-row region sharing (the
        # shared-vs-unshared benchmark and equivalence reference).
        # ``topology_patch=False`` keeps incremental cost patching but
        # routes link failure/recovery through invalidate-and-rebuild
        # (the topology-change equivalence reference).
        # ``parallel_rows``/``vectorized`` turn on the oracle's kernel
        # tier (fork-pool row builds / array label buffers); the defaults
        # keep the serial list-backed path bit-identical to pre-kernel
        # behaviour, as the equivalence and bench reference.
        # ``row_budget_bytes`` caps the oracle row cache's accounted
        # residency (see :mod:`repro.graph.rowcache`): long-lived
        # simulators over large topologies bound memory by evicting
        # low-retention rows, which recompute to bit-identical labels on
        # demand.  ``None`` (the default) keeps today's unbounded cache.
        # ``metrics`` is an optional :class:`~repro.obs.recorder.Recorder`
        # shared with the oracle; ``None`` (the default) keeps every
        # instrumented seam a single falsy check -- zero-overhead and
        # bit-identical, the same flag-gated-reference discipline as the
        # knobs above.
        self._metrics = metrics if metrics else None
        self._incremental = incremental
        self._planner = planner
        self._share_regions = share_regions
        self._topology_patch = topology_patch
        #: Canonical keys of currently failed links.
        self._failed: set = set()
        #: Live leases by identity, for failure-impact scans.
        self._active: Dict[int, Lease] = {}

        # Build the working graph once: access topology + fixed VM pool.
        graph = network.graph.copy()
        self._vms: List[Node] = []
        hosts = network.datacenters or network.access_nodes()
        for dc_index, dc in enumerate(hosts):
            for k in range(vms_per_datacenter):
                vm = ("vm", dc_index, k)
                graph.add_node(vm)
                graph.add_edge(vm, dc, cost_floor)
                self._vms.append(vm)
        self._graph = graph
        # The simulator owns ONE load-bearing graph and ONE shared oracle
        # for its whole lifetime.  Requests see the live graph (embedders
        # must not mutate it); commits update only the edges whose loads
        # changed and invalidate the oracle only when a cost really moved.
        self._tracker.apply_to_graph(graph, floor=cost_floor)
        # Incremental simulators expect per-request cost churn, so their
        # oracle computes patch-repairable (exhaustive) rows.
        self._oracle = FrozenOracle(
            graph, hot=self._vms, patchable=self._incremental,
            planner=self._planner, share_regions=self._share_regions,
            topology_patch=self._topology_patch,
            parallel_rows=parallel_rows, vectorized=vectorized,
            row_budget_bytes=row_budget_bytes, metrics=metrics,
        )

    @property
    def tracker(self) -> LoadTracker:
        """The simulator's load state."""
        return self._tracker

    @property
    def metrics(self):
        """The attached recorder, or ``None`` when observability is off."""
        return self._metrics

    def cache_snapshot(self) -> Dict[str, Optional[int]]:
        """The shared oracle's cache counters as a unified snapshot.

        Returns the ``sof-cache-stats/1`` shape documented in
        :mod:`repro.obs`, with ``scope="simulator"``; the workload engine
        and benches read this to track resident row bytes and eviction
        counts over a trace.
        """
        return self._oracle.cache_snapshot(scope="simulator")

    def cache_stats(self) -> Dict[str, Optional[int]]:
        """Alias of :meth:`cache_snapshot` (legacy name)."""
        return self.cache_snapshot()

    @property
    def vms(self) -> List[Node]:
        """The fixed VM pool (copies)."""
        return list(self._vms)

    def _sync_costs(self) -> None:
        """Fold tracker load changes into the graph and patch the oracle.

        Only links whose load moved since the last sync are touched.  The
        topology never changes online -- commits move edge *costs* only --
        so the default path hands the changed costs to
        :meth:`FrozenOracle.patch_edge_costs`, which updates the graph and
        the oracle's weight arrays in place and keeps every cached row the
        change provably cannot affect.  With ``incremental=False`` the
        costs are written directly and the whole oracle is rebuilt.
        """
        changed = {}
        for u, v in self._tracker.drain_dirty_links():
            if canonical_edge(u, v) in self._failed:
                # A dead link has no cost to sync; its tracker load still
                # updates (crossing leases release through it) and is
                # folded back in at recovery repricing.
                continue
            cost = max(self._tracker.link_cost(u, v), self._cost_floor)
            if self._graph.cost(u, v) != cost:
                changed[(u, v)] = cost
        if not changed:
            return
        mx = self._metrics
        t0 = mx.clock() if mx else 0.0
        if self._incremental:
            self._oracle.patch_edge_costs(changed)
        else:
            for (u, v), cost in changed.items():
                self._graph.add_edge(u, v, cost)
            self._oracle.invalidate()
        if mx:
            mx.inc("sim.sync.edges", len(changed))
            mx.span("sim.sync", t0, trace_args={"edges": len(changed)})

    def apply_background_load(
        self, links: Sequence, demand_mbps: float
    ) -> None:
        """Account non-request load on ``links`` and reprice immediately.

        Models the paper's load-driven cost growth happening *between*
        embeddings: hot shared links gain load from traffic outside the
        simulated workload (other tenants, background flows), and the
        live graph/oracle must track the new costs before the next
        request is materialised.  The VM pool's cached rows are touched
        first -- they are the online mode's standing working set (every
        request's Procedure-1 sweep reads all of them) -- so with
        ``incremental=True`` repeated churn exercises the oracle's
        dense-patch row repair instead of evicting the pool rows as
        idle.
        """
        if demand_mbps < 0:
            raise ValueError(
                f"background demand must be >= 0, got {demand_mbps!r}; "
                "departures release load through Lease/release instead"
            )
        mx = self._metrics
        t0 = mx.clock() if mx else 0.0
        self._oracle.prefetch_rows(self._vms)
        for u, v in links:
            self._tracker.add_link_load(u, v, demand_mbps)
        self._sync_costs()
        if mx:
            mx.span("sim.background", t0, trace_args={"links": len(links)})

    def current_instance(self, request: Request) -> SOFInstance:
        """Materialise the SOF instance for ``request`` at current loads.

        The instance shares the simulator's live graph and oracle;
        embedders must treat the graph as read-only.  Forests embedded on
        it are therefore *views* over live costs, not snapshots: evaluate
        ``forest.total_cost()`` before the next request is materialised
        (as :meth:`embed` does), because later requests re-price loaded
        edges in place.
        """
        self._sync_costs()
        node_costs = {vm: self._tracker.node_cost(vm) for vm in self._vms}
        instance = SOFInstance(
            graph=self._graph,
            vms=self._vms,
            sources=request.sources,
            destinations=request.destinations,
            chain=request.chain,
            node_costs=node_costs,
        )
        self._oracle.extend_hot(instance.sources | instance.destinations)
        instance._oracle = self._oracle
        return instance

    def commit(self, forest: ServiceOverlayForest, request: Request) -> Lease:
        """Account the embedded forest's bandwidth and host load.

        Returns a :class:`Lease` recording exactly what was accounted, so
        the tenant's departure can hand the same loads back through
        :meth:`release`.
        """
        mx = self._metrics
        t0 = mx.clock() if mx else 0.0
        link_totals = self._charge_links(
            forest, request.demand_mbps, len(request.chain)
        )
        node_totals: Dict[Node, float] = {}
        for vm in forest.enabled:
            self._tracker.add_node_load(vm, 1.0)
            node_totals[vm] = node_totals.get(vm, 0.0) + 1.0
        lease = Lease(
            request_index=request.index,
            link_loads=tuple(link_totals.items()),
            node_loads=tuple(node_totals.items()),
            request=request,
            forest=forest,
        )
        self._active[id(lease)] = lease
        if mx:
            mx.inc("sim.commits")
            mx.span("sim.commit", t0,
                    trace_args={"request": request.index,
                                "links": len(link_totals)})
        return lease

    def _charge_links(
        self,
        forest: ServiceOverlayForest,
        demand_mbps: float,
        num_functions: int,
    ) -> Dict[Edge, float]:
        """Account ``forest``'s bandwidth on the tracker (per-stage dedup).

        Returns the per-canonical-edge totals charged -- exactly the
        amounts a lease must hand back on release.
        """
        seen = set()
        link_totals: Dict[Edge, float] = {}

        def charge(u: Node, v: Node) -> None:
            self._tracker.add_link_load(u, v, demand_mbps)
            key = canonical_edge(u, v)
            link_totals[key] = link_totals.get(key, 0.0) + demand_mbps

        for chain in forest.chains:
            stage = 0
            for i in range(len(chain.walk) - 1):
                if i in chain.placements:
                    stage = chain.placements[i] + 1
                key = (stage, chain.walk[i], chain.walk[i + 1])
                if key in seen:
                    continue
                seen.add(key)
                charge(chain.walk[i], chain.walk[i + 1])
        for u, v in forest.tree_edges:
            if (num_functions, u, v) in seen or (num_functions, v, u) in seen:
                continue
            charge(u, v)
        return link_totals

    def release(self, lease: Lease) -> None:
        """Reverse a committed lease (the tenant departs).

        Hands back exactly the link bandwidth and VM slots the lease
        recorded, through :meth:`LoadTracker.release_link_load` /
        :meth:`LoadTracker.release_node_load` (over-release raises,
        residue clamps at zero, released links are marked dirty).  The
        next cost sync then re-prices the freed links downward -- a
        decrease-carrying oracle patch.

        Release is single-shot by contract: a double release would hand
        the same loads back twice and corrupt the tracker, so it raises
        a ``ValueError`` naming the lease instead.  Callers replaying
        departure events against leases that a link failure may already
        have disrupted should check :attr:`Lease.released` first.
        """
        if lease.released:
            raise ValueError(
                f"lease for request {lease.request_index} already released"
            )
        mx = self._metrics
        t0 = mx.clock() if mx else 0.0
        for (u, v), demand in lease.link_loads:
            self._tracker.release_link_load(u, v, demand)
        for node, demand in lease.node_loads:
            self._tracker.release_node_load(node, demand)
        lease.released = True
        self._active.pop(id(lease), None)
        if mx:
            mx.inc("sim.releases")
            mx.span("sim.release", t0,
                    trace_args={"request": lease.request_index})

    # ------------------------------------------------------------------
    # link failure / recovery
    # ------------------------------------------------------------------
    def fail_link(self, u: Node, v: Node) -> FailureImpact:
        """Kill a live link and degrade gracefully.

        The topology change reaches the shared oracle as a
        :meth:`~repro.graph.indexed.FrozenOracle.patch_topology` removal
        (``incremental=True``) or a graph mutation plus full invalidate
        (``incremental=False``) -- identical served state either way.
        Every active lease whose forest crossed the dead link is then
        handled in ``request_index`` order: the simulator attempts
        :func:`~repro.core.dynamic.reroute_failed_link` mass recovery
        onto surviving paths (re-accounting the lease's bandwidth on the
        new links), and releases-and-counts-as-disrupted any tenant that
        cannot be rerouted.  All reroutes see failure-time prices: costs
        are synced once before the link dies, not between reroutes.

        Returns the :class:`FailureImpact`; raises ``ValueError`` if the
        link does not exist or already failed.
        """
        from repro.core.dynamic import DynamicError, reroute_failed_link
        from repro.core.validation import ForestInfeasible

        key = canonical_edge(u, v)
        if key in self._failed:
            raise ValueError(f"link {key!r} already failed")
        if not self._graph.has_edge(u, v):
            raise ValueError(f"({u!r}, {v!r}) is not a live link")
        mx = self._metrics
        t0 = mx.clock() if mx else 0.0
        # The VM pool is the online mode's standing working set (every
        # request's Procedure-1 sweep reads all of it): touch it before
        # patching, exactly as ``apply_background_load`` does, so the
        # repair keeps the pool rows instead of evicting them as idle.
        self._oracle.prefetch_rows(self._vms)
        self._sync_costs()
        if self._incremental:
            self._oracle.patch_topology(removed=[(u, v)])
        else:
            self._graph.remove_edge(u, v)
            self._oracle.invalidate()
        self._failed.add(key)

        crossing = sorted(
            (
                lease for lease in self._active.values()
                if lease.forest is not None
                and any(edge == key for edge, _ in lease.link_loads)
            ),
            key=lambda lease: lease.request_index,
        )
        rerouted: List[int] = []
        disrupted: List[int] = []
        for lease in crossing:
            try:
                new_forest = reroute_failed_link(lease.forest, (u, v))
            except (DynamicError, ForestInfeasible):
                self.release(lease)
                disrupted.append(lease.request_index)
            else:
                self._recommit(lease, new_forest)
                rerouted.append(lease.request_index)
        if mx:
            mx.inc("sim.failures")
            if rerouted:
                mx.inc("sim.reroutes", len(rerouted), outcome="rerouted")
            if disrupted:
                mx.inc("sim.reroutes", len(disrupted), outcome="disrupted")
            mx.span("sim.fail", t0,
                    trace_args={"rerouted": len(rerouted),
                                "disrupted": len(disrupted)})
        return FailureImpact(
            link=key, rerouted=tuple(rerouted), disrupted=tuple(disrupted)
        )

    def _recommit(self, lease: Lease, forest: ServiceOverlayForest) -> None:
        """Swap a live lease's forest after a reroute.

        Link loads are released and recharged from the new walks; node
        loads stay -- rerouting preserves every VNF placement, only the
        connecting paths move.
        """
        for (a, b), demand in lease.link_loads:
            self._tracker.release_link_load(a, b, demand)
        link_totals = self._charge_links(
            forest, lease.request.demand_mbps, len(lease.request.chain)
        )
        lease.link_loads = tuple(link_totals.items())
        lease.forest = forest

    def recover_link(self, u: Node, v: Node) -> None:
        """Bring a failed link back at its load-derived cost.

        The reinsertion reaches the oracle as a decrease-from-infinity
        (:meth:`~repro.graph.indexed.FrozenOracle.patch_topology` with
        ``inserted=``) or a graph mutation plus invalidate, matching the
        failure path's mode split.  The revived cost is re-derived from
        the tracker's current load on the link (crossing tenants moved
        away or dropped at failure time, so this is usually the floor
        plus any background load).  Raises ``ValueError`` if the link is
        not currently failed.

        A link that died *before* the oracle's first build has no
        tombstoned CSR slot to revive (:meth:`FrozenOracle.insertable`),
        so that rare case falls back to invalidate-and-rebuild.
        """
        key = canonical_edge(u, v)
        if key not in self._failed:
            raise ValueError(f"link {key!r} is not a failed link")
        mx = self._metrics
        t0 = mx.clock() if mx else 0.0
        # Keep the VM-pool working set alive through the reinsert patch
        # (see :meth:`fail_link`).
        self._oracle.prefetch_rows(self._vms)
        self._sync_costs()
        cost = max(self._tracker.link_cost(u, v), self._cost_floor)
        if self._incremental and self._oracle.insertable(u, v):
            self._oracle.patch_topology(inserted={(u, v): cost})
        else:
            self._graph.add_edge(u, v, cost)
            self._oracle.invalidate()
        self._failed.discard(key)
        if mx:
            mx.inc("sim.recoveries")
            mx.span("sim.recover", t0)

    def embed_leased(
        self, request: Request, embedder: Embedder
    ) -> Tuple[Optional[float], Optional[Lease]]:
        """Embed one request; returns ``(cost, lease)``.

        ``(None, None)`` marks a rejection (the embedder raised).  This
        is the one place the rejection policy and the evaluate-cost-
        before-commit ordering live; :meth:`embed` and the workload
        engine's arrival path both delegate here, so online-comparison
        and churn runs can never diverge in acceptance semantics.
        """
        mx = self._metrics
        t0 = mx.clock() if mx else 0.0
        instance = self.current_instance(request)
        try:
            forest = embedder(instance)
        except Exception:
            if mx:
                mx.inc("sim.embeds", outcome="rejected")
                mx.span("sim.embed", t0,
                        trace_args={"request": request.index,
                                    "outcome": "rejected"})
            return None, None
        cost = forest.total_cost()
        lease = self.commit(forest, request)
        if mx:
            mx.inc("sim.embeds", outcome="accepted")
            mx.span("sim.embed", t0,
                    trace_args={"request": request.index,
                                "outcome": "accepted"})
        return cost, lease

    def embed(self, request: Request, embedder: Embedder) -> Optional[float]:
        """Embed one request; returns its cost, or ``None`` on rejection."""
        cost, _ = self.embed_leased(request, embedder)
        return cost


def run_online_comparison(
    network_factory: Callable[[], CloudNetwork],
    embedders: Dict[str, Embedder],
    requests: Sequence[Request],
    vms_per_datacenter: int = 5,
    **simulator_kwargs,
) -> Dict[str, OnlineResult]:
    """Replay one request sequence through every algorithm (Fig. 12).

    Each algorithm gets a fresh simulator over an identical topology, so
    load state never leaks between competitors.  Extra keyword arguments
    (``parallel_rows``, ``vectorized``, the equivalence-reference flags)
    pass straight through to every :class:`OnlineSimulator`.
    """
    results: Dict[str, OnlineResult] = {}
    for name, embedder in embedders.items():
        simulator = OnlineSimulator(
            network_factory(), vms_per_datacenter=vms_per_datacenter,
            **simulator_kwargs,
        )
        result = OnlineResult(name=name)
        total = 0.0
        for request in requests:
            cost = simulator.embed(request, embedder)
            if cost is None:
                result.rejected += 1
                cost = 0.0
            total += cost
            result.per_request_cost.append(cost)
            result.accumulative_cost.append(total)
        results[name] = result
    return results
