"""Online deployment scenario (Sections VII-B and VIII-C, Fig. 12).

Requests arrive sequentially; every embedded forest adds its demand to the
links and hosts it uses, the Fortz--Thorup costs are re-derived from the
updated loads, and the next request is embedded against the new costs.
The metric is the *accumulative cost*: the sum of the embedding-time costs
of all forests so far (the paper's Fig. 12 y-axis).
"""

from repro.online.requests import Request, RequestGenerator
from repro.online.rerouting import (
    congested_forest_links,
    reroute_forest_around_congestion,
)
from repro.online.simulator import (
    FailureImpact,
    Lease,
    OnlineResult,
    OnlineSimulator,
    run_online_comparison,
)

__all__ = [
    "Request",
    "RequestGenerator",
    "FailureImpact",
    "Lease",
    "OnlineResult",
    "OnlineSimulator",
    "run_online_comparison",
    "congested_forest_links",
    "reroute_forest_around_congestion",
]
