"""Multicast request generation for the online scenario.

Section VIII-A: "the numbers of destinations and candidate sources in the
request are randomly chosen from 13 to 17 and 8 to 12 in Softlayer, and
from 20 to 60 and from 10 to 30 in Cogent"; every request demands 3
services and 5 Mbps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable, List, Tuple

from repro.core.problem import ServiceChain
from repro.topology.network import CloudNetwork

Node = Hashable

#: Paper presets: (destinations range, sources range) per topology name.
PAPER_REQUEST_RANGES = {
    "softlayer": ((13, 17), (8, 12)),
    "cogent": ((20, 60), (10, 30)),
}


@dataclass(frozen=True)
class Request:
    """One multicast service request."""

    index: int
    sources: Tuple[Node, ...]
    destinations: Tuple[Node, ...]
    chain: ServiceChain
    demand_mbps: float = 5.0


class RequestGenerator:
    """Seeded stream of requests over a topology.

    The same seed yields the same request sequence, so competing
    algorithms can be replayed against identical workloads.
    """

    def __init__(
        self,
        network: CloudNetwork,
        seed: int = 0,
        destinations_range: Tuple[int, int] = None,
        sources_range: Tuple[int, int] = None,
        chain_length: int = 3,
        demand_mbps: float = 5.0,
    ) -> None:
        preset = PAPER_REQUEST_RANGES.get(network.name)
        if destinations_range is None:
            destinations_range = preset[0] if preset else (2, 6)
        if sources_range is None:
            sources_range = preset[1] if preset else (2, 4)
        if max(destinations_range[1], sources_range[1]) > network.num_nodes:
            raise ValueError(
                f"request ranges exceed the {network.num_nodes}-node topology"
            )
        self._network = network
        self._rng = random.Random(seed)
        self._destinations_range = destinations_range
        self._sources_range = sources_range
        self._chain = ServiceChain.of_length(chain_length)
        self._demand = demand_mbps
        self._count = 0

    def next_request(self) -> Request:
        """Draw the next request."""
        rng = self._rng
        num_d = rng.randint(*self._destinations_range)
        num_s = rng.randint(*self._sources_range)
        nodes = self._network.access_nodes()
        # Keep S and D disjoint when the topology allows it (the paper's
        # SoftLayer ranges can exceed 27 nodes combined, in which case the
        # sets are drawn independently).
        if num_d + num_s <= len(nodes):
            picks = rng.sample(nodes, num_d + num_s)
            sources = tuple(picks[:num_s])
            destinations = tuple(picks[num_s:])
        else:
            sources = tuple(rng.sample(nodes, num_s))
            destinations = tuple(rng.sample(nodes, num_d))
        request = Request(
            index=self._count,
            sources=sources,
            destinations=destinations,
            chain=self._chain,
            demand_mbps=self._demand,
        )
        self._count += 1
        return request

    def take(self, count: int) -> List[Request]:
        """Draw ``count`` requests."""
        return [self.next_request() for _ in range(count)]
