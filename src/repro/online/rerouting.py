"""Online congestion rerouting (Section VII-B, last paragraph).

"When a node or link becomes congested, SOFDA reroutes the service forest
by letting the users downstream to the above node or link re-join the
forest again, where the current path in the forest is removed only after
the new join path is created to avoid service interruption."

:func:`reroute_forest_around_congestion` applies exactly that make-before-
break repair to an embedded forest: congested links get their updated
(exploded) cost, affected chain segments and distribution paths are
re-connected through the now-cheapest routes, and the old paths are
dropped afterwards.  It wraps the Section VII-C primitives
(:func:`repro.core.dynamic.reroute_congested_link`).
"""

from __future__ import annotations

from typing import Hashable, List, Tuple

from repro.core.dynamic import reroute_congested_link
from repro.core.forest import ServiceOverlayForest
from repro.core.problem import SOFInstance
from repro.costmodel import LoadTracker
from repro.graph.graph import canonical_edge, edge_sort_key

Node = Hashable


def congested_forest_links(
    forest: ServiceOverlayForest,
    tracker: LoadTracker,
    threshold: float = 0.9,
) -> List[Tuple[Node, Node]]:
    """Links of the forest whose utilisation *strictly* exceeds ``threshold``.

    The boundary matches :meth:`~repro.costmodel.LoadTracker
    .congested_links` exactly: a link sitting precisely at ``threshold``
    utilisation is NOT congested, so the tracker and the rerouting layer
    can never disagree about it.  The result is ordered by the canonical
    edge key (:func:`~repro.graph.graph.edge_sort_key`), which stays
    deterministic across mixed node types -- sorting on ``repr`` would,
    e.g., order an integer link ``(2, 10)`` before ``(2, 9)`` and shuffle
    tuple-named VM links among plain switch ids.
    """
    used = set(forest.tree_edges)
    for chain in forest.chains:
        for a, b in chain.all_edges():
            used.add(canonical_edge(a, b))
    hot = set(tracker.congested_links(threshold))
    return sorted(used & hot, key=edge_sort_key)


def reroute_forest_around_congestion(
    forest: ServiceOverlayForest,
    tracker: LoadTracker,
    threshold: float = 0.9,
    max_links: int = 5,
) -> Tuple[SOFInstance, ServiceOverlayForest, int]:
    """Make-before-break reroute of every congested link the forest uses.

    A link counts as congested when its utilisation is *strictly* above
    ``threshold`` (the :class:`LoadTracker` boundary; exactly-at-threshold
    links are left alone).  Returns ``(instance, forest,
    links_rerouted)``; the instance carries the updated link costs.
    Congested links are processed worst-first and at most ``max_links``
    per invocation (the controller batches repairs, as the paper's
    adaptive-routing references do).
    """
    instance = forest.instance
    current = forest
    rerouted = 0
    hot = congested_forest_links(current, tracker, threshold)
    hot.sort(key=lambda e: -tracker.link_utilisation(*e))
    for link in hot[:max_links]:
        new_cost = tracker.link_cost(*link)
        try:
            instance, current = reroute_congested_link(current, link, new_cost)
        except Exception:
            # A link with no alternative stays in place; its cost update
            # still steers future requests away.
            continue
        rerouted += 1
    return instance, current, rerouted
