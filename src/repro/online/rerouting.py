"""Online congestion rerouting (Section VII-B, last paragraph).

"When a node or link becomes congested, SOFDA reroutes the service forest
by letting the users downstream to the above node or link re-join the
forest again, where the current path in the forest is removed only after
the new join path is created to avoid service interruption."

:func:`reroute_forest_around_congestion` applies exactly that make-before-
break repair to an embedded forest: congested links get their updated
(exploded) cost, affected chain segments and distribution paths are
re-connected through the now-cheapest routes, and the old paths are
dropped afterwards.  It wraps the Section VII-C primitives
(:func:`repro.core.dynamic.reroute_congested_link`).
"""

from __future__ import annotations

from typing import Hashable, List, Tuple

from repro.core.dynamic import reroute_congested_link
from repro.core.forest import ServiceOverlayForest
from repro.core.problem import SOFInstance
from repro.costmodel import LoadTracker
from repro.graph.graph import canonical_edge

Node = Hashable


def congested_forest_links(
    forest: ServiceOverlayForest,
    tracker: LoadTracker,
    threshold: float = 0.9,
) -> List[Tuple[Node, Node]]:
    """Links of the forest whose utilisation exceeds ``threshold``."""
    used = set(forest.tree_edges)
    for chain in forest.chains:
        for a, b in chain.all_edges():
            used.add(canonical_edge(a, b))
    hot = set(tracker.congested_links(threshold))
    return sorted(used & hot, key=repr)


def reroute_forest_around_congestion(
    forest: ServiceOverlayForest,
    tracker: LoadTracker,
    threshold: float = 0.9,
    max_links: int = 5,
) -> Tuple[SOFInstance, ServiceOverlayForest, int]:
    """Make-before-break reroute of every congested link the forest uses.

    Returns ``(instance, forest, links_rerouted)``; the instance carries
    the updated link costs.  Congested links are processed worst-first and
    at most ``max_links`` per invocation (the controller batches repairs,
    as the paper's adaptive-routing references do).
    """
    instance = forest.instance
    current = forest
    rerouted = 0
    hot = congested_forest_links(current, tracker, threshold)
    hot.sort(key=lambda e: -tracker.link_utilisation(*e))
    for link in hot[:max_links]:
        new_cost = tracker.link_cost(*link)
        try:
            instance, current = reroute_congested_link(current, link, new_cost)
        except Exception:
            # A link with no alternative stays in place; its cost update
            # still steers future requests away.
            continue
        rerouted += 1
    return instance, current, rerouted
