"""Observability rule: hot paths time and record only via the recorder.

PR 10 threaded a ``metrics=`` knob (an injectable
:class:`~repro.obs.recorder.Recorder`) through the oracle, simulator,
and workload stack, with the invariant that the disabled default is
zero-overhead and bit-identical.  That invariant dies quietly the first
time a solver module reads a clock or builds its own recorder outside
the flag-gated discipline, so this rule polices both:

- ``obs-null-guard`` -- inside ``graph/``, ``online/``, or ``workload/``
  solver modules, a raw ``time.perf_counter()`` / ``time.monotonic()`` /
  ``time.process_time()`` call, or a direct construction of
  ``MetricsRegistry`` / ``SpanTracer`` / ``Recorder``, is flagged.
  Durations must come from the injected recorder's ``clock()`` behind an
  ``if mx:`` guard (so the metrics-off path never reads time), and
  recorders must be *injected* through the ``metrics=`` knob, never
  built where the knob cannot turn them off.

Experiment harness code (``experiments/``) keeps its raw
``perf_counter`` timers -- measured runtimes are its output, not an
optional observation -- and the :mod:`repro.obs` package itself is where
the clock reads legitimately live; both are outside this rule's scope.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.framework import (
    Checker, Finding, Rule, SourceFile, call_name, dotted_base,
    module_aliases,
)

NULL_GUARD = Rule(
    "obs-null-guard",
    "raw clock read or recorder construction in an instrumented solver "
    "module (route through the injected obs recorder)",
    origin="PR 10",
)

#: The path segments whose modules carry recorder-instrumented hot paths.
_OBS_SEGMENTS = frozenset({"graph", "online", "workload"})

#: ``time`` module duration clocks that must route through
#: ``recorder.clock()`` in instrumented modules.
_DURATION_CLOCKS = frozenset({
    "perf_counter", "perf_counter_ns", "monotonic", "monotonic_ns",
    "process_time", "process_time_ns",
})

#: Recorder-layer classes that must be injected, never built in place.
_RECORDER_TYPES = frozenset({"MetricsRegistry", "SpanTracer", "Recorder"})


class ObsGuardChecker(Checker):
    rules = (NULL_GUARD,)

    def check(self, source: SourceFile) -> Iterator[Finding]:
        roles = source.roles
        if "tests" in roles:
            return
        parts = [p.lower() for p in re.split(r"[\\/]", source.relpath) if p]
        if not _OBS_SEGMENTS.intersection(parts):
            return
        tree = source.tree
        assert tree is not None
        time_mods, time_members = module_aliases(tree, "time")

        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            yield from self._check_clock(
                source, node, time_mods, time_members
            )
            yield from self._check_recorder_construction(source, node)

    # ------------------------------------------------------------------
    def _check_clock(
        self, source: SourceFile, node: ast.Call, time_mods, time_members
    ) -> Iterator[Finding]:
        func = node.func
        clock = None
        if isinstance(func, ast.Attribute):
            if dotted_base(func) in time_mods and func.attr in _DURATION_CLOCKS:
                clock = func.attr
        elif isinstance(func, ast.Name):
            if time_members.get(func.id) in _DURATION_CLOCKS:
                clock = time_members[func.id]
        if clock is not None:
            yield source.finding(
                NULL_GUARD.rule_id, node,
                f"raw time.{clock}() in an instrumented solver module; "
                "read time through the injected recorder "
                "('t0 = mx.clock() if mx else 0.0') so the metrics-off "
                "path stays zero-overhead and bit-identical",
            )

    def _check_recorder_construction(
        self, source: SourceFile, node: ast.Call
    ) -> Iterator[Finding]:
        name = call_name(node)
        if name in _RECORDER_TYPES:
            yield source.finding(
                NULL_GUARD.rule_id, node,
                f"{name}(...) constructed inside an instrumented solver "
                "module; recorders must be injected through the "
                "'metrics=' knob so observability stays flag-gated "
                "(default off)",
            )
