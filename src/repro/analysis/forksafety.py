"""Fork-safety rules for the kernel tier's fork-pool pattern.

PR 7's fork-inheritance invariant: a forked worker sees the parent's
memory exactly as it was at pool creation, so the oracle may only fork
while its shared structures are consistent -- row prefetches before any
mutation, patch repairs after the plan and shared regions are fully
resolved and **before any row label is written back**.

- ``fork-mutation-window`` -- a ``fork_map``/``prefetch_rows`` call
  lexically inside a patch mutation window: in a function that builds a
  ``_PatchPlan``, any fork call at or after the first row-label
  write-back (an assignment into ``dist[...]``/``parent[...]``/
  ``settled[...]``) is flagged.  Workers forked there would inherit
  half-written rows.
- ``fork-raw-pool`` -- a ``multiprocessing`` pool created directly
  outside the two grandfathered modules (``graph/kernel.py``, which owns
  the pattern, and ``experiments/harness.py``, its origin).  New
  consumers must go through :func:`repro.graph.kernel.fork_map`, which
  gets the worker-installation ordering, the daemonic/no-fork fallbacks,
  and the one-time warning right once.
- ``fork-worker-order`` -- inside a function that declares a module
  ``global`` and creates a pool, any non-constant assignment to that
  global must come *before* the pool creation: the fork pattern only
  works because the worker function (and everything it closes over) is
  installed in the module global pre-fork, so workers inherit it by
  memory copy.  Resetting the global to a constant (``None``) afterwards
  is legal cleanup.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.analysis.framework import (
    Checker, Finding, Rule, SourceFile, call_name,
)

MUTATION_WINDOW = Rule(
    "fork-mutation-window",
    "fork inside a patch mutation window (after row write-back began)",
    origin="PR 7",
)
RAW_POOL = Rule(
    "fork-raw-pool",
    "direct multiprocessing pool outside kernel.fork_map",
    origin="PR 7",
)
WORKER_ORDER = Rule(
    "fork-worker-order",
    "pool created before the worker global was installed",
    origin="PR 7",
)

#: Callables whose invocation forks (or enqueues onto) the worker pool.
_FORK_CALLS = frozenset({"fork_map", "prefetch_rows"})

#: Names whose subscript assignment is a row-label write-back.
_ROW_LABEL_NAMES = frozenset({"dist", "parent", "settled"})

#: Modules allowed to create pools directly.
_POOL_OWNERS = ("graph/kernel.py", "experiments/harness.py")


class ForkSafetyChecker(Checker):
    rules = (MUTATION_WINDOW, RAW_POOL, WORKER_ORDER)

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if "tests" in source.roles:
            return
        tree = source.tree
        assert tree is not None
        pool_owner = source.relpath.replace("\\", "/").endswith(_POOL_OWNERS)
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_mutation_window(source, node)
                yield from self._check_worker_order(source, node)
            elif isinstance(node, ast.Call) and not pool_owner:
                if _is_pool_creation(node):
                    yield source.finding(
                        RAW_POOL.rule_id, node,
                        "multiprocessing pool created directly; use "
                        "repro.graph.kernel.fork_map, which owns the "
                        "worker-install ordering and the no-fork/daemonic "
                        "fallbacks",
                    )

    # ------------------------------------------------------------------
    def _check_mutation_window(
        self, source: SourceFile, func: ast.AST
    ) -> Iterator[Finding]:
        plan_line: Optional[int] = None
        write_lines: List[int] = []
        fork_calls: List[ast.Call] = []
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                name = call_name(node)
                if name == "_PatchPlan" or name.endswith("PatchPlan"):
                    if plan_line is None or node.lineno < plan_line:
                        plan_line = node.lineno
                elif name in _FORK_CALLS:
                    fork_calls.append(node)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if _is_row_label_write(target):
                        write_lines.append(node.lineno)
        if plan_line is None or not write_lines or not fork_calls:
            return
        window_start = min(
            (line for line in write_lines if line >= plan_line),
            default=None,
        )
        if window_start is None:
            return
        for call in fork_calls:
            if call.lineno >= window_start:
                yield source.finding(
                    MUTATION_WINDOW.rule_id, call,
                    f"{call_name(call)}() at or after the first row-label "
                    f"write-back (line {window_start}) of a _PatchPlan "
                    "repair; forked workers would inherit half-written "
                    "rows -- fork before any row is written, after the "
                    "plan and shared regions are resolved",
                )

    def _check_worker_order(
        self, source: SourceFile, func: ast.AST
    ) -> Iterator[Finding]:
        global_names: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                global_names.update(node.names)
        if not global_names:
            return
        pool_line: Optional[int] = None
        for node in ast.walk(func):
            if isinstance(node, ast.Call) and _is_pool_creation(node):
                if pool_line is None or node.lineno < pool_line:
                    pool_line = node.lineno
        if pool_line is None:
            return
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id in global_names
                    and not isinstance(node.value, ast.Constant)
                    and node.lineno > pool_line
                ):
                    yield source.finding(
                        WORKER_ORDER.rule_id, node,
                        f"worker global {target.id!r} installed after the "
                        f"pool creation on line {pool_line}; forked workers "
                        "inherit memory at pool creation, so the worker "
                        "function must be installed first",
                    )


def _is_pool_creation(node: ast.Call) -> bool:
    func = node.func
    return isinstance(func, ast.Attribute) and func.attr == "Pool"


def _is_row_label_write(target: ast.expr) -> bool:
    if isinstance(target, (ast.Tuple, ast.List)):
        return any(_is_row_label_write(t) for t in target.elts)
    if not isinstance(target, ast.Subscript):
        return False
    value = target.value
    if isinstance(value, ast.Name):
        return value.id in _ROW_LABEL_NAMES
    if isinstance(value, ast.Attribute):
        return value.attr in _ROW_LABEL_NAMES
    return False
