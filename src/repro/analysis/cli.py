"""CLI for the invariant linter: ``python -m repro.analysis``.

Also reachable as ``repro analysis`` from the installed entry point
(mirroring the ``workload`` subcommand pattern).

Exit status: 0 when clean (or when not ``--strict``), 1 when ``--strict``
and any non-baselined, non-suppressed finding remains.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis import (
    Baseline, all_rules, analyze, default_baseline_path,
)


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based invariant linter (determinism, oracle, "
                    "flag-threading, fork-safety rules)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on any non-baselined finding (the CI mode)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="machine-readable JSON output for tooling",
    )
    parser.add_argument(
        "--baseline", action="store_true", dest="write_baseline",
        help="rewrite the baseline file from the current findings "
             "(existing justifications are kept; new entries get a TODO)",
    )
    parser.add_argument(
        "--baseline-file", default=default_baseline_path(), metavar="PATH",
        help="baseline JSON to read (and write with --baseline); "
             "default: the committed repro/analysis/baseline.json",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline (report grandfathered findings too)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list every rule id and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            origin = f"  ({rule.origin})" if rule.origin else ""
            print(f"{rule.rule_id:24s} {rule.summary}{origin}")
        return 0

    baseline = (
        Baseline() if args.no_baseline else Baseline.load(args.baseline_file)
    )
    result = analyze(args.paths, baseline=baseline)

    if args.write_baseline:
        baseline.path = args.baseline_file
        baseline.write(result.findings + result.baselined)
        print(f"wrote {len(baseline.entries)} baseline entries to "
              f"{args.baseline_file}")
        return 0

    if args.as_json:
        payload = {
            "checked_files": result.checked_files,
            "strict": args.strict,
            "clean": result.clean,
            "suppressed": result.suppressed,
            "findings": [f.to_json() for f in result.findings],
            "baselined": [f.to_json() for f in result.baselined],
        }
        print(json.dumps(payload, indent=2))
    else:
        for finding in result.findings:
            print(finding.render())
        summary = (
            f"{len(result.findings)} finding(s) in {result.checked_files} "
            f"file(s) ({len(result.baselined)} baselined, "
            f"{result.suppressed} suppressed)"
        )
        print(summary if result.findings else f"clean: {summary}")

    if args.strict and result.findings:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
