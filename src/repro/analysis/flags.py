"""Flag-threading rule: every oracle knob reaches every threading site.

PRs 4 and 7 each shipped a bugfix for a *half-plumbed* oracle flag -- a
new ``FrozenOracle.__init__`` knob that reached some construction sites
but silently fell back to its default at others, so A/B comparisons
quietly compared different configurations.  This checker parses the
live ``FrozenOracle.__init__`` signature and asserts each knob appears
at every threading site:

====================  =====================================================
site                  satisfied when
====================  =====================================================
FrozenOracle.rebased  the clone construction passes the flag by keyword
AuxiliaryOracle       its fallback-oracle construction passes the flag
OnlineSimulator       its oracle construction passes the flag (possibly
                      derived, e.g. ``patchable=self._incremental``)
Controller            its per-domain oracle construction passes the flag
DistributedSOFDA      its ``Controller.for_domain`` calls pass the flag
run_online_comparison a ``**simulator_kwargs`` forward reaches the
run_churn_comparison  simulator construction (forwards every flag)
====================  =====================================================

Repair-mode flags (``patchable``, ``planner``, ``share_regions``,
``topology_patch``) are exempt at ``AuxiliaryOracle``, ``Controller``
and ``DistributedSOFDA``: those oracles are built once over graphs that
are never patched, so repair knobs cannot change what they serve.  A
*new* flag is required everywhere by default -- if it is genuinely
irrelevant at a site, add it to :data:`REPAIR_ONLY_FLAGS` (when it is a
repair-mode knob) or baseline the finding with a justification.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.framework import (
    Finding, ProjectChecker, Rule, SourceFile,
)

FLAG_THREADING = Rule(
    "thread-oracle-flag",
    "FrozenOracle flag missing at a threading site",
    origin="PRs 4, 7",
)

#: ``FrozenOracle.__init__`` parameters that are not behavior flags.
_NON_FLAG_PARAMS = ("self", "graph", "hot")

#: Flags that only affect patch/repair behavior: exempt at sites whose
#: oracles are never patched (one-shot fallback and per-domain oracles).
REPAIR_ONLY_FLAGS = frozenset({
    "patchable", "planner", "share_regions", "topology_patch",
})

#: Sites where only serve-affecting flags must thread.
_SERVE_ONLY_SITES = frozenset({
    "AuxiliaryOracle", "Controller", "DistributedSOFDA",
})

#: (site name, kind) -- classes are searched as ClassDef, functions as
#: top-level FunctionDef; ``FrozenOracle.rebased`` is the method inside
#: the oracle class itself.
_SITES: Tuple[Tuple[str, str], ...] = (
    ("FrozenOracle.rebased", "method"),
    ("AuxiliaryOracle", "class"),
    ("OnlineSimulator", "class"),
    ("Controller", "class"),
    ("DistributedSOFDA", "class"),
    ("run_online_comparison", "function"),
    ("run_churn_comparison", "function"),
)


class FlagThreadingChecker(ProjectChecker):
    rules = (FLAG_THREADING,)

    def check_project(
        self, sources: Sequence[SourceFile]
    ) -> Iterator[Finding]:
        oracle = _find_oracle_class(sources)
        if oracle is None:
            return
        source, class_node = oracle
        flags = _oracle_flags(class_node)
        if not flags:
            return
        for site_name, kind in _SITES:
            located = _find_site(sources, class_node, site_name, kind)
            if located is None:
                continue
            site_source, site_node = located
            required = [
                f for f in flags
                if not (
                    site_name in _SERVE_ONLY_SITES and f in REPAIR_ONLY_FLAGS
                )
            ]
            threaded = _threaded_flags(site_node)
            for flag in required:
                if flag in threaded:
                    continue
                yield Finding(
                    rule=FLAG_THREADING.rule_id,
                    path=site_source.relpath,
                    line=site_node.lineno, col=site_node.col_offset,
                    symbol=site_source.qualname(site_node),
                    message=(
                        f"FrozenOracle.__init__ flag {flag!r} is not "
                        f"threaded through site {site_name!r}; every "
                        "oracle knob must reach rebased clones, the "
                        "auxiliary fallback, the online simulator, the "
                        "distributed controllers, and the comparison "
                        "runners (half-plumbed flags silently compare "
                        "different configurations)"
                    ),
                )


def _find_oracle_class(
    sources: Sequence[SourceFile],
) -> Optional[Tuple[SourceFile, ast.ClassDef]]:
    """The ``FrozenOracle`` class definition, preferring the real module."""
    candidates: List[Tuple[SourceFile, ast.ClassDef]] = []
    for source in sources:
        if source.tree is None:
            continue
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef) and node.name == "FrozenOracle":
                candidates.append((source, node))
    if not candidates:
        return None
    for source, node in candidates:
        if source.relpath.replace("\\", "/").endswith("graph/indexed.py"):
            return source, node
    return min(candidates, key=lambda c: (c[0].relpath, c[1].lineno))


def _oracle_flags(class_node: ast.ClassDef) -> List[str]:
    for node in class_node.body:
        if isinstance(node, ast.FunctionDef) and node.name == "__init__":
            args = node.args
            names = [a.arg for a in args.args] + [a.arg for a in args.kwonlyargs]
            return [n for n in names if n not in _NON_FLAG_PARAMS]
    return []


def _find_site(
    sources: Sequence[SourceFile],
    oracle_class: ast.ClassDef,
    site_name: str,
    kind: str,
) -> Optional[Tuple[SourceFile, ast.AST]]:
    if kind == "method":
        class_name, method_name = site_name.split(".")
        for node in oracle_class.body:
            if isinstance(node, ast.FunctionDef) and node.name == method_name:
                for source in sources:
                    if source.tree is not None and _contains(
                        source.tree, oracle_class
                    ):
                        return source, node
        return None
    wanted = ast.ClassDef if kind == "class" else ast.FunctionDef
    for source in sources:
        if source.tree is None:
            continue
        for node in ast.walk(source.tree):
            if isinstance(node, wanted) and node.name == site_name:
                if node is oracle_class:
                    continue
                return source, node
    return None


def _contains(tree: ast.AST, target: ast.AST) -> bool:
    return any(node is target for node in ast.walk(tree))


def _threaded_flags(site_node: ast.AST) -> set:
    """Flag names passed by keyword in any call inside the site.

    A ``**<name>kwargs`` expansion (the comparison runners'
    ``**simulator_kwargs``) forwards everything and satisfies every flag.
    """
    threaded: set = set()
    for node in ast.walk(site_node):
        if not isinstance(node, ast.Call):
            continue
        for kw in node.keywords:
            if kw.arg is not None:
                threaded.add(kw.arg)
            elif "kwargs" in _expr_name(kw.value):
                threaded.add("**")
    if "**" in threaded:

        class _Everything(set):
            def __contains__(self, item: object) -> bool:  # noqa: D401
                return True

        return _Everything()
    return threaded


def _expr_name(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""
