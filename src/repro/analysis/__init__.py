"""``repro.analysis``: the AST-based invariant linter.

The reproduction's correctness rests on invariants that used to live
only in ROADMAP.md and review discipline: byte-stable iteration order
across PYTHONHASHSEED, the single-oracle invariant, the oracle
flag-threading rule, and the kernel tier's fork-inheritance invariant.
PRs 3, 4, 7 and 8 each shipped a bugfix for a silent violation of one of
them.  This package turns those rules into machine-checkable lint,
enforced in CI (``python -m repro.analysis --strict src tests``).

Rule families (see each module's docstring and ``README.md`` here):

- :mod:`~repro.analysis.determinism` -- ``det-set-iter``,
  ``det-unseeded-rng``, ``det-wallclock``, ``det-ambient-sort-key``.
- :mod:`~repro.analysis.oracle` -- ``oracle-second-build``,
  ``oracle-invalidate-rebuild``.
- :mod:`~repro.analysis.flags` -- ``thread-oracle-flag``.
- :mod:`~repro.analysis.forksafety` -- ``fork-mutation-window``,
  ``fork-raw-pool``, ``fork-worker-order``.
- :mod:`~repro.analysis.obsguard` -- ``obs-null-guard``.

Suppress one finding inline with ``# repro-lint: disable=<rule>`` plus a
reason; grandfather a triaged finding in ``baseline.json`` with a
one-line justification.  Everything is stdlib-``ast``; no runtime deps.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence

from repro.analysis.determinism import DeterminismChecker
from repro.analysis.flags import FlagThreadingChecker
from repro.analysis.forksafety import ForkSafetyChecker
from repro.analysis.framework import (
    PARSE_ERROR,
    AnalysisResult,
    Baseline,
    Checker,
    Finding,
    ProjectChecker,
    Rule,
    SourceFile,
    run_analysis,
)
from repro.analysis.obsguard import ObsGuardChecker
from repro.analysis.oracle import OracleChecker

__all__ = [
    "AnalysisResult", "Baseline", "Checker", "Finding", "ProjectChecker",
    "Rule", "SourceFile", "all_rules", "analyze", "default_baseline_path",
    "run_analysis",
]

#: Default location of the committed grandfather baseline.
def default_baseline_path() -> str:
    return os.path.join(os.path.dirname(__file__), "baseline.json")


def default_checkers() -> List[Checker]:
    return [
        DeterminismChecker(), OracleChecker(), ForkSafetyChecker(),
        ObsGuardChecker(),
    ]


def default_project_checkers() -> List[ProjectChecker]:
    return [FlagThreadingChecker()]


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by id (for ``--list-rules`` and docs)."""
    rules = {PARSE_ERROR.rule_id: PARSE_ERROR}
    for checker in default_checkers() + default_project_checkers():
        for rule in checker.rules:
            rules[rule.rule_id] = rule
    return [rules[k] for k in sorted(rules)]


def analyze(
    paths: Sequence[str],
    baseline: Optional[Baseline] = None,
) -> AnalysisResult:
    """Lint ``paths`` with every registered checker."""
    return run_analysis(
        paths,
        checkers=default_checkers(),
        project_checkers=default_project_checkers(),
        baseline=baseline,
    )
