"""Checker framework for the invariant linter.

The linter is a thin orchestration layer over two checker shapes:

- :class:`Checker` -- per-file AST visitors.  Each parsed file is handed
  to every registered per-file checker, which yields :class:`Finding`
  objects.
- :class:`ProjectChecker` -- whole-tree checkers that need to see every
  parsed file at once (the flag-threading rule correlates
  ``FrozenOracle.__init__`` with call sites in five other modules).

Findings are post-filtered by two mechanisms:

- **Inline suppressions** -- a ``# repro-lint: disable=<rule>[,<rule>]``
  comment on the offending line (or on a standalone comment line
  directly above it) silences those rules for that line.
  ``disable=all`` silences every rule.
- **Baseline** -- ``baseline.json`` next to this module holds
  grandfathered findings that were triaged as intentional, keyed by
  ``(rule, path, symbol)`` with a one-line justification each.  Strict
  mode fails only on findings *not* covered by the baseline.

Everything here is stdlib-only (``ast`` + ``json``); the linter adds no
runtime dependency.
"""

from __future__ import annotations

import ast
import json
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: Path segments that mark a module as part of the deterministic solver
#: pipeline (the scope of the determinism rules).  Classification is by
#: directory name so fixture trees in tests behave like the real layout.
SOLVER_SEGMENTS = frozenset({
    "graph", "core", "online", "workload", "distributed",
    "baselines", "costmodel", "topology", "solver",
})

#: Rule ids only (kebab-case, comma-separated); anything after the id
#: list -- e.g. a ``-- why`` justification -- is not part of it.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable="
    r"([A-Za-z0-9_-]+(?:\s*,\s*[A-Za-z0-9_-]+)*)"
)


@dataclass(frozen=True)
class Rule:
    """Metadata for one lint rule."""

    rule_id: str
    summary: str
    #: Which PR's bugfix this rule encodes (documentation only).
    origin: str = ""


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    symbol: str
    message: str
    severity: str = "error"

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: {self.rule} "
                f"[{self.symbol}] {self.message}")

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule, "path": self.path, "line": self.line,
            "col": self.col, "symbol": self.symbol,
            "message": self.message, "severity": self.severity,
        }


class SourceFile:
    """A parsed source file plus the lookup tables checkers share.

    ``relpath`` is the path findings and baseline entries use: relative
    to the current working directory when the file is under it (the CI
    invocation), absolute otherwise (fixture trees under ``/tmp``).
    """

    def __init__(self, path: str, text: Optional[str] = None) -> None:
        self.path = os.path.abspath(path)
        self.relpath = _display_path(self.path)
        if text is None:
            with open(self.path, "r", encoding="utf-8") as handle:
                text = handle.read()
        self.text = text
        self.lines = text.splitlines()
        self.parse_error: Optional[SyntaxError] = None
        try:
            self.tree: Optional[ast.AST] = ast.parse(text, filename=self.path)
        except SyntaxError as exc:
            self.tree = None
            self.parse_error = exc
        self.suppressions = _parse_suppressions(self.lines)
        self.parents: Dict[ast.AST, ast.AST] = {}
        self.qualnames: Dict[ast.AST, str] = {}
        if self.tree is not None:
            _index_tree(self.tree, self.parents, self.qualnames)

    # ------------------------------------------------------------------
    @property
    def roles(self) -> Set[str]:
        """Module classification from path segments (posix-insensitive)."""
        parts = [p.lower() for p in re.split(r"[\\/]", self.relpath) if p]
        roles: Set[str] = set()
        name = parts[-1] if parts else ""
        if "tests" in parts or name.startswith("test_") or name == "conftest.py":
            roles.add("tests")
        if any(p in SOLVER_SEGMENTS for p in parts):
            roles.add("solver")
        if "experiments" in parts:
            roles.add("experiments")
        return roles

    def qualname(self, node: ast.AST) -> str:
        """Enclosing symbol of ``node`` (``Class.method`` or ``<module>``)."""
        current: Optional[ast.AST] = node
        while current is not None:
            name = self.qualnames.get(current)
            if name is not None:
                return name
            current = self.parents.get(current)
        return "<module>"

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def is_suppressed(self, finding: Finding) -> bool:
        rules = self.suppressions.get(finding.line)
        return bool(rules) and (finding.rule in rules or "all" in rules)

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=rule, path=self.relpath,
            line=getattr(node, "lineno", 1), col=getattr(node, "col_offset", 0),
            symbol=self.qualname(node), message=message,
        )


def _display_path(abspath: str) -> str:
    cwd = os.getcwd()
    try:
        rel = os.path.relpath(abspath, cwd)
    except ValueError:  # different drive on windows
        return abspath.replace(os.sep, "/")
    if rel.startswith(".."):
        return abspath.replace(os.sep, "/")
    return rel.replace(os.sep, "/")


def _parse_suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    out: Dict[int, Set[str]] = {}
    for i, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
        out.setdefault(i, set()).update(rules)
        if line.lstrip().startswith("#"):
            # A standalone suppression comment covers the next code line:
            # skip past the rest of its (possibly multi-line) comment
            # block so the justification can wrap.
            j = i + 1
            while j <= len(lines) and lines[j - 1].lstrip().startswith("#"):
                j += 1
            out.setdefault(j, set()).update(rules)
    return out


def _index_tree(
    tree: ast.AST,
    parents: Dict[ast.AST, ast.AST],
    qualnames: Dict[ast.AST, str],
) -> None:
    def visit(node: ast.AST, stack: Tuple[str, ...]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            stack = stack + (node.name,)
            qualnames[node] = ".".join(stack)
        for child in ast.iter_child_nodes(node):
            parents[child] = node
            visit(child, stack)

    visit(tree, ())


# ----------------------------------------------------------------------
# checker registry
# ----------------------------------------------------------------------

class Checker:
    """Per-file checker: override :meth:`check`."""

    rules: Tuple[Rule, ...] = ()

    def check(self, source: SourceFile) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError


class ProjectChecker:
    """Whole-tree checker: override :meth:`check_project`."""

    rules: Tuple[Rule, ...] = ()

    def check_project(
        self, sources: Sequence[SourceFile]
    ) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError


PARSE_ERROR = Rule(
    "parse-error", "file does not parse under the running interpreter",
)


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------

@dataclass
class Baseline:
    """Grandfathered findings keyed by ``(rule, path, symbol)``.

    Matching ignores line numbers on purpose: a baseline entry pins a
    *triaged* violation inside one symbol, and unrelated edits above it
    must not resurrect the finding.  Adding a second violation of the
    same rule in the same symbol therefore also slips through -- the
    README documents why entries should stay rare and justified.
    """

    path: Optional[str] = None
    entries: Dict[Tuple[str, str, str], str] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Optional[str]) -> "Baseline":
        baseline = cls(path=path)
        if path and os.path.exists(path):
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            for entry in data.get("entries", []):
                key = (entry["rule"], entry["path"], entry["symbol"])
                baseline.entries[key] = entry.get("justification", "")
        return baseline

    def covers(self, finding: Finding) -> bool:
        return (finding.rule, finding.path, finding.symbol) in self.entries

    def write(self, findings: Iterable[Finding]) -> None:
        assert self.path is not None
        merged: Dict[Tuple[str, str, str], str] = {}
        for f in findings:
            key = (f.rule, f.path, f.symbol)
            merged[key] = self.entries.get(key, "TODO: justify this entry")
        payload = {
            "version": 1,
            "entries": [
                {
                    "rule": rule, "path": path, "symbol": symbol,
                    "justification": justification,
                }
                for (rule, path, symbol), justification in sorted(merged.items())
            ],
        }
        with open(self.path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")
        self.entries = merged


# ----------------------------------------------------------------------
# runner
# ----------------------------------------------------------------------

@dataclass
class AnalysisResult:
    """The full outcome of one linter run."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    checked_files: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


def collect_files(paths: Sequence[str]) -> List[str]:
    """Expand ``paths`` (files or directories) into sorted ``.py`` files."""
    out: Set[str] = set()
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if not d.startswith(".") and d != "__pycache__"
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        out.add(os.path.abspath(os.path.join(dirpath, name)))
        elif path.endswith(".py"):
            out.add(os.path.abspath(path))
    return sorted(out)


def run_analysis(
    paths: Sequence[str],
    checkers: Sequence[Checker],
    project_checkers: Sequence[ProjectChecker] = (),
    baseline: Optional[Baseline] = None,
) -> AnalysisResult:
    """Lint ``paths`` and split findings into active/baselined/suppressed."""
    result = AnalysisResult()
    baseline = baseline or Baseline()
    sources: List[SourceFile] = []
    raw: List[Tuple[SourceFile, Finding]] = []
    for path in collect_files(paths):
        source = SourceFile(path)
        sources.append(source)
        result.checked_files += 1
        if source.parse_error is not None:
            err = source.parse_error
            raw.append((source, Finding(
                rule=PARSE_ERROR.rule_id, path=source.relpath,
                line=err.lineno or 1, col=(err.offset or 1) - 1,
                symbol="<module>", message=f"syntax error: {err.msg}",
            )))
            continue
        for checker in checkers:
            for finding in checker.check(source):
                raw.append((source, finding))
    by_path = {s.relpath: s for s in sources}
    for project_checker in project_checkers:
        for finding in project_checker.check_project(sources):
            raw.append((by_path.get(finding.path), finding))

    for source, finding in raw:
        if source is not None and source.is_suppressed(finding):
            result.suppressed += 1
        elif baseline.covers(finding):
            result.baselined.append(finding)
        else:
            result.findings.append(finding)
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    result.baselined.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return result


# ----------------------------------------------------------------------
# small shared AST helpers
# ----------------------------------------------------------------------

def call_name(node: ast.Call) -> str:
    """Trailing name of a call's callee (``a.b.fn(...)`` -> ``fn``)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def dotted_base(node: ast.expr) -> str:
    """Leftmost name of a dotted expression (``a.b.c`` -> ``a``)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return ""


def module_aliases(tree: ast.AST, module: str) -> Tuple[Set[str], Dict[str, str]]:
    """Local names bound to ``module`` and to names imported from it.

    Returns ``(module_aliases, member_aliases)`` where ``member_aliases``
    maps local name -> original member name.
    """
    mods: Set[str] = set()
    members: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    mods.add(alias.asname or alias.name)
        elif isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                members[alias.asname or alias.name] = alias.name
    return mods, members
