"""Determinism rules: no hash-salted orders, ambient RNG, or wall clocks.

PR 8 removed the last hash-salted iteration orders from the solver
pipeline by hand audit; these rules keep them out.  All four rules are
scoped to *solver* modules (``graph``, ``core``, ``online``,
``workload``, ``distributed``, ``baselines``, ``costmodel``,
``topology`` -- see :data:`~repro.analysis.framework.SOLVER_SEGMENTS`),
where iteration order reaches forest costs, cache evolution, and the
byte-stable bench anchors.

- ``det-set-iter`` -- a ``for`` loop (or list/generator/dict
  comprehension, or an order-preserving call like ``list``/``tuple``/
  ``sum``/``join``/``enumerate``) iterating a provably set-typed
  expression without an enclosing ``sorted(...)``.  Set and frozenset
  iteration order is salted by PYTHONHASHSEED, so any order-sensitive
  consumer drifts across processes.  Building another ``set`` from a set
  (a set comprehension, ``set(...)``/``frozenset(...)``, unions) is
  order-insensitive and exempt.
- ``det-unseeded-rng`` -- module-level ``random.*`` calls (shared global
  state, order-dependent across call sites) and ``random.Random()``
  constructed without a seed.  Every RNG in the pipeline must be a
  ``random.Random(seed)`` instance.
- ``det-wallclock`` -- ``time.time``/``time.time_ns`` and
  ``datetime.now``/``utcnow``/``today`` inside solver or experiment
  code: wall-clock values must never feed algorithm decisions or
  recorded artefacts.  ``time.perf_counter``/``monotonic`` stay legal --
  they only measure durations.
- ``det-ambient-sort-key`` -- ``id()`` or ``hash()`` inside a sort key
  (``sorted``/``list.sort``/``min``/``max``): both are
  interpreter-run-dependent, so the resulting order is not reproducible
  (the PR-3 congested-link sort drifted exactly this way via ``repr`` of
  ids before it was fixed).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.framework import (
    Checker, Finding, Rule, SourceFile, call_name, dotted_base,
    module_aliases,
)

SET_ITER = Rule(
    "det-set-iter",
    "iteration over a set/frozenset without an enclosing sorted()",
    origin="PR 8",
)
UNSEEDED_RNG = Rule(
    "det-unseeded-rng",
    "module-level random.* call or unseeded random.Random()",
    origin="PR 5",
)
WALLCLOCK = Rule(
    "det-wallclock",
    "wall-clock read (time.time/datetime.now) in solver or timed code",
    origin="PR 5",
)
AMBIENT_SORT_KEY = Rule(
    "det-ambient-sort-key",
    "id()/hash() used inside a sort key",
    origin="PR 3",
)

#: Calls that consume their iterable in order (flagged over sets) ...
_ORDER_SENSITIVE_CALLS = frozenset({
    "list", "tuple", "sum", "join", "enumerate", "reversed", "zip", "map",
    "filter", "fsum",
})
#: ... and calls whose result does not depend on iteration order.
_ORDER_FREE_CALLS = frozenset({
    "sorted", "set", "frozenset", "len", "min", "max", "any", "all",
})

_SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference", "copy",
})

_WALLCLOCK_TIME = frozenset({"time", "time_ns"})
_WALLCLOCK_DATETIME = frozenset({"now", "utcnow", "today"})

#: ``random`` module functions that draw from the shared global RNG.
_GLOBAL_RNG_FNS = frozenset({
    "random", "uniform", "randint", "randrange", "choice", "choices",
    "sample", "shuffle", "gauss", "normalvariate", "expovariate",
    "betavariate", "gammavariate", "lognormvariate", "paretovariate",
    "weibullvariate", "triangular", "vonmisesvariate", "getrandbits",
    "seed", "setstate", "randbytes",
})


class DeterminismChecker(Checker):
    rules = (SET_ITER, UNSEEDED_RNG, WALLCLOCK, AMBIENT_SORT_KEY)

    def check(self, source: SourceFile) -> Iterator[Finding]:
        roles = source.roles
        if "tests" in roles:
            return
        solver = "solver" in roles
        timed = solver or "experiments" in roles
        if not timed:
            return
        tree = source.tree
        assert tree is not None
        random_mods, random_members = module_aliases(tree, "random")
        time_mods, time_members = module_aliases(tree, "time")
        dt_mods, dt_members = module_aliases(tree, "datetime")

        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            yield from self._check_rng(
                source, node, random_mods, random_members
            )
            yield from self._check_wallclock(
                source, node, time_mods, time_members, dt_mods, dt_members
            )
            yield from self._check_sort_key(source, node)

        if solver:
            yield from self._check_set_iteration(source, tree)

    # ------------------------------------------------------------------
    def _check_rng(
        self, source: SourceFile, node: ast.Call,
        mods: Set[str], members: Dict[str, str],
    ) -> Iterator[Finding]:
        func = node.func
        if isinstance(func, ast.Attribute) and dotted_base(func) in mods:
            if func.attr == "Random":
                if not node.args and not node.keywords:
                    yield source.finding(
                        UNSEEDED_RNG.rule_id, node,
                        "random.Random() without a seed draws from OS "
                        "entropy; pass an explicit seed",
                    )
            elif func.attr in _GLOBAL_RNG_FNS:
                yield source.finding(
                    UNSEEDED_RNG.rule_id, node,
                    f"module-level random.{func.attr}() uses the shared "
                    "global RNG; use a seeded random.Random(seed) instance",
                )
        elif isinstance(func, ast.Name) and func.id in members:
            original = members[func.id]
            if original == "Random":
                if not node.args and not node.keywords:
                    yield source.finding(
                        UNSEEDED_RNG.rule_id, node,
                        "Random() without a seed draws from OS entropy; "
                        "pass an explicit seed",
                    )
            elif original in _GLOBAL_RNG_FNS:
                yield source.finding(
                    UNSEEDED_RNG.rule_id, node,
                    f"module-level random.{original}() uses the shared "
                    "global RNG; use a seeded random.Random(seed) instance",
                )

    def _check_wallclock(
        self, source: SourceFile, node: ast.Call,
        time_mods: Set[str], time_members: Dict[str, str],
        dt_mods: Set[str], dt_members: Dict[str, str],
    ) -> Iterator[Finding]:
        func = node.func
        if isinstance(func, ast.Attribute):
            base = dotted_base(func)
            if base in time_mods and func.attr in _WALLCLOCK_TIME:
                yield source.finding(
                    WALLCLOCK.rule_id, node,
                    f"time.{func.attr}() reads the wall clock; solver and "
                    "timed code must be input-deterministic "
                    "(use time.perf_counter for duration measurement)",
                )
            elif func.attr in _WALLCLOCK_DATETIME:
                # datetime.datetime.now(), datetime.now(), date.today(),
                # or an alias of either class imported from datetime.
                if base in dt_mods or base in dt_members or base in (
                    "datetime", "date"
                ):
                    yield source.finding(
                        WALLCLOCK.rule_id, node,
                        f"{base}.{func.attr}() reads the wall clock; pass "
                        "timestamps in explicitly",
                    )
        elif isinstance(func, ast.Name):
            if time_members.get(func.id) in _WALLCLOCK_TIME:
                yield source.finding(
                    WALLCLOCK.rule_id, node,
                    f"time.{time_members[func.id]}() reads the wall clock; "
                    "solver and timed code must be input-deterministic",
                )

    def _check_sort_key(
        self, source: SourceFile, node: ast.Call
    ) -> Iterator[Finding]:
        name = call_name(node)
        if name not in ("sorted", "sort", "min", "max"):
            return
        for kw in node.keywords:
            if kw.arg != "key":
                continue
            bad: Optional[str] = None
            if isinstance(kw.value, ast.Name) and kw.value.id in ("id", "hash"):
                bad = kw.value.id
            elif isinstance(kw.value, ast.Lambda):
                for sub in ast.walk(kw.value.body):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Name)
                        and sub.func.id in ("id", "hash")
                    ):
                        bad = sub.func.id
                        break
            if bad is not None:
                yield source.finding(
                    AMBIENT_SORT_KEY.rule_id, node,
                    f"sort key uses {bad}(), which varies across "
                    "interpreter runs; key on stable content "
                    "(e.g. node_sort_key/edge_sort_key) instead",
                )

    # ------------------------------------------------------------------
    # set-iteration analysis
    # ------------------------------------------------------------------
    def _check_set_iteration(
        self, source: SourceFile, tree: ast.AST
    ) -> Iterator[Finding]:
        # Scopes are module + each function; a name counts as set-typed
        # only when *every* assignment to it in its scope is a provably
        # set-typed expression (conservative against false positives).
        scopes: List[ast.AST] = [tree] + [
            n for n in ast.walk(tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for scope in scopes:
            set_names = _infer_set_names(scope)
            for node in _scope_walk(scope):
                yield from self._check_iter_node(source, node, set_names)

    def _check_iter_node(
        self, source: SourceFile, node: ast.AST, set_names: Set[str]
    ) -> Iterator[Finding]:
        def flag(iter_node: ast.expr, context: str) -> Iterator[Finding]:
            if _is_set_expr(iter_node, set_names):
                yield source.finding(
                    SET_ITER.rule_id, iter_node,
                    f"{context} iterates a set in PYTHONHASHSEED-salted "
                    "order; wrap it in sorted(...) or iterate a stable "
                    "container",
                )

        if isinstance(node, ast.For):
            yield from flag(node.iter, "for loop")
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            # Set comprehensions build an unordered result and are exempt,
            # as is a generator consumed by an order-free reduction
            # (any/all/min-without-key/sum-of-constant/...).
            if isinstance(node, ast.GeneratorExp) and _order_free_consumer(
                source, node
            ):
                return
            for gen in node.generators:
                yield from flag(gen.iter, "comprehension")
        elif isinstance(node, ast.Call):
            name = call_name(node)
            if name in _ORDER_SENSITIVE_CALLS and name not in _ORDER_FREE_CALLS:
                for arg in node.args:
                    yield from flag(arg, f"{name}(...)")


def _order_free_consumer(source: SourceFile, gen: ast.GeneratorExp) -> bool:
    """True when ``gen`` feeds a call whose result ignores element order.

    ``any(...)``, ``all(...)``, ``len``, ``sorted``, ``set``/``frozenset``
    never depend on order.  ``min``/``max`` only without a ``key`` (a key
    can tie, and ties resolve to the first-seen element).  ``sum`` only
    when the generator yields a constant (counting), since float addition
    is order-sensitive.
    """
    parent = source.parents.get(gen)
    if not isinstance(parent, ast.Call) or gen not in parent.args:
        return False
    name = call_name(parent)
    if name in ("any", "all", "len", "sorted", "set", "frozenset"):
        return True
    if name in ("min", "max"):
        return not any(kw.arg == "key" for kw in parent.keywords)
    if name == "sum":
        return isinstance(gen.elt, ast.Constant)
    return False


def _scope_walk(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk ``scope`` without descending into nested function scopes."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _infer_set_names(scope: ast.AST) -> Set[str]:
    assigned_set: Set[str] = set()
    assigned_other: Set[str] = set()
    seen: Set[str] = set()

    def record(target: ast.expr, value: Optional[ast.expr]) -> None:
        if not isinstance(target, ast.Name):
            return
        seen.add(target.id)
        if value is not None and _is_set_expr(value, assigned_set):
            assigned_set.add(target.id)
        else:
            assigned_other.add(target.id)

    for node in _scope_walk(scope):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                record(target, node.value)
        elif isinstance(node, ast.AnnAssign):
            record(node.target, node.value)
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Name):
                # x |= ... keeps a set a set; anything else demotes it.
                if not isinstance(node.op, (ast.BitOr, ast.BitAnd,
                                            ast.Sub, ast.BitXor)):
                    assigned_other.add(node.target.id)
        elif isinstance(node, (ast.For, ast.comprehension)):
            target = node.target
            for name in ast.walk(target):
                if isinstance(name, ast.Name):
                    assigned_other.add(name.id)
    return assigned_set - assigned_other


def _is_set_expr(node: ast.expr, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call):
        name = call_name(node)
        if isinstance(node.func, ast.Name) and name in ("set", "frozenset"):
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and name in _SET_METHODS
            and _is_set_expr(node.func.value, set_names)
        ):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return (
            _is_set_expr(node.left, set_names)
            or _is_set_expr(node.right, set_names)
        )
    return False
