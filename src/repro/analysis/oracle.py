"""Oracle-invariant rules: one oracle per graph, patch instead of rebuild.

The single-oracle invariant (PR 1) is the architectural backbone of the
reproduction: one :class:`~repro.graph.indexed.FrozenOracle` per
instance serves Procedure-1 sweeps, conflict repairs, Steiner closures,
baselines, and (condensed) the SOFDA Steiner step; the distributed layer
follows the same rule per scope.  Building a second oracle over the same
graph silently forks the cache state and spends a full Dijkstra sweep
the shared rows already paid for.

- ``oracle-second-build`` -- a ``FrozenOracle``/``DistanceOracle``
  construction outside the whitelisted factory sites.  Allowed are the
  known factories (``FrozenOracle.rebased``,
  ``AuxiliaryOracle._ensure_fallback``, ``OnlineSimulator.__init__``,
  ``Controller.oracle``, ``SOFInstance.oracle``,
  ``DistributedSOFDA.verify_abstraction`` -- each owns a *different*
  graph) and the lazy default-factory idiom
  (``oracle = oracle or FrozenOracle(...)`` or construction guarded by
  ``if <name> is None``), which only builds when the caller supplied
  none.  Anything else must receive an oracle from its instance.
- ``oracle-invalidate-rebuild`` -- an ``.invalidate()`` call in a module
  that must *patch* (``online``/``workload``/``distributed``), outside a
  branch guarded by one of the reference-mode flags (``incremental``,
  ``topology_patch``, ``patchable``, ``planner``, ``insertable``).  The
  invalidate-and-rebuild path is legal only as the explicit equivalence
  and benchmark reference; PR 2 exists because an unguarded invalidate
  in the online loop silently cost a full rebuild per cost change.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set, Tuple

from repro.analysis.framework import (
    Checker, Finding, Rule, SourceFile, call_name,
)

SECOND_BUILD = Rule(
    "oracle-second-build",
    "oracle constructed outside the whitelisted factory sites",
    origin="PR 1",
)
INVALIDATE_REBUILD = Rule(
    "oracle-invalidate-rebuild",
    "unguarded invalidate() in a module that must patch",
    origin="PR 2",
)

#: Class names whose construction the single-oracle rule governs.
ORACLE_CLASS_NAMES = frozenset({"FrozenOracle", "DistanceOracle"})

#: ``Class.method`` factory sites allowed to construct an oracle; each
#: builds over a graph no other oracle serves.
ALLOWED_FACTORY_QUALNAMES = frozenset({
    "FrozenOracle.rebased",
    "AuxiliaryOracle._ensure_fallback",
    "OnlineSimulator.__init__",
    "Controller.oracle",
    "SOFInstance.oracle",
    "DistributedSOFDA.verify_abstraction",
})

#: Identifier fragments that mark an ``if`` test as a reference-mode
#: guard (``if self._incremental: ... else: oracle.invalidate()``).
_GUARD_TOKENS = (
    "incremental", "topology_patch", "patchable", "planner", "insertable",
)

#: Module segments where cost/topology changes must go through
#: ``patch_edge_costs``/``patch_topology``, not invalidate-and-rebuild.
_PATCHING_SEGMENTS = frozenset({"online", "workload", "distributed"})


class OracleChecker(Checker):
    rules = (SECOND_BUILD, INVALIDATE_REBUILD)

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if "tests" in source.roles:
            return
        tree = source.tree
        assert tree is not None
        oracle_names = _oracle_aliases(tree)
        patching = _is_patching_module(source)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name in oracle_names:
                yield from self._check_construction(source, node, name)
            elif name == "invalidate" and patching:
                yield from self._check_invalidate(source, node)

    # ------------------------------------------------------------------
    def _check_construction(
        self, source: SourceFile, node: ast.Call, name: str
    ) -> Iterator[Finding]:
        qualname = source.qualname(node)
        tail = ".".join(qualname.split(".")[-2:])
        if tail in ALLOWED_FACTORY_QUALNAMES:
            return
        if _is_default_factory(source, node):
            return
        yield source.finding(
            SECOND_BUILD.rule_id, node,
            f"{name}(...) constructed outside the whitelisted factory "
            "sites; the single-oracle invariant requires serving every "
            "query over a graph from its one shared oracle "
            "(use instance.oracle / Controller.oracle, or an "
            "`oracle or ...` default factory)",
        )

    def _check_invalidate(
        self, source: SourceFile, node: ast.Call
    ) -> Iterator[Finding]:
        for ancestor in source.ancestors(node):
            if isinstance(ancestor, ast.If) and _mentions_guard(ancestor.test):
                return
        yield source.finding(
            INVALIDATE_REBUILD.rule_id, node,
            "invalidate() outside a reference-mode guard; online cost and "
            "topology changes must go through patch_edge_costs/"
            "patch_topology, with invalidate-and-rebuild reserved for the "
            "incremental=False (or non-insertable) reference branch",
        )


def _oracle_aliases(tree: ast.AST) -> Set[str]:
    """Local names bound to an oracle class (imports and their aliases)."""
    names: Set[str] = set(ORACLE_CLASS_NAMES)
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name in ORACLE_CLASS_NAMES and alias.asname:
                    names.add(alias.asname)
    return names


def _is_patching_module(source: SourceFile) -> bool:
    parts = {p.lower() for p in source.relpath.replace("\\", "/").split("/")}
    return bool(parts & _PATCHING_SEGMENTS)


def _is_default_factory(source: SourceFile, node: ast.Call) -> bool:
    """Whether the construction only runs when no oracle was supplied.

    Recognizes ``x or FrozenOracle(...)`` (the call must not be the
    first operand) and any construction lexically inside an
    ``if <expr> is None`` branch.
    """
    parent = source.parents.get(node)
    if (
        isinstance(parent, ast.BoolOp)
        and isinstance(parent.op, ast.Or)
        and parent.values
        and parent.values[0] is not node
    ):
        return True
    for ancestor in source.ancestors(node):
        if isinstance(ancestor, ast.If) and _is_none_test(ancestor.test):
            return True
    return False


def _is_none_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        if isinstance(test.ops[0], (ast.Is, ast.Eq)):
            comparands: Tuple[ast.expr, ast.expr] = (test.left, test.comparators[0])
            return any(
                isinstance(c, ast.Constant) and c.value is None
                for c in comparands
            )
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        return True
    return False


def _mentions_guard(test: ast.expr) -> bool:
    for node in ast.walk(test):
        name = ""
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.Call):
            name = call_name(node)
        if name and any(token in name for token in _GUARD_TOKENS):
            return True
    return False
