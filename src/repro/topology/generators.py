"""Topology generators.

:func:`geographic_network` is the workhorse: nodes are placed in the unit
square, connected by a Euclidean MST (guaranteeing connectivity) plus the
shortest remaining candidate links up to the requested link count -- the
standard recipe for ISP-map-like graphs.  The SoftLayer and Cogent stand-ins
instantiate it with the paper's exact node/link/data-center counts;
:func:`inet_network` reproduces Inet's preferential-attachment degree
distribution; Waxman and Erdos--Renyi generators support tests and extra
experiments.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Tuple

from repro.graph import Graph
from repro.topology.network import CloudNetwork


def _euclidean_mst_edges(points: List[Tuple[float, float]]) -> List[Tuple[int, int]]:
    """Prim's algorithm over the complete Euclidean graph (O(n^2))."""
    n = len(points)
    in_tree = [False] * n
    best = [float("inf")] * n
    best_edge: List[Optional[int]] = [None] * n
    in_tree[0] = True
    for j in range(1, n):
        best[j] = _dist(points[0], points[j])
        best_edge[j] = 0
    edges = []
    for _ in range(n - 1):
        j = min(
            (j for j in range(n) if not in_tree[j]),
            key=lambda j: best[j],
        )
        in_tree[j] = True
        edges.append((best_edge[j], j))
        for k in range(n):
            if not in_tree[k]:
                d = _dist(points[j], points[k])
                if d < best[k]:
                    best[k] = d
                    best_edge[k] = j
    return edges


def _dist(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    return math.hypot(a[0] - b[0], a[1] - b[1])


def geographic_network(
    name: str,
    num_nodes: int,
    num_links: int,
    num_datacenters: int,
    seed: int = 0,
) -> CloudNetwork:
    """ISP-map-style topology: Euclidean MST plus shortest extra links.

    Edge costs are initialised to the Euclidean lengths; they are
    placeholders -- :meth:`CloudNetwork.make_instance` overwrites them with
    usage-based costs.
    """
    if num_links < num_nodes - 1:
        raise ValueError(
            f"{num_links} links cannot connect {num_nodes} nodes"
        )
    rng = random.Random(seed)
    points = [(rng.random(), rng.random()) for _ in range(num_nodes)]
    graph = Graph()
    for i in range(num_nodes):
        graph.add_node(i)
    chosen = set()
    for i, j in _euclidean_mst_edges(points):
        graph.add_edge(i, j, _dist(points[i], points[j]))
        chosen.add((min(i, j), max(i, j)))

    # Remaining candidates by length; keep the shortest until the target
    # link count is met (long-haul shortcuts appear because the MST leaves
    # distant regions one-path-connected).
    candidates = sorted(
        (
            (_dist(points[i], points[j]), i, j)
            for i in range(num_nodes)
            for j in range(i + 1, num_nodes)
            if (i, j) not in chosen
        ),
    )
    for d, i, j in candidates:
        if graph.num_edges() >= num_links:
            break
        graph.add_edge(i, j, d)
    datacenters = rng.sample(range(num_nodes), num_datacenters)
    return CloudNetwork(name=name, graph=graph, datacenters=datacenters)


def softlayer_network(seed: int = 0) -> CloudNetwork:
    """SoftLayer-like inter-DC network: 27 nodes, 49 links, 17 data centers."""
    return geographic_network("softlayer", 27, 49, 17, seed=seed)


def cogent_network(seed: int = 0) -> CloudNetwork:
    """Cogent-like backbone: 190 nodes, 260 links, 40 data centers."""
    return geographic_network("cogent", 190, 260, 40, seed=seed)


def inet_network(
    num_nodes: int = 5000,
    num_links: int = 10000,
    num_datacenters: int = 2000,
    seed: int = 0,
    name: str = "inet",
) -> CloudNetwork:
    """Inet-style synthetic topology via preferential attachment.

    Inet [60] produces heavy-tailed degree distributions; we reproduce that
    with a Barabasi--Albert-style process: each new node attaches to
    ``m ~ num_links/num_nodes`` existing nodes chosen proportionally to
    degree, then random extra links top the count up exactly.
    """
    if num_nodes < 3:
        raise ValueError("inet topology needs at least 3 nodes")
    if num_links < num_nodes - 1:
        raise ValueError("too few links for connectivity")
    rng = random.Random(seed)
    graph = Graph()
    # Seed triangle.
    graph.add_edge(0, 1, 1.0)
    graph.add_edge(1, 2, 1.0)
    graph.add_edge(0, 2, 1.0)
    # Repeated-endpoint list = degree-proportional sampling.
    endpoints = [0, 1, 1, 2, 2, 0]
    m = max(1, round(num_links / num_nodes))
    for node in range(3, num_nodes):
        targets = set()
        attempts = 0
        while len(targets) < min(m, node) and attempts < 20 * m:
            targets.add(rng.choice(endpoints))
            attempts += 1
        if not targets:
            targets = {rng.randrange(node)}
        for t in targets:
            graph.add_edge(node, t, 1.0)
            endpoints.append(node)
            endpoints.append(t)
    # Top up with random extra links.
    attempts = 0
    while graph.num_edges() < num_links and attempts < num_links * 20:
        attempts += 1
        u = rng.randrange(num_nodes)
        v = rng.choice(endpoints)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v, 1.0)
            endpoints.append(u)
            endpoints.append(v)
    datacenters = rng.sample(range(num_nodes), num_datacenters)
    return CloudNetwork(name=name, graph=graph, datacenters=datacenters)


def waxman_network(
    num_nodes: int,
    alpha: float = 0.4,
    beta: float = 0.4,
    num_datacenters: Optional[int] = None,
    seed: int = 0,
    name: str = "waxman",
) -> CloudNetwork:
    """Classic Waxman random geometric topology (connectivity enforced)."""
    rng = random.Random(seed)
    points = [(rng.random(), rng.random()) for _ in range(num_nodes)]
    graph = Graph()
    for i in range(num_nodes):
        graph.add_node(i)
    scale = math.sqrt(2.0)
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            d = _dist(points[i], points[j])
            if rng.random() < alpha * math.exp(-d / (beta * scale)):
                graph.add_edge(i, j, d)
    for i, j in _euclidean_mst_edges(points):
        if not graph.has_edge(i, j):
            graph.add_edge(i, j, _dist(points[i], points[j]))
    dcs = num_datacenters if num_datacenters is not None else max(1, num_nodes // 3)
    datacenters = rng.sample(range(num_nodes), dcs)
    return CloudNetwork(name=name, graph=graph, datacenters=datacenters)


def erdos_renyi_network(
    num_nodes: int,
    edge_probability: float,
    num_datacenters: Optional[int] = None,
    seed: int = 0,
    name: str = "gnp",
) -> CloudNetwork:
    """G(n, p) topology with a random spanning tree overlaid for connectivity."""
    rng = random.Random(seed)
    graph = Graph()
    for i in range(num_nodes):
        graph.add_node(i)
    for i in range(1, num_nodes):
        graph.add_edge(i, rng.randrange(i), 1.0)
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            if not graph.has_edge(i, j) and rng.random() < edge_probability:
                graph.add_edge(i, j, 1.0)
    dcs = num_datacenters if num_datacenters is not None else max(1, num_nodes // 3)
    datacenters = rng.sample(range(num_nodes), dcs)
    return CloudNetwork(name=name, graph=graph, datacenters=datacenters)
