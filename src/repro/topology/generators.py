"""Topology generators.

:func:`geographic_network` is the workhorse: nodes are placed in the unit
square, connected by a Euclidean MST (guaranteeing connectivity) plus the
shortest remaining candidate links up to the requested link count -- the
standard recipe for ISP-map-like graphs.  The SoftLayer and Cogent stand-ins
instantiate it with the paper's exact node/link/data-center counts;
:func:`inet_network` reproduces Inet's preferential-attachment degree
distribution; :func:`fabric_network` builds a leaf--spine data-center
fabric; Waxman and Erdos--Renyi generators support tests and extra
experiments.

Scale: the naive Euclidean-MST recipe enumerates all ``n*(n-1)/2`` pairs,
which is fine for the paper's 27/190-node maps but quadratic-blows-up at
the 50k-node scale the memory-bounded pipeline targets.  Above
``_GRID_MST_THRESHOLD`` nodes, :func:`geographic_network` switches to a
spatial-grid candidate set: points are bucketed into ``~sqrt(n)`` cells,
each point proposes edges to its ``k`` nearest grid neighbours, and
Kruskal over those candidates (with deterministic component stitching and
adaptive ``k`` doubling) yields the same *kind* of topology in
``O(n k log(n k))``.  Below the threshold the original exact path runs
unchanged, so the paper-scale maps stay bit-identical.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Tuple

from repro.graph import DisjointSetUnion, Graph
from repro.topology.network import CloudNetwork

#: Node count at which geographic generation switches from the exact
#: all-pairs recipe to the spatial-grid candidate set.  Everything the
#: paper evaluates (SoftLayer 27, Cogent 190) sits far below this, so the
#: published maps keep their exact historical edge sets.
_GRID_MST_THRESHOLD = 1024


def _euclidean_mst_edges(points: List[Tuple[float, float]]) -> List[Tuple[int, int]]:
    """Prim's algorithm over the complete Euclidean graph (O(n^2))."""
    n = len(points)
    in_tree = [False] * n
    best = [float("inf")] * n
    best_edge: List[Optional[int]] = [None] * n
    in_tree[0] = True
    for j in range(1, n):
        best[j] = _dist(points[0], points[j])
        best_edge[j] = 0
    edges = []
    for _ in range(n - 1):
        j = min(
            (j for j in range(n) if not in_tree[j]),
            key=lambda j: best[j],
        )
        in_tree[j] = True
        edges.append((best_edge[j], j))
        for k in range(n):
            if not in_tree[k]:
                d = _dist(points[j], points[k])
                if d < best[k]:
                    best[k] = d
                    best_edge[k] = j
    return edges


def _dist(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    return math.hypot(a[0] - b[0], a[1] - b[1])


# ----------------------------------------------------------------------
# spatial-grid candidate machinery (large n)
# ----------------------------------------------------------------------
def _point_grid(
    points: List[Tuple[float, float]],
) -> Tuple[Dict[Tuple[int, int], List[int]], int]:
    """Bucket unit-square points into a ``side x side`` cell grid.

    ``side ~ sqrt(n)`` keeps the expected occupancy at one point per
    cell, so a fixed ring of cells around any point holds O(ring^2)
    candidates regardless of ``n``.
    """
    side = max(1, int(math.sqrt(len(points))))
    cells: Dict[Tuple[int, int], List[int]] = {}
    for idx, (x, y) in enumerate(points):
        cx = min(side - 1, int(x * side))
        cy = min(side - 1, int(y * side))
        cells.setdefault((cx, cy), []).append(idx)
    return cells, side


def _grid_knn_candidates(
    points: List[Tuple[float, float]],
    k: int,
    cells: Dict[Tuple[int, int], List[int]],
    side: int,
) -> List[Tuple[float, int, int]]:
    """Length-sorted candidate edges: each point to ~its k nearest.

    For each point, cells are scanned ring by ring outward until at
    least ``k`` neighbours have been seen *and* the next ring cannot
    contain a closer point (ring distance exceeds the k-th best), which
    makes the per-point result the true k-nearest set, not an
    approximation.  Candidates are deduplicated as ``i < j`` pairs.
    """
    seen = set()
    out: List[Tuple[float, int, int]] = []
    cell_w = 1.0 / side
    for i, p in enumerate(points):
        cx = min(side - 1, int(p[0] * side))
        cy = min(side - 1, int(p[1] * side))
        best: List[Tuple[float, int]] = []
        for ring in range(side):
            if len(best) >= k:
                # Any point in ring r is at least (r-1) cell widths
                # away; stop once that bound beats the k-th best.
                best.sort()
                if (ring - 1) * cell_w > best[k - 1][0]:
                    break
            lo_x, hi_x = cx - ring, cx + ring
            lo_y, hi_y = cy - ring, cy + ring
            if lo_x < 0 and hi_x >= side and lo_y < 0 and hi_y >= side:
                break  # the whole grid has been scanned
            for gx in range(max(0, lo_x), min(side, hi_x + 1)):
                for gy in range(max(0, lo_y), min(side, hi_y + 1)):
                    if max(abs(gx - cx), abs(gy - cy)) != ring:
                        continue  # interior cells were scanned earlier
                    for j in cells.get((gx, gy), ()):
                        if j != i:
                            best.append((_dist(p, points[j]), j))
        best.sort()
        for d, j in best[:k]:
            key = (i, j) if i < j else (j, i)
            if key not in seen:
                seen.add(key)
                out.append((d, key[0], key[1]))
    out.sort()
    return out


def _euclidean_mst_edges_grid(
    points: List[Tuple[float, float]],
) -> Tuple[List[Tuple[int, int]], List[Tuple[float, int, int]]]:
    """Euclidean MST for large point sets via grid k-NN + Kruskal.

    Returns ``(mst_edges, leftover_candidates)`` where the leftovers are
    the length-sorted non-tree candidates -- exactly what
    :func:`geographic_network` needs for its extra shortcut links.
    Components that the k-NN graph leaves disconnected (rare for uniform
    points at k >= 8) are stitched deterministically through each
    orphan component's nearest outside point.
    """
    n = len(points)
    cells, side = _point_grid(points)
    k = 8
    candidates = _grid_knn_candidates(points, k, cells, side)
    dsu = DisjointSetUnion(range(n))
    mst: List[Tuple[int, int]] = []
    leftovers: List[Tuple[float, int, int]] = []
    for d, i, j in candidates:
        if dsu.union(i, j):
            mst.append((i, j))
        else:
            leftovers.append((d, i, j))
    while dsu.num_sets > 1:
        # Group nodes by component root; stitch the smallest component
        # (ties by smallest root) to its nearest outside point.
        comps: Dict[int, List[int]] = {}
        for v in range(n):
            comps.setdefault(dsu.find(v), []).append(v)
        root = min(comps, key=lambda r: (len(comps[r]), r))
        best = (float("inf"), -1, -1)
        for i in comps[root]:
            for j in range(n):
                if dsu.find(j) != root:
                    d = _dist(points[i], points[j])
                    if (d, i, j) < best:
                        best = (d, i, j)
        _, i, j = best
        dsu.union(i, j)
        mst.append((i, j))
    return mst, leftovers


def geographic_network(
    name: str,
    num_nodes: int,
    num_links: int,
    num_datacenters: int,
    seed: int = 0,
) -> CloudNetwork:
    """ISP-map-style topology: Euclidean MST plus shortest extra links.

    Edge costs are initialised to the Euclidean lengths; they are
    placeholders -- :meth:`CloudNetwork.make_instance` overwrites them with
    usage-based costs.
    """
    if num_links < num_nodes - 1:
        raise ValueError(
            f"{num_links} links cannot connect {num_nodes} nodes"
        )
    rng = random.Random(seed)
    points = [(rng.random(), rng.random()) for _ in range(num_nodes)]
    graph = Graph()
    for i in range(num_nodes):
        graph.add_node(i)

    if num_nodes >= _GRID_MST_THRESHOLD:
        # Large n: grid-candidate MST plus shortest grid-local shortcuts
        # (a point's shortest non-tree links are, by construction, to its
        # spatial neighbours, so restricting candidates to the k-NN set
        # loses nothing until k runs out -- then k doubles).
        mst, leftovers = _euclidean_mst_edges_grid(points)
        for i, j in mst:
            graph.add_edge(i, j, _dist(points[i], points[j]))
        chosen = {(min(i, j), max(i, j)) for i, j in mst}
        # Track the count locally: Graph.num_edges() is O(n) per call,
        # which re-quadratifies the loop at this scale.
        edge_count = len(mst)
        k = 8
        cells, side = _point_grid(points)
        while edge_count < num_links:
            for d, i, j in leftovers:
                if edge_count >= num_links:
                    break
                if (i, j) not in chosen:
                    chosen.add((i, j))
                    graph.add_edge(i, j, d)
                    edge_count += 1
            if edge_count < num_links:
                if k >= num_nodes:
                    raise ValueError(
                        f"{num_links} links exceed the complete graph "
                        f"on {num_nodes} nodes"
                    )
                k *= 2
                leftovers = [
                    c for c in _grid_knn_candidates(points, k, cells, side)
                    if (c[1], c[2]) not in chosen
                ]
        datacenters = rng.sample(range(num_nodes), num_datacenters)
        return CloudNetwork(name=name, graph=graph, datacenters=datacenters)

    chosen = set()
    for i, j in _euclidean_mst_edges(points):
        graph.add_edge(i, j, _dist(points[i], points[j]))
        chosen.add((min(i, j), max(i, j)))

    # Remaining candidates by length; keep the shortest until the target
    # link count is met (long-haul shortcuts appear because the MST leaves
    # distant regions one-path-connected).
    candidates = sorted(
        (
            (_dist(points[i], points[j]), i, j)
            for i in range(num_nodes)
            for j in range(i + 1, num_nodes)
            if (i, j) not in chosen
        ),
    )
    for d, i, j in candidates:
        if graph.num_edges() >= num_links:
            break
        graph.add_edge(i, j, d)
    datacenters = rng.sample(range(num_nodes), num_datacenters)
    return CloudNetwork(name=name, graph=graph, datacenters=datacenters)


def softlayer_network(seed: int = 0) -> CloudNetwork:
    """SoftLayer-like inter-DC network: 27 nodes, 49 links, 17 data centers."""
    return geographic_network("softlayer", 27, 49, 17, seed=seed)


def cogent_network(seed: int = 0) -> CloudNetwork:
    """Cogent-like backbone: 190 nodes, 260 links, 40 data centers."""
    return geographic_network("cogent", 190, 260, 40, seed=seed)


def inet_network(
    num_nodes: int = 5000,
    num_links: int = 10000,
    num_datacenters: int = 2000,
    seed: int = 0,
    name: str = "inet",
) -> CloudNetwork:
    """Inet-style synthetic topology via preferential attachment.

    Inet [60] produces heavy-tailed degree distributions; we reproduce that
    with a Barabasi--Albert-style process: each new node attaches to
    ``m ~ num_links/num_nodes`` existing nodes chosen proportionally to
    degree, then random extra links top the count up exactly.
    """
    if num_nodes < 3:
        raise ValueError("inet topology needs at least 3 nodes")
    if num_links < num_nodes - 1:
        raise ValueError("too few links for connectivity")
    rng = random.Random(seed)
    graph = Graph()
    # Seed triangle.
    graph.add_edge(0, 1, 1.0)
    graph.add_edge(1, 2, 1.0)
    graph.add_edge(0, 2, 1.0)
    # Repeated-endpoint list = degree-proportional sampling.
    endpoints = [0, 1, 1, 2, 2, 0]
    m = max(1, round(num_links / num_nodes))
    for node in range(3, num_nodes):
        targets = set()
        attempts = 0
        while len(targets) < min(m, node) and attempts < 20 * m:
            targets.add(rng.choice(endpoints))
            attempts += 1
        if not targets:
            targets = {rng.randrange(node)}
        # repro-lint: disable=det-set-iter -- targets holds small ints,
        # which hash to themselves: iteration order is salt-independent,
        # and reordering would shift the pinned bench topologies.
        for t in targets:
            graph.add_edge(node, t, 1.0)
            endpoints.append(node)
            endpoints.append(t)
    # Top up with random extra links.
    attempts = 0
    while graph.num_edges() < num_links and attempts < num_links * 20:
        attempts += 1
        u = rng.randrange(num_nodes)
        v = rng.choice(endpoints)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v, 1.0)
            endpoints.append(u)
            endpoints.append(v)
    datacenters = rng.sample(range(num_nodes), num_datacenters)
    return CloudNetwork(name=name, graph=graph, datacenters=datacenters)


def fabric_network(
    num_nodes: int = 50000,
    num_datacenters: Optional[int] = None,
    seed: int = 0,
    name: str = "fabric",
) -> CloudNetwork:
    """Leaf--spine data-center fabric at any requested node count.

    A deterministic two-tier Clos: ``~n^(1/3)`` spine switches, each
    connected to every one of ``~sqrt(n)`` leaf switches, with the
    remaining nodes as hosts attached round-robin to the leaves.  Every
    host pair is therefore at most four hops apart regardless of scale,
    and the link count grows as ``n + leaves*spines`` -- linear in ``n``
    -- which is what lets the budgeted-churn pipeline exercise 50k-node
    topologies.  Spine--leaf links cost 1.0 and host--leaf links 2.0
    (placeholders, like every generator here: the cost model overwrites
    them).  Only data-center sampling consumes randomness; the wiring is
    a pure function of ``num_nodes``.
    """
    if num_nodes < 8:
        raise ValueError("fabric topology needs at least 8 nodes")
    rng = random.Random(seed)
    num_spines = max(2, round(num_nodes ** (1.0 / 3.0)))
    num_leaves = max(2, round(math.sqrt(num_nodes)))
    num_hosts = num_nodes - num_spines - num_leaves
    if num_hosts < num_leaves:
        raise ValueError(
            f"{num_nodes} nodes leave too few hosts for "
            f"{num_leaves} leaves"
        )
    graph = Graph()
    leaves = [num_spines + i for i in range(num_leaves)]
    for spine in range(num_spines):
        for leaf in leaves:
            graph.add_edge(spine, leaf, 1.0)
    first_host = num_spines + num_leaves
    for h in range(num_hosts):
        host = first_host + h
        graph.add_edge(host, leaves[h % num_leaves], 2.0)
    if num_datacenters is None:
        num_datacenters = max(1, num_hosts // 10)
    if num_datacenters > num_hosts:
        raise ValueError(
            f"{num_datacenters} data centers exceed {num_hosts} hosts"
        )
    datacenters = rng.sample(range(first_host, num_nodes), num_datacenters)
    return CloudNetwork(name=name, graph=graph, datacenters=datacenters)


def waxman_network(
    num_nodes: int,
    alpha: float = 0.4,
    beta: float = 0.4,
    num_datacenters: Optional[int] = None,
    seed: int = 0,
    name: str = "waxman",
) -> CloudNetwork:
    """Classic Waxman random geometric topology (connectivity enforced)."""
    rng = random.Random(seed)
    points = [(rng.random(), rng.random()) for _ in range(num_nodes)]
    graph = Graph()
    for i in range(num_nodes):
        graph.add_node(i)
    scale = math.sqrt(2.0)
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            d = _dist(points[i], points[j])
            if rng.random() < alpha * math.exp(-d / (beta * scale)):
                graph.add_edge(i, j, d)
    for i, j in _euclidean_mst_edges(points):
        if not graph.has_edge(i, j):
            graph.add_edge(i, j, _dist(points[i], points[j]))
    dcs = num_datacenters if num_datacenters is not None else max(1, num_nodes // 3)
    datacenters = rng.sample(range(num_nodes), dcs)
    return CloudNetwork(name=name, graph=graph, datacenters=datacenters)


def erdos_renyi_network(
    num_nodes: int,
    edge_probability: float,
    num_datacenters: Optional[int] = None,
    seed: int = 0,
    name: str = "gnp",
) -> CloudNetwork:
    """G(n, p) topology with a random spanning tree overlaid for connectivity."""
    rng = random.Random(seed)
    graph = Graph()
    for i in range(num_nodes):
        graph.add_node(i)
    for i in range(1, num_nodes):
        graph.add_edge(i, rng.randrange(i), 1.0)
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            if not graph.has_edge(i, j) and rng.random() < edge_probability:
                graph.add_edge(i, j, 1.0)
    dcs = num_datacenters if num_datacenters is not None else max(1, num_nodes // 3)
    datacenters = rng.sample(range(num_nodes), dcs)
    return CloudNetwork(name=name, graph=graph, datacenters=datacenters)
