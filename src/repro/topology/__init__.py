"""Network topologies for the evaluation (Section VIII-A).

The paper evaluates on two inter-data-center maps and one synthetic
topology:

- **IBM SoftLayer**: 27 access nodes, 49 links, 17 data centers.
- **Cogent**: 190 access nodes, 260 links, 40 data centers.
- **Inet synthetic**: 5000 access nodes, 10000 links, 2000 data centers.

The real maps are not redistributable, so :func:`softlayer_network` and
:func:`cogent_network` generate geographic-style topologies with exactly
the paper's node/link/data-center counts (see DESIGN.md's substitution
table); :func:`inet_network` reproduces Inet's heavy-tailed degree
distribution via preferential attachment at any requested scale.

Every generator returns a :class:`CloudNetwork`, whose
:meth:`~CloudNetwork.make_instance` attaches VMs to random data centers,
draws link/node costs from the Section VII-B cost model and samples
sources/destinations -- i.e. produces ready-to-solve
:class:`~repro.core.problem.SOFInstance` objects with the paper's defaults.
"""

from repro.topology.network import CloudNetwork
from repro.topology.generators import (
    cogent_network,
    erdos_renyi_network,
    fabric_network,
    geographic_network,
    inet_network,
    softlayer_network,
    waxman_network,
)

__all__ = [
    "CloudNetwork",
    "softlayer_network",
    "cogent_network",
    "inet_network",
    "fabric_network",
    "geographic_network",
    "waxman_network",
    "erdos_renyi_network",
]
